//! Semantic monad laws, tested on randomly generated programs: the
//! executable semantics respects left unit, right unit, and bind
//! associativity — the algebra the paper's `do`-notation rewrites rely on.

use ir::eval::Env;
use ir::expr::{BinOp, Expr};
use ir::state::State;
use ir::update::Update;
use ir::value::Value;
use monadic::{exec, IProg, MonadResult, Prog, ProgramCtx};
use proptest::prelude::*;

/// Random straight-line programs over locals x, y.
fn arb_prog() -> impl Strategy<Value = Prog> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|v| Prog::ret(Expr::u32(v))),
        Just(Prog::Gets(Expr::Local("x".into()))),
        Just(Prog::Gets(Expr::Local("y".into()))),
        (0u32..50).prop_map(|v| Prog::Modify(Update::Local(
            "x".into(),
            Expr::binop(BinOp::Add, Expr::Local("x".into()), Expr::u32(v)),
        ))),
        (0u32..50).prop_map(|v| Prog::Throw(Expr::u32(v))),
        (1u32..100).prop_map(|v| Prog::guard(
            ir::GuardKind::DivByZero,
            Expr::binop(BinOp::Lt, Expr::Local("y".into()), Expr::u32(v)),
        )),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Prog::bind(a, "v", b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::cond(
                Expr::binop(BinOp::Lt, Expr::Local("x".into()), Expr::u32(25)),
                a,
                b
            )),
            (inner.clone(), inner).prop_map(|(a, b)| Prog::Catch(
                IProg::new(a),
                "e".into(),
                IProg::new(b)
            )),
        ]
    })
}

fn run(p: &Prog, x: u32, y: u32) -> Result<(MonadResult, State), monadic::MonadFault> {
    let ctx = ProgramCtx::default();
    let mut st = State::conc_empty();
    st.set_local("x", Value::u32(x));
    st.set_local("y", Value::u32(y));
    exec(&ctx, p, &Env::new(), st, 10_000)
}

proptest! {
    /// Left unit: `do v ← return e; k od ≡ k[v := e]` — semantically, with
    /// a variable-free continuation it is `bind(return e, v, k) ≡ k`
    /// whenever k ignores v; we test the general form through the
    /// environment.
    #[test]
    fn left_unit(k in arb_prog(), e in 0u32..50, x in 0u32..60, y in 0u32..60) {
        let lhs = Prog::bind(Prog::ret(Expr::u32(e)), "unused", k.clone());
        prop_assert_eq!(run(&lhs, x, y), run(&k, x, y));
    }

    /// Right unit: `do v ← m; return v od ≡ m`.
    #[test]
    fn right_unit(m in arb_prog(), x in 0u32..60, y in 0u32..60) {
        let lhs = Prog::bind(m.clone(), "v", Prog::ret(Expr::var("v")));
        prop_assert_eq!(run(&lhs, x, y), run(&m, x, y));
    }

    /// Associativity: `do w ← (do v ← m; k v od); h w od ≡
    ///                 do v ← m; (do w ← k v; h w od) od`.
    #[test]
    fn bind_assoc(m in arb_prog(), k in arb_prog(), h in arb_prog(),
                  x in 0u32..60, y in 0u32..60) {
        let lhs = Prog::bind(Prog::bind(m.clone(), "v", k.clone()), "w", h.clone());
        let rhs = Prog::bind(m, "v", Prog::bind(k, "w", h));
        prop_assert_eq!(run(&lhs, x, y), run(&rhs, x, y));
    }

    /// Catch of a non-throwing program is the program.
    #[test]
    fn catch_no_throw(m in arb_prog(), x in 0u32..60, y in 0u32..60) {
        let wrapped = Prog::Catch(IProg::new(m.clone()), "e".into(), IProg::new(Prog::Throw(Expr::var("e"))));
        // catch m (rethrow) ≡ m
        prop_assert_eq!(run(&wrapped, x, y), run(&m, x, y));
    }

    /// The displayed form of a program has the same semantics as the
    /// program (display normalisation does not change meaning — checked by
    /// re-parsing being impossible, we instead check `then`-chains).
    #[test]
    fn then_skip_laws(m in arb_prog(), x in 0u32..60, y in 0u32..60) {
        let lhs = Prog::then(Prog::skip(), m.clone());
        prop_assert_eq!(run(&lhs, x, y), run(&m, x, y));
    }
}
