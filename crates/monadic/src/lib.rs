//! The monadic shallow-embedding analogue: a deep embedding of the
//! nondeterministic state-exception monad
//! `('s, 'a, 'e) monadE ≡ 's ⇒ (('e + 'a) × 's) set × bool` (paper Sec 2).
//!
//! [`Prog`] provides exactly the combinators of Table 1 — `return`, `skip`,
//! `modify`, `throw`, `condition`, `fail`, `guard` — plus `bind`
//! (`do … od` notation), `whileLoop`, `catch`, procedure calls, and the
//! level-mixing `exec_concrete`/`exec_abstract` of Sec 4.6.
//!
//! The same program type is used at every abstraction level; the pipeline
//! phases (L1 → L2 → HL → WA) only change which expressions and state shapes
//! appear inside. [`interp::exec`] gives programs their executable meaning,
//! used by the refinement validators and the case-study test suites.
//!
//! # Example
//!
//! ```
//! use monadic::{Prog, interp::{exec, MonadResult}};
//! use ir::{Expr, BinOp};
//! use ir::eval::Env;
//! use ir::state::State;
//!
//! // do v ← return 2; return (v + 3) od
//! let p = Prog::bind(
//!     Prog::ret(Expr::nat(2u64)),
//!     "v",
//!     Prog::ret(Expr::binop(BinOp::Add, Expr::var("v"), Expr::nat(3u64))),
//! );
//! let ctx = monadic::ProgramCtx::default();
//! let (r, _) = exec(&ctx, &p, &Env::new(), State::abs_empty(), 100).unwrap();
//! assert_eq!(r, MonadResult::Normal(ir::Value::nat(5u64)));
//! ```

pub mod codec;
pub mod interp;
pub mod prog;

pub use interp::{exec, exec_fn, MonadFault, MonadResult};
pub use prog::{IProg, MonadicFn, Prog, ProgramCtx};
