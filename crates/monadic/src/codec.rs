//! Binary codec impls for the monadic program language (see `ir::codec`).
//!
//! `Prog` children are hash-consed [`IProg`] handles, so the generic
//! `Interned` codec gives DAG sharing for free: a subprogram shared by
//! several functions is written once per encoder.

use ir::codec::{Codec, DecodeError, Decoder, Encoder};
use ir::expr::Expr;
use ir::guard::GuardKind;
use ir::ty::{Ty, TypeEnv};
use ir::update::Update;
use ir::value::Value;

use crate::prog::{MonadicFn, Prog, ProgramCtx};

impl Codec for Prog {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Prog::Return(x) => {
                e.u8(0);
                x.encode(e);
            }
            Prog::Gets(x) => {
                e.u8(1);
                x.encode(e);
            }
            Prog::Modify(u) => {
                e.u8(2);
                u.encode(e);
            }
            Prog::Guard(k, g) => {
                e.u8(3);
                k.encode(e);
                g.encode(e);
            }
            Prog::Throw(x) => {
                e.u8(4);
                x.encode(e);
            }
            Prog::Fail => e.u8(5),
            Prog::Bind(l, v, r) => {
                e.u8(6);
                l.encode(e);
                e.str(v);
                r.encode(e);
            }
            Prog::BindTuple(l, vs, r) => {
                e.u8(7);
                l.encode(e);
                vs.encode(e);
                r.encode(e);
            }
            Prog::Condition(c, t, f) => {
                e.u8(8);
                c.encode(e);
                t.encode(e);
                f.encode(e);
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                e.u8(9);
                vars.encode(e);
                cond.encode(e);
                body.encode(e);
                init.encode(e);
            }
            Prog::Catch(l, v, r) => {
                e.u8(10);
                l.encode(e);
                e.str(v);
                r.encode(e);
            }
            Prog::Call { fname, args } => {
                e.u8(11);
                e.str(fname);
                args.encode(e);
            }
            Prog::ExecConcrete(p) => {
                e.u8(12);
                p.encode(e);
            }
            Prog::ExecAbstract(p) => {
                e.u8(13);
                p.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Expr::decode(d).map(Prog::Return),
            1 => Expr::decode(d).map(Prog::Gets),
            2 => Update::decode(d).map(Prog::Modify),
            3 => Ok(Prog::Guard(GuardKind::decode(d)?, Expr::decode(d)?)),
            4 => Expr::decode(d).map(Prog::Throw),
            5 => Ok(Prog::Fail),
            6 => Ok(Prog::Bind(Codec::decode(d)?, d.str()?, Codec::decode(d)?)),
            7 => Ok(Prog::BindTuple(
                Codec::decode(d)?,
                Vec::decode(d)?,
                Codec::decode(d)?,
            )),
            8 => Ok(Prog::Condition(
                Expr::decode(d)?,
                Codec::decode(d)?,
                Codec::decode(d)?,
            )),
            9 => Ok(Prog::While {
                vars: Vec::decode(d)?,
                cond: Expr::decode(d)?,
                body: Codec::decode(d)?,
                init: Vec::decode(d)?,
            }),
            10 => Ok(Prog::Catch(Codec::decode(d)?, d.str()?, Codec::decode(d)?)),
            11 => Ok(Prog::Call {
                fname: d.str()?,
                args: Vec::decode(d)?,
            }),
            12 => Ok(Prog::ExecConcrete(Codec::decode(d)?)),
            13 => Ok(Prog::ExecAbstract(Codec::decode(d)?)),
            b => Err(DecodeError(format!("invalid Prog tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for MonadicFn {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        self.params.encode(e);
        self.ret_ty.encode(e);
        self.frame.encode(e);
        self.body.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MonadicFn {
            name: d.str()?,
            params: Vec::decode(d)?,
            ret_ty: Ty::decode(d)?,
            frame: Option::decode(d)?,
            body: Prog::decode(d)?,
        })
    }
}

impl Codec for ProgramCtx {
    fn encode(&self, e: &mut Encoder) {
        self.tenv.encode(e);
        self.fns.encode(e);
        self.globals.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ProgramCtx {
            tenv: TypeEnv::decode(d)?,
            fns: Codec::decode(d)?,
            globals: Vec::<(String, Value)>::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::IProg;
    use ir::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn prog_round_trips_with_sharing() {
        let step = IProg::new(Prog::Modify(Update::Local(
            "x".into(),
            Expr::binop(ir::expr::BinOp::Add, Expr::var("x"), Expr::u32(1)),
        )));
        let p = Prog::Bind(step.clone(), "_".into(), step.clone());
        let bytes = encode_to_vec(&p);
        let back: Prog = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, p);
        match &back {
            Prog::Bind(l, _, r) => assert_eq!(l.key(), r.key(), "sharing survives"),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn monadic_fn_round_trips() {
        let f = MonadicFn {
            name: "inc".into(),
            params: vec![("x".into(), Ty::U32)],
            ret_ty: Ty::U32,
            frame: None,
            body: Prog::ret(Expr::binop(
                ir::expr::BinOp::Add,
                Expr::var("x"),
                Expr::u32(1),
            )),
        };
        let bytes = encode_to_vec(&f);
        let back: MonadicFn = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, f);
    }

    #[test]
    fn corrupt_prog_never_panics() {
        let p = Prog::cond(
            Expr::var("c"),
            Prog::guard(GuardKind::DivByZero, Expr::var("g")),
            Prog::Fail,
        );
        let bytes = encode_to_vec(&p);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x40;
            let _ = decode_from_slice::<Prog>(&m);
            let _ = decode_from_slice::<Prog>(&bytes[..i]);
        }
    }
}
