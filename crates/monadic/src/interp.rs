//! Executable semantics of monadic programs.
//!
//! The paper's monad returns a *set* of results plus a failure flag. The
//! translated programs are deterministic (nondeterminism only enters through
//! `exec_concrete`'s choice of concretisation, which this interpreter
//! resolves by running on the underlying concrete state — the standard
//! implementation of the specification), so the interpreter returns a single
//! result; `fail`/failed guards are the failure flag.

use std::collections::BTreeMap;
use std::fmt;

use ir::eval::{eval, eval_bool, Env, EvalError};
use ir::guard::GuardKind;
use ir::state::State;
use ir::value::Value;

use crate::prog::{MonadicFn, Prog, ProgramCtx};

/// The `'e + 'a` sum: a normal value or an exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonadResult {
    /// `Normal v`.
    Normal(Value),
    /// `Except e`.
    Except(Value),
}

impl MonadResult {
    /// Extracts the normal value.
    #[must_use]
    pub fn normal(self) -> Option<Value> {
        match self {
            MonadResult::Normal(v) => Some(v),
            MonadResult::Except(_) => None,
        }
    }
}

/// Failure of a monadic execution (the failure flag, or meta-level faults).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonadFault {
    /// The failure flag: `fail` was reached or a guard did not hold.
    Failure(GuardKind),
    /// Evaluation got stuck (ill-typed term — a transformation bug).
    Stuck(String),
    /// Fuel exhausted.
    OutOfFuel,
    /// Call to an unknown function.
    UnknownFunction(String),
}

impl fmt::Display for MonadFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonadFault::Failure(k) => write!(f, "failure ({k})"),
            MonadFault::Stuck(m) => write!(f, "stuck: {m}"),
            MonadFault::OutOfFuel => write!(f, "out of fuel"),
            MonadFault::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
        }
    }
}

impl std::error::Error for MonadFault {}

impl From<EvalError> for MonadFault {
    fn from(e: EvalError) -> MonadFault {
        MonadFault::Stuck(e.to_string())
    }
}

type ExecResult = Result<(MonadResult, State), MonadFault>;

/// Execution budget: step fuel plus a call-depth cap. The interpreter
/// recurses natively on subject-program calls, so unbounded recursion in
/// the interpreted program would overflow the host stack long before the
/// fuel runs out; the depth cap converts that into a clean
/// [`MonadFault::OutOfFuel`].
struct Budget {
    fuel: u64,
    depth: u32,
}

/// Maximum interpreted call depth (see [`Budget`]).
const MAX_CALL_DEPTH: u32 = 300;

/// Stack size for the dedicated interpreter thread. Debug builds spend on
/// the order of 100 KiB of host stack per interpreted call level, so the
/// worst case at [`MAX_CALL_DEPTH`] needs far more than a default 2 MiB
/// thread stack.
const INTERP_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Runs `f` on a thread with a large stack, so deeply recursive subject
/// programs hit the clean [`MAX_CALL_DEPTH`] bound instead of overflowing
/// the caller's stack.
fn with_interp_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(INTERP_STACK_BYTES)
            .spawn_scoped(scope, f)
            .expect("spawn interpreter thread")
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    })
}

/// Executes a program in environment `env` and state `st`.
///
/// # Errors
///
/// [`MonadFault::Failure`] corresponds to the monad's failure flag; the
/// other variants are meta-level faults that cannot occur on well-formed
/// translated programs.
pub fn exec(ctx: &ProgramCtx, p: &Prog, env: &Env, st: State, fuel: u64) -> ExecResult {
    with_interp_stack(move || {
        let mut budget = Budget { fuel, depth: 0 };
        exec_inner(ctx, p, env, st, &mut budget)
    })
}

fn exec_inner(
    ctx: &ProgramCtx,
    p: &Prog,
    env: &Env,
    mut st: State,
    fuel: &mut Budget,
) -> ExecResult {
    if fuel.fuel == 0 {
        return Err(MonadFault::OutOfFuel);
    }
    fuel.fuel -= 1;
    match p {
        Prog::Return(e) | Prog::Gets(e) => {
            let v = eval(e, env, &st)?;
            Ok((MonadResult::Normal(v), st))
        }
        Prog::Modify(u) => {
            u.apply(env, &mut st)?;
            Ok((MonadResult::Normal(Value::Unit), st))
        }
        Prog::Guard(kind, g) => {
            if eval_bool(g, env, &st)? {
                Ok((MonadResult::Normal(Value::Unit), st))
            } else {
                Err(MonadFault::Failure(kind.clone()))
            }
        }
        Prog::Throw(e) => {
            let v = eval(e, env, &st)?;
            Ok((MonadResult::Except(v), st))
        }
        Prog::Fail => Err(MonadFault::Failure(GuardKind::DontReach)),
        Prog::Bind(l, v, r) => {
            let (lr, st) = exec_inner(ctx, l, env, st, fuel)?;
            match lr {
                MonadResult::Normal(val) => {
                    let env2 = env.bind(v, val);
                    exec_inner(ctx, r, &env2, st, fuel)
                }
                e @ MonadResult::Except(_) => Ok((e, st)),
            }
        }
        Prog::BindTuple(l, vs, r) => {
            let (lr, st) = exec_inner(ctx, l, env, st, fuel)?;
            match lr {
                MonadResult::Normal(val) => {
                    let parts = unpack_iters(vs.len(), val)?;
                    let env2 = bind_iters(env, vs, &parts);
                    exec_inner(ctx, r, &env2, st, fuel)
                }
                e @ MonadResult::Except(_) => Ok((e, st)),
            }
        }
        Prog::Catch(l, v, h) => {
            let (lr, st) = exec_inner(ctx, l, env, st, fuel)?;
            match lr {
                n @ MonadResult::Normal(_) => Ok((n, st)),
                MonadResult::Except(e) => {
                    let env2 = env.bind(v, e);
                    exec_inner(ctx, h, &env2, st, fuel)
                }
            }
        }
        Prog::Condition(c, t, e) => {
            if eval_bool(c, env, &st)? {
                exec_inner(ctx, t, env, st, fuel)
            } else {
                exec_inner(ctx, e, env, st, fuel)
            }
        }
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => {
            let mut cur: Vec<Value> = Vec::with_capacity(init.len());
            for i in init {
                cur.push(eval(i, env, &st)?);
            }
            loop {
                if fuel.fuel == 0 {
                    return Err(MonadFault::OutOfFuel);
                }
                fuel.fuel -= 1;
                let env2 = bind_iters(env, vars, &cur);
                if !eval_bool(cond, &env2, &st)? {
                    let result = pack_iters(&cur);
                    return Ok((MonadResult::Normal(result), st));
                }
                let (r, st2) = exec_inner(ctx, body, &env2, st, fuel)?;
                st = st2;
                match r {
                    MonadResult::Normal(v) => {
                        cur = unpack_iters(vars.len(), v)?;
                    }
                    e @ MonadResult::Except(_) => return Ok((e, st)),
                }
            }
        }
        Prog::Call { fname, args } => {
            let f = ctx
                .function(fname)
                .ok_or_else(|| MonadFault::UnknownFunction(fname.clone()))?;
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(a, env, &st)?);
            }
            exec_call(ctx, f, &arg_vals, st, fuel)
        }
        // Running mixed-level programs: the machine state is the concrete
        // state throughout (the standard implementation of the spec); the
        // level markers are transparent to execution.
        Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => {
            if st.as_conc().is_none() {
                return Err(MonadFault::Stuck(
                    "exec_concrete/exec_abstract requires an underlying concrete state".into(),
                ));
            }
            exec_inner(ctx, p, env, st, fuel)
        }
    }
}

/// Calls a monadic function with evaluated arguments.
fn exec_call(
    ctx: &ProgramCtx,
    f: &MonadicFn,
    args: &[Value],
    st: State,
    fuel: &mut Budget,
) -> ExecResult {
    assert_eq!(f.params.len(), args.len(), "arity mismatch calling {}", f.name);
    if fuel.depth >= MAX_CALL_DEPTH {
        return Err(MonadFault::OutOfFuel);
    }
    fuel.depth += 1;
    let out = exec_call_framed(ctx, f, args, st, fuel);
    fuel.depth -= 1;
    out
}

fn exec_call_framed(
    ctx: &ProgramCtx,
    f: &MonadicFn,
    args: &[Value],
    mut st: State,
    fuel: &mut Budget,
) -> ExecResult {
    match &f.frame {
        // L1: locals (including parameters) live in the state.
        Some(locals) => {
            let mut frame = BTreeMap::new();
            for (n, t) in locals {
                frame.insert(n.clone(), Value::zero_of(t, &ctx.tenv));
            }
            for ((n, _), v) in f.params.iter().zip(args) {
                frame.insert(n.clone(), v.clone());
            }
            let saved = st.swap_locals(frame);
            let env = Env::with_tenv(ctx.tenv.clone());
            let result = exec_inner(ctx, &f.body, &env, st, fuel);
            let (r, mut st) = result?;
            st.swap_locals(saved);
            Ok((r, st))
        }
        // L2+: parameters are lambda-bound.
        None => {
            let mut env = Env::with_tenv(ctx.tenv.clone());
            for ((n, _), v) in f.params.iter().zip(args) {
                env.bind_mut(n, v.clone());
            }
            exec_inner(ctx, &f.body, &env, st, fuel)
        }
    }
}

/// Runs a named function on argument values.
///
/// # Errors
///
/// As for [`exec`].
pub fn exec_fn(
    ctx: &ProgramCtx,
    name: &str,
    args: &[Value],
    st: State,
    fuel: u64,
) -> ExecResult {
    let f = ctx
        .function(name)
        .ok_or_else(|| MonadFault::UnknownFunction(name.to_owned()))?;
    with_interp_stack(move || {
        let mut budget = Budget { fuel, depth: 0 };
        exec_call(ctx, f, args, st, &mut budget)
    })
}

fn bind_iters(env: &Env, vars: &[String], vals: &[Value]) -> Env {
    let mut out = env.clone();
    for (n, v) in vars.iter().zip(vals) {
        out.bind_mut(n, v.clone());
    }
    out
}

fn pack_iters(vals: &[Value]) -> Value {
    if vals.len() == 1 {
        vals[0].clone()
    } else {
        Value::Tuple(vals.to_vec())
    }
}

fn unpack_iters(n: usize, v: Value) -> Result<Vec<Value>, MonadFault> {
    if n == 1 {
        return Ok(vec![v]);
    }
    match v {
        Value::Tuple(vs) if vs.len() == n => Ok(vs),
        v => Err(MonadFault::Stuck(format!(
            "loop body returned `{v}` for {n} iterator variables"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::IProg;
    use ir::expr::{BinOp, Expr};
    use ir::ty::Ty;
    use ir::update::Update;

    fn run(p: &Prog) -> Result<MonadResult, MonadFault> {
        let ctx = ProgramCtx::default();
        exec(&ctx, p, &Env::new(), State::conc_empty(), 100_000).map(|(r, _)| r)
    }

    #[test]
    fn return_and_bind() {
        let p = Prog::bind(
            Prog::ret(Expr::u32(2)),
            "v",
            Prog::ret(Expr::binop(BinOp::Add, Expr::var("v"), Expr::u32(3))),
        );
        assert_eq!(run(&p), Ok(MonadResult::Normal(Value::u32(5))));
    }

    #[test]
    fn exceptions_skip_bind() {
        let p = Prog::bind(
            Prog::Throw(Expr::u32(7)),
            "v",
            Prog::Fail, // must not run
        );
        assert_eq!(run(&p), Ok(MonadResult::Except(Value::u32(7))));
    }

    #[test]
    fn catch_handles() {
        let p = Prog::Catch(
            IProg::new(Prog::Throw(Expr::u32(7))),
            "e".into(),
            IProg::new(Prog::ret(Expr::var("e"))),
        );
        assert_eq!(run(&p), Ok(MonadResult::Normal(Value::u32(7))));
    }

    #[test]
    fn guard_failure_is_failure_flag() {
        let p = Prog::guard(GuardKind::DivByZero, Expr::ff());
        assert_eq!(run(&p), Err(MonadFault::Failure(GuardKind::DivByZero)));
        let p = Prog::guard(GuardKind::DivByZero, Expr::tt());
        assert_eq!(run(&p), Ok(MonadResult::Normal(Value::Unit)));
    }

    #[test]
    fn while_loop_counts() {
        // whileLoop (λi. i < 10) (λi. return (i + 1)) 0
        let p = Prog::While {
            vars: vec!["i".into()],
            cond: Expr::binop(BinOp::Lt, Expr::var("i"), Expr::nat(10u64)),
            body: IProg::new(Prog::ret(Expr::binop(
                BinOp::Add,
                Expr::var("i"),
                Expr::nat(1u64),
            ))),
            init: vec![Expr::nat(0u64)],
        };
        assert_eq!(run(&p), Ok(MonadResult::Normal(Value::nat(10u64))));
    }

    #[test]
    fn while_loop_pairs() {
        // Swap two iterator values 5 times.
        let p = Prog::While {
            vars: vec!["a".into(), "b".into(), "n".into()],
            cond: Expr::binop(BinOp::Lt, Expr::var("n"), Expr::nat(5u64)),
            body: IProg::new(Prog::ret(Expr::Tuple(vec![
                Expr::var("b"),
                Expr::var("a"),
                Expr::binop(BinOp::Add, Expr::var("n"), Expr::nat(1u64)),
            ]))),
            init: vec![Expr::u32(1), Expr::u32(2), Expr::nat(0u64)],
        };
        let MonadResult::Normal(Value::Tuple(vs)) = run(&p).unwrap() else {
            panic!()
        };
        assert_eq!(vs[0], Value::u32(2));
        assert_eq!(vs[1], Value::u32(1));
    }

    #[test]
    fn exception_escapes_loop() {
        let p = Prog::While {
            vars: vec!["i".into()],
            cond: Expr::tt(),
            body: IProg::new(Prog::Throw(Expr::u32(42))),
            init: vec![Expr::nat(0u64)],
        };
        assert_eq!(run(&p), Ok(MonadResult::Except(Value::u32(42))));
    }

    #[test]
    fn state_updates_thread_through() {
        let p = Prog::seq_all([
            Prog::Modify(Update::Local("x".into(), Expr::u32(5))),
            Prog::Modify(Update::Local(
                "x".into(),
                Expr::binop(BinOp::Add, Expr::Local("x".into()), Expr::u32(1)),
            )),
            Prog::Gets(Expr::Local("x".into())),
        ]);
        assert_eq!(run(&p), Ok(MonadResult::Normal(Value::u32(6))));
    }

    #[test]
    fn infinite_loop_out_of_fuel() {
        let p = Prog::While {
            vars: vec!["i".into()],
            cond: Expr::tt(),
            body: IProg::new(Prog::ret(Expr::var("i"))),
            init: vec![Expr::nat(0u64)],
        };
        assert_eq!(run(&p), Err(MonadFault::OutOfFuel));
    }

    #[test]
    fn l2_function_call_binds_params() {
        let mut ctx = ProgramCtx::default();
        ctx.fns.insert(
            "double".into(),
            MonadicFn {
                name: "double".into(),
                params: vec![("x".into(), Ty::Nat)],
                ret_ty: Ty::Nat,
                frame: None,
                body: Prog::ret(Expr::binop(BinOp::Mul, Expr::var("x"), Expr::nat(2u64))),
            },
        );
        let p = Prog::Call {
            fname: "double".into(),
            args: vec![Expr::nat(21u64)],
        };
        let (r, _) = exec(&ctx, &p, &Env::new(), State::conc_empty(), 1000).unwrap();
        assert_eq!(r, MonadResult::Normal(Value::nat(42u64)));
    }

    #[test]
    fn l1_function_call_uses_frame() {
        let mut ctx = ProgramCtx::default();
        ctx.fns.insert(
            "f".into(),
            MonadicFn {
                name: "f".into(),
                params: vec![("x".into(), Ty::U32)],
                ret_ty: Ty::U32,
                frame: Some(vec![("x".into(), Ty::U32), ("t".into(), Ty::U32)]),
                body: Prog::seq_all([
                    Prog::Modify(Update::Local(
                        "t".into(),
                        Expr::binop(BinOp::Add, Expr::Local("x".into()), Expr::u32(1)),
                    )),
                    Prog::Gets(Expr::Local("t".into())),
                ]),
            },
        );
        let mut st = State::conc_empty();
        st.set_local("t", Value::u32(99)); // caller's `t` must be preserved
        let (r, st) = exec_fn(&ctx, "f", &[Value::u32(5)], st, 1000).unwrap();
        assert_eq!(r, MonadResult::Normal(Value::u32(6)));
        assert_eq!(st.local("t"), Some(&Value::u32(99)));
    }
}
