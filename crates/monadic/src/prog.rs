//! The deep-embedded monadic program language.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ir::expr::Expr;
use ir::guard::GuardKind;
use ir::intern::{InternStats, Internable, Interned, Interner};
use ir::metrics::SpecMetrics;
use ir::ty::{Ty, TypeEnv};
use ir::update::Update;

/// An interned (hash-consed) program handle — the replacement for
/// `Box<Prog>` in the term representation (see `ir::intern`).
pub type IProg = Interned<Prog>;

/// A monadic program (Table 1 combinators plus structured control flow).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Prog {
    /// `return e` — yield a value without touching the state.
    Return(Expr),
    /// `gets (λs. e)` — read the state. Semantically identical to `Return`
    /// (expressions may read the state anyway); kept separate so printed
    /// specifications match the paper's figures.
    Gets(Expr),
    /// `modify m` — update the state.
    Modify(Update),
    /// `guard g` — fail (irrecoverably) unless `g` holds.
    Guard(GuardKind, Expr),
    /// `throw e` — raise an exception.
    Throw(Expr),
    /// `fail` — irrecoverable failure (`λs. (∅, True)`).
    Fail,
    /// `do v ← L; R od`.
    Bind(IProg, String, IProg),
    /// `do (v₁, …, vₙ) ← L; R od` — tuple-pattern bind (used to destructure
    /// `whileLoop` iterator values, as in the paper's Fig 6).
    BindTuple(IProg, Vec<String>, IProg),
    /// `condition c L R`.
    Condition(Expr, IProg, IProg),
    /// `whileLoop c B i` — `vars` are the loop-iterator names bound in both
    /// the condition and body; the body yields the next iterator value
    /// (a tuple when there are several variables). The loop's value is the
    /// final iterator value.
    While {
        /// Iterator variable names.
        vars: Vec<String>,
        /// Loop condition over the iterator variables and the state.
        cond: Expr,
        /// Loop body, yielding the next iterator value.
        body: IProg,
        /// Initial iterator values.
        init: Vec<Expr>,
    },
    /// `L <catch> (λe. H)` — run `L`; on an exception bind it and run `H`.
    Catch(IProg, String, IProg),
    /// Call a named function with argument expressions; yields its result.
    Call {
        /// Callee name.
        fname: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `exec_concrete M` — run a low-level (byte-heap) program from
    /// heap-abstracted code (Sec 4.6).
    ExecConcrete(IProg),
    /// `exec_abstract M` — run a heap-abstracted program from low-level code.
    ExecAbstract(IProg),
}

impl Internable for Prog {
    fn shallow_size(&self) -> usize {
        self.term_size()
    }

    fn interner() -> &'static Interner<Prog> {
        static INTERNER: std::sync::OnceLock<Interner<Prog>> = std::sync::OnceLock::new();
        INTERNER.get_or_init(Interner::new)
    }

    fn with_local<R>(f: impl FnOnce(&mut ir::intern::LocalCache<Prog>) -> R) -> R {
        thread_local! {
            static CACHE: std::cell::RefCell<ir::intern::LocalCache<Prog>> =
                std::cell::RefCell::new(ir::intern::LocalCache::new());
        }
        CACHE.with(|c| f(&mut c.borrow_mut()))
    }
}

/// Counters of the `Prog` interner (the `Expr` counters live in
/// `ir::intern::expr_stats`).
#[must_use]
pub fn intern_stats() -> InternStats {
    <Prog as Internable>::interner().stats()
}

impl Prog {
    /// `return e`.
    #[must_use]
    pub fn ret(e: Expr) -> Prog {
        Prog::Return(e)
    }

    /// `skip ≡ return ()`.
    #[must_use]
    pub fn skip() -> Prog {
        Prog::Return(Expr::unit())
    }

    /// `do v ← l; r od`.
    #[must_use]
    pub fn bind(l: Prog, v: impl Into<String>, r: Prog) -> Prog {
        Prog::Bind(IProg::new(l), v.into(), IProg::new(r))
    }

    /// `do (v₁, …, vₙ) ← l; r od`.
    #[must_use]
    pub fn bind_tuple(l: Prog, vs: Vec<String>, r: Prog) -> Prog {
        Prog::BindTuple(IProg::new(l), vs, IProg::new(r))
    }

    /// Sequencing discarding the first value: `do _ ← l; r od`.
    /// Simplifies `skip ; r` to `r` and `l ; skip-return-unit` patterns are
    /// kept (they may carry state effects).
    #[must_use]
    pub fn then(l: Prog, r: Prog) -> Prog {
        if l == Prog::skip() {
            r
        } else {
            Prog::bind(l, "_", r)
        }
    }

    /// `condition c t e`.
    #[must_use]
    pub fn cond(c: Expr, t: Prog, e: Prog) -> Prog {
        Prog::Condition(c, IProg::new(t), IProg::new(e))
    }

    /// `guard g`.
    #[must_use]
    pub fn guard(kind: GuardKind, g: Expr) -> Prog {
        Prog::Guard(kind, g)
    }

    /// Sequences a list of programs, discarding intermediate values.
    #[must_use]
    pub fn seq_all(progs: impl IntoIterator<Item = Prog>) -> Prog {
        let mut items: Vec<Prog> = progs.into_iter().collect();
        match items.pop() {
            None => Prog::skip(),
            Some(last) => items.into_iter().rev().fold(last, |acc, p| Prog::then(p, acc)),
        }
    }

    /// Number of AST nodes including contained expressions (term size).
    /// O(immediate children): interned sub-programs carry their size.
    #[must_use]
    pub fn term_size(&self) -> usize {
        match self {
            Prog::Return(e) | Prog::Gets(e) | Prog::Throw(e) | Prog::Guard(_, e) => {
                1 + e.term_size()
            }
            Prog::Modify(u) => 1 + u.term_size(),
            Prog::Fail => 1,
            Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
                1 + l.size() + r.size()
            }
            Prog::Condition(c, t, e) => 1 + c.term_size() + t.size() + e.size(),
            Prog::While {
                cond, body, init, ..
            } => {
                1 + cond.term_size()
                    + body.size()
                    + init.iter().map(Expr::term_size).sum::<usize>()
            }
            Prog::Call { args, .. } => 1 + args.iter().map(Expr::term_size).sum::<usize>(),
            Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => 1 + p.size(),
        }
    }

    /// Free lambda-bound variables (iterator/bind variables are binders).
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<String> {
        match self {
            Prog::Return(e) | Prog::Gets(e) | Prog::Throw(e) | Prog::Guard(_, e) => e.free_vars(),
            Prog::Modify(u) => u.free_vars(),
            Prog::Fail => BTreeSet::new(),
            Prog::Bind(l, v, r) | Prog::Catch(l, v, r) => {
                let mut out = l.free_vars();
                let mut rv = r.free_vars();
                rv.remove(v);
                out.extend(rv);
                out
            }
            Prog::BindTuple(l, vs, r) => {
                let mut out = l.free_vars();
                let mut rv = r.free_vars();
                for v in vs {
                    rv.remove(v);
                }
                out.extend(rv);
                out
            }
            Prog::Condition(c, t, e) => {
                let mut out = c.free_vars();
                out.extend(t.free_vars());
                out.extend(e.free_vars());
                out
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                let mut inner = cond.free_vars();
                inner.extend(body.free_vars());
                for v in vars {
                    inner.remove(v);
                }
                for i in init {
                    inner.extend(i.free_vars());
                }
                inner
            }
            Prog::Call { args, .. } => args.iter().flat_map(Expr::free_vars).collect(),
            Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => p.free_vars(),
        }
    }

    /// Visits every contained expression (preorder over the program).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Prog::Return(e) | Prog::Gets(e) | Prog::Throw(e) | Prog::Guard(_, e) => f(e),
            Prog::Modify(u) => match u {
                Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => f(e),
                Update::Heap(_, p, e) | Update::Byte(p, e) => {
                    f(p);
                    f(e);
                }
            },
            Prog::Fail => {}
            Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
                l.visit_exprs(f);
                r.visit_exprs(f);
            }
            Prog::Condition(c, t, e) => {
                f(c);
                t.visit_exprs(f);
                e.visit_exprs(f);
            }
            Prog::While {
                cond, body, init, ..
            } => {
                f(cond);
                body.visit_exprs(f);
                for i in init {
                    f(i);
                }
            }
            Prog::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => p.visit_exprs(f),
        }
    }

    /// Rewrites every contained expression with `f` (does not descend into
    /// binder structure — names are left untouched).
    #[must_use]
    pub fn map_exprs(&self, f: &impl Fn(&Expr) -> Expr) -> Prog {
        match self {
            Prog::Return(e) => Prog::Return(f(e)),
            Prog::Gets(e) => Prog::Gets(f(e)),
            Prog::Throw(e) => Prog::Throw(f(e)),
            Prog::Guard(k, e) => Prog::Guard(k.clone(), f(e)),
            Prog::Modify(u) => Prog::Modify(u.map_exprs(f)),
            Prog::Fail => Prog::Fail,
            Prog::Bind(l, v, r) => Prog::Bind(
                IProg::new(l.map_exprs(f)),
                v.clone(),
                IProg::new(r.map_exprs(f)),
            ),
            Prog::BindTuple(l, vs, r) => Prog::BindTuple(
                IProg::new(l.map_exprs(f)),
                vs.clone(),
                IProg::new(r.map_exprs(f)),
            ),
            Prog::Catch(l, v, r) => Prog::Catch(
                IProg::new(l.map_exprs(f)),
                v.clone(),
                IProg::new(r.map_exprs(f)),
            ),
            Prog::Condition(c, t, e) => Prog::Condition(
                f(c),
                IProg::new(t.map_exprs(f)),
                IProg::new(e.map_exprs(f)),
            ),
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => Prog::While {
                vars: vars.clone(),
                cond: f(cond),
                body: IProg::new(body.map_exprs(f)),
                init: init.iter().map(f).collect(),
            },
            Prog::Call { fname, args } => Prog::Call {
                fname: fname.clone(),
                args: args.iter().map(f).collect(),
            },
            Prog::ExecConcrete(p) => Prog::ExecConcrete(IProg::new(p.map_exprs(f))),
            Prog::ExecAbstract(p) => Prog::ExecAbstract(IProg::new(p.map_exprs(f))),
        }
    }

    /// Substitutes a state-stored local read by an expression everywhere
    /// (used by local-variable lifting).
    #[must_use]
    pub fn subst_local(&self, name: &str, repl: &Expr) -> Prog {
        self.map_exprs(&|e| e.subst_local(name, repl))
    }

    /// The names of all functions this program calls (directly, at any
    /// nesting depth, including inside `exec_concrete`/`exec_abstract`
    /// level-mixing markers).
    pub fn calls_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Prog::Return(_)
            | Prog::Gets(_)
            | Prog::Modify(_)
            | Prog::Guard(..)
            | Prog::Throw(_)
            | Prog::Fail => {}
            Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
                l.calls_into(out);
                r.calls_into(out);
            }
            Prog::Condition(_, t, e) => {
                t.calls_into(out);
                e.calls_into(out);
            }
            Prog::While { body, .. } => body.calls_into(out),
            Prog::Call { fname, .. } => {
                out.insert(fname.clone());
            }
            Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => p.calls_into(out),
        }
    }

    /// The set of directly called function names.
    #[must_use]
    pub fn calls(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.calls_into(&mut out);
        out
    }

    /// Does the program contain a `Throw` (outside of `catch` left sides is
    /// not distinguished — used as a conservative check by type
    /// specialisation)?
    #[must_use]
    pub fn contains_throw(&self) -> bool {
        match self {
            Prog::Throw(_) => true,
            Prog::Return(_) | Prog::Gets(_) | Prog::Modify(_) | Prog::Guard(..) | Prog::Fail => {
                false
            }
            Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) => {
                l.contains_throw() || r.contains_throw()
            }
            // A catch handles exceptions of its left side; only the
            // handler's throws escape.
            Prog::Catch(_, _, r) => r.contains_throw(),
            Prog::Condition(_, t, e) => t.contains_throw() || e.contains_throw(),
            Prog::While { body, .. } => body.contains_throw(),
            // Conservative: calls may throw (resolved by the caller).
            Prog::Call { .. } => true,
            Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => p.contains_throw(),
        }
    }

    fn needs_parens(&self) -> bool {
        matches!(
            self,
            Prog::Bind(..)
                | Prog::BindTuple(..)
                | Prog::Condition(..)
                | Prog::While { .. }
                | Prog::Catch(..)
        )
    }

    fn fmt_prog(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Prog::Return(e) => {
                if expr_is_atomic(e) {
                    write!(f, "return {e}")
                } else {
                    write!(f, "return ({e})")
                }
            }
            Prog::Gets(e) => write!(f, "gets (λs. {e})"),
            Prog::Modify(u) => write!(f, "modify (λs. {u})"),
            Prog::Guard(_, e) => write!(f, "guard (λs. {e})"),
            Prog::Throw(e) => {
                if expr_is_atomic(e) {
                    write!(f, "throw {e}")
                } else {
                    write!(f, "throw ({e})")
                }
            }
            Prog::Fail => write!(f, "fail"),
            Prog::Bind(..) | Prog::BindTuple(..) => {
                writeln!(f, "do")?;
                self.fmt_do_chain(f, indent + 1)?;
                write!(f, "\n{pad}od")
            }
            Prog::Condition(c, t, e) => {
                writeln!(f, "condition (λs. {c})")?;
                write!(f, "{pad}  (")?;
                t.fmt_prog(f, indent + 1)?;
                writeln!(f, ")")?;
                write!(f, "{pad}  (")?;
                e.fmt_prog(f, indent + 1)?;
                write!(f, ")")
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                let vs = vars.join(", ");
                writeln!(f, "whileLoop (λ({vs}) s. {cond})")?;
                write!(f, "{pad}  (λ({vs}). ")?;
                body.fmt_prog(f, indent + 1)?;
                writeln!(f, ")")?;
                let is: Vec<String> = init.iter().map(|e| e.to_string()).collect();
                write!(f, "{pad}  ({})", is.join(", "))
            }
            Prog::Catch(l, v, r) => {
                write!(f, "try ")?;
                l.fmt_prog(f, indent + 1)?;
                write!(f, "\n{pad}catch (λ{v}. ")?;
                r.fmt_prog(f, indent + 1)?;
                write!(f, ")")
            }
            Prog::Call { fname, args } => {
                write!(f, "{fname}'")?;
                for a in args {
                    write!(f, " ({a})")?;
                }
                Ok(())
            }
            Prog::ExecConcrete(p) => {
                write!(f, "exec_concrete (")?;
                p.fmt_prog(f, indent + 1)?;
                write!(f, ")")
            }
            Prog::ExecAbstract(p) => {
                write!(f, "exec_abstract (")?;
                p.fmt_prog(f, indent + 1)?;
                write!(f, ")")
            }
        }
    }

    /// Collects the display spine of a bind chain: a list of
    /// `(pattern, program)` lines plus the final program. Left-nested binds
    /// are flattened when no binder of the inner chain is referenced by the
    /// outer continuation (pure display normalisation — the program and the
    /// theorems about it are untouched).
    fn collect_lines<'p>(&'p self, out: &mut Vec<(DisplayPat<'p>, &'p Prog)>) -> &'p Prog {
        match self {
            Prog::Bind(l, v, r) => {
                let safe = {
                    let mut inner_binders = Vec::new();
                    l.spine_binders(&mut inner_binders);
                    let cont_fv = r.free_vars();
                    inner_binders
                        .iter()
                        .all(|b| *b == "_" || !cont_fv.contains(*b))
                };
                if safe {
                    let lf = l.collect_lines(out);
                    out.push((DisplayPat::Single(v), lf));
                } else {
                    out.push((DisplayPat::Single(v), l));
                }
                r.collect_lines(out)
            }
            Prog::BindTuple(l, vs, r) => {
                out.push((DisplayPat::Tuple(vs), l));
                r.collect_lines(out)
            }
            other => other,
        }
    }

    /// The binder names introduced along the spine of a bind chain.
    fn spine_binders<'p>(&'p self, out: &mut Vec<&'p str>) {
        match self {
            Prog::Bind(l, v, r) => {
                l.spine_binders(out);
                out.push(v);
                r.spine_binders(out);
            }
            Prog::BindTuple(l, vs, r) => {
                l.spine_binders(out);
                for v in vs {
                    out.push(v);
                }
                r.spine_binders(out);
            }
            _ => {}
        }
    }

    /// Renders the spine of a bind chain as `do`-notation lines, dropping
    /// `_ ← return ()` noise and collapsing adjacent duplicate guards.
    fn fmt_do_chain(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        let mut lines = Vec::new();
        let final_prog = self.collect_lines(&mut lines);
        let skip = Prog::skip();
        let mut rendered: Vec<(&DisplayPat, &Prog)> = Vec::new();
        for (pat, prog) in &lines {
            if matches!(pat, DisplayPat::Single(v) if *v == "_") {
                if *prog == &skip {
                    continue;
                }
                if matches!(prog, Prog::Guard(..)) {
                    if let Some((DisplayPat::Single("_"), prev)) = rendered.last() {
                        if prev == prog {
                            continue;
                        }
                    }
                }
            }
            rendered.push((pat, prog));
        }
        for (pat, prog) in rendered {
            write!(f, "{pad}")?;
            match pat {
                DisplayPat::Single(v) if *v != "_" => write!(f, "{v} ← ")?,
                DisplayPat::Single(_) => {}
                DisplayPat::Tuple(vs) => write!(f, "({}) ← ", vs.join(", "))?,
            }
            if prog.needs_parens() {
                write!(f, "(")?;
                prog.fmt_prog(f, indent)?;
                write!(f, ")")?;
            } else {
                prog.fmt_prog(f, indent)?;
            }
            writeln!(f, ";")?;
        }
        write!(f, "{pad}")?;
        final_prog.fmt_prog(f, indent)
    }
}

/// A display pattern on the left of `←`.
enum DisplayPat<'p> {
    Single(&'p str),
    Tuple(&'p [String]),
}

impl<'p> PartialEq for DisplayPat<'p> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DisplayPat::Single(a), DisplayPat::Single(b)) => a == b,
            (DisplayPat::Tuple(a), DisplayPat::Tuple(b)) => a == b,
            _ => false,
        }
    }
}

/// Expressions that print unambiguously without parentheses.
fn expr_is_atomic(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) | Expr::Tuple(_)
            | Expr::Field(..)
            | Expr::Proj(..)
    )
}

impl fmt::Display for Prog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prog(f, 0)
    }
}

/// A function at the monadic level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonadicFn {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret_ty: Ty,
    /// When present, the function still keeps its locals in the state
    /// (L1 level): the list is the frame to allocate on call. After
    /// local-variable lifting this is `None` and parameters are
    /// lambda-bound.
    pub frame: Option<Vec<(String, Ty)>>,
    /// The body.
    pub body: Prog,
}

impl MonadicFn {
    /// Complexity metrics of this function's printed specification.
    #[must_use]
    pub fn metrics(&self) -> SpecMetrics {
        let wrapped = ir::metrics::wrap_text(&self.to_string(), 100);
        SpecMetrics {
            lines: ir::metrics::spec_lines(&wrapped),
            term_size: self.body.term_size(),
        }
    }
}

impl fmt::Display for MonadicFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'", self.name)?;
        for (p, _) in &self.params {
            write!(f, " {p}")?;
        }
        write!(f, " ≡\n  ")?;
        self.body.fmt_prog(f, 1)?;
        writeln!(f)
    }
}

/// The program context: functions, layouts and global initial values.
#[derive(Clone, Debug, Default)]
pub struct ProgramCtx {
    /// Structure layouts.
    pub tenv: TypeEnv,
    /// Functions by name.
    pub fns: BTreeMap<String, MonadicFn>,
    /// Global variables with initial values.
    pub globals: Vec<(String, ir::value::Value)>,
}

impl ProgramCtx {
    /// Looks up a function.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&MonadicFn> {
        self.fns.get(name)
    }

    /// An initial concrete state with globals initialised.
    #[must_use]
    pub fn initial_state(&self) -> ir::state::State {
        let mut st = ir::state::State::conc_empty();
        for (n, v) in &self.globals {
            st.set_global(n, v.clone());
        }
        st
    }

    /// The call graph: for every function, the set of functions its body
    /// calls that are defined in this context (external names are dropped).
    /// Deterministic by construction (`BTreeMap`/`BTreeSet` ordering).
    #[must_use]
    pub fn call_graph(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.fns
            .iter()
            .map(|(name, f)| {
                let callees: BTreeSet<String> = f
                    .body
                    .calls()
                    .into_iter()
                    .filter(|c| self.fns.contains_key(c))
                    .collect();
                (name.clone(), callees)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::expr::BinOp;

    #[test]
    fn do_notation_rendering() {
        let p = Prog::bind(
            Prog::Gets(Expr::Local("x".into())),
            "t",
            Prog::ret(Expr::binop(BinOp::Add, Expr::var("t"), Expr::u32(1))),
        );
        let s = p.to_string();
        assert!(s.starts_with("do"), "{s}");
        assert!(s.contains("t ← gets (λs. ´x);"), "{s}");
        assert!(s.contains("return (t + 1)"), "{s}");
        assert!(s.trim_end().ends_with("od"), "{s}");
    }

    #[test]
    fn free_vars_respect_binders() {
        let p = Prog::bind(
            Prog::ret(Expr::var("a")),
            "v",
            Prog::ret(Expr::binop(BinOp::Add, Expr::var("v"), Expr::var("b"))),
        );
        let fv = p.free_vars();
        assert!(fv.contains("a"));
        assert!(fv.contains("b"));
        assert!(!fv.contains("v"));
    }

    #[test]
    fn while_binds_iterators() {
        let p = Prog::While {
            vars: vec!["list".into(), "rev".into()],
            cond: Expr::binop(BinOp::Ne, Expr::var("list"), Expr::null(ir::ty::Ty::Unit)),
            body: IProg::new(Prog::ret(Expr::Tuple(vec![
                Expr::var("rev"),
                Expr::var("list"),
            ]))),
            init: vec![Expr::var("hd"), Expr::null(ir::ty::Ty::Unit)],
        };
        let fv = p.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["hd".to_owned()]);
        let s = p.to_string();
        assert!(s.contains("whileLoop (λ(list, rev) s."), "{s}");
    }

    #[test]
    fn throw_analysis() {
        assert!(Prog::Throw(Expr::unit()).contains_throw());
        let caught = Prog::Catch(
            IProg::new(Prog::Throw(Expr::unit())),
            "e".into(),
            IProg::new(Prog::skip()),
        );
        assert!(!caught.contains_throw());
    }

    #[test]
    fn seq_all_folds() {
        let p = Prog::seq_all([Prog::skip(), Prog::ret(Expr::u32(1))]);
        assert_eq!(p, Prog::ret(Expr::u32(1)));
        assert_eq!(Prog::seq_all([]), Prog::skip());
    }

    #[test]
    fn term_size() {
        let p = Prog::bind(Prog::ret(Expr::u32(1)), "v", Prog::ret(Expr::var("v")));
        // Bind + Return + Lit + Return + Var = 5
        assert_eq!(p.term_size(), 5);
    }
}
