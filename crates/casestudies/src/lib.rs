//! The paper's case studies (Sec 5), end to end.
//!
//! Each module carries the C source, drives it through the full pipeline,
//! and establishes the paper's verification result for it:
//!
//! * [`sources`] — all C sources (Figs 2, 3, 6, 8; Sec 3.3, 4.3, 4.6).
//! * [`lists`] — linked-list state builders and the `List` predicate
//!   (Mehta & Nipkow's `List h p Ps`, adapted to NULL-terminated C lists
//!   with validity side conditions — the Sec 5.2 port).
//! * [`reverse`] — in-place list reversal (Sec 5.2): functional
//!   correctness, the ported invariant, and the termination measure.
//! * [`schorr_waite`] — the Schorr-Waite graph marking algorithm
//!   (Sec 5.3): Mehta & Nipkow's specification ported to the AutoCorres
//!   output, with total-correctness validation and the Table 6 proof
//!   accounting.
//! * [`memset`] — mixing abstracted and byte-level code through
//!   `exec_concrete` (Sec 4.6).
//! * [`graphs`] — random graph builders for Schorr-Waite.

pub mod graphs;
pub mod lists;
pub mod memset;
pub mod proofs;
pub mod reverse;
pub mod schorr_waite;
pub mod sources;

pub use proofs::{ProofComponent, ProofScript};
