//! Mixing low-level and high-level code (Sec 4.6).
//!
//! `memset_b` writes bytes and must stay at the byte level; `zero_word`
//! is type-safe and gets heap abstraction, so its call to `memset_b`
//! becomes `exec_concrete (memset_b' …)`. The paper's mixed-level triple
//!
//! ```text
//! {is_valid_w32 p}  exec_concrete (memset' p 0 4)  {is_valid_w32 p ∧ s[p] = 0}
//! ```
//!
//! is established here semantically: the low-level byte writes, viewed
//! through `heap_lift`, perform exactly the abstract word update.

use autocorres::{translate, Options, Output};
use ir::state::State;
use ir::ty::Ty;
use ir::value::{Ptr, Value};

use crate::sources::MEMSET;

/// Runs the pipeline with `memset_b` kept concrete.
///
/// # Panics
///
/// Panics if the pipeline fails.
#[must_use]
pub fn pipeline() -> Output {
    let opts = Options {
        concrete_fns: ["memset_b".to_owned()].into(),
        ..Options::default()
    };
    translate(MEMSET, &opts).expect("memset translates")
}

/// Checks the Sec 4.6 triple on one concrete state: running the
/// heap-abstracted `zero_word` (which calls `memset_b` through
/// `exec_concrete`) on a state where `p` holds a valid word leaves the
/// lifted heap with `s[p] = 0` and validity intact.
///
/// # Panics
///
/// Panics on execution failure.
#[must_use]
pub fn check_triple(out: &Output, addr: u64, initial: u32) -> bool {
    let tenv = out.wa.tenv.clone();
    let mut conc = ir::state::ConcState::default();
    conc.mem.alloc(addr, &Value::u32(initial), &tenv).unwrap();
    // Mixed-level programs execute on the underlying concrete state
    // (exec_concrete chooses the concretisation; see monadic::interp).
    let p = Value::Ptr(Ptr::new(addr, Ty::U32));
    let (_, st) = monadic::exec_fn(
        &out.wa,
        "zero_word",
        &[p],
        State::Conc(conc),
        1_000_000,
    )
    .expect("zero_word runs");
    let State::Conc(final_conc) = st else { unreachable!() };
    let lifted = heapmodel::lift_state(&final_conc, &tenv, &[Ty::U32]);
    let Some(h) = lifted.heaps.get(&Ty::U32) else {
        return false;
    };
    h.is_valid(addr) && h.get(addr) == Some(&Value::u32(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memset_stays_concrete_and_caller_uses_exec_concrete() {
        let out = pipeline();
        let zero = out.wa.function("zero_word").unwrap().to_string();
        assert!(zero.contains("exec_concrete"), "{zero}");
        // memset_b is identical at L2 and the final level.
        assert_eq!(
            out.wa.function("memset_b").unwrap().body,
            out.l2.function("memset_b").unwrap().body
        );
        out.check_all().unwrap();
    }

    #[test]
    fn the_sec46_triple_holds() {
        let out = pipeline();
        for initial in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert!(check_triple(&out, 0x400, initial), "initial = {initial:#x}");
        }
    }

    #[test]
    fn abstracting_memset_fails_as_it_must() {
        // Trying to heap-abstract the byte-writing memset over word-tagged
        // memory is exactly what the abstraction cannot allow… but note:
        // u8 stores through a `unsigned char *` are still *typed* accesses,
        // so the engine abstracts the function itself; the semantic mismatch
        // only appears when it is applied to u32-tagged memory. Verify that
        // behaviour: the all-abstract pipeline succeeds, but running the
        // abstracted caller on a u32 object FAILS its u8 validity guard.
        let out = translate(MEMSET, &Options::default()).unwrap();
        let tenv = out.wa.tenv.clone();
        let mut conc = ir::state::ConcState::default();
        conc.mem.alloc(0x400, &Value::u32(7), &tenv).unwrap();
        let abs = heapmodel::lift_state(&conc, &tenv, &[Ty::U32, Ty::U8]);
        let p = Value::Ptr(Ptr::new(0x400, Ty::U32));
        let r = monadic::exec_fn(
            &out.wa,
            "zero_word",
            &[p],
            State::Abs(abs),
            1_000_000,
        );
        assert!(
            matches!(r, Err(monadic::MonadFault::Failure(_))),
            "u8 guards must fail over u32-tagged memory: {r:?}"
        );
    }
}

#[cfg(test)]
mod exec_abstract_tests {
    use super::*;

    /// The analogous `exec_abstract` direction (Sec 4.6): a byte-level
    /// function calling an abstracted one.
    #[test]
    fn low_level_callers_use_exec_abstract() {
        let src = "unsigned bump(unsigned *p) { *p = *p + 1u; return *p; }\n\
                   unsigned raw(unsigned *p) { return bump(p); }";
        let opts = Options {
            concrete_fns: ["raw".to_owned()].into(),
            ..Options::default()
        };
        let out = translate(src, &opts).unwrap();
        let raw = out.wa.function("raw").unwrap().to_string();
        assert!(raw.contains("exec_abstract"), "{raw}");
        // Behaviour is unchanged: run the mixed program on a concrete heap.
        let tenv = out.wa.tenv.clone();
        let mut conc = ir::state::ConcState::default();
        conc.mem.alloc(0x100, &Value::u32(41), &tenv).unwrap();
        let p = Value::Ptr(Ptr::new(0x100, Ty::U32));
        let (r, _) = monadic::exec_fn(
            &out.wa,
            "raw",
            &[p],
            State::Conc(conc),
            100_000,
        )
        .unwrap();
        assert_eq!(r, monadic::MonadResult::Normal(Value::u32(42)));
        out.check_all().unwrap();
    }
}
