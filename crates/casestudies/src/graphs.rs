//! Random binary-graph builders for the Schorr-Waite case study.

use std::collections::BTreeSet;

use ir::state::ConcState;
use ir::ty::{Ty, TypeEnv};
use ir::value::{Ptr, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The Schorr-Waite node type.
#[must_use]
pub fn sw_node_ty() -> Ty {
    Ty::Struct("node".into())
}

/// The Schorr-Waite type environment (matches
/// [`crate::sources::SCHORR_WAITE`]).
#[must_use]
pub fn sw_tenv() -> TypeEnv {
    let mut tenv = TypeEnv::new();
    tenv.define_struct(
        "node",
        vec![
            ("l".into(), sw_node_ty().ptr_to()),
            ("r".into(), sw_node_ty().ptr_to()),
            ("m".into(), Ty::U32),
            ("c".into(), Ty::U32),
        ],
    )
    .unwrap();
    tenv
}

/// A graph shape: node addresses plus left/right edges (0 = NULL).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Node addresses.
    pub addrs: Vec<u64>,
    /// Left child address per node (0 for NULL).
    pub l: Vec<u64>,
    /// Right child address per node.
    pub r: Vec<u64>,
}

impl Graph {
    /// Builds the graph in a concrete state with all marks clear.
    pub fn materialise(&self, st: &mut ConcState, tenv: &TypeEnv) {
        for (i, &addr) in self.addrs.iter().enumerate() {
            let node = Value::Struct(
                "node".into(),
                vec![
                    ("l".into(), Value::Ptr(Ptr::new(self.l[i], sw_node_ty()))),
                    ("r".into(), Value::Ptr(Ptr::new(self.r[i], sw_node_ty()))),
                    ("m".into(), Value::u32(0)),
                    ("c".into(), Value::u32(0)),
                ],
            );
            st.mem.alloc(addr, &node, tenv).unwrap();
        }
    }

    /// The set of addresses reachable from `root` via the original l/r
    /// edges (`reachable (relS {l, r}) {root}` of Fig 7).
    #[must_use]
    pub fn reachable(&self, root: u64) -> BTreeSet<u64> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(a) = stack.pop() {
            if a == 0 || seen.contains(&a) {
                continue;
            }
            let Some(i) = self.addrs.iter().position(|&x| x == a) else {
                continue;
            };
            seen.insert(a);
            stack.push(self.l[i]);
            stack.push(self.r[i]);
        }
        seen
    }
}

/// A random graph of `n` nodes: edges point at random nodes or NULL, so
/// every shape (cycles, sharing, dags, disconnected parts) occurs — "every
/// graph shape is supported by the algorithm" (Sec 5.3).
#[must_use]
pub fn random_graph(rng: &mut StdRng, n: usize) -> Graph {
    let addrs: Vec<u64> = (0..n).map(|i| 0x1000 + (i as u64) * 0x10).collect();
    let pick = |rng: &mut StdRng| -> u64 {
        if rng.gen_bool(0.25) || addrs.is_empty() {
            0
        } else {
            addrs[rng.gen_range(0..addrs.len())]
        }
    };
    let l = (0..n).map(|_| pick(rng)).collect();
    let r = (0..n).map(|_| pick(rng)).collect();
    Graph { addrs, l, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reachability() {
        // 1 -> 2 -> 3, node 4 disconnected.
        let g = Graph {
            addrs: vec![0x1000, 0x1010, 0x1020, 0x1030],
            l: vec![0x1010, 0x1020, 0, 0],
            r: vec![0, 0, 0, 0],
        };
        let r = g.reachable(0x1000);
        assert_eq!(r, [0x1000, 0x1010, 0x1020].into());
        assert!(g.reachable(0).is_empty());
    }

    #[test]
    fn cyclic_reachability_terminates() {
        let g = Graph {
            addrs: vec![0x1000, 0x1010],
            l: vec![0x1010, 0x1000],
            r: vec![0x1000, 0x1010],
        };
        assert_eq!(g.reachable(0x1000).len(), 2);
    }

    #[test]
    fn materialise_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_graph(&mut rng, 6);
        let tenv = sw_tenv();
        let mut st = ConcState::default();
        g.materialise(&mut st, &tenv);
        for (i, &a) in g.addrs.iter().enumerate() {
            let v = st.mem.decode(a, &sw_node_ty(), &tenv).unwrap();
            let Value::Ptr(l) = v.field("l").unwrap() else { panic!() };
            assert_eq!(l.addr, g.l[i]);
        }
    }
}
