//! In-place list reversal (Sec 5.2).
//!
//! Mehta & Nipkow's specification:
//!
//! ```text
//! {List next p Ps}  reverse  {List next q (rev Ps)}
//! ```
//!
//! The port applies their proof structure to the AutoCorres output with the
//! three documented adjustments: NULL sentinels instead of `'a ref`
//! (difference i), validity assertions folded into `List` (difference ii),
//! and a termination measure — the length of the unreversed suffix — for
//! total correctness (difference iii).

use autocorres::{translate, Options, Output};
use ir::state::State;
use ir::value::{Ptr, Value};
use monadic::MonadResult;

use crate::lists::{build_list, list_data, list_pred, node_tenv, node_ty, walk_list};
use crate::sources::REVERSE;

/// Runs the full pipeline on the reversal source.
///
/// # Panics
///
/// Panics if the pipeline fails (the source is fixed and supported).
#[must_use]
pub fn pipeline() -> Output {
    translate(REVERSE, &Options::default()).expect("reverse translates")
}

/// The result of running `reverse'` (the final AutoCorres output) on a
/// fresh heap containing the list `data`.
#[derive(Clone, Debug)]
pub struct ReverseRun {
    /// The returned head pointer.
    pub head: Ptr,
    /// The final abstract state.
    pub state: ir::state::AbsState,
    /// The node addresses of the input list, in input order.
    pub input_addrs: Vec<u64>,
}

/// Executes the translated `reverse` on a list with the given data.
///
/// # Panics
///
/// Panics on execution failure (cannot happen for valid inputs — that is
/// the fault-freedom part of the ported proof).
#[must_use]
pub fn run_reverse(out: &Output, data: &[u32]) -> ReverseRun {
    let tenv = node_tenv();
    let mut conc = ir::state::ConcState::default();
    let (head, input_addrs) = build_list(&mut conc, &tenv, 0x1000, data);
    let abs = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
    let (r, st) = monadic::exec_fn(
        &out.wa,
        "reverse",
        &[Value::Ptr(head)],
        State::Abs(abs),
        1_000_000,
    )
    .expect("reverse' runs without failure on valid lists");
    let MonadResult::Normal(Value::Ptr(new_head)) = r else {
        panic!("reverse' returns a pointer, got {r:?}");
    };
    let State::Abs(state) = st else { unreachable!() };
    ReverseRun {
        head: new_head,
        state,
        input_addrs,
    }
}

/// Mehta & Nipkow's correctness statement, checked on a run:
/// `List next q (rev Ps)` — the output heap contains exactly the reversed
/// spine, with the data values preserved.
#[must_use]
pub fn mehta_nipkow_post(run: &ReverseRun, input_data: &[u32]) -> bool {
    let mut rev_addrs = run.input_addrs.clone();
    rev_addrs.reverse();
    if !list_pred(&run.state, &run.head, &rev_addrs) {
        return false;
    }
    let mut rev_data: Vec<u32> = input_data.to_vec();
    rev_data.reverse();
    list_data(&run.state, &rev_addrs) == rev_data
}

/// The loop invariant of the ported proof, checked at a loop boundary
/// state: the two partial lists partition the original nodes,
/// `rev Ps = rev current · done`.
///
/// (Used by the property tests to validate the invariant the VCG-level
/// script relies on — the same invariant as Mehta & Nipkow's, Sec 5.2:
/// "we could complete the same main proof of correctness using the same
/// loop invariant".)
#[must_use]
pub fn loop_invariant(
    st: &ir::state::AbsState,
    list: &Ptr,
    rev: &Ptr,
    original: &[u64],
    max: usize,
) -> bool {
    let (Some(todo), Some(done)) = (walk_list(st, list, max), walk_list(st, rev, max)) else {
        return false;
    };
    // original = rev(done) ++ todo
    let mut recon: Vec<u64> = done.iter().rev().copied().collect();
    recon.extend(&todo);
    recon == original
}

/// The termination measure (difference iii): the length of the unreversed
/// suffix, strictly decreasing at each iteration.
#[must_use]
pub fn measure(st: &ir::state::AbsState, list: &Ptr, max: usize) -> Option<usize> {
    walk_list(st, list, max).map(|v| v.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverses_small_lists() {
        let out = pipeline();
        for n in 0..6 {
            let data: Vec<u32> = (0..n).map(|i| i * 10).collect();
            let run = run_reverse(&out, &data);
            assert!(mehta_nipkow_post(&run, &data), "n = {n}");
        }
    }

    #[test]
    fn output_shape_matches_fig6() {
        let out = pipeline();
        let f = out.wa.function("reverse").unwrap();
        let s = f.to_string();
        assert!(s.contains("whileLoop (λ(list, rev) s. list ≠ NULL)"), "{s}");
        assert!(s.contains("(list, NULL)"), "{s}");
        assert!(s.contains("return rev"), "{s}");
        out.check_all().unwrap();
    }
}
