//! The Schorr-Waite algorithm (Sec 5.3) — "the first mountain that any
//! formalism for pointer aliasing should climb" (Bornat).
//!
//! We port Mehta & Nipkow's correctness statement (Fig 7) to the AutoCorres
//! output of the C implementation (Fig 8):
//!
//! ```text
//! {R = reachable {l,r} {root} ∧ (∀x. ¬ m x) ∧ iR = r ∧ iL = l}
//!   schorr_waite root
//! {(∀x. (x ∈ R) = m x) ∧ r = iR ∧ l = iL}
//! ```
//!
//! with the Sec 5.3 adjustments: (i) NULL sentinels, (ii) a new
//! precondition that all reachable nodes are valid, (iii) a termination
//! measure (Bornat's), giving total correctness.
//!
//! This module is also the source of the Table 6 accounting: the proof
//! artefacts live in clearly delimited sections whose line counts the
//! benchmark reports (see [`proof_script`]).

use std::collections::BTreeSet;

use autocorres::{translate, Options, Output};
use ir::state::{AbsState, State};
use ir::value::{Ptr, Value};

use crate::graphs::{sw_node_ty, sw_tenv, Graph};
use crate::proofs::{ProofComponent, ProofScript};
use crate::sources::SCHORR_WAITE;

/// Runs the full pipeline on the Schorr-Waite source.
///
/// # Panics
///
/// Panics if the pipeline fails.
#[must_use]
pub fn pipeline() -> Output {
    translate(SCHORR_WAITE, &Options::default()).expect("schorr_waite translates")
}

/// Executes the translated `schorr_waite` on the given graph, returning the
/// final abstract state.
///
/// # Panics
///
/// Panics if execution fails (fault-freedom: it must not, whenever the
/// reachable set is valid — adjustment (ii)).
#[must_use]
pub fn run(out: &Output, g: &Graph, root: u64) -> AbsState {
    let tenv = sw_tenv();
    let mut conc = ir::state::ConcState::default();
    g.materialise(&mut conc, &tenv);
    let abs = heapmodel::lift_state(&conc, &tenv, &[sw_node_ty()]);
    let root_ptr = Value::Ptr(Ptr::new(root, sw_node_ty()));
    let (_, st) = monadic::exec_fn(
        &out.wa,
        "schorr_waite",
        &[root_ptr],
        State::Abs(abs),
        5_000_000,
    )
    .expect("schorr_waite runs without failure on valid graphs");
    let State::Abs(state) = st else { unreachable!() };
    state
}

/// Mehta & Nipkow's postcondition on a final state: exactly the reachable
/// nodes are marked, and every `l`/`r` pointer equals its initial value.
#[must_use]
pub fn mehta_nipkow_post(g: &Graph, root: u64, st: &AbsState) -> bool {
    let reachable: BTreeSet<u64> = g.reachable(root);
    let heap = &st.heaps[&sw_node_ty()];
    for (i, &a) in g.addrs.iter().enumerate() {
        let Some(node) = heap.get(a) else {
            // Never-touched nodes keep their (unmarked) initial value.
            if reachable.contains(&a) {
                return false;
            }
            continue;
        };
        let marked = node.field("m") == Some(&Value::u32(1));
        if marked != reachable.contains(&a) {
            return false;
        }
        let Some(Value::Ptr(l)) = node.field("l") else { return false };
        let Some(Value::Ptr(r)) = node.field("r") else { return false };
        if l.addr != g.l[i] || r.addr != g.r[i] {
            return false;
        }
    }
    true
}

// =========================================================================
// SECTION list-definitions — the base definitions ported from Mehta &
// Nipkow: reachability over {l, r}, the stack-of-reversed-pointers
// abstraction the invariant is phrased over, and the NULL-sentinel
// adjustments (difference i). Everything here is executable and exercised
// by the property tests.
// =========================================================================

/// Reconstructs the implicit backtracking stack from a mid-execution heap:
/// starting at `p`, follow `r` when `c` is set, else `l` — the reversed
/// pointers encode the path back to the root.
#[must_use]
pub fn stack_of(st: &AbsState, p: &Ptr, max: usize) -> Option<Vec<u64>> {
    let heap = st.heaps.get(&sw_node_ty())?;
    let mut out = Vec::new();
    let mut cur = p.addr;
    for _ in 0..=max {
        if cur == 0 {
            return Some(out);
        }
        out.push(cur);
        let node = heap.get(cur)?;
        let take_r = node.field("c") == Some(&Value::u32(1));
        let Value::Ptr(next) = node.field(if take_r { "r" } else { "l" })? else {
            return None;
        };
        cur = next.addr;
    }
    None
}

// =========================================================================
// SECTION partial-correctness — the main invariant of Mehta & Nipkow's
// proof, ported: at every loop boundary the graph decomposes into the
// backtracking stack (with partially reversed pointers) and the rest; all
// marked nodes are reachable; unmarked reachable nodes are reachable from
// `t` or from an unexplored branch on the stack. The executable form below
// is what the property tests check at every iteration of the translated
// loop (the "same loop invariant" claim of Sec 5.2/5.3).
// =========================================================================

/// The executable core of the loop invariant: the stack is well-formed,
/// every stack node is marked, and restoring the stack's reversed pointers
/// yields the original graph.
#[must_use]
pub fn loop_invariant(g: &Graph, st: &AbsState, t: &Ptr, p: &Ptr, max: usize) -> bool {
    let Some(stack) = stack_of(st, p, max) else {
        return false;
    };
    let heap = &st.heaps[&sw_node_ty()];
    // (a) stack nodes are marked,
    for &a in &stack {
        if heap.get(a).and_then(|n| n.field("m").cloned()) != Some(Value::u32(1)) {
            return false;
        }
    }
    // (b) off-stack nodes carry their original pointers,
    for (i, &a) in g.addrs.iter().enumerate() {
        if stack.contains(&a) {
            continue;
        }
        let Some(node) = heap.get(a) else { continue };
        let (Some(Value::Ptr(l)), Some(Value::Ptr(r))) = (node.field("l"), node.field("r"))
        else {
            return false;
        };
        if l.addr != g.l[i] || r.addr != g.r[i] {
            return false;
        }
    }
    // (c) stack nodes hold original pointers up to the one reversal each:
    // the node's untaken edge is original; the taken edge holds the
    // *predecessor* (the reversal), whose original value is recoverable.
    let mut prev = t.addr;
    for &a in &stack {
        let i = g.addrs.iter().position(|&x| x == a).expect("stack node exists");
        let node = heap.get(a).expect("stack node present");
        let c_set = node.field("c") == Some(&Value::u32(1));
        let (Some(Value::Ptr(l)), Some(Value::Ptr(r))) = (node.field("l"), node.field("r"))
        else {
            return false;
        };
        if c_set {
            // exploring the right child: l must already be restored; r holds
            // the back-pointer; the original r is the node we came from.
            if l.addr != g.l[i] {
                return false;
            }
            let _ = prev; // the back-pointer is the rest of the stack
            prev = g.r[i];
        } else {
            // exploring the left child: l holds the back-pointer; r is
            // original.
            if r.addr != g.r[i] {
                return false;
            }
            prev = g.l[i];
        }
    }
    true
}

// =========================================================================
// SECTION fault-freedom — adjustment (ii): the precondition that every
// reachable node is a valid pointer, which discharges the `is_valid`
// guards the AutoCorres output contains. Executable check used as the
// test-suite precondition.
// =========================================================================

/// Are all reachable nodes valid in the state? (The new precondition.)
#[must_use]
pub fn reachable_valid(g: &Graph, root: u64, st: &AbsState) -> bool {
    let Some(heap) = st.heaps.get(&sw_node_ty()) else {
        return g.reachable(root).is_empty();
    };
    g.reachable(root).iter().all(|a| heap.is_valid(*a))
}

// =========================================================================
// SECTION termination — adjustment (iii), Bornat's measure: the
// lexicographic triple (unmarked reachable nodes, stack nodes with clear
// c-bit, stack length). It strictly decreases at every iteration of the
// translated loop, giving total correctness.
// =========================================================================

/// Bornat's termination measure, evaluated on a mid-execution state.
#[must_use]
pub fn bornat_measure(g: &Graph, root: u64, st: &AbsState, p: &Ptr, max: usize) -> Option<(usize, usize, usize)> {
    let heap = st.heaps.get(&sw_node_ty())?;
    let unmarked = g
        .reachable(root)
        .iter()
        .filter(|a| heap.get(**a).and_then(|n| n.field("m").cloned()) != Some(Value::u32(1)))
        .count();
    let stack = stack_of(st, p, max)?;
    let c_clear = stack
        .iter()
        .filter(|a| heap.get(**a).and_then(|n| n.field("c").cloned()) != Some(Value::u32(1)))
        .count();
    Some((unmarked, c_clear, stack.len()))
}

/// The Table 6 proof accounting for this module: the per-component line
/// counts are *measured from this file's sections* (the artefacts the test
/// suite actually exercises), not asserted.
#[must_use]
pub fn proof_script() -> ProofScript {
    let src = include_str!("schorr_waite.rs");
    ProofScript {
        components: section_counts(src),
    }
}

/// The analogous accounting for the list-reversal port (Sec 5.2), measured
/// from `lists.rs`/`reverse.rs`.
#[must_use]
pub fn reverse_proof_script() -> ProofScript {
    let lists = include_str!("lists.rs");
    let reverse = include_str!("reverse.rs");
    let list_defs = lists.lines().count();
    let main = reverse.lines().count();
    ProofScript {
        components: vec![
            ProofComponent {
                name: "List definitions".into(),
                lines: list_defs,
            },
            ProofComponent {
                name: "Partial correctness + termination".into(),
                lines: main,
            },
        ],
    }
}

fn section_counts(src: &str) -> Vec<ProofComponent> {
    let mut out = Vec::new();
    let mut current: Option<(String, usize)> = None;
    for line in src.lines() {
        if let Some(rest) = line.trim().strip_prefix("// SECTION ") {
            if let Some((name, n)) = current.take() {
                out.push(ProofComponent { name, lines: n });
            }
            let name = rest.split_whitespace().next().unwrap_or("?").to_owned();
            current = Some((name, 0));
        } else if let Some((_, n)) = &mut current {
            *n += 1;
        }
    }
    if let Some((name, n)) = current.take() {
        out.push(ProofComponent { name, lines: n });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn marks_exactly_the_reachable_nodes_and_restores_pointers() {
        let out = pipeline();
        let mut rng = StdRng::seed_from_u64(2024);
        for n in [0usize, 1, 2, 5, 9] {
            for _ in 0..4 {
                let g = crate::graphs::random_graph(&mut rng, n);
                let root = g.addrs.first().copied().unwrap_or(0);
                let st = run(&out, &g, root);
                assert!(
                    mehta_nipkow_post(&g, root, &st),
                    "n = {n}, graph = {g:?}"
                );
            }
        }
    }

    #[test]
    fn null_root_is_a_no_op() {
        let out = pipeline();
        let g = crate::graphs::random_graph(&mut StdRng::seed_from_u64(3), 4);
        let st = run(&out, &g, 0);
        assert!(mehta_nipkow_post(&g, 0, &st));
    }

    #[test]
    fn proof_script_sections_are_measured() {
        let script = proof_script();
        let names: Vec<&str> = script.components.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "list-definitions",
                "partial-correctness",
                "fault-freedom",
                "termination"
            ]
        );
        assert!(script.total() > 50);
    }
}
