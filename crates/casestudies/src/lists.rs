//! Linked-list heap builders and the `List` predicate of Mehta & Nipkow,
//! ported to C-level states (Sec 5.2).
//!
//! The original predicate (on an idealised heap) is
//!
//! ```text
//! List h p []     = (p = Null)
//! List h p (x·xs) = (p = Ref x ∧ List h (h x) xs)
//! ```
//!
//! The port (difference (ii) of Sec 5.2) additionally asserts that every
//! node in the list is a *valid* pointer — that single strengthening is
//! what discharges the output's guards.

use ir::state::{AbsState, ConcState};
use ir::ty::{Ty, TypeEnv};
use ir::value::{Ptr, Value};

/// The node type of the list case studies.
#[must_use]
pub fn node_ty() -> Ty {
    Ty::Struct("node".into())
}

/// The list type environment (matches [`crate::sources::REVERSE`]).
#[must_use]
pub fn node_tenv() -> TypeEnv {
    let mut tenv = TypeEnv::new();
    tenv.define_struct(
        "node",
        vec![
            ("next".into(), node_ty().ptr_to()),
            ("data".into(), Ty::U32),
        ],
    )
    .unwrap();
    tenv
}

/// Builds a NULL-terminated list with the given data values in a concrete
/// state; returns the head pointer and the node addresses in list order.
pub fn build_list(st: &mut ConcState, tenv: &TypeEnv, base: u64, data: &[u32]) -> (Ptr, Vec<u64>) {
    let addrs: Vec<u64> = (0..data.len()).map(|i| base + (i as u64) * 0x10).collect();
    for (i, (&d, &addr)) in data.iter().zip(&addrs).enumerate() {
        let next = if i + 1 < addrs.len() { addrs[i + 1] } else { 0 };
        let node = Value::Struct(
            "node".into(),
            vec![
                ("next".into(), Value::Ptr(Ptr::new(next, node_ty()))),
                ("data".into(), Value::u32(d)),
            ],
        );
        st.mem.alloc(addr, &node, tenv).unwrap();
    }
    let head = Ptr::new(addrs.first().copied().unwrap_or(0), node_ty());
    (head, addrs)
}

/// The ported `List` predicate on an abstract (lifted) state: does the heap
/// contain the exact NULL-terminated list `ps` starting at `p`, with every
/// node valid?
#[must_use]
pub fn list_pred(st: &AbsState, p: &Ptr, ps: &[u64]) -> bool {
    let heap = st.heaps.get(&node_ty());
    let mut cur = p.addr;
    for &expect in ps {
        if cur == 0 || cur != expect {
            return false;
        }
        let Some(h) = heap else { return false };
        // Difference (ii): validity of every node.
        if !h.is_valid(cur) {
            return false;
        }
        let Some(Value::Ptr(next)) = h.get(cur).and_then(|n| n.field("next")).cloned() else {
            return false;
        };
        cur = next.addr;
    }
    cur == 0
}

/// Walks a list on the abstract heap (bounded), returning the node
/// addresses, or `None` when the walk does not reach NULL within `max`
/// steps (cyclic or invalid lists).
#[must_use]
pub fn walk_list(st: &AbsState, p: &Ptr, max: usize) -> Option<Vec<u64>> {
    let heap = st.heaps.get(&node_ty())?;
    let mut out = Vec::new();
    let mut cur = p.addr;
    for _ in 0..=max {
        if cur == 0 {
            return Some(out);
        }
        if !heap.is_valid(cur) {
            return None;
        }
        out.push(cur);
        let Value::Ptr(next) = heap.get(cur)?.field("next")? else {
            return None;
        };
        cur = next.addr;
    }
    None
}

/// The data values of the nodes at `addrs`.
#[must_use]
pub fn list_data(st: &AbsState, addrs: &[u64]) -> Vec<u32> {
    let heap = &st.heaps[&node_ty()];
    addrs
        .iter()
        .map(|a| match heap.get(*a).and_then(|n| n.field("data")) {
            Some(Value::Word(w)) => w.bits() as u32,
            _ => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_walk() {
        let tenv = node_tenv();
        let mut st = ConcState::default();
        let (head, addrs) = build_list(&mut st, &tenv, 0x1000, &[1, 2, 3]);
        let abs = heapmodel::lift_state(&st, &tenv, &[node_ty()]);
        assert!(list_pred(&abs, &head, &addrs));
        assert_eq!(walk_list(&abs, &head, 10), Some(addrs.clone()));
        assert_eq!(list_data(&abs, &addrs), vec![1, 2, 3]);
        // Wrong spine is rejected.
        let mut wrong = addrs.clone();
        wrong.reverse();
        assert!(!list_pred(&abs, &head, &wrong));
    }

    #[test]
    fn empty_list() {
        let tenv = node_tenv();
        let st = ConcState::default();
        let abs = heapmodel::lift_state(&st, &tenv, &[node_ty()]);
        let null = Ptr::null(node_ty());
        assert!(list_pred(&abs, &null, &[]));
        assert_eq!(walk_list(&abs, &null, 10), Some(vec![]));
    }

    #[test]
    fn cyclic_list_detected() {
        let tenv = node_tenv();
        let mut st = ConcState::default();
        let (head, addrs) = build_list(&mut st, &tenv, 0x1000, &[1, 2]);
        // Point the tail back at the head.
        let node = st.mem.decode(addrs[1], &node_ty(), &tenv).unwrap();
        let cyclic = node
            .with_field("next", Value::Ptr(Ptr::new(addrs[0], node_ty())))
            .unwrap();
        st.mem.encode(addrs[1], &cyclic, &tenv).unwrap();
        let abs = heapmodel::lift_state(&st, &tenv, &[node_ty()]);
        assert_eq!(walk_list(&abs, &head, 10), None);
        assert!(!list_pred(&abs, &head, &addrs));
    }
}
