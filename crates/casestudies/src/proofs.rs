//! Proof-script accounting (Table 6).

/// One component of a proof development (a row fragment of Table 6).
#[derive(Clone, Debug)]
pub struct ProofComponent {
    /// Component name.
    pub name: String,
    /// Lines of proof artefact (measured from the sources).
    pub lines: usize,
}

/// A structured proof development with measurable components.
#[derive(Clone, Debug, Default)]
pub struct ProofScript {
    /// The components in presentation order.
    pub components: Vec<ProofComponent>,
}

impl ProofScript {
    /// Lines of the named component (0 if absent).
    #[must_use]
    pub fn lines(&self, name: &str) -> usize {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.lines)
    }

    /// Total lines across components.
    #[must_use]
    pub fn total(&self) -> usize {
        self.components.iter().map(|c| c.lines).sum()
    }
}

/// Published reference numbers from Table 6 for comparison columns.
pub mod published {
    /// Mehta & Nipkow (Isabelle/HOL): list definitions.
    pub const MN_LIST_DEFS: usize = 62;
    /// Mehta & Nipkow: partial correctness.
    pub const MN_PARTIAL: usize = 489;
    /// Mehta & Nipkow: miscellaneous.
    pub const MN_MISC: usize = 26;
    /// Mehta & Nipkow: total.
    pub const MN_TOTAL: usize = 577;
    /// Hubert & Marché (Coq, C-level): total.
    pub const HM_TOTAL: usize = 3317;
    /// The paper's own port ("This Work"): total.
    pub const THIS_WORK_TOTAL: usize = 807;
}
