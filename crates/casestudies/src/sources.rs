//! The C sources of every program the paper discusses.

/// Fig 2: `max`.
pub const MAX: &str = "int max(int a, int b) {\n\
    if (a < b)\n\
        return b;\n\
    return a;\n\
}\n";

/// Sec 3.3: Euclid's greatest common divisor.
pub const GCD: &str = "unsigned gcd(unsigned a, unsigned b) {\n\
    if (b == 0u)\n\
        return a;\n\
    return gcd(b, a % b);\n\
}\n";

/// Sec 3.2: the binary-search midpoint.
pub const MIDPOINT: &str =
    "unsigned mid(unsigned l, unsigned r) {\n    unsigned m = (l + r) / 2u;\n    return m;\n}\n";

/// Fig 3: `swap`.
pub const SWAP: &str = "void swap(unsigned *a, unsigned *b)\n\
{\n\
    unsigned t = *a;\n\
    *a = *b;\n\
    *b = t;\n\
}\n";

/// Sec 4.3: Suzuki's challenge.
pub const SUZUKI: &str = "struct node { struct node *next; int data; };\n\
int suzuki(struct node *w, struct node *x, struct node *y, struct node *z) {\n\
    w->next = x; x->next = y; y->next = z; x->next = z;\n\
    w->data = 1; x->data = 2; y->data = 3; z->data = 4;\n\
    return w->next->next->data;\n\
}\n";

/// Fig 6: in-place linked-list reversal.
pub const REVERSE: &str = "struct node { struct node *next; unsigned data; };\n\
struct node *reverse(struct node *list) {\n\
    struct node *rev = NULL;\n\
    while (list) {\n\
        struct node *next = list->next;\n\
        list->next = rev; rev = list; list = next;\n\
    }\n\
    return rev;\n\
}\n";

/// Fig 8: the Schorr-Waite algorithm (C implementation, directly off Mehta
/// and Nipkow's high-level version in Fig 7).
pub const SCHORR_WAITE: &str = "struct node {\n\
    struct node *l;\n\
    struct node *r;\n\
    unsigned m;\n\
    unsigned c;\n\
};\n\
void schorr_waite(struct node *root) {\n\
    struct node *t = root;\n\
    struct node *p = NULL;\n\
    struct node *q;\n\
    while (p != NULL || (t != NULL && !t->m)) {\n\
        if (t == NULL || t->m) {\n\
            if (p->c) {\n\
                q = t; t = p; p = p->r; t->r = q;\n\
            } else {\n\
                q = t; t = p->r; p->r = p->l;\n\
                p->l = q; p->c = 1;\n\
            }\n\
        } else {\n\
            q = p; p = t; t = t->l; p->l = q;\n\
            p->m = 1; p->c = 0;\n\
        }\n\
    }\n\
}\n";

/// Sec 4.6: a byte-level `memset` (kept at the concrete level) and a
/// type-safe caller that zeroes a word through it.
pub const MEMSET: &str = "void memset_b(unsigned char *p, unsigned c, unsigned n) {\n\
    while (n > 0u) {\n\
        *p = (unsigned char)c;\n\
        p = p + 1;\n\
        n = n - 1u;\n\
    }\n\
}\n\
void zero_word(unsigned *w) {\n\
    memset_b((unsigned char *)w, 0u, 4u);\n\
}\n";

/// Sec 3.3: the unsigned-overflow test idiom.
pub const OVERFLOW_IDIOM: &str = "unsigned checked_add(unsigned x, unsigned y) {\n\
    if (x > x + y)\n\
        return 0u;\n\
    return x + y;\n\
}\n";

/// Counts the source lines of code of a C snippet (the Table 5 LoC metric:
/// non-empty, non-brace-only lines).
#[must_use]
pub fn c_loc(src: &str) -> usize {
    src.lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && t != "{" && t != "}"
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile_through_the_frontend() {
        for src in [
            MAX,
            GCD,
            MIDPOINT,
            SWAP,
            SUZUKI,
            REVERSE,
            SCHORR_WAITE,
            MEMSET,
            OVERFLOW_IDIOM,
        ] {
            cparser::parse_and_check(src).unwrap();
        }
    }

    #[test]
    fn schorr_waite_is_about_19_lines() {
        // Table 5 lists Schorr-Waite at 19 LoC.
        let loc = c_loc(SCHORR_WAITE);
        assert!((15..=25).contains(&loc), "got {loc}");
    }
}
