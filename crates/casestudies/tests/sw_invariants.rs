//! Instrumented Schorr-Waite: step the Fig 8 loop directly over the
//! abstract heap, checking the ported loop invariant and Bornat's
//! termination measure at every iteration, and confirming the stepper's
//! final state equals the translated program's.

use casestudies::graphs::{random_graph, sw_node_ty, sw_tenv, Graph};
use casestudies::schorr_waite::{
    bornat_measure, loop_invariant, mehta_nipkow_post, pipeline, reachable_valid, run,
};
use ir::state::AbsState;
use ir::value::{Ptr, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One Fig 8 loop iteration over the abstract heap (the Rust transcription
/// of the C body; used only as an instrumented reference).
fn step(st: &mut AbsState, t: &mut Ptr, p: &mut Ptr) {
    let ty = sw_node_ty();
    let get = |st: &AbsState, a: u64, f: &str| -> Value {
        st.heaps[&ty].get(a).unwrap().field(f).unwrap().clone()
    };
    let put = |st: &mut AbsState, a: u64, f: &str, v: Value| {
        let node = st.heaps[&ty].get(a).unwrap().clone();
        let node = node.with_field(f, v).unwrap();
        st.heap_mut(&ty).set(a, node);
    };
    let as_ptr = |v: Value| -> Ptr {
        match v {
            Value::Ptr(p) => p,
            _ => panic!("pointer field"),
        }
    };
    let marked = |st: &AbsState, a: u64| get(st, a, "m") == Value::u32(1);

    if t.is_null() || marked(st, t.addr) {
        if get(st, p.addr, "c") == Value::u32(1) {
            // q = t; t = p; p = p->r; t->r = q;
            let q = t.clone();
            *t = p.clone();
            *p = as_ptr(get(st, t.addr, "r"));
            put(st, t.addr, "r", Value::Ptr(q));
        } else {
            // q = t; t = p->r; p->r = p->l; p->l = q; p->c = 1;
            let q = t.clone();
            *t = as_ptr(get(st, p.addr, "r"));
            let pl = get(st, p.addr, "l");
            put(st, p.addr, "r", pl);
            put(st, p.addr, "l", Value::Ptr(q));
            put(st, p.addr, "c", Value::u32(1));
        }
    } else {
        // q = p; p = t; t = t->l; p->l = q; p->m = 1; p->c = 0;
        let q = p.clone();
        *p = t.clone();
        *t = as_ptr(get(st, p.addr, "l"));
        put(st, p.addr, "l", Value::Ptr(q));
        put(st, p.addr, "m", Value::u32(1));
        put(st, p.addr, "c", Value::u32(0));
    }
}

fn cond(st: &AbsState, t: &Ptr, p: &Ptr) -> bool {
    let ty = sw_node_ty();
    !p.is_null()
        || (!t.is_null()
            && st.heaps[&ty].get(t.addr).unwrap().field("m") != Some(&Value::u32(1)))
}

fn instrumented(g: &Graph, root: u64) -> AbsState {
    let tenv = sw_tenv();
    let mut conc = ir::state::ConcState::default();
    g.materialise(&mut conc, &tenv);
    let mut st = heapmodel::lift_state(&conc, &tenv, &[sw_node_ty()]);
    let mut t = Ptr::new(root, sw_node_ty());
    let mut p = Ptr::null(sw_node_ty());
    let max = g.addrs.len() + 2;

    assert!(reachable_valid(g, root, &st), "precondition (adjustment ii)");
    let mut prev_measure = bornat_measure(g, root, &st, &p, max).expect("measure defined");
    let mut iters = 0;
    while cond(&st, &t, &p) {
        assert!(
            loop_invariant(g, &st, &t, &p, max),
            "invariant fails at iteration {iters}"
        );
        step(&mut st, &mut t, &mut p);
        let m = bornat_measure(g, root, &st, &p, max).expect("measure stays defined");
        assert!(
            m < prev_measure,
            "Bornat's measure must strictly decrease: {prev_measure:?} → {m:?}"
        );
        prev_measure = m;
        iters += 1;
        assert!(iters < 10_000, "termination bound exceeded");
    }
    assert!(loop_invariant(g, &st, &t, &p, max), "invariant at exit");
    st
}

#[test]
fn invariant_and_measure_hold_throughout() {
    let mut rng = StdRng::seed_from_u64(314);
    for n in [1usize, 2, 4, 7, 11] {
        for _ in 0..6 {
            let g = random_graph(&mut rng, n);
            let root = g.addrs[0];
            let st = instrumented(&g, root);
            assert!(mehta_nipkow_post(&g, root, &st), "n = {n}");
        }
    }
}

#[test]
fn stepper_agrees_with_the_translated_program() {
    let out = pipeline();
    let mut rng = StdRng::seed_from_u64(2718);
    for n in [1usize, 3, 6, 9] {
        let g = random_graph(&mut rng, n);
        let root = g.addrs[0];
        let from_stepper = instrumented(&g, root);
        let from_pipeline = run(&out, &g, root);
        assert_eq!(
            from_stepper.heaps, from_pipeline.heaps,
            "the instrumented stepper and the translated program agree (n = {n})"
        );
    }
}

#[test]
fn worst_case_shapes() {
    let out = pipeline();
    // A long left-spine (deep stack), a full cycle, and a self-loop.
    let spine = {
        let addrs: Vec<u64> = (0..12).map(|i| 0x1000 + i * 0x10).collect();
        let l: Vec<u64> = addrs.iter().skip(1).copied().chain([0]).collect();
        Graph {
            addrs: addrs.clone(),
            l,
            r: vec![0; 12],
        }
    };
    let cycle = {
        let addrs: Vec<u64> = (0..6).map(|i| 0x1000 + i * 0x10).collect();
        let l: Vec<u64> = addrs
            .iter()
            .cycle()
            .skip(1)
            .take(6)
            .copied()
            .collect();
        Graph {
            addrs: addrs.clone(),
            l,
            r: addrs.clone(),
        }
    };
    let selfloop = Graph {
        addrs: vec![0x1000],
        l: vec![0x1000],
        r: vec![0x1000],
    };
    for g in [spine, cycle, selfloop] {
        let root = g.addrs[0];
        let st = run(&out, &g, root);
        assert!(mehta_nipkow_post(&g, root, &st), "{g:?}");
        let st2 = instrumented(&g, root);
        assert_eq!(st.heaps, st2.heaps);
    }
}
