//! Instrumented list reversal: step the Fig 6 loop over the abstract heap,
//! checking Mehta & Nipkow's invariant and the termination measure
//! (differences (ii) and (iii) of Sec 5.2) at every iteration.

use casestudies::lists::{build_list, node_tenv, node_ty, walk_list};
use casestudies::reverse::{loop_invariant, measure, mehta_nipkow_post, pipeline, run_reverse};
use ir::state::AbsState;
use ir::value::{Ptr, Value};

/// One loop iteration of Fig 6 over the abstract heap.
fn step(st: &mut AbsState, list: &mut Ptr, rev: &mut Ptr) {
    let ty = node_ty();
    let node = st.heaps[&ty].get(list.addr).unwrap().clone();
    let Value::Ptr(next) = node.field("next").unwrap().clone() else {
        panic!()
    };
    let updated = node.with_field("next", Value::Ptr(rev.clone())).unwrap();
    st.heap_mut(&ty).set(list.addr, updated);
    *rev = list.clone();
    *list = next;
}

#[test]
fn invariant_and_measure_hold_throughout() {
    let tenv = node_tenv();
    for n in [0usize, 1, 2, 5, 9] {
        let data: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
        let mut conc = ir::state::ConcState::default();
        let (head, original) = build_list(&mut conc, &tenv, 0x1000, &data);
        let mut st = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
        let mut list = head;
        let mut rev = Ptr::null(node_ty());
        let max = n + 2;

        let mut prev = measure(&st, &list, max).expect("acyclic input");
        let mut iters = 0;
        while !list.is_null() {
            assert!(
                loop_invariant(&st, &list, &rev, &original, max),
                "invariant fails at iteration {iters} (n = {n})"
            );
            step(&mut st, &mut list, &mut rev);
            let m = measure(&st, &list, max).expect("still acyclic");
            assert!(m < prev, "measure must strictly decrease");
            prev = m;
            iters += 1;
        }
        assert!(loop_invariant(&st, &list, &rev, &original, max));
        // Exit: rev is the full reversal.
        let mut expect = original.clone();
        expect.reverse();
        assert_eq!(walk_list(&st, &rev, max), Some(expect));
    }
}

#[test]
fn stepper_agrees_with_the_translated_program() {
    let out = pipeline();
    let tenv = node_tenv();
    for n in [0usize, 1, 4, 8] {
        let data: Vec<u32> = (0..n as u32).collect();
        // Stepper:
        let mut conc = ir::state::ConcState::default();
        let (head, _) = build_list(&mut conc, &tenv, 0x1000, &data);
        let mut st = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
        let mut list = head;
        let mut rev = Ptr::null(node_ty());
        while !list.is_null() {
            step(&mut st, &mut list, &mut rev);
        }
        // Pipeline:
        let run = run_reverse(&out, &data);
        assert_eq!(run.head.addr, rev.addr, "n = {n}");
        assert_eq!(run.state.heaps, st.heaps, "n = {n}");
        assert!(mehta_nipkow_post(&run, &data));
    }
}
