//! Corner-case coverage of the supported C subset, end to end through the
//! Simpl interpreter (64-bit arithmetic, narrow types, casts, nested
//! structs, pointer casting, shadowing, operator precedence).

use ir::ty::{Signedness, Ty, Width};
use ir::value::{Ptr, Value};
use ir::word::Word;
use simpl::{exec_fn, translate_program, Fault, SimplProgram};

fn compile(src: &str) -> SimplProgram {
    translate_program(&cparser::parse_and_check(src).unwrap()).unwrap()
}

fn run(p: &SimplProgram, f: &str, args: &[Value]) -> Result<Value, Fault> {
    exec_fn(p, f, args, p.initial_state(), 1_000_000).map(|(v, _)| v)
}

#[test]
fn u64_arithmetic() {
    let p = compile(
        "unsigned long long mul(unsigned long long a, unsigned long long b) {\n\
           return a * b;\n\
         }",
    );
    let big = Word::new(u64::MAX, Width::W64, Signedness::Unsigned);
    let two = Word::new(2, Width::W64, Signedness::Unsigned);
    let r = run(&p, "mul", &[Value::Word(big), Value::Word(two)]).unwrap();
    assert_eq!(
        r,
        Value::Word(Word::new(u64::MAX.wrapping_mul(2), Width::W64, Signedness::Unsigned))
    );
}

#[test]
fn char_arithmetic_promotes() {
    // c + 1 promotes to int; the cast back narrows mod 256.
    let p = compile(
        "unsigned char inc(unsigned char c) { return (unsigned char)(c + 1); }",
    );
    let r = run(&p, "inc", &[Value::Word(Word::u8(255))]).unwrap();
    assert_eq!(r, Value::Word(Word::u8(0)));
}

#[test]
fn short_overflow_is_defined_via_promotion() {
    // Promoted to int, 32767 + 1 does not overflow int.
    let p = compile("int f(short a) { return a + 1; }");
    let max_short = Word::new(32767, Width::W16, Signedness::Signed);
    assert_eq!(run(&p, "f", &[Value::Word(max_short)]).unwrap(), Value::i32(32768));
}

#[test]
fn sign_extension_in_casts() {
    let p = compile("long long widen(int x) { return (long long)x; }");
    let r = run(&p, "widen", &[Value::i32(-5)]).unwrap();
    let Value::Word(w) = r else { panic!() };
    assert_eq!(w.sint(), bignum::Int::from(-5i64));
    assert_eq!(w.width(), Width::W64);
}

#[test]
fn nested_struct_access() {
    let p = compile(
        "struct inner { unsigned a; unsigned b; };\n\
         struct outer { struct inner i; unsigned c; };\n\
         unsigned get(struct outer *p) { return p->i.b + p->c; }\n\
         void set(struct outer *p, unsigned v) { p->i.b = v; }",
    );
    let mut st = p.initial_state();
    let outer = Value::Struct(
        "outer".into(),
        vec![
            (
                "i".into(),
                Value::Struct(
                    "inner".into(),
                    vec![("a".into(), Value::u32(1)), ("b".into(), Value::u32(2))],
                ),
            ),
            ("c".into(), Value::u32(10)),
        ],
    );
    st.as_conc_mut().unwrap().mem.alloc(0x100, &outer, &p.tenv).unwrap();
    let ptr = Value::Ptr(Ptr::new(0x100, Ty::Struct("outer".into())));
    let (v, st) = exec_fn(&p, "get", std::slice::from_ref(&ptr), st, 10_000).unwrap();
    assert_eq!(v, Value::u32(12));
    let (_, st) = exec_fn(&p, "set", &[ptr.clone(), Value::u32(7)], st, 10_000).unwrap();
    let (v, _) = exec_fn(&p, "get", &[ptr], st, 10_000).unwrap();
    assert_eq!(v, Value::u32(17));
}

#[test]
fn pointer_casting_between_types() {
    // Read the low byte of a little-endian u32 through a char pointer.
    let p = compile(
        "unsigned low_byte(unsigned *w) {\n\
           unsigned char *b = (unsigned char *)w;\n\
           return *b;\n\
         }",
    );
    let mut st = p.initial_state();
    st.as_conc_mut()
        .unwrap()
        .mem
        .alloc(0x100, &Value::u32(0xAABBCCDD), &p.tenv)
        .unwrap();
    let w = Value::Ptr(Ptr::new(0x100, Ty::U32));
    let (v, _) = exec_fn(&p, "low_byte", &[w], st, 10_000).unwrap();
    assert_eq!(v, Value::u32(0xDD));
}

#[test]
fn shadowing_keeps_scopes_apart() {
    let p = compile(
        "unsigned f(unsigned x) {\n\
           unsigned r = x;\n\
           { unsigned x = 100; r = r + x; }\n\
           return r + x;\n\
         }",
    );
    // r = x; r += 100; return r + x  →  2x + 100.
    assert_eq!(run(&p, "f", &[Value::u32(5)]).unwrap(), Value::u32(110));
}

#[test]
fn precedence_and_bitops() {
    let p = compile(
        "unsigned f(unsigned a, unsigned b) {\n\
           return a | b & 0xF0u ^ (a << 2) >> 1;\n\
         }",
    );
    let f = |a: u32, b: u32| a | ((b & 0xF0) ^ ((a << 2) >> 1));
    for (a, b) in [(0x12u32, 0xFFu32), (0, 0), (0xDEAD, 0xBEEF)] {
        assert_eq!(
            run(&p, "f", &[Value::u32(a), Value::u32(b)]).unwrap(),
            Value::u32(f(a, b)),
            "({a:#x},{b:#x})"
        );
    }
}

#[test]
fn signed_division_rounds_toward_zero() {
    let p = compile("int d(int a, int b) { return a / b + a % b; }");
    for (a, b) in [(-7i32, 2i32), (7, -2), (-7, -2), (7, 2)] {
        assert_eq!(
            run(&p, "d", &[Value::i32(a), Value::i32(b)]).unwrap(),
            Value::i32(a / b + a % b),
            "({a},{b})"
        );
    }
}

#[test]
fn ternary_chains() {
    let p = compile(
        "int sign(int x) { return x < 0 ? -1 : x > 0 ? 1 : 0; }",
    );
    assert_eq!(run(&p, "sign", &[Value::i32(-9)]).unwrap(), Value::i32(-1));
    assert_eq!(run(&p, "sign", &[Value::i32(9)]).unwrap(), Value::i32(1));
    assert_eq!(run(&p, "sign", &[Value::i32(0)]).unwrap(), Value::i32(0));
}

#[test]
fn struct_globals() {
    let p = compile(
        "struct pair { unsigned a; unsigned b; };\n\
         struct pair g;\n\
         void set(unsigned v) { g.a = v; g.b = v + 1u; }\n\
         unsigned total(void) { return g.a + g.b; }",
    );
    let st = p.initial_state();
    let (_, st) = exec_fn(&p, "set", &[Value::u32(5)], st, 10_000).unwrap();
    let (v, _) = exec_fn(&p, "total", &[], st, 10_000).unwrap();
    assert_eq!(v, Value::u32(11));
}

#[test]
fn mutual_recursion() {
    let p = compile(
        "unsigned is_odd(unsigned n);\n\
         unsigned is_even(unsigned n) { if (n == 0u) return 1u; return is_odd(n - 1u); }\n\
         unsigned is_odd(unsigned n) { if (n == 0u) return 0u; return is_even(n - 1u); }",
    );
    assert_eq!(run(&p, "is_even", &[Value::u32(10)]).unwrap(), Value::u32(1));
    assert_eq!(run(&p, "is_odd", &[Value::u32(7)]).unwrap(), Value::u32(1));
}

#[test]
fn full_pipeline_on_corner_programs() {
    // The same corner programs go through the complete pipeline with
    // checkable theorems.
    for src in [
        "unsigned char inc(unsigned char c) { return (unsigned char)(c + 1); }",
        "int sign(int x) { return x < 0 ? -1 : x > 0 ? 1 : 0; }",
        "unsigned long long mul(unsigned long long a, unsigned long long b) { return a * b; }",
        "struct pair { unsigned a; unsigned b; };\n\
         unsigned sum(struct pair *p) { return p->a + p->b; }",
    ] {
        let out = autocorres::translate(src, &autocorres::Options::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        out.check_all().unwrap();
    }
}
