//! Big-step interpreter for Simpl.
//!
//! Gives the translated programs an executable semantics, used by the
//! refinement validators: the L1 (monadic) program must simulate exactly
//! what this interpreter computes.

use std::collections::BTreeMap;
use std::fmt;

use ir::eval::{eval, eval_bool, Env, EvalError};
use ir::state::State;
use ir::value::Value;

use crate::stmt::{GuardKind, SimplProgram, SimplStmt};
use crate::RET_VAR;

/// How a statement finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Normal termination.
    Normal,
    /// Abrupt termination (after a `THROW`).
    Abrupt,
}

/// A fault: the Simpl analogue of the monadic failure flag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A guard failed (undefined behaviour would have occurred).
    GuardFailure(GuardKind),
    /// Evaluation got stuck (ill-typed term — a translation bug).
    Stuck(String),
    /// The fuel budget was exhausted (possible non-termination).
    OutOfFuel,
    /// Call to an unknown function.
    UnknownFunction(String),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::GuardFailure(k) => write!(f, "guard failure: {k}"),
            Fault::Stuck(m) => write!(f, "stuck: {m}"),
            Fault::OutOfFuel => write!(f, "out of fuel"),
            Fault::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<EvalError> for Fault {
    fn from(e: EvalError) -> Fault {
        Fault::Stuck(e.to_string())
    }
}

/// Execution budget: step fuel plus a call-depth cap (the interpreter
/// recurses natively on subject-program calls; the cap turns would-be host
/// stack overflows into a clean [`Fault::OutOfFuel`]).
struct Budget {
    fuel: u64,
    depth: u32,
}

/// Maximum interpreted call depth (see [`Budget`]).
const MAX_CALL_DEPTH: u32 = 300;

/// Stack size for the dedicated interpreter thread (deep interpreted
/// recursion would otherwise overflow a default 2 MiB thread stack long
/// before [`MAX_CALL_DEPTH`]).
const INTERP_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Runs `f` on a thread with a large stack (see [`INTERP_STACK_BYTES`]).
fn with_interp_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(INTERP_STACK_BYTES)
            .spawn_scoped(scope, f)
            .expect("spawn interpreter thread")
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    })
}


/// Executes a statement, mutating `st`.
///
/// # Errors
///
/// Returns a [`Fault`] on guard failures, stuck evaluation, unknown callees,
/// or fuel exhaustion.
fn exec_stmt_b(
    prog: &SimplProgram,
    stmt: &SimplStmt,
    st: &mut State,
    fuel: &mut Budget,
) -> Result<Outcome, Fault> {
    if fuel.fuel == 0 {
        return Err(Fault::OutOfFuel);
    }
    fuel.fuel -= 1;
    let env = Env::with_tenv(prog.tenv.clone());
    match stmt {
        SimplStmt::Skip => Ok(Outcome::Normal),
        SimplStmt::Basic(u) => {
            u.apply(&env, st)?;
            Ok(Outcome::Normal)
        }
        SimplStmt::Seq(a, b) => match exec_stmt_b(prog, a, st, fuel)? {
            Outcome::Normal => exec_stmt_b(prog, b, st, fuel),
            Outcome::Abrupt => Ok(Outcome::Abrupt),
        },
        SimplStmt::Cond(c, t, e) => {
            if eval_bool(c, &env, st)? {
                exec_stmt_b(prog, t, st, fuel)
            } else {
                exec_stmt_b(prog, e, st, fuel)
            }
        }
        SimplStmt::While(c, body) => {
            loop {
                if fuel.fuel == 0 {
                    return Err(Fault::OutOfFuel);
                }
                fuel.fuel -= 1;
                if !eval_bool(c, &env, st)? {
                    return Ok(Outcome::Normal);
                }
                match exec_stmt_b(prog, body, st, fuel)? {
                    Outcome::Normal => {}
                    Outcome::Abrupt => return Ok(Outcome::Abrupt),
                }
            }
        }
        SimplStmt::Guard(kind, g, inner) => {
            if eval_bool(g, &env, st)? {
                exec_stmt_b(prog, inner, st, fuel)
            } else {
                Err(Fault::GuardFailure(kind.clone()))
            }
        }
        SimplStmt::Throw => Ok(Outcome::Abrupt),
        SimplStmt::TryCatch(a, handler) => match exec_stmt_b(prog, a, st, fuel)? {
            Outcome::Normal => Ok(Outcome::Normal),
            Outcome::Abrupt => exec_stmt_b(prog, handler, st, fuel),
        },
        SimplStmt::Call {
            fname,
            args,
            ret_local,
        } => {
            let f = prog
                .function(fname)
                .ok_or_else(|| Fault::UnknownFunction(fname.clone()))?;
            // Call-by-value: evaluate arguments in the caller frame.
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(a, &env, st)?);
            }
            // Fresh frame: zero-init every local, then bind parameters.
            let mut frame = BTreeMap::new();
            for (n, t) in &f.locals {
                frame.insert(n.clone(), Value::zero_of(t, &prog.tenv));
            }
            for ((n, _), v) in f.params.iter().zip(arg_vals) {
                frame.insert(n.clone(), v);
            }
            if fuel.depth >= MAX_CALL_DEPTH {
                return Err(Fault::OutOfFuel);
            }
            fuel.depth += 1;
            let saved = st.swap_locals(frame);
            let result = exec_stmt_b(prog, &f.body, st, fuel);
            fuel.depth -= 1;
            let ret_val = st.local(RET_VAR).cloned();
            st.swap_locals(saved);
            result?;
            if let Some(r) = ret_local {
                let v = ret_val.ok_or_else(|| {
                    Fault::Stuck(format!("function `{fname}` returned no value"))
                })?;
                st.set_local(r, v);
            }
            Ok(Outcome::Normal)
        }
    }
}

/// Executes a statement with a plain fuel budget (the call-depth cap is
/// applied internally).
///
/// # Errors
///
/// Returns a [`Fault`] on guard failure, stuck evaluation, or fuel/depth
/// exhaustion.
pub fn exec_stmt(
    prog: &SimplProgram,
    stmt: &SimplStmt,
    st: &mut State,
    fuel: &mut u64,
) -> Result<Outcome, Fault> {
    with_interp_stack(move || {
        let mut budget = Budget { fuel: *fuel, depth: 0 };
        let r = exec_stmt_b(prog, stmt, st, &mut budget);
        *fuel = budget.fuel;
        r
    })
}

/// Runs a translated function on the given arguments and state, returning
/// the return value (Unit for `void`) and the final state.
///
/// # Errors
///
/// Returns a [`Fault`] as for [`exec_stmt`].
pub fn exec_fn(
    prog: &SimplProgram,
    name: &str,
    args: &[Value],
    mut st: State,
    fuel: u64,
) -> Result<(Value, State), Fault> {
    let f = prog
        .function(name)
        .ok_or_else(|| Fault::UnknownFunction(name.to_owned()))?;
    let mut frame = BTreeMap::new();
    for (n, t) in &f.locals {
        frame.insert(n.clone(), Value::zero_of(t, &prog.tenv));
    }
    assert_eq!(f.params.len(), args.len(), "arity mismatch calling {name}");
    for ((n, _), v) in f.params.iter().zip(args) {
        frame.insert(n.clone(), v.clone());
    }
    st.swap_locals(frame);
    let mut fuel = fuel;
    exec_stmt(prog, &f.body, &mut st, &mut fuel)?;
    let ret = if f.ret_ty == ir::ty::Ty::Unit {
        Value::Unit
    } else {
        st.local(RET_VAR)
            .cloned()
            .ok_or_else(|| Fault::Stuck(format!("`{name}` returned no value")))?
    };
    Ok((ret, st))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate_program;
    use ir::ty::Ty;
    use ir::value::Ptr;

    fn compile(src: &str) -> SimplProgram {
        translate_program(&cparser::parse_and_check(src).unwrap()).unwrap()
    }

    fn run(prog: &SimplProgram, name: &str, args: &[Value]) -> Result<Value, Fault> {
        exec_fn(prog, name, args, prog.initial_state(), 1_000_000).map(|(v, _)| v)
    }

    #[test]
    fn fig2_max() {
        let p = compile("int max(int a, int b) { if (a < b) return b; return a; }");
        assert_eq!(run(&p, "max", &[Value::i32(3), Value::i32(5)]), Ok(Value::i32(5)));
        assert_eq!(run(&p, "max", &[Value::i32(-3), Value::i32(-5)]), Ok(Value::i32(-3)));
        assert_eq!(run(&p, "max", &[Value::i32(7), Value::i32(7)]), Ok(Value::i32(7)));
    }

    #[test]
    fn signed_overflow_guard_fires() {
        let p = compile("int inc(int x) { return x + 1; }");
        assert_eq!(run(&p, "inc", &[Value::i32(5)]), Ok(Value::i32(6)));
        assert_eq!(
            run(&p, "inc", &[Value::i32(i32::MAX)]),
            Err(Fault::GuardFailure(GuardKind::SignedOverflow))
        );
    }

    #[test]
    fn unsigned_arithmetic_wraps_without_guard() {
        let p = compile("unsigned inc(unsigned x) { return x + 1u; }");
        assert_eq!(run(&p, "inc", &[Value::u32(u32::MAX)]), Ok(Value::u32(0)));
    }

    #[test]
    fn div_by_zero_guard() {
        let p = compile("unsigned d(unsigned a, unsigned b) { return a / b; }");
        assert_eq!(run(&p, "d", &[Value::u32(7), Value::u32(2)]), Ok(Value::u32(3)));
        assert_eq!(
            run(&p, "d", &[Value::u32(7), Value::u32(0)]),
            Err(Fault::GuardFailure(GuardKind::DivByZero))
        );
    }

    #[test]
    fn int_min_div_minus_one_guard() {
        let p = compile("int d(int a, int b) { return a / b; }");
        assert_eq!(
            run(&p, "d", &[Value::i32(i32::MIN), Value::i32(-1)]),
            Err(Fault::GuardFailure(GuardKind::SignedOverflow))
        );
        assert_eq!(run(&p, "d", &[Value::i32(-6), Value::i32(2)]), Ok(Value::i32(-3)));
    }

    #[test]
    fn loops_and_break_continue() {
        let p = compile(
            "unsigned f(unsigned n) {\n\
               unsigned s = 0;\n\
               unsigned i = 0;\n\
               while (1) {\n\
                 if (i >= n) break;\n\
                 i = i + 1u;\n\
                 if (i == 3u) continue;\n\
                 s = s + i;\n\
               }\n\
               return s;\n\
             }",
        );
        // 1 + 2 + 4 + 5 = 12 (3 skipped)
        assert_eq!(run(&p, "f", &[Value::u32(5)]), Ok(Value::u32(12)));
    }

    #[test]
    fn gcd_recursion() {
        let p = compile(
            "unsigned gcd(unsigned a, unsigned b) {\n\
               if (b == 0u) return a;\n\
               return gcd(b, a % b);\n\
             }",
        );
        assert_eq!(run(&p, "gcd", &[Value::u32(12), Value::u32(18)]), Ok(Value::u32(6)));
        assert_eq!(run(&p, "gcd", &[Value::u32(17), Value::u32(5)]), Ok(Value::u32(1)));
    }

    #[test]
    fn calls_hoisted_from_expressions() {
        let p = compile(
            "int sq(int x) { return x * x; }\n\
             int f(int a) { return sq(a) + sq(a + 1); }",
        );
        assert_eq!(run(&p, "f", &[Value::i32(3)]), Ok(Value::i32(9 + 16)));
    }

    #[test]
    fn swap_through_pointers() {
        let p = compile(
            "void swap(unsigned *a, unsigned *b) {\n\
               unsigned t = *a; *a = *b; *b = t;\n\
             }",
        );
        let mut st = p.initial_state();
        let cs = st.as_conc_mut().unwrap();
        cs.mem.alloc(0x100, &Value::u32(1), &p.tenv).unwrap();
        cs.mem.alloc(0x200, &Value::u32(2), &p.tenv).unwrap();
        let a = Value::Ptr(Ptr::new(0x100, Ty::U32));
        let b = Value::Ptr(Ptr::new(0x200, Ty::U32));
        let (_, out) = exec_fn(&p, "swap", &[a, b], st, 10_000).unwrap();
        let mem = &out.as_conc().unwrap().mem;
        assert_eq!(mem.decode(0x100, &Ty::U32, &p.tenv).unwrap(), Value::u32(2));
        assert_eq!(mem.decode(0x200, &Ty::U32, &p.tenv).unwrap(), Value::u32(1));
    }

    #[test]
    fn misaligned_pointer_faults() {
        let p = compile("unsigned get(unsigned *p) { return *p; }");
        let st = p.initial_state();
        let bad = Value::Ptr(Ptr::new(0x101, Ty::U32));
        assert_eq!(
            exec_fn(&p, "get", &[bad], st.clone(), 10_000).unwrap_err(),
            Fault::GuardFailure(GuardKind::PtrValid)
        );
        let null = Value::Ptr(Ptr::null(Ty::U32));
        assert_eq!(
            exec_fn(&p, "get", &[null], st, 10_000).unwrap_err(),
            Fault::GuardFailure(GuardKind::PtrValid)
        );
    }

    #[test]
    fn struct_field_access_via_offsets() {
        let p = compile(
            "struct node { struct node *next; unsigned data; };\n\
             unsigned get(struct node *p) { return p->data; }\n\
             void set(struct node *p, unsigned v) { p->data = v; }",
        );
        let mut st = p.initial_state();
        let node = Value::Struct(
            "node".into(),
            vec![
                ("next".into(), Value::Ptr(Ptr::null(Ty::Struct("node".into())))),
                ("data".into(), Value::u32(41)),
            ],
        );
        st.as_conc_mut()
            .unwrap()
            .mem
            .alloc(0x1000, &node, &p.tenv)
            .unwrap();
        let ptr = Value::Ptr(Ptr::new(0x1000, Ty::Struct("node".into())));
        let (v, st) = exec_fn(&p, "get", std::slice::from_ref(&ptr), st, 10_000).unwrap();
        assert_eq!(v, Value::u32(41));
        let (_, st) = exec_fn(&p, "set", &[ptr.clone(), Value::u32(99)], st, 10_000).unwrap();
        let (v, _) = exec_fn(&p, "get", &[ptr], st, 10_000).unwrap();
        assert_eq!(v, Value::u32(99));
    }

    #[test]
    fn short_circuit_protects_guards() {
        // Without short-circuit weakening, the null deref guard of p->data
        // would fire even when p == NULL.
        let p = compile(
            "struct node { unsigned data; };\n\
             unsigned f(struct node *p) {\n\
               if (p != NULL && p->data > 0u) return p->data;\n\
               return 0u;\n\
             }",
        );
        let st = p.initial_state();
        let null = Value::Ptr(Ptr::null(Ty::Struct("node".into())));
        assert_eq!(
            exec_fn(&p, "f", &[null], st, 10_000).unwrap().0,
            Value::u32(0)
        );
    }

    #[test]
    fn falling_off_end_faults() {
        let p = compile("int f(int x) { if (x > 0) return 1; }");
        let st = p.initial_state();
        assert_eq!(
            exec_fn(&p, "f", &[Value::i32(1)], st.clone(), 10_000).unwrap().0,
            Value::i32(1)
        );
        assert_eq!(
            exec_fn(&p, "f", &[Value::i32(0)], st, 10_000).unwrap_err(),
            Fault::GuardFailure(GuardKind::DontReach)
        );
    }

    #[test]
    fn globals() {
        let p = compile(
            "unsigned counter = 10;\n\
             void bump(void) { counter = counter + 1u; }\n\
             unsigned read_counter(void) { return counter; }",
        );
        let st = p.initial_state();
        let (_, st) = exec_fn(&p, "bump", &[], st, 10_000).unwrap();
        let (_, st) = exec_fn(&p, "bump", &[], st, 10_000).unwrap();
        let (v, _) = exec_fn(&p, "read_counter", &[], st, 10_000).unwrap();
        assert_eq!(v, Value::u32(12));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let p = compile("void f(void) { while (1) { } }");
        assert_eq!(
            exec_fn(&p, "f", &[], p.initial_state(), 1000).unwrap_err(),
            Fault::OutOfFuel
        );
    }

    #[test]
    fn do_while_runs_body_first() {
        let p = compile(
            "unsigned f(unsigned n) {\n\
               unsigned c = 0;\n\
               do { c = c + 1u; n = n / 2u; } while (n > 0u);\n\
               return c;\n\
             }",
        );
        // n = 0: body still runs once (n/2 guarded: 0/2 ok... wait, 2u != 0).
        assert_eq!(run(&p, "f", &[Value::u32(0)]), Ok(Value::u32(1)));
        assert_eq!(run(&p, "f", &[Value::u32(8)]), Ok(Value::u32(4)));
    }

    #[test]
    fn shift_guards() {
        let p = compile("unsigned f(unsigned x, unsigned s) { return x << s; }");
        assert_eq!(run(&p, "f", &[Value::u32(1), Value::u32(4)]), Ok(Value::u32(16)));
        assert_eq!(
            run(&p, "f", &[Value::u32(1), Value::u32(32)]),
            Err(Fault::GuardFailure(GuardKind::ShiftBound))
        );
    }

    #[test]
    fn ternary_and_casts() {
        let p = compile(
            "unsigned f(int x) { return x < 0 ? (unsigned)(-x) : (unsigned)x; }",
        );
        assert_eq!(run(&p, "f", &[Value::i32(-5)]), Ok(Value::u32(5)));
        assert_eq!(run(&p, "f", &[Value::i32(5)]), Ok(Value::u32(5)));
    }

    #[test]
    fn pointer_indexing() {
        let p = compile("unsigned get(unsigned *a, unsigned i) { return a[i]; }");
        let mut st = p.initial_state();
        let cs = st.as_conc_mut().unwrap();
        for k in 0..4u32 {
            cs.mem
                .alloc(0x100 + u64::from(k) * 4, &Value::u32(k * 10), &p.tenv)
                .unwrap();
        }
        let a = Value::Ptr(Ptr::new(0x100, Ty::U32));
        let (v, _) = exec_fn(&p, "get", &[a, Value::u32(3)], st, 10_000).unwrap();
        assert_eq!(v, Value::u32(30));
    }
}
