//! The Simpl intermediate language (Schirmer) and the C-to-Simpl translation.
//!
//! Simpl is the *trusted* entry point of the AutoCorres chain: the
//! translation from C is intentionally verbose, literal and conservative
//! (paper Sec 2 and Fig 2). In particular:
//!
//! * abrupt termination (`return`, `break`, `continue`) is encoded with
//!   `THROW`/`TRY … CATCH` and the ghost variable `global_exn_var`,
//! * every potentially undefined C operation is protected by an inline
//!   `Guard` statement: signed overflow, division by zero, invalid shifts,
//!   invalid pointer accesses, and execution falling off the end of a
//!   non-`void` function (`DontReach`),
//! * `p->f` becomes a pointer-offset access `read s (Ptr (ptr_val p + off))`.
//!
//! The crate provides the IR ([`SimplStmt`]), the translation
//! ([`translate_program`]), a big-step interpreter ([`interp::exec_fn`]) used
//! by the refinement validators, and a Fig-2-style pretty printer.
//!
//! # Example
//!
//! ```
//! let src = "int max(int a, int b) { if (a < b) return b; return a; }";
//! let typed = cparser::parse_and_check(src).unwrap();
//! let simpl = simpl::translate_program(&typed).unwrap();
//! let rendered = simpl.function("max").unwrap().to_string();
//! assert!(rendered.contains("TRY"));
//! assert!(rendered.contains("global_exn_var"));
//! assert!(rendered.contains("GUARD DontReach"));
//! ```

pub mod codec;
pub mod interp;
pub mod stmt;
pub mod translate;

pub use interp::{exec_fn, exec_stmt, Fault, Outcome};
pub use stmt::{GuardKind, SimplFn, SimplProgram, SimplStmt};
pub use translate::translate_program;

/// Name of the ghost local recording the abrupt-termination reason.
pub const EXN_VAR: &str = "global_exn_var";
/// Name of the local holding a function's return value.
pub const RET_VAR: &str = "ret__";
/// `global_exn_var` value for `return`.
pub const EXN_RETURN: u32 = 0;
/// `global_exn_var` value for `break`.
pub const EXN_BREAK: u32 = 1;
/// `global_exn_var` value for `continue`.
pub const EXN_CONTINUE: u32 = 2;
