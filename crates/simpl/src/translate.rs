//! The literal, conservative C-to-Simpl translation.
//!
//! Mirrors Norrish's parser (paper Sec 2, Fig 2): abrupt control flow via
//! `THROW` + `global_exn_var`, inline guards for every potentially undefined
//! operation, and pointer-offset field accesses.

use cparser::ast::{CBinOp, CType, CUnOp};
use cparser::typecheck::{ctype_to_ty, TExpr, TExprKind, TFunDef, TProgram, TStmt};
use ir::diag::{Diag, DiagKind, Phase};
use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::ty::{Signedness, Ty, Width};
use ir::update::Update;
use ir::value::Value;
use ir::word::Word;

use crate::stmt::{GuardKind, SimplFn, SimplProgram, SimplStmt};
use crate::{EXN_BREAK, EXN_CONTINUE, EXN_RETURN, EXN_VAR, RET_VAR};

/// Builds a translation diagnostic. The message keeps the historic
/// `translation error:` prefix so rendered errors are unchanged.
fn terr(msg: impl Into<String>) -> Diag {
    Diag::new(
        Phase::Simpl,
        DiagKind::Unsupported,
        format!("translation error: {}", msg.into()),
    )
}

/// Guards to emit before a call, plus the translated argument expressions.
pub type GuardedArgs = (Vec<(GuardKind, Expr)>, Vec<Expr>);

/// Decomposed array access: the array variable's name and locality, its
/// value expression, the translated index, and the accumulated guards.
type IndexParts = (String, bool, Expr, Expr, Vec<(GuardKind, Expr)>);

type Result<T> = std::result::Result<T, Diag>;

/// Translates a typechecked program into Simpl.
///
/// # Errors
///
/// Returns a [`Diag`] on constructs the literal translation cannot
/// encode (calls in loop conditions or short-circuit operands, `break`
/// outside a loop).
pub fn translate_program(tp: &TProgram) -> Result<SimplProgram> {
    let mut out = SimplProgram {
        tenv: tp.tenv.clone(),
        ..SimplProgram::default()
    };
    for g in &tp.globals {
        let ty = ctype_to_ty(&g.ty);
        let value = match &g.init {
            None => Value::zero_of(&ty, &tp.tenv),
            Some(e) => {
                let mut tr = FnTranslator::new(tp, Ty::Unit);
                let mut pre = Vec::new();
                let te = tr.rvalue(e, &mut pre)?;
                if !pre.is_empty() || !te.guards.is_empty() {
                    return Err(terr(format!(
                        "global `{}` initialiser must be a guard-free constant",
                        g.name
                    )));
                }
                let env = ir::eval::Env::with_tenv(tp.tenv.clone());
                ir::eval::eval(&te.expr, &env, &ir::state::State::conc_empty())
                    .map_err(|e| terr(format!("global init: {e}")))?
            }
        };
        out.globals.push((g.name.clone(), value));
    }
    for f in &tp.functions {
        out.fns.insert(f.name.clone(), translate_function(tp, f)?);
    }
    Ok(out)
}

/// Translates one function.
fn translate_function(tp: &TProgram, f: &TFunDef) -> Result<SimplFn> {
    let ret_ty = ctype_to_ty(&f.ret);
    let mut tr = FnTranslator::new(tp, ret_ty.clone());
    for (n, t) in &f.locals {
        tr.locals.push((n.clone(), ctype_to_ty(t)));
    }
    tr.locals.push((EXN_VAR.to_owned(), Ty::U32));
    if ret_ty != Ty::Unit {
        tr.locals.push((RET_VAR.to_owned(), ret_ty.clone()));
    }

    let mut body = tr.stmts(&f.body)?;
    if ret_ty != Ty::Unit {
        // Fig 2: falling off the end of a non-void function is undefined.
        body = SimplStmt::seq(
            body,
            SimplStmt::Guard(GuardKind::DontReach, Expr::ff(), Box::new(SimplStmt::Skip)),
        );
    }
    let wrapped = SimplStmt::TryCatch(Box::new(body), Box::new(SimplStmt::Skip));
    Ok(SimplFn {
        name: f.name.clone(),
        params: f
            .params
            .iter()
            .map(|(n, t)| (n.clone(), ctype_to_ty(t)))
            .collect(),
        locals: tr.locals,
        ret_ty,
        body: wrapped,
    })
}

/// A translated expression: the guards it requires, then the value.
#[derive(Clone, Debug)]
pub struct TrExpr {
    /// Guards protecting the expression (evaluated before it).
    pub guards: Vec<(GuardKind, Expr)>,
    /// The translated expression (locals appear as [`Expr::Local`]).
    pub expr: Expr,
}

impl TrExpr {
    fn pure(expr: Expr) -> TrExpr {
        TrExpr {
            guards: Vec::new(),
            expr,
        }
    }
}

/// Expression/lvalue translator for one function.
///
/// Exposed so that the L2 phase (in the `autocorres` crate) reuses exactly
/// the same undefined-behaviour guard derivation as the Simpl translation —
/// the guard formulas must be identical across levels for the refinement
/// theorems to line up.
#[derive(Debug)]
pub struct FnTranslator<'a> {
    tp: &'a TProgram,
    #[allow(dead_code)]
    ret_ty: Ty,
    /// Locals registered so far (including generated temporaries).
    pub locals: Vec<(String, Ty)>,
    tmp_counter: u64,
    loop_depth: u32,
}

impl<'a> FnTranslator<'a> {
    /// Creates a translator for expressions of a function returning `ret_ty`.
    #[must_use]
    pub fn new(tp: &'a TProgram, ret_ty: Ty) -> FnTranslator<'a> {
        FnTranslator {
            tp,
            ret_ty,
            locals: Vec::new(),
            tmp_counter: 0,
            loop_depth: 0,
        }
    }

    /// The structure layouts of the program being translated.
    #[must_use]
    pub fn tenv(&self) -> &ir::ty::TypeEnv {
        &self.tp.tenv
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(terr(msg))
    }

    fn fresh_tmp(&mut self, ty: Ty) -> String {
        let name = format!("tmp__{}", self.tmp_counter);
        self.tmp_counter += 1;
        self.locals.push((name.clone(), ty));
        name
    }

    // ---- statements -------------------------------------------------------

    fn stmts(&mut self, stmts: &[TStmt]) -> Result<SimplStmt> {
        let mut out = SimplStmt::Skip;
        for s in stmts {
            out = SimplStmt::seq(out, self.stmt(s)?);
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &TStmt) -> Result<SimplStmt> {
        match s {
            TStmt::Decl { name, init, .. } => match init {
                None => Ok(SimplStmt::Skip),
                Some(e) => self.assign_to_local(name, e),
            },
            TStmt::Assign { lhs, rhs, .. } => self.assign(lhs, rhs),
            TStmt::ExprCall(e, _) => {
                let TExprKind::Call(name, args) = &e.kind else {
                    return self.err("expression statement is not a call");
                };
                let mut pre = Vec::new();
                let (guards, arg_exprs) = self.call_args(args, &mut pre)?;
                let call = SimplStmt::Call {
                    fname: name.clone(),
                    args: arg_exprs,
                    ret_local: None,
                }
                .with_guards(guards);
                Ok(SimplStmt::seq(SimplStmt::seq_all(pre), call))
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut pre = Vec::new();
                let c = self.cond(cond, &mut pre)?;
                let t = self.stmts(then_branch)?;
                let e = self.stmts(else_branch)?;
                let body = SimplStmt::Cond(c.expr, Box::new(t), Box::new(e)).with_guards(c.guards);
                Ok(SimplStmt::seq(SimplStmt::seq_all(pre), body))
            }
            TStmt::While { cond, body, .. } => self.while_loop(cond, body, None),
            TStmt::DoWhile { body, cond, .. } => self.while_loop(cond, body, Some(body)),
            TStmt::Return(value, _) => {
                let mut out = SimplStmt::Skip;
                if let Some(e) = value {
                    out = self.assign_to_local(RET_VAR, e)?;
                }
                out = SimplStmt::seq(
                    out,
                    SimplStmt::Basic(Update::Local(EXN_VAR.into(), Expr::u32(EXN_RETURN))),
                );
                Ok(SimplStmt::seq(out, SimplStmt::Throw))
            }
            TStmt::Break(_) => {
                if self.loop_depth == 0 {
                    return self.err("`break` outside of a loop");
                }
                Ok(SimplStmt::seq(
                    SimplStmt::Basic(Update::Local(EXN_VAR.into(), Expr::u32(EXN_BREAK))),
                    SimplStmt::Throw,
                ))
            }
            TStmt::Continue(_) => {
                if self.loop_depth == 0 {
                    return self.err("`continue` outside of a loop");
                }
                Ok(SimplStmt::seq(
                    SimplStmt::Basic(Update::Local(EXN_VAR.into(), Expr::u32(EXN_CONTINUE))),
                    SimplStmt::Throw,
                ))
            }
            TStmt::Block(b) => self.stmts(b),
        }
    }

    /// Translates a `while` (or, when `pre_body` is given, a `do`/`while`).
    ///
    /// The conservative encoding (the "exception dance"):
    ///
    /// ```text
    /// TRY
    ///   guards(c);;
    ///   WHILE c DO
    ///     TRY body CATCH IF exn = Continue THEN SKIP ELSE THROW FI END;;
    ///     guards(c)
    ///   OD
    /// CATCH IF exn = Break THEN SKIP ELSE THROW FI END
    /// ```
    fn while_loop(
        &mut self,
        cond: &TExpr,
        body: &[TStmt],
        pre_body: Option<&[TStmt]>,
    ) -> Result<SimplStmt> {
        let mut pre = Vec::new();
        let c = self.cond(cond, &mut pre)?;
        if !pre.is_empty() {
            return self.err("function calls in loop conditions are unsupported");
        }
        self.loop_depth += 1;
        let body_tr = self.stmts(body)?;
        let first_tr = match pre_body {
            Some(b) => Some(self.stmts(b)?),
            None => None,
        };
        self.loop_depth -= 1;

        let exn_is = |v: u32| Expr::eq(Expr::Local(EXN_VAR.into()), Expr::u32(v));
        let continue_handler = SimplStmt::Cond(
            exn_is(EXN_CONTINUE),
            Box::new(SimplStmt::Skip),
            Box::new(SimplStmt::Throw),
        );
        let break_handler = SimplStmt::Cond(
            exn_is(EXN_BREAK),
            Box::new(SimplStmt::Skip),
            Box::new(SimplStmt::Throw),
        );

        let cond_guards = |this: &TrExpr| {
            SimplStmt::seq_all(
                this.guards
                    .iter()
                    .cloned()
                    .map(|(k, g)| SimplStmt::Guard(k, g, Box::new(SimplStmt::Skip))),
            )
        };

        let guarded_body = SimplStmt::seq(
            SimplStmt::TryCatch(Box::new(body_tr), Box::new(continue_handler.clone())),
            cond_guards(&c),
        );
        let mut inner = SimplStmt::seq(
            cond_guards(&c),
            SimplStmt::While(c.expr.clone(), Box::new(guarded_body)),
        );
        if let Some(first) = first_tr {
            // do/while: run the body once before the loop proper.
            inner = SimplStmt::seq(
                SimplStmt::seq(
                    SimplStmt::TryCatch(Box::new(first), Box::new(continue_handler)),
                    SimplStmt::Skip,
                ),
                inner,
            );
        }
        Ok(SimplStmt::TryCatch(Box::new(inner), Box::new(break_handler)))
    }

    /// `local := e` with call hoisting and guards.
    fn assign_to_local(&mut self, name: &str, e: &TExpr) -> Result<SimplStmt> {
        let mut pre = Vec::new();
        let tr = self.rvalue(e, &mut pre)?;
        let upd =
            SimplStmt::Basic(Update::Local(name.to_owned(), tr.expr)).with_guards(tr.guards);
        Ok(SimplStmt::seq(SimplStmt::seq_all(pre), upd))
    }

    fn assign(&mut self, lhs: &TExpr, rhs: &TExpr) -> Result<SimplStmt> {
        let mut pre = Vec::new();
        let rv = self.rvalue(rhs, &mut pre)?;
        let (mut guards, upd) = self.lvalue_update(lhs, rv.expr, &mut pre)?;
        let mut all = rv.guards;
        all.append(&mut guards);
        Ok(SimplStmt::seq(
            SimplStmt::seq_all(pre),
            SimplStmt::Basic(upd).with_guards(all),
        ))
    }

    /// Resolves an lvalue to a state update storing `value`.
    pub fn lvalue_update(
        &mut self,
        lhs: &TExpr,
        value: Expr,
        pre: &mut Vec<SimplStmt>,
    ) -> Result<(Vec<(GuardKind, Expr)>, Update)> {
        match &lhs.kind {
            TExprKind::Local(n) => Ok((Vec::new(), Update::Local(n.clone(), value))),
            TExprKind::Global(n) => Ok((Vec::new(), Update::Global(n.clone(), value))),
            TExprKind::Unary(CUnOp::Deref, p) => {
                let pointee = ctype_to_ty(&lhs.ty);
                let pv = self.rvalue(p, pre)?;
                let mut guards = pv.guards;
                guards.push((
                    GuardKind::PtrValid,
                    Expr::c_guard(pointee.clone(), pv.expr.clone()),
                ));
                Ok((guards, Update::Heap(pointee, pv.expr, value)))
            }
            // a[i] = v — functional update of the array variable.
            TExprKind::Index(base, idx) => {
                let (name, is_local, arr, iv, guards) = self.index_parts(base, idx, pre)?;
                let upd = Expr::arr_upd(arr, iv, value);
                Ok((
                    guards,
                    if is_local {
                        Update::Local(name, upd)
                    } else {
                        Update::Global(name, upd)
                    },
                ))
            }
            TExprKind::Member(inner, field) => {
                // Walk down a member chain to its root.
                let mut path = vec![(field.clone(), ctype_to_ty(&lhs.ty))];
                let mut cur = inner;
                while let TExprKind::Member(deeper, f) = &cur.kind {
                    path.push((f.clone(), ctype_to_ty(&cur.ty)));
                    cur = deeper;
                }
                path.reverse();
                match &cur.kind {
                    // (*p).f…g = v  — pointer-offset heap write (Sec 4.5).
                    TExprKind::Unary(CUnOp::Deref, p) => {
                        let struct_ty = ctype_to_ty(&cur.ty);
                        let Ty::Struct(mut sname) = struct_ty.clone() else {
                            return self.err("member access through non-struct pointer");
                        };
                        let pv = self.rvalue(p, pre)?;
                        let mut guards = pv.guards;
                        guards.push((
                            GuardKind::PtrValid,
                            Expr::c_guard(struct_ty, pv.expr.clone()),
                        ));
                        let mut offset = 0u64;
                        let mut fty = Ty::Unit;
                        for (f, t) in &path {
                            offset += self
                                .tp
                                .tenv
                                .field_offset(&sname, f)
                                .map_err(|e| terr(e.to_string()))?;
                            fty = t.clone();
                            if let Ty::Struct(next) = t {
                                sname = next.clone();
                            }
                        }
                        let ptr = Expr::binop(BinOp::PtrAdd, pv.expr, Expr::u32(offset as u32));
                        Ok((guards, Update::Heap(fty, ptr, value)))
                    }
                    // x.f…g = v for a local/global struct — functional update.
                    TExprKind::Local(_) | TExprKind::Global(_) => {
                        let root = self.rvalue(cur, pre)?;
                        // Build nested UpdateField from the inside out.
                        let mut acc = value;
                        for i in (0..path.len()).rev() {
                            let mut target = root.expr.clone();
                            for (f, _) in &path[..i] {
                                target = Expr::field(target, f.clone());
                            }
                            acc = Expr::UpdateField(
                                ir::IExpr::new(target),
                                path[i].0.clone(),
                                ir::IExpr::new(acc),
                            );
                        }
                        let upd = match &cur.kind {
                            TExprKind::Local(n) => Update::Local(n.clone(), acc),
                            TExprKind::Global(n) => Update::Global(n.clone(), acc),
                            _ => unreachable!(),
                        };
                        Ok((root.guards, upd))
                    }
                    // arr[i].f…g = v — update the field inside the element,
                    // then store the element back (index evaluated once).
                    TExprKind::Index(base, idx) => {
                        let (name, is_local, arr, iv, guards) =
                            self.index_parts(base, idx, pre)?;
                        let element = Expr::index(arr.clone(), iv.clone());
                        let mut acc = value;
                        for i in (0..path.len()).rev() {
                            let mut target = element.clone();
                            for (f, _) in &path[..i] {
                                target = Expr::field(target, f.clone());
                            }
                            acc = Expr::UpdateField(
                                ir::IExpr::new(target),
                                path[i].0.clone(),
                                ir::IExpr::new(acc),
                            );
                        }
                        let upd = Expr::arr_upd(arr, iv, acc);
                        Ok((
                            guards,
                            if is_local {
                                Update::Local(name, upd)
                            } else {
                                Update::Global(name, upd)
                            },
                        ))
                    }
                    _ => self.err("unsupported lvalue shape"),
                }
            }
            _ => self.err(format!("not an lvalue: {lhs:?}")),
        }
    }

    /// Decomposes an array access `base[idx]`: the array variable's name and
    /// locality, its value expression, the translated index, and the
    /// accumulated guards ending in the in-bounds check.
    fn index_parts(
        &mut self,
        base: &TExpr,
        idx: &TExpr,
        pre: &mut Vec<SimplStmt>,
    ) -> Result<IndexParts> {
        let (name, is_local, arr) = match &base.kind {
            TExprKind::Local(n) => (n.clone(), true, Expr::local(n)),
            TExprKind::Global(n) => (n.clone(), false, Expr::global(n)),
            _ => return self.err("array expressions must be named variables"),
        };
        let CType::Arr(_, n) = &base.ty else {
            return self.err(format!("indexing non-array type `{}`", base.ty));
        };
        let iv = self.rvalue(idx, pre)?;
        let mut guards = iv.guards;
        let (w, s) = int_shape(&idx.ty)?;
        // i < N, and 0 ≤ i when the index is signed.
        let mut ok = Expr::binop(BinOp::Lt, iv.expr.clone(), Expr::word(Word::new(*n, w, s)));
        if s == Signedness::Signed {
            ok = Expr::and(
                Expr::binop(BinOp::Le, Expr::word(Word::zero(w, s)), iv.expr.clone()),
                ok,
            );
        }
        guards.push((GuardKind::ArrayBounds, ok));
        Ok((name, is_local, arr, iv.expr, guards))
    }

    // ---- calls -------------------------------------------------------------

    /// Translates call arguments, returning (guards, argument expressions)
    /// and pushing hoisted inner calls into `pre`.
    pub fn call_args(
        &mut self,
        args: &[TExpr],
        pre: &mut Vec<SimplStmt>,
    ) -> Result<GuardedArgs> {
        let mut guards = Vec::new();
        let mut exprs = Vec::new();
        for a in args {
            let tr = self.rvalue(a, pre)?;
            guards.extend(tr.guards);
            exprs.push(tr.expr);
        }
        Ok((guards, exprs))
    }

    /// Hoists a call expression into `pre`, returning the temp local.
    fn hoist_call(
        &mut self,
        name: &str,
        args: &[TExpr],
        ret: &CType,
        pre: &mut Vec<SimplStmt>,
    ) -> Result<Expr> {
        if *ret == CType::Void {
            return self.err(format!("void call `{name}` used as a value"));
        }
        let (guards, arg_exprs) = self.call_args(args, pre)?;
        let tmp = self.fresh_tmp(ctype_to_ty(ret));
        pre.push(
            SimplStmt::Call {
                fname: name.to_owned(),
                args: arg_exprs,
                ret_local: Some(tmp.clone()),
            }
            .with_guards(guards),
        );
        Ok(Expr::local(tmp))
    }

    // ---- expressions -------------------------------------------------------

    /// Translates an expression used for its value.
    pub fn rvalue(&mut self, e: &TExpr, pre: &mut Vec<SimplStmt>) -> Result<TrExpr> {
        if is_boolish(e) {
            let c = self.cond(e, pre)?;
            let (w, s) = int_shape(&e.ty)?;
            return Ok(TrExpr {
                guards: c.guards,
                expr: Expr::ite(
                    c.expr,
                    Expr::word(Word::new(1, w, s)),
                    Expr::word(Word::new(0, w, s)),
                ),
            });
        }
        match &e.kind {
            TExprKind::IntLit(v) => {
                let (w, s) = int_shape(&e.ty)?;
                Ok(TrExpr::pure(Expr::word(Word::new(*v, w, s))))
            }
            TExprKind::Null => Ok(TrExpr::pure(Expr::null(Ty::Unit))),
            TExprKind::Local(n) => Ok(TrExpr::pure(Expr::local(n))),
            TExprKind::Global(n) => Ok(TrExpr::pure(Expr::global(n))),
            TExprKind::Call(name, args) => {
                let ret = e.ty.clone();
                self.hoist_call(name, args, &ret, pre).map(TrExpr::pure)
            }
            TExprKind::Unary(CUnOp::Deref, p) => {
                let pointee = ctype_to_ty(&e.ty);
                let pv = self.rvalue(p, pre)?;
                let mut guards = pv.guards;
                guards.push((
                    GuardKind::PtrValid,
                    Expr::c_guard(pointee.clone(), pv.expr.clone()),
                ));
                Ok(TrExpr {
                    guards,
                    expr: Expr::read_heap(pointee, pv.expr),
                })
            }
            TExprKind::Unary(CUnOp::Neg, a) => {
                let av = self.rvalue(a, pre)?;
                let (w, s) = int_shape(&e.ty)?;
                let mut guards = av.guards;
                if s == Signedness::Signed {
                    // -(INT_MIN) overflows; everything else is fine.
                    guards.push((
                        GuardKind::SignedOverflow,
                        Expr::binop(
                            BinOp::Ne,
                            av.expr.clone(),
                            min_word_lit(w, s),
                        ),
                    ));
                }
                Ok(TrExpr {
                    guards,
                    expr: Expr::unop(UnOp::Neg, av.expr),
                })
            }
            TExprKind::Unary(CUnOp::BitNot, a) => {
                let av = self.rvalue(a, pre)?;
                Ok(TrExpr {
                    guards: av.guards,
                    expr: Expr::unop(UnOp::BitNot, av.expr),
                })
            }
            TExprKind::Unary(CUnOp::Not, _) => unreachable!("boolish handled above"),
            TExprKind::Member(inner, field) => {
                if let TExprKind::Unary(CUnOp::Deref, p) = &inner.kind {
                    // p->f : pointer-offset heap read.
                    let struct_ty = ctype_to_ty(&inner.ty);
                    let Ty::Struct(sname) = &struct_ty else {
                        return self.err("member access through non-struct pointer");
                    };
                    let offset = self
                        .tp
                        .tenv
                        .field_offset(sname, field)
                        .map_err(|e| terr(e.to_string()))?;
                    let fty = ctype_to_ty(&e.ty);
                    let pv = self.rvalue(p, pre)?;
                    let mut guards = pv.guards;
                    guards.push((
                        GuardKind::PtrValid,
                        Expr::c_guard(struct_ty.clone(), pv.expr.clone()),
                    ));
                    let ptr = Expr::binop(BinOp::PtrAdd, pv.expr, Expr::u32(offset as u32));
                    Ok(TrExpr {
                        guards,
                        expr: Expr::read_heap(fty, ptr),
                    })
                } else {
                    let iv = self.rvalue(inner, pre)?;
                    Ok(TrExpr {
                        guards: iv.guards,
                        expr: Expr::field(iv.expr, field.clone()),
                    })
                }
            }
            TExprKind::Index(base, idx) => {
                let (_, _, arr, iv, guards) = self.index_parts(base, idx, pre)?;
                Ok(TrExpr {
                    guards,
                    expr: Expr::index(arr, iv),
                })
            }
            TExprKind::Binary(op, l, r) => self.binary(*op, l, r, &e.ty, pre),
            TExprKind::Cast(to, inner) => self.cast(to, inner, pre),
            TExprKind::Cond(c, t, f) => {
                let cv = self.cond(c, pre)?;
                let tv = self.rvalue(t, pre)?;
                let fv = self.rvalue(f, pre)?;
                let mut guards = cv.guards;
                for (k, g) in tv.guards {
                    guards.push((k, Expr::implies(cv.expr.clone(), g)));
                }
                for (k, g) in fv.guards {
                    guards.push((k, Expr::implies(Expr::not(cv.expr.clone()), g)));
                }
                Ok(TrExpr {
                    guards,
                    expr: Expr::ite(cv.expr, tv.expr, fv.expr),
                })
            }
        }
    }

    fn cast(&mut self, to: &CType, inner: &TExpr, pre: &mut Vec<SimplStmt>) -> Result<TrExpr> {
        // NULL to a pointer type: produce a typed null directly.
        if matches!(inner.kind, TExprKind::Null) {
            if let CType::Ptr(p) = to {
                return Ok(TrExpr::pure(Expr::null(ctype_to_ty(p))));
            }
        }
        let iv = self.rvalue(inner, pre)?;
        let expr = match (&inner.ty, to) {
            (CType::Int(..), CType::Int(w, s)) => {
                Expr::cast(CastKind::WordToWord(*w, *s), iv.expr)
            }
            (CType::Ptr(_), CType::Ptr(p)) => {
                Expr::cast(CastKind::PtrRetype(ctype_to_ty(p)), iv.expr)
            }
            (CType::Int(..), CType::Ptr(p)) => Expr::cast(
                CastKind::WordToPtr(ctype_to_ty(p)),
                Expr::cast(
                    CastKind::WordToWord(Width::W32, Signedness::Unsigned),
                    iv.expr,
                ),
            ),
            (CType::Ptr(_), CType::Int(w, s)) => {
                let as_word = Expr::cast(CastKind::PtrToWord, iv.expr);
                if (*w, *s) == (Width::W32, Signedness::Unsigned) {
                    as_word
                } else {
                    Expr::cast(CastKind::WordToWord(*w, *s), as_word)
                }
            }
            (from, to) => {
                return self.err(format!("unsupported cast `{from}` → `{to}`"));
            }
        };
        Ok(TrExpr {
            guards: iv.guards,
            expr,
        })
    }

    fn binary(
        &mut self,
        op: CBinOp,
        l: &TExpr,
        r: &TExpr,
        result_ty: &CType,
        pre: &mut Vec<SimplStmt>,
    ) -> Result<TrExpr> {
        use CBinOp::*;
        // Pointer arithmetic: scale the index by the element size.
        if (op == Add || op == Sub) && l.ty.is_ptr() {
            let CType::Ptr(pointee) = &l.ty else { unreachable!() };
            let elem = ctype_to_ty(pointee);
            let size = self
                .tp
                .tenv
                .size_of(&elem)
                .map_err(|e| terr(e.to_string()))?;
            let lv = self.rvalue(l, pre)?;
            let rv = self.rvalue(r, pre)?;
            let mut guards = lv.guards;
            guards.extend(rv.guards);
            let scaled = Expr::binop(
                BinOp::Mul,
                Expr::cast(
                    CastKind::WordToWord(Width::W32, Signedness::Unsigned),
                    rv.expr,
                ),
                Expr::u32(size as u32),
            );
            let offset = if op == Sub {
                Expr::unop(UnOp::Neg, scaled)
            } else {
                scaled
            };
            return Ok(TrExpr {
                guards,
                expr: Expr::binop(BinOp::PtrAdd, lv.expr, offset),
            });
        }

        let lv = self.rvalue(l, pre)?;
        let rv = self.rvalue(r, pre)?;
        let mut guards = lv.guards.clone();
        guards.extend(rv.guards.clone());
        let (w, s) = int_shape(result_ty)?;

        let signed = s == Signedness::Signed;
        let sint = |e: &Expr| Expr::cast(CastKind::Sint, e.clone());
        let in_range = |e: Expr| {
            let min = Expr::int(Word::min_value(w, s));
            let max = Expr::int(Word::max_value(w, s));
            Expr::and(
                Expr::binop(BinOp::Le, min, e.clone()),
                Expr::binop(BinOp::Le, e, max),
            )
        };

        let bop = match op {
            Add => BinOp::Add,
            Sub => BinOp::Sub,
            Mul => BinOp::Mul,
            Div => BinOp::Div,
            Mod => BinOp::Mod,
            BitAnd => BinOp::BitAnd,
            BitOr => BinOp::BitOr,
            BitXor => BinOp::BitXor,
            Shl => BinOp::Shl,
            Shr => BinOp::Shr,
            _ => unreachable!("comparisons/logical are boolish"),
        };

        match op {
            Add | Sub | Mul if signed => {
                let iop = match op {
                    Add => BinOp::Add,
                    Sub => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                guards.push((
                    GuardKind::SignedOverflow,
                    in_range(Expr::binop(iop, sint(&lv.expr), sint(&rv.expr))),
                ));
            }
            Div | Mod => {
                let zero = Expr::word(Word::zero(w, s));
                guards.push((
                    GuardKind::DivByZero,
                    Expr::binop(BinOp::Ne, rv.expr.clone(), zero),
                ));
                if signed {
                    // INT_MIN / -1 overflows.
                    guards.push((
                        GuardKind::SignedOverflow,
                        Expr::not(Expr::and(
                            Expr::eq(lv.expr.clone(), min_word_lit(w, s)),
                            Expr::eq(rv.expr.clone(), Expr::word(Word::of_int(
                                &bignum::Int::from(-1i64),
                                w,
                                s,
                            ))),
                        )),
                    ));
                }
            }
            Shl | Shr => {
                let width_lit = match &r.ty {
                    CType::Int(rw, rs) => Expr::word(Word::new(u64::from(w.bits()), *rw, *rs)),
                    _ => Expr::u32(w.bits()),
                };
                let mut ok = Expr::binop(BinOp::Lt, rv.expr.clone(), width_lit);
                if let CType::Int(rw, Signedness::Signed) = &r.ty {
                    ok = Expr::and(
                        Expr::binop(
                            BinOp::Le,
                            Expr::word(Word::zero(*rw, Signedness::Signed)),
                            rv.expr.clone(),
                        ),
                        ok,
                    );
                }
                guards.push((GuardKind::ShiftBound, ok));
                if signed {
                    // Shifting signed values requires a non-negative operand;
                    // left shift must also not overflow.
                    let mut ok =
                        Expr::binop(BinOp::Le, Expr::word(Word::zero(w, s)), lv.expr.clone());
                    if op == Shl {
                        let max = Expr::word(Word::of_int(&Word::max_value(w, s), w, s));
                        ok = Expr::and(
                            ok,
                            Expr::binop(
                                BinOp::Le,
                                lv.expr.clone(),
                                Expr::binop(BinOp::Shr, max, rv.expr.clone()),
                            ),
                        );
                    }
                    guards.push((GuardKind::SignedOverflow, ok));
                }
            }
            _ => {}
        }

        Ok(TrExpr {
            guards,
            expr: Expr::binop(bop, lv.expr, rv.expr),
        })
    }

    /// Translates a scalar expression into a boolean condition.
    pub fn cond(&mut self, e: &TExpr, pre: &mut Vec<SimplStmt>) -> Result<TrExpr> {
        use CBinOp::*;
        match &e.kind {
            TExprKind::Binary(op @ (Eq | Ne | Lt | Le | Gt | Ge), l, r) => {
                let lv = self.rvalue(l, pre)?;
                let rv = self.rvalue(r, pre)?;
                let mut guards = lv.guards;
                guards.extend(rv.guards);
                let expr = match op {
                    Eq => Expr::binop(BinOp::Eq, lv.expr, rv.expr),
                    Ne => Expr::binop(BinOp::Ne, lv.expr, rv.expr),
                    Lt => Expr::binop(BinOp::Lt, lv.expr, rv.expr),
                    Le => Expr::binop(BinOp::Le, lv.expr, rv.expr),
                    Gt => Expr::binop(BinOp::Lt, rv.expr, lv.expr),
                    Ge => Expr::binop(BinOp::Le, rv.expr, lv.expr),
                    _ => unreachable!(),
                };
                Ok(TrExpr { guards, expr })
            }
            TExprKind::Binary(op @ (LAnd | LOr), l, r) => {
                let lc = self.cond(l, pre)?;
                let mut rpre = Vec::new();
                let rc = self.cond(r, &mut rpre)?;
                if !rpre.is_empty() {
                    return self.err(
                        "function calls in short-circuit operands are unsupported",
                    );
                }
                let mut guards = lc.guards;
                // Short-circuit: the right operand's guards are only required
                // when it is actually evaluated.
                for (k, g) in rc.guards {
                    let weakened = if *op == LAnd {
                        Expr::implies(lc.expr.clone(), g)
                    } else {
                        Expr::implies(Expr::not(lc.expr.clone()), g)
                    };
                    guards.push((k, weakened));
                }
                let bop = if *op == LAnd { BinOp::And } else { BinOp::Or };
                Ok(TrExpr {
                    guards,
                    expr: Expr::binop(bop, lc.expr, rc.expr),
                })
            }
            TExprKind::Unary(CUnOp::Not, a) => {
                let ac = self.cond(a, pre)?;
                Ok(TrExpr {
                    guards: ac.guards,
                    expr: Expr::not(ac.expr),
                })
            }
            _ => {
                let v = self.rvalue(e, pre)?;
                let zero = match &e.ty {
                    CType::Int(w, s) => Expr::word(Word::zero(*w, *s)),
                    CType::Ptr(p) => Expr::null(ctype_to_ty(p)),
                    t => return self.err(format!("non-scalar condition of type `{t}`")),
                };
                Ok(TrExpr {
                    guards: v.guards,
                    expr: Expr::binop(BinOp::Ne, v.expr, zero),
                })
            }
        }
    }
}

/// Is this expression boolean-valued (a comparison, logical operator, or
/// negation)?
fn is_boolish(e: &TExpr) -> bool {
    use CBinOp::*;
    matches!(
        &e.kind,
        TExprKind::Binary(Eq | Ne | Lt | Le | Gt | Ge | LAnd | LOr, _, _)
            | TExprKind::Unary(CUnOp::Not, _)
    )
}

fn int_shape(t: &CType) -> Result<(Width, Signedness)> {
    match t {
        CType::Int(w, s) => Ok((*w, *s)),
        t => Err(terr(format!(
            "expected an integer type, got `{t}`"
        ))),
    }
}

fn min_word_lit(w: Width, s: Signedness) -> Expr {
    Expr::word(Word::of_int(&Word::min_value(w, s), w, s))
}
