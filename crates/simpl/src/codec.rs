//! Binary codec impls for the Simpl statement language (see `ir::codec`).
//!
//! Needed because `kernel::Judgment::L1` embeds the Simpl statement a
//! monadic program was translated from, so persisted theorems carry
//! Simpl terms.

use ir::codec::{Codec, DecodeError, Decoder, Encoder};
use ir::expr::Expr;
use ir::update::Update;

use crate::stmt::{GuardKind, SimplStmt};

impl Codec for SimplStmt {
    fn encode(&self, e: &mut Encoder) {
        match self {
            SimplStmt::Skip => e.u8(0),
            SimplStmt::Basic(u) => {
                e.u8(1);
                u.encode(e);
            }
            SimplStmt::Seq(a, b) => {
                e.u8(2);
                a.encode(e);
                b.encode(e);
            }
            SimplStmt::Cond(c, a, b) => {
                e.u8(3);
                c.encode(e);
                a.encode(e);
                b.encode(e);
            }
            SimplStmt::While(c, b) => {
                e.u8(4);
                c.encode(e);
                b.encode(e);
            }
            SimplStmt::Guard(k, g, c) => {
                e.u8(5);
                k.encode(e);
                g.encode(e);
                c.encode(e);
            }
            SimplStmt::Throw => e.u8(6),
            SimplStmt::TryCatch(a, b) => {
                e.u8(7);
                a.encode(e);
                b.encode(e);
            }
            SimplStmt::Call {
                fname,
                args,
                ret_local,
            } => {
                e.u8(8);
                e.str(fname);
                args.encode(e);
                ret_local.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(SimplStmt::Skip),
            1 => Update::decode(d).map(SimplStmt::Basic),
            2 => Ok(SimplStmt::Seq(Box::decode(d)?, Box::decode(d)?)),
            3 => Ok(SimplStmt::Cond(
                Expr::decode(d)?,
                Box::decode(d)?,
                Box::decode(d)?,
            )),
            4 => Ok(SimplStmt::While(Expr::decode(d)?, Box::decode(d)?)),
            5 => Ok(SimplStmt::Guard(
                GuardKind::decode(d)?,
                Expr::decode(d)?,
                Box::decode(d)?,
            )),
            6 => Ok(SimplStmt::Throw),
            7 => Ok(SimplStmt::TryCatch(Box::decode(d)?, Box::decode(d)?)),
            8 => Ok(SimplStmt::Call {
                fname: d.str()?,
                args: Vec::decode(d)?,
                ret_local: Option::decode(d)?,
            }),
            b => Err(DecodeError(format!("invalid SimplStmt tag {b}"))),
        };
        d.exit();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn simpl_round_trips() {
        let s = SimplStmt::Guard(
            GuardKind::DivByZero,
            Expr::var("b"),
            Box::new(SimplStmt::seq(
                SimplStmt::Basic(Update::Local("x".into(), Expr::u32(1))),
                SimplStmt::Cond(
                    Expr::var("c"),
                    Box::new(SimplStmt::Throw),
                    Box::new(SimplStmt::Call {
                        fname: "f".into(),
                        args: vec![Expr::var("x")],
                        ret_local: Some("r".into()),
                    }),
                ),
            )),
        );
        let bytes = encode_to_vec(&s);
        let back: SimplStmt = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn corrupt_simpl_never_panics() {
        let s = SimplStmt::While(Expr::var("c"), Box::new(SimplStmt::Skip));
        let bytes = encode_to_vec(&s);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] = m[i].wrapping_add(1);
            let _ = decode_from_slice::<SimplStmt>(&m);
        }
    }
}
