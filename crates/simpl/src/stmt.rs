//! The deep-embedded Simpl statement language.

use std::collections::BTreeMap;
use std::fmt;

use ir::expr::Expr;
use ir::metrics::SpecMetrics;
use ir::ty::{Ty, TypeEnv};
use ir::update::Update;

pub use ir::guard::GuardKind;

/// A Simpl statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SimplStmt {
    /// `SKIP`.
    Skip,
    /// `Basic m` — a state update.
    Basic(Update),
    /// `c1 ;; c2`.
    Seq(Box<SimplStmt>, Box<SimplStmt>),
    /// `IF b THEN c1 ELSE c2 FI`.
    Cond(Expr, Box<SimplStmt>, Box<SimplStmt>),
    /// `WHILE b DO c OD`.
    While(Expr, Box<SimplStmt>),
    /// `GUARD kind g c` — execute `c` if `g` holds, otherwise *fault*.
    Guard(GuardKind, Expr, Box<SimplStmt>),
    /// `THROW` — abrupt termination; the reason is in `global_exn_var`.
    Throw,
    /// `TRY c1 CATCH c2 END`.
    TryCatch(Box<SimplStmt>, Box<SimplStmt>),
    /// Procedure call: evaluate arguments, run the callee, store the result
    /// (if any) into a caller local.
    Call {
        /// Callee name.
        fname: String,
        /// Argument expressions (call-by-value).
        args: Vec<Expr>,
        /// Caller local receiving the return value.
        ret_local: Option<String>,
    },
}

impl SimplStmt {
    /// Sequencing that drops `SKIP` units.
    #[must_use]
    pub fn seq(a: SimplStmt, b: SimplStmt) -> SimplStmt {
        match (a, b) {
            (SimplStmt::Skip, b) => b,
            (a, SimplStmt::Skip) => a,
            (a, b) => SimplStmt::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences a list of statements.
    #[must_use]
    pub fn seq_all(stmts: impl IntoIterator<Item = SimplStmt>) -> SimplStmt {
        stmts
            .into_iter()
            .fold(SimplStmt::Skip, SimplStmt::seq)
    }

    /// Wraps `self` in a chain of guards (innermost first in the vector).
    #[must_use]
    pub fn with_guards(self, guards: Vec<(GuardKind, Expr)>) -> SimplStmt {
        guards
            .into_iter()
            .rev()
            .fold(self, |acc, (k, g)| SimplStmt::Guard(k, g, Box::new(acc)))
    }

    /// Number of statement + expression AST nodes (term-size metric).
    #[must_use]
    pub fn term_size(&self) -> usize {
        match self {
            SimplStmt::Skip | SimplStmt::Throw => 1,
            SimplStmt::Basic(u) => 1 + u.term_size(),
            SimplStmt::Seq(a, b) | SimplStmt::TryCatch(a, b) => 1 + a.term_size() + b.term_size(),
            SimplStmt::Cond(c, a, b) => 1 + c.term_size() + a.term_size() + b.term_size(),
            SimplStmt::While(c, b) => 1 + c.term_size() + b.term_size(),
            SimplStmt::Guard(_, g, c) => 1 + g.term_size() + c.term_size(),
            SimplStmt::Call { args, .. } => {
                1 + args.iter().map(Expr::term_size).sum::<usize>()
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            SimplStmt::Skip => writeln!(f, "{pad}SKIP"),
            SimplStmt::Basic(u) => writeln!(f, "{pad}{u};;"),
            SimplStmt::Seq(a, b) => {
                a.fmt_indented(f, indent)?;
                b.fmt_indented(f, indent)
            }
            SimplStmt::Cond(c, a, b) => {
                writeln!(f, "{pad}IF {{|{c}|}} THEN")?;
                a.fmt_indented(f, indent + 1)?;
                if !matches!(**b, SimplStmt::Skip) {
                    writeln!(f, "{pad}ELSE")?;
                    b.fmt_indented(f, indent + 1)?;
                }
                writeln!(f, "{pad}FI;;")
            }
            SimplStmt::While(c, b) => {
                writeln!(f, "{pad}WHILE {{|{c}|}} DO")?;
                b.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}OD;;")
            }
            SimplStmt::Guard(k, g, c) => {
                writeln!(f, "{pad}GUARD {k} {{|{g}|}};;")?;
                c.fmt_indented(f, indent)
            }
            SimplStmt::Throw => writeln!(f, "{pad}THROW;;"),
            SimplStmt::TryCatch(a, b) => {
                writeln!(f, "{pad}TRY")?;
                a.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}CATCH")?;
                b.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}END;;")
            }
            SimplStmt::Call {
                fname,
                args,
                ret_local,
            } => {
                write!(f, "{pad}")?;
                if let Some(r) = ret_local {
                    write!(f, "´{r} :== ")?;
                }
                write!(f, "CALL {fname}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, ");;")
            }
        }
    }
}

impl fmt::Display for SimplStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A translated function.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimplFn {
    /// Function name.
    pub name: String,
    /// Parameters with semantic types.
    pub params: Vec<(String, Ty)>,
    /// All locals (including parameters and generated temporaries).
    pub locals: Vec<(String, Ty)>,
    /// Semantic return type (`Ty::Unit` for `void`).
    pub ret_ty: Ty,
    /// The body (already wrapped in the outer `TRY … CATCH SKIP END`).
    pub body: SimplStmt,
}

impl SimplFn {
    /// Complexity metrics of this function's Simpl body.
    #[must_use]
    pub fn metrics(&self) -> SpecMetrics {
        let wrapped = ir::metrics::wrap_text(&self.to_string(), 100);
        SpecMetrics {
            lines: ir::metrics::spec_lines(&wrapped),
            term_size: self.body.term_size(),
        }
    }
}

impl fmt::Display for SimplFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}_body ≡", self.name)?;
        self.body.fmt_indented(f, 1)
    }
}

/// A translated program: functions, layouts, and global initial values.
#[derive(Clone, Debug, Default)]
pub struct SimplProgram {
    /// Structure layouts.
    pub tenv: TypeEnv,
    /// Functions by name.
    pub fns: BTreeMap<String, SimplFn>,
    /// Global variables with initial values.
    pub globals: Vec<(String, ir::value::Value)>,
}

impl SimplProgram {
    /// Looks up a function.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&SimplFn> {
        self.fns.get(name)
    }

    /// An initial concrete state with globals set to their initial values.
    #[must_use]
    pub fn initial_state(&self) -> ir::state::State {
        let mut st = ir::state::State::conc_empty();
        for (n, v) in &self.globals {
            st.set_global(n, v.clone());
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_drops_skip() {
        let b = SimplStmt::Basic(Update::Local("x".into(), Expr::u32(1)));
        assert_eq!(SimplStmt::seq(SimplStmt::Skip, b.clone()), b);
        assert_eq!(SimplStmt::seq(b.clone(), SimplStmt::Skip), b);
    }

    #[test]
    fn guards_wrap_in_order() {
        let s = SimplStmt::Skip.with_guards(vec![
            (GuardKind::PtrValid, Expr::var("g1")),
            (GuardKind::DivByZero, Expr::var("g2")),
        ]);
        let SimplStmt::Guard(GuardKind::PtrValid, g, inner) = &s else {
            panic!("outermost guard should be the first emitted: {s:?}");
        };
        assert_eq!(*g, Expr::var("g1"));
        assert!(matches!(**inner, SimplStmt::Guard(GuardKind::DivByZero, ..)));
    }

    #[test]
    fn term_size_counts() {
        let s = SimplStmt::Cond(
            Expr::var("c"),
            Box::new(SimplStmt::Skip),
            Box::new(SimplStmt::Throw),
        );
        assert_eq!(s.term_size(), 4);
    }

    #[test]
    fn rendering_shape() {
        let s = SimplStmt::TryCatch(
            Box::new(SimplStmt::While(
                Expr::var("c"),
                Box::new(SimplStmt::Throw),
            )),
            Box::new(SimplStmt::Skip),
        );
        let out = s.to_string();
        assert!(out.contains("TRY"));
        assert!(out.contains("WHILE {|c|} DO"));
        assert!(out.contains("CATCH"));
        assert!(out.contains("END"));
    }
}
