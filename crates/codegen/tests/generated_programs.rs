//! The synthetic Table 5 code bases must be well-formed inputs: every
//! generated program parses, typechecks, translates to Simpl, and hits its
//! calibration targets (LoC and function count) within tolerance.

use codegen::{generate, TABLE5};

#[test]
fn all_profiles_parse_and_typecheck() {
    for p in TABLE5 {
        let src = generate(p, 0xAC);
        let typed = cparser::parse_and_check(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        // The generator adds one shared `helper` beyond the published count.
        assert!(
            typed.functions.len() == p.functions || typed.functions.len() == p.functions + 1,
            "{}: {} functions vs published {}",
            p.name,
            typed.functions.len(),
            p.functions
        );
    }
}

#[test]
fn loc_calibration_within_tolerance() {
    for p in TABLE5 {
        let src = generate(p, 0xAC);
        let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
        let err = (loc as f64 - p.loc as f64).abs() / p.loc as f64;
        assert!(
            err < 0.20,
            "{}: generated {loc} LoC vs published {} ({:.0} % off)",
            p.name,
            p.loc,
            err * 100.0
        );
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    let p = &TABLE5[3];
    assert_eq!(generate(p, 7), generate(p, 7));
    assert_ne!(generate(p, 7), generate(p, 8), "different seeds differ");
}

#[test]
fn generated_code_translates_to_simpl() {
    // The two smallest profiles go through the Simpl phase (the full
    // pipeline sweep lives in the Table 5 bench).
    for p in &TABLE5[2..4] {
        let src = generate(p, 0xAC);
        let typed = cparser::parse_and_check(&src).unwrap();
        let sp = simpl::translate_program(&typed)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(
            sp.fns.len() == p.functions || sp.fns.len() == p.functions + 1,
            "{}: {} Simpl functions vs published {}",
            p.name,
            sp.fns.len(),
            p.functions
        );
    }
}

#[test]
fn varied_seeds_stay_well_formed() {
    let p = &TABLE5[4]; // Schorr-Waite profile is the real source; use eChronos.
    let p = if p.functions == 1 { &TABLE5[3] } else { p };
    for seed in 0..20 {
        let src = generate(p, seed);
        cparser::parse_and_check(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
