//! Deterministic synthetic C code-base generation for the Table 5
//! scalability experiment.
//!
//! The paper evaluates AutoCorres on five code bases (seL4, CapDL SysInit,
//! Piccolo, eChronos, Schorr-Waite). Those sources are not available here
//! (and seL4's build preprocessing is out of scope), so this module emits
//! *synthetic* programs calibrated to each project's published line and
//! function counts, with a systems-code feature mix: structures accessed
//! through pointers, bounded loops, signed and unsigned arithmetic (with
//! the corresponding guards), conditionals, and calls between functions.
//! Generation is seeded and fully deterministic, so the benchmark rows are
//! reproducible.
//!
//! What the substitution preserves (DESIGN.md §4): the *shape* of Table 5 —
//! translation cost scaling with program size, AutoCorres output
//! significantly smaller than parser output on the same code — not the
//! absolute numbers of the original verification targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A Table 5 code-base profile.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Project name as listed in the paper.
    pub name: &'static str,
    /// Published lines of code.
    pub loc: usize,
    /// Published function count.
    pub functions: usize,
}

/// The five rows of Table 5.
pub const TABLE5: &[Profile] = &[
    Profile {
        name: "seL4 kernel",
        loc: 10_121,
        functions: 551,
    },
    Profile {
        name: "CapDL SysInit",
        loc: 2_079,
        functions: 163,
    },
    Profile {
        name: "Piccolo kernel",
        loc: 936,
        functions: 56,
    },
    Profile {
        name: "eChronos",
        loc: 563,
        functions: 40,
    },
    Profile {
        name: "Schorr-Waite",
        loc: 19,
        functions: 1,
    },
];

/// Generates a synthetic C translation unit with approximately the
/// profile's function count and line count.
#[must_use]
pub fn generate(profile: &Profile, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str(
        "struct obj { struct obj *next; unsigned state; unsigned refcount; int prio; };\n\n",
    );
    out.push_str("unsigned helper(unsigned x) { return x ^ 0x5au; }\n\n");
    // Lines each function template produces (roughly); used to hit the
    // LoC target with the requested number of functions.
    let per_fn = (profile.loc / profile.functions.max(1)).max(4);
    // Earlier `unsigned → unsigned` functions that caller functions may
    // call — gives the generated code a real (acyclic) call graph, as in
    // the systems code the profiles model.
    let mut callable: Vec<usize> = Vec::new();
    for i in 0..profile.functions {
        let body_budget = per_fn.saturating_sub(3).max(1);
        let f = gen_function(&mut rng, i, body_budget, &mut callable);
        out.push_str(&f);
        out.push('\n');
    }
    out
}

fn gen_function(
    rng: &mut StdRng,
    idx: usize,
    body_lines: usize,
    callable: &mut Vec<usize>,
) -> String {
    let mut s = String::new();
    // Weighted towards the control-flow- and pointer-heavy shapes of
    // systems code (the workloads where the paper's wins are largest);
    // straight-line arithmetic is the minority case.
    match rng.gen_range(0..8) {
        0 => gen_arith_fn(rng, idx, body_lines, &mut s),
        1 | 2 => gen_struct_fn(rng, idx, body_lines, &mut s),
        3 | 4 => {
            gen_loop_fn(rng, idx, body_lines, &mut s);
            callable.push(idx);
        }
        5 | 6 => gen_dispatch_fn(rng, idx, body_lines, &mut s),
        _ => {
            gen_caller_fn(rng, idx, body_lines, callable, &mut s);
            callable.push(idx);
        }
    }
    s
}

/// A random acyclic call graph with the same shape the generator produces:
/// `deps[i]` lists the (lower-index) functions `i` calls. `density` in
/// `[0, 1]` scales how many callees each function gets. Deterministic in
/// `(seed, n, density)`; used by the scheduler property tests.
#[must_use]
pub fn gen_call_graph(seed: u64, n: usize, density: f64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let density = density.clamp(0.0, 1.0);
    (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let max_deps = i.min(4);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let want = (density * (max_deps as f64 + 1.0)) as usize;
            let mut deps: Vec<usize> = Vec::new();
            for _ in 0..want.min(max_deps) {
                // Callees have lower indices, as in `generate` — acyclic.
                let d = rng.gen_range(0..i);
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
            deps.sort_unstable();
            deps
        })
        .collect()
}

/// Error-code dispatch: `if`/`return` chains — the shape where the Simpl
/// exception encoding is at its most verbose and the L2 conditional
/// abstraction wins the most.
fn gen_dispatch_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned code, struct obj *p) {{");
    let _ = writeln!(s, "    if (p == NULL) return 1u;");
    for k in 0..lines.saturating_sub(3) {
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(
                    s,
                    "    if (code == {}u) return {}u;",
                    k + 2,
                    rng.gen_range(0..9)
                );
            }
            1 => {
                let _ = writeln!(
                    s,
                    "    if (p->state == {}u && p->refcount != 0u) return {}u;",
                    rng.gen_range(0..64),
                    k + 2
                );
            }
            _ => {
                let _ = writeln!(s, "    if ((code & {}u) != 0u) p->state = code;", 1 << (k % 8));
            }
        }
    }
    let _ = writeln!(s, "    return 0u;");
    let _ = writeln!(s, "}}");
}

/// Straight-line unsigned/signed arithmetic with division guards.
fn gen_arith_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned a, unsigned b) {{");
    let _ = writeln!(s, "    unsigned acc = a;");
    for k in 0..lines.saturating_sub(2) {
        match rng.gen_range(0..5) {
            0 => {
                let _ = writeln!(s, "    acc = acc + b;");
            }
            1 => {
                let _ = writeln!(s, "    acc = acc * 3u;");
            }
            2 => {
                let _ = writeln!(s, "    acc = acc / (b % 7u + 1u);");
            }
            3 => {
                let _ = writeln!(s, "    acc = acc ^ (b << {}u);", rng.gen_range(0..8));
            }
            _ => {
                let _ = writeln!(
                    s,
                    "    if (acc > {0}u) acc = acc - {0}u;",
                    rng.gen_range(1..100)
                );
            }
        }
        let _ = k;
    }
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// Pointer-based structure manipulation with NULL checks.
fn gen_struct_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(struct obj *p, unsigned v) {{");
    let _ = writeln!(s, "    if (p == NULL) return 0u;");
    for _ in 0..lines.saturating_sub(3) {
        match rng.gen_range(0..4) {
            0 => {
                let _ = writeln!(s, "    p->state = p->state + v;");
            }
            1 => {
                let _ = writeln!(s, "    p->refcount = p->refcount + 1u;");
            }
            2 => {
                let _ = writeln!(
                    s,
                    "    if (p->next != NULL && p->next->state > v) p->next->state = v;"
                );
            }
            _ => {
                let _ = writeln!(s, "    v = v + p->state;");
            }
        }
    }
    let _ = writeln!(s, "    return v;");
    let _ = writeln!(s, "}}");
}

/// Bounded loops over counters and list walks.
fn gen_loop_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let bound = rng.gen_range(2..20);
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    unsigned i = 0;");
    let _ = writeln!(s, "    unsigned acc = 0;");
    let _ = writeln!(s, "    while (i < n % {bound}u) {{");
    let _ = writeln!(s, "        if (acc == 77u) break;");
    for _ in 0..lines.saturating_sub(6).min(8) {
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(s, "        acc = acc + i;");
            }
            1 => {
                let _ = writeln!(s, "        acc = acc ^ {}u;", rng.gen_range(1..64));
            }
            _ => {
                let _ = writeln!(s, "        if (acc > 1000u) acc = acc % 1000u;");
            }
        }
    }
    let _ = writeln!(s, "        i = i + 1u;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// Calls into previously generated functions: the shared helper plus any
/// earlier `unsigned → unsigned` function, so the translation unit has a
/// non-trivial (acyclic) call graph for the scheduler to order.
fn gen_caller_fn(
    rng: &mut StdRng,
    idx: usize,
    lines: usize,
    callable: &[usize],
    s: &mut String,
) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned x) {{");
    let _ = writeln!(s, "    unsigned r = x;");
    for _ in 0..lines.saturating_sub(2).min(6) {
        let k = rng.gen_range(1..50);
        if !callable.is_empty() && rng.gen_range(0..3) == 0 {
            let callee = callable[rng.gen_range(0..callable.len())];
            let _ = writeln!(s, "    r = r ^ fn_{callee}(r % {k}u + 1u);");
        } else {
            let _ = writeln!(s, "    r = r + helper(r + {k}u);");
        }
    }
    let _ = writeln!(s, "    return r;");
    let _ = writeln!(s, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = TABLE5[3]; // eChronos
        assert_eq!(generate(&p, 7), generate(&p, 7));
        assert_ne!(generate(&p, 7), generate(&p, 8));
    }

    #[test]
    fn profiles_hit_their_targets_approximately() {
        for p in &TABLE5[2..4] {
            // Piccolo, eChronos (small enough for a unit test)
            let src = generate(p, 42);
            let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
            let target = p.loc as f64;
            assert!(
                (loc as f64) > target * 0.5 && (loc as f64) < target * 2.0,
                "{}: {} lines vs target {}",
                p.name,
                loc,
                p.loc
            );
        }
    }

    #[test]
    fn call_graph_is_acyclic_and_deterministic() {
        let g = gen_call_graph(9, 50, 0.6);
        assert_eq!(g, gen_call_graph(9, 50, 0.6));
        for (i, deps) in g.iter().enumerate() {
            for &d in deps {
                assert!(d < i, "edge {i} → {d} is not toward a lower index");
            }
        }
        assert!(g.iter().any(|d| !d.is_empty()), "graph has no edges at all");
        assert!(gen_call_graph(9, 50, 0.0).iter().all(Vec::is_empty));
    }

    #[test]
    fn generated_code_passes_the_frontend() {
        for p in &TABLE5[2..5] {
            let src = generate(p, 42);
            cparser::parse_and_check(&src)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }
}
