//! Deterministic synthetic C code-base generation for the Table 5
//! scalability experiment.
//!
//! The paper evaluates AutoCorres on five code bases (seL4, CapDL SysInit,
//! Piccolo, eChronos, Schorr-Waite). Those sources are not available here
//! (and seL4's build preprocessing is out of scope), so this module emits
//! *synthetic* programs calibrated to each project's published line and
//! function counts, with a systems-code feature mix: structures accessed
//! through pointers, bounded loops, signed and unsigned arithmetic (with
//! the corresponding guards), conditionals, and calls between functions.
//! Generation is seeded and fully deterministic, so the benchmark rows are
//! reproducible.
//!
//! What the substitution preserves (DESIGN.md §4): the *shape* of Table 5 —
//! translation cost scaling with program size, AutoCorres output
//! significantly smaller than parser output on the same code — not the
//! absolute numbers of the original verification targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A Table 5 code-base profile.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Project name as listed in the paper.
    pub name: &'static str,
    /// Published lines of code.
    pub loc: usize,
    /// Published function count.
    pub functions: usize,
}

/// The five rows of Table 5.
pub const TABLE5: &[Profile] = &[
    Profile {
        name: "seL4 kernel",
        loc: 10_121,
        functions: 551,
    },
    Profile {
        name: "CapDL SysInit",
        loc: 2_079,
        functions: 163,
    },
    Profile {
        name: "Piccolo kernel",
        loc: 936,
        functions: 56,
    },
    Profile {
        name: "eChronos",
        loc: 563,
        functions: 40,
    },
    Profile {
        name: "Schorr-Waite",
        loc: 19,
        functions: 1,
    },
];

/// Generates a synthetic C translation unit with approximately the
/// profile's function count and line count.
#[must_use]
pub fn generate(profile: &Profile, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str(
        "struct obj { struct obj *next; unsigned state; unsigned refcount; int prio; };\n\n",
    );
    out.push_str("unsigned helper(unsigned x) { return x ^ 0x5au; }\n\n");
    // Lines each function template produces (roughly); used to hit the
    // LoC target with the requested number of functions.
    let per_fn = (profile.loc / profile.functions.max(1)).max(4);
    // Earlier `unsigned → unsigned` functions that caller functions may
    // call — gives the generated code a real (acyclic) call graph, as in
    // the systems code the profiles model.
    let mut callable: Vec<usize> = Vec::new();
    for i in 0..profile.functions {
        let body_budget = per_fn.saturating_sub(3).max(1);
        let f = gen_function(&mut rng, i, body_budget, &mut callable);
        out.push_str(&f);
        out.push('\n');
    }
    out
}

fn gen_function(
    rng: &mut StdRng,
    idx: usize,
    body_lines: usize,
    callable: &mut Vec<usize>,
) -> String {
    let mut s = String::new();
    // Weighted towards the control-flow- and pointer-heavy shapes of
    // systems code (the workloads where the paper's wins are largest);
    // straight-line arithmetic is the minority case.
    match rng.gen_range(0..8) {
        0 => gen_arith_fn(rng, idx, body_lines, &mut s),
        1 | 2 => gen_struct_fn(rng, idx, body_lines, &mut s),
        3 | 4 => {
            gen_loop_fn(rng, idx, body_lines, &mut s);
            callable.push(idx);
        }
        5 | 6 => gen_dispatch_fn(rng, idx, body_lines, &mut s),
        _ => {
            gen_caller_fn(rng, idx, body_lines, callable, &mut s);
            callable.push(idx);
        }
    }
    s
}

/// A random acyclic call graph with the same shape the generator produces:
/// `deps[i]` lists the (lower-index) functions `i` calls. `density` in
/// `[0, 1]` scales how many callees each function gets. Deterministic in
/// `(seed, n, density)`; used by the scheduler property tests.
#[must_use]
pub fn gen_call_graph(seed: u64, n: usize, density: f64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let density = density.clamp(0.0, 1.0);
    (0..n)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let max_deps = i.min(4);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let want = (density * (max_deps as f64 + 1.0)) as usize;
            let mut deps: Vec<usize> = Vec::new();
            for _ in 0..want.min(max_deps) {
                // Callees have lower indices, as in `generate` — acyclic.
                let d = rng.gen_range(0..i);
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
            deps.sort_unstable();
            deps
        })
        .collect()
}

/// Error-code dispatch: `if`/`return` chains — the shape where the Simpl
/// exception encoding is at its most verbose and the L2 conditional
/// abstraction wins the most.
fn gen_dispatch_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned code, struct obj *p) {{");
    let _ = writeln!(s, "    if (p == NULL) return 1u;");
    for k in 0..lines.saturating_sub(3) {
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(
                    s,
                    "    if (code == {}u) return {}u;",
                    k + 2,
                    rng.gen_range(0..9)
                );
            }
            1 => {
                let _ = writeln!(
                    s,
                    "    if (p->state == {}u && p->refcount != 0u) return {}u;",
                    rng.gen_range(0..64),
                    k + 2
                );
            }
            _ => {
                let _ = writeln!(s, "    if ((code & {}u) != 0u) p->state = code;", 1 << (k % 8));
            }
        }
    }
    let _ = writeln!(s, "    return 0u;");
    let _ = writeln!(s, "}}");
}

/// Straight-line unsigned/signed arithmetic with division guards.
fn gen_arith_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned a, unsigned b) {{");
    let _ = writeln!(s, "    unsigned acc = a;");
    for k in 0..lines.saturating_sub(2) {
        match rng.gen_range(0..5) {
            0 => {
                let _ = writeln!(s, "    acc = acc + b;");
            }
            1 => {
                let _ = writeln!(s, "    acc = acc * 3u;");
            }
            2 => {
                let _ = writeln!(s, "    acc = acc / (b % 7u + 1u);");
            }
            3 => {
                let _ = writeln!(s, "    acc = acc ^ (b << {}u);", rng.gen_range(0..8));
            }
            _ => {
                let _ = writeln!(
                    s,
                    "    if (acc > {0}u) acc = acc - {0}u;",
                    rng.gen_range(1..100)
                );
            }
        }
        let _ = k;
    }
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// Pointer-based structure manipulation with NULL checks.
fn gen_struct_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(struct obj *p, unsigned v) {{");
    let _ = writeln!(s, "    if (p == NULL) return 0u;");
    for _ in 0..lines.saturating_sub(3) {
        match rng.gen_range(0..4) {
            0 => {
                let _ = writeln!(s, "    p->state = p->state + v;");
            }
            1 => {
                let _ = writeln!(s, "    p->refcount = p->refcount + 1u;");
            }
            2 => {
                let _ = writeln!(
                    s,
                    "    if (p->next != NULL && p->next->state > v) p->next->state = v;"
                );
            }
            _ => {
                let _ = writeln!(s, "    v = v + p->state;");
            }
        }
    }
    let _ = writeln!(s, "    return v;");
    let _ = writeln!(s, "}}");
}

/// Bounded loops over counters and list walks.
fn gen_loop_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let bound = rng.gen_range(2..20);
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    unsigned i = 0;");
    let _ = writeln!(s, "    unsigned acc = 0;");
    let _ = writeln!(s, "    while (i < n % {bound}u) {{");
    let _ = writeln!(s, "        if (acc == 77u) break;");
    for _ in 0..lines.saturating_sub(6).min(8) {
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(s, "        acc = acc + i;");
            }
            1 => {
                let _ = writeln!(s, "        acc = acc ^ {}u;", rng.gen_range(1..64));
            }
            _ => {
                let _ = writeln!(s, "        if (acc > 1000u) acc = acc % 1000u;");
            }
        }
    }
    let _ = writeln!(s, "        i = i + 1u;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// Calls into previously generated functions: the shared helper plus any
/// earlier `unsigned → unsigned` function, so the translation unit has a
/// non-trivial (acyclic) call graph for the scheduler to order.
fn gen_caller_fn(
    rng: &mut StdRng,
    idx: usize,
    lines: usize,
    callable: &[usize],
    s: &mut String,
) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned x) {{");
    let _ = writeln!(s, "    unsigned r = x;");
    for _ in 0..lines.saturating_sub(2).min(6) {
        let k = rng.gen_range(1..50);
        if !callable.is_empty() && rng.gen_range(0..3) == 0 {
            let callee = callable[rng.gen_range(0..callable.len())];
            let _ = writeln!(s, "    r = r ^ fn_{callee}(r % {k}u + 1u);");
        } else {
            let _ = writeln!(s, "    r = r + helper(r + {k}u);");
        }
    }
    let _ = writeln!(s, "    return r;");
    let _ = writeln!(s, "}}");
}

/// Shape weights for [`generate_mix`]. Each field is the relative weight
/// of one function template; a zero weight disables the template. The
/// first five fields are the same templates [`generate`] draws from, the
/// rest are the audit-oriented shapes (deep control flow, mixed-width
/// overflow idioms, two-struct heap walks, bounded recursion).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Straight-line arithmetic ([`generate`]'s weight: 1).
    pub arith: u32,
    /// Pointer/struct field access (weight 2).
    pub structs: u32,
    /// Simple bounded `while` loops (weight 2).
    pub loops: u32,
    /// Error-code dispatch chains (weight 2).
    pub dispatch: u32,
    /// Call chains into earlier functions (weight 1).
    pub callers: u32,
    /// `while` + `break`/`continue`, `do`-`while`, `for`.
    pub deep_loops: u32,
    /// Mixed-width arithmetic, casts, wraparound and overflow-check idioms.
    pub overflow: u32,
    /// Bounded pointer walks over a second struct type (`struct node`).
    pub heap_walks: u32,
    /// Bounded self-recursion.
    pub recursion: u32,
    /// Local fixed-size array fill/fold loops with in-bounds indexing.
    pub arrays: u32,
    /// `switch` dispatch with fallthrough chains and `default`.
    pub switches: u32,
    /// Compound assignment (`+=`, `^=`, `<<=`, …) and `++`/`--`.
    pub compound: u32,
}

impl Mix {
    /// The weights [`generate`] has always used — no new shapes.
    #[must_use]
    pub fn table5() -> Mix {
        Mix {
            arith: 1,
            structs: 2,
            loops: 2,
            dispatch: 2,
            callers: 1,
            deep_loops: 0,
            overflow: 0,
            heap_walks: 0,
            recursion: 0,
            arrays: 0,
            switches: 0,
            compound: 0,
        }
    }

    /// Audit mix: every shape enabled, biased towards the new
    /// control-flow-, overflow- and heap-heavy templates that stress the
    /// cross-layer differential oracle.
    #[must_use]
    pub fn audit() -> Mix {
        Mix {
            arith: 1,
            structs: 2,
            loops: 1,
            dispatch: 1,
            callers: 2,
            deep_loops: 3,
            overflow: 3,
            heap_walks: 2,
            recursion: 2,
            arrays: 3,
            switches: 3,
            compound: 2,
        }
    }

    fn weights(&self) -> [u32; 12] {
        [
            self.arith,
            self.structs,
            self.loops,
            self.dispatch,
            self.callers,
            self.deep_loops,
            self.overflow,
            self.heap_walks,
            self.recursion,
            self.arrays,
            self.switches,
            self.compound,
        ]
    }
}

/// Generates a synthetic C translation unit like [`generate`], but with
/// the function templates drawn according to `mix`. A second struct type
/// (`struct node`) is always declared so the heap-walk template (and any
/// consumer seeding heaps from the program's actual struct types) sees
/// more than one typed heap.
///
/// `generate` itself is untouched by this entry point: its output is
/// byte-identical to what it produced before `Mix` existed, so the
/// Table 5 bench rows stay reproducible.
#[must_use]
pub fn generate_mix(profile: &Profile, mix: &Mix, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str(
        "struct obj { struct obj *next; unsigned state; unsigned refcount; int prio; };\n\n",
    );
    out.push_str("struct node { struct node *next; unsigned val; };\n\n");
    out.push_str("unsigned helper(unsigned x) { return x ^ 0x5au; }\n\n");
    let per_fn = (profile.loc / profile.functions.max(1)).max(4);
    let weights = mix.weights();
    let total: u32 = weights.iter().sum::<u32>().max(1);
    let mut callable: Vec<usize> = Vec::new();
    for i in 0..profile.functions {
        let body_budget = per_fn.saturating_sub(3).max(1);
        let mut roll = rng.gen_range(0..total);
        let mut shape = 0usize;
        for (k, &w) in weights.iter().enumerate() {
            if roll < w {
                shape = k;
                break;
            }
            roll -= w;
        }
        let mut s = String::new();
        match shape {
            0 => gen_arith_fn(&mut rng, i, body_budget, &mut s),
            1 => gen_struct_fn(&mut rng, i, body_budget, &mut s),
            2 => {
                gen_loop_fn(&mut rng, i, body_budget, &mut s);
                callable.push(i);
            }
            3 => gen_dispatch_fn(&mut rng, i, body_budget, &mut s),
            4 => {
                gen_caller_fn(&mut rng, i, body_budget, &callable, &mut s);
                callable.push(i);
            }
            5 => {
                gen_deep_loop_fn(&mut rng, i, body_budget, &mut s);
                callable.push(i);
            }
            6 => {
                gen_overflow_fn(&mut rng, i, body_budget, &mut s);
            }
            7 => gen_walk_fn(&mut rng, i, body_budget, &mut s),
            8 => {
                gen_rec_fn(&mut rng, i, &mut s);
                callable.push(i);
            }
            9 => {
                gen_array_fn(&mut rng, i, body_budget, &mut s);
                callable.push(i);
            }
            10 => {
                gen_switch_fn(&mut rng, i, body_budget, &mut s);
                callable.push(i);
            }
            _ => {
                gen_compound_fn(&mut rng, i, body_budget, &mut s);
            }
        }
        out.push_str(&s);
        out.push('\n');
    }
    out
}

/// Deep control flow: `while` with both `break` and `continue`, a bounded
/// `do`-`while`, and a `for` loop — the shapes where the Simpl exception
/// encoding of loop exits is most intricate.
fn gen_deep_loop_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let bound = rng.gen_range(3..14);
    let skip_mask = rng.gen_range(1..4);
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    unsigned acc = 0u;");
    let _ = writeln!(s, "    unsigned i = 0u;");
    // NB loop *conditions* must abstract without preconditions (no `+`):
    // the word-abstraction engine rejects loops otherwise.
    let _ = writeln!(s, "    while (i < n % {bound}u) {{");
    let _ = writeln!(s, "        i = i + 1u;");
    let _ = writeln!(s, "        if ((i & {skip_mask}u) == {skip_mask}u) continue;");
    let _ = writeln!(s, "        if (acc > {}u) break;", rng.gen_range(200..900));
    for _ in 0..lines.saturating_sub(10).min(4) {
        match rng.gen_range(0..2) {
            0 => {
                let _ = writeln!(s, "        acc = acc + i * {}u;", rng.gen_range(1..9));
            }
            _ => {
                let _ = writeln!(s, "        acc = acc ^ (n >> (i & 7u));");
            }
        }
    }
    let _ = writeln!(s, "        acc = acc + i;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    unsigned j = 0u;");
    let _ = writeln!(s, "    do {{");
    let _ = writeln!(s, "        acc = acc + {}u;", rng.gen_range(1..7));
    let _ = writeln!(s, "        j = j + 1u;");
    let _ = writeln!(s, "    }} while (j < n % 3u);");
    let _ = writeln!(s, "    for (j = 0u; j < {}u; j++) {{", rng.gen_range(2..6));
    let _ = writeln!(s, "        acc = acc ^ (n + j);");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// Mixed-width arithmetic: narrow (`unsigned char`/`unsigned short`)
/// locals with wraparound, explicit casts, the classic `a + b < a`
/// unsigned-overflow check, signed arithmetic, and short-circuit guards —
/// the idioms word abstraction must either prove or guard.
fn gen_overflow_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned a, unsigned b) {{");
    let _ = writeln!(s, "    unsigned char c = (unsigned char)a;");
    let _ = writeln!(s, "    unsigned short w = (unsigned short)(b + {}u);", rng.gen_range(1..999));
    let _ = writeln!(s, "    unsigned acc = a;");
    for _ in 0..lines.saturating_sub(6).min(8) {
        match rng.gen_range(0..6) {
            0 => {
                // Narrow wraparound: the add happens at `int` width, the
                // assignment truncates back to 8 bits.
                let _ = writeln!(s, "    c = (unsigned char)(c + {}u);", rng.gen_range(100..250));
            }
            1 => {
                let _ = writeln!(s, "    w = (unsigned short)(w * {}u);", rng.gen_range(3..9));
            }
            2 => {
                // Unsigned overflow-check idiom.
                let _ = writeln!(s, "    if (acc + b < acc) acc = {}u;", rng.gen_range(0..9));
            }
            3 => {
                let _ = writeln!(s, "    acc = acc + (unsigned)c * {}u;", rng.gen_range(1..5));
            }
            4 => {
                // Short-circuit evaluation with a divide guarded by the
                // left conjunct.
                let _ = writeln!(
                    s,
                    "    if (b != 0u && a / b > {}u) acc = acc + w;",
                    rng.gen_range(0..4)
                );
            }
            _ => {
                let _ = writeln!(
                    s,
                    "    if (c > {}u || w < {}u) acc = acc ^ (unsigned)w;",
                    rng.gen_range(10..200),
                    rng.gen_range(10..999)
                );
            }
        }
    }
    let _ = writeln!(s, "    return acc + (unsigned)c + (unsigned)w;");
    let _ = writeln!(s, "}}");
}

/// Bounded pointer walk over the second struct type, mutating the heap
/// along the way. The step bound makes cyclic inputs terminate.
fn gen_walk_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let steps = rng.gen_range(3..9);
    let _ = writeln!(s, "unsigned fn_{idx}(struct node *p, unsigned v) {{");
    let _ = writeln!(s, "    unsigned acc = v;");
    let _ = writeln!(s, "    unsigned k = 0u;");
    let _ = writeln!(s, "    while (p != NULL && k < {steps}u) {{");
    let _ = writeln!(s, "        acc = acc + p->val;");
    for _ in 0..lines.saturating_sub(8).min(3) {
        match rng.gen_range(0..2) {
            0 => {
                let _ = writeln!(s, "        p->val = acc % {}u;", rng.gen_range(7..100));
            }
            _ => {
                let _ = writeln!(
                    s,
                    "        if (p->val > {}u) acc = acc ^ {}u;",
                    rng.gen_range(1..50),
                    rng.gen_range(1..64)
                );
            }
        }
    }
    let _ = writeln!(s, "        p = p->next;");
    let _ = writeln!(s, "        k = k + 1u;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc + k;");
    let _ = writeln!(s, "}}");
}

/// Local fixed-size array: a fill loop, random in-bounds element updates
/// (compound assignment on elements included), and a fold — every index
/// is either loop-bounded or reduced modulo the length, so the generated
/// bounds guards are all provable.
fn gen_array_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let len = rng.gen_range(4..12);
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    unsigned a[{len}];");
    let _ = writeln!(s, "    unsigned i = 0u;");
    let _ = writeln!(s, "    while (i < {len}u) {{");
    let _ = writeln!(s, "        a[i] = (n + i * {}u) % 97u;", rng.gen_range(1..9));
    let _ = writeln!(s, "        i += 1u;");
    let _ = writeln!(s, "    }}");
    for _ in 0..lines.saturating_sub(10).min(5) {
        match rng.gen_range(0..3) {
            0 => {
                let _ = writeln!(
                    s,
                    "    a[{}u] += {}u;",
                    rng.gen_range(0..len),
                    rng.gen_range(1..50)
                );
            }
            1 => {
                let _ = writeln!(s, "    a[n % {len}u] ^= {}u;", rng.gen_range(1..64));
            }
            _ => {
                let _ = writeln!(
                    s,
                    "    if (a[{}u] > a[{}u]) a[{}u] = n & 255u;",
                    rng.gen_range(0..len),
                    rng.gen_range(0..len),
                    rng.gen_range(0..len)
                );
            }
        }
    }
    let _ = writeln!(s, "    unsigned acc = 0u;");
    let _ = writeln!(s, "    for (i = 0u; i < {len}u; i++) {{");
    let _ = writeln!(s, "        acc += a[i];");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc;");
    let _ = writeln!(s, "}}");
}

/// `switch` dispatch on a reduced scrutinee: distinct case constants,
/// a random subset of arms falling through to the next (accumulating
/// rather than overwriting so the fallthrough order is observable), and
/// a `default` arm.
fn gen_switch_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let ncases = rng.gen_range(3..7).min(lines.max(3));
    let modulus = ncases + rng.gen_range(1..3);
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    unsigned r = n & 7u;");
    let _ = writeln!(s, "    switch (n % {modulus}u) {{");
    for k in 0..ncases {
        let _ = writeln!(s, "        case {k}:");
        let _ = writeln!(s, "            r += {}u;", rng.gen_range(1..100));
        // Last arm always breaks so it never falls into `default`
        // accidentally-on-purpose; earlier arms fall through ~1/3 of
        // the time.
        if k + 1 == ncases || rng.gen_range(0..3) != 0 {
            let _ = writeln!(s, "            break;");
        }
    }
    let _ = writeln!(s, "        default:");
    let _ = writeln!(s, "            r ^= {}u;", rng.gen_range(1..64));
    let _ = writeln!(s, "            break;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return r;");
    let _ = writeln!(s, "}}");
}

/// Straight-line compound assignment and increment/decrement chains —
/// single-evaluation desugaring at every width.
fn gen_compound_fn(rng: &mut StdRng, idx: usize, lines: usize, s: &mut String) {
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned a, unsigned b) {{");
    let _ = writeln!(s, "    unsigned acc = a;");
    let _ = writeln!(s, "    unsigned short w = (unsigned short)b;");
    for _ in 0..lines.saturating_sub(4).min(10) {
        match rng.gen_range(0..7) {
            0 => {
                let _ = writeln!(s, "    acc += b & {}u;", rng.gen_range(1..255));
            }
            1 => {
                let _ = writeln!(s, "    acc ^= {}u;", rng.gen_range(1..64));
            }
            2 => {
                let _ = writeln!(s, "    acc >>= {}u;", rng.gen_range(1..4));
            }
            3 => {
                let _ = writeln!(s, "    acc /= b % {}u + 1u;", rng.gen_range(2..9));
            }
            4 => {
                let _ = writeln!(s, "    acc++;");
            }
            5 => {
                let _ = writeln!(s, "    w *= {}u;", rng.gen_range(3..9));
            }
            _ => {
                let _ = writeln!(s, "    if (acc != 0u) --acc;");
            }
        }
    }
    let _ = writeln!(s, "    return acc + (unsigned)w;");
    let _ = writeln!(s, "}}");
}

/// Bounded linear self-recursion (`fn(n) = f(n, fn(n - 1))`): the input is
/// reduced modulo a small bound first, so the call depth stays far below
/// the interpreter stack limit whatever the argument.
fn gen_rec_fn(rng: &mut StdRng, idx: usize, s: &mut String) {
    let cap = rng.gen_range(8..24);
    let mixer = match rng.gen_range(0..3) {
        0 => format!("n + fn_{idx}(n - 1u)"),
        1 => format!("n ^ fn_{idx}(n - 1u) * 3u"),
        _ => format!("fn_{idx}(n - 1u) + {}u", rng.gen_range(1..9)),
    };
    let _ = writeln!(s, "unsigned fn_{idx}(unsigned n) {{");
    let _ = writeln!(s, "    n = n % {cap}u;");
    let _ = writeln!(s, "    if (n == 0u) return 1u;");
    let _ = writeln!(s, "    return {mixer};");
    let _ = writeln!(s, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = TABLE5[3]; // eChronos
        assert_eq!(generate(&p, 7), generate(&p, 7));
        assert_ne!(generate(&p, 7), generate(&p, 8));
    }

    #[test]
    fn profiles_hit_their_targets_approximately() {
        for p in &TABLE5[2..4] {
            // Piccolo, eChronos (small enough for a unit test)
            let src = generate(p, 42);
            let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
            let target = p.loc as f64;
            assert!(
                (loc as f64) > target * 0.5 && (loc as f64) < target * 2.0,
                "{}: {} lines vs target {}",
                p.name,
                loc,
                p.loc
            );
        }
    }

    #[test]
    fn call_graph_is_acyclic_and_deterministic() {
        let g = gen_call_graph(9, 50, 0.6);
        assert_eq!(g, gen_call_graph(9, 50, 0.6));
        for (i, deps) in g.iter().enumerate() {
            for &d in deps {
                assert!(d < i, "edge {i} → {d} is not toward a lower index");
            }
        }
        assert!(g.iter().any(|d| !d.is_empty()), "graph has no edges at all");
        assert!(gen_call_graph(9, 50, 0.0).iter().all(Vec::is_empty));
    }

    #[test]
    fn generated_code_passes_the_frontend() {
        for p in &TABLE5[2..5] {
            let src = generate(p, 42);
            cparser::parse_and_check(&src)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn mix_generation_is_deterministic_and_parses() {
        let p = Profile {
            name: "audit",
            loc: 400,
            functions: 30,
        };
        let mix = Mix::audit();
        for seed in [1u64, 2, 3] {
            let src = generate_mix(&p, &mix, seed);
            assert_eq!(src, generate_mix(&p, &mix, seed));
            cparser::parse_and_check(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn audit_mix_exercises_the_new_shapes() {
        let p = Profile {
            name: "audit",
            loc: 600,
            functions: 48,
        };
        let src = generate_mix(&p, &Mix::audit(), 5);
        for needle in [
            "struct node",
            "continue;",
            "do {",
            "for (",
            "(unsigned char)",
            "(unsigned short)",
            "p = p->next;",
            "switch (",
            "case 0:",
            "default:",
            "+=",
            "acc++;",
        ] {
            assert!(src.contains(needle), "missing `{needle}` in:\n{src}");
        }
        // At least one self-recursive function.
        assert!(
            (0..p.functions).any(|i| {
                let call = format!("fn_{i}(n - 1u)");
                src.matches(&call).count() >= 1
            }),
            "no recursive function generated:\n{src}"
        );
        // At least one local array declaration (`unsigned a[N];`).
        assert!(src.contains("unsigned a["), "no array function:\n{src}");
    }

    #[test]
    fn table5_mix_uses_only_the_original_shapes() {
        let p = Profile {
            name: "t5",
            loc: 300,
            functions: 24,
        };
        let src = generate_mix(&p, &Mix::table5(), 11);
        cparser::parse_and_check(&src).unwrap();
        assert!(!src.contains("continue;"));
        assert!(!src.contains("do {"));
        assert!(!src.contains("(unsigned char)"));
        assert!(!src.contains("switch ("));
        assert!(!src.contains("unsigned a["));
        assert!(!src.contains("+="));
    }

    #[test]
    fn table5_mix_matches_legacy_generate_weights() {
        // The zero weights for the new shapes keep the roll modulus at 8,
        // so `generate_mix(Mix::table5())` must keep drawing the same
        // shapes `generate` always has (byte-identity of `generate` itself
        // is covered by `generation_is_deterministic`).
        let w = Mix::table5().weights();
        assert_eq!(w.iter().sum::<u32>(), 8);
        assert_eq!(&w[5..], &[0; 7]);
    }
}
