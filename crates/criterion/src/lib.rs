//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset its benches use (DESIGN.md §6): `Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a plain
//! mean-of-samples over `std::time::Instant` with a short warm-up — no
//! statistics engine, no HTML reports; each benchmark prints one line.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean sample time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let mean = b.samples.iter().sum::<Duration>() / u32::try_from(n).unwrap_or(1);
        println!("bench {name:<48} {mean:>12.3?}  ({n} samples)");
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` after one warm-up run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
