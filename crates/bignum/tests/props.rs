//! Property-based tests: bignum arithmetic agrees with `u128`/`i128` on the
//! embeddable range, and the ring/division laws hold on large values.

use bignum::{Int, Nat};
use proptest::prelude::*;

fn nat_of(v: u128) -> Nat {
    Nat::from(v)
}

fn arb_big_nat() -> impl Strategy<Value = Nat> {
    proptest::collection::vec(any::<u32>(), 0..8).prop_map(Nat::from_limbs)
}

fn arb_big_int() -> impl Strategy<Value = Int> {
    (arb_big_nat(), any::<bool>()).prop_map(|(m, neg)| {
        if neg {
            -Int::from_nat(m)
        } else {
            Int::from_nat(m)
        }
    })
}

proptest! {
    #[test]
    fn nat_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = &nat_of(a.into()) + &nat_of(b.into());
        prop_assert_eq!(s.to_u128(), Some(u128::from(a) + u128::from(b)));
    }

    #[test]
    fn nat_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = &nat_of(a.into()) * &nat_of(b.into());
        prop_assert_eq!(p.to_u128(), Some(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn nat_sub_truncates(a in any::<u64>(), b in any::<u64>()) {
        let d = &nat_of(a.into()) - &nat_of(b.into());
        prop_assert_eq!(d.to_u128(), Some(u128::from(a.saturating_sub(b))));
    }

    #[test]
    fn nat_divmod_matches(a in any::<u64>(), b in 1u64..) {
        let (q, r) = nat_of(a.into()).div_rem(&nat_of(b.into()));
        prop_assert_eq!(q.to_u64(), Some(a / b));
        prop_assert_eq!(r.to_u64(), Some(a % b));
    }

    #[test]
    fn nat_divmod_law_big(a in arb_big_nat(), b in arb_big_nat()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn nat_add_commutes_assoc(a in arb_big_nat(), b in arb_big_nat(), c in arb_big_nat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn nat_mul_distributes(a in arb_big_nat(), b in arb_big_nat(), c in arb_big_nat()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn nat_shl_is_mul_pow2(a in arb_big_nat(), k in 0usize..100) {
        prop_assert_eq!(&a << k, &a * &Nat::pow2(k as u32));
    }

    #[test]
    fn nat_shr_is_div_pow2(a in arb_big_nat(), k in 0usize..100) {
        prop_assert_eq!(&a >> k, &a / &Nat::pow2(k as u32));
    }

    #[test]
    fn nat_display_parse_roundtrip(a in arb_big_nat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Nat>().unwrap(), a);
    }

    #[test]
    fn int_arith_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let ia = Int::from(a);
        let ib = Int::from(b);
        prop_assert_eq!((&ia + &ib).to_i128(), Some(i128::from(a) + i128::from(b)));
        prop_assert_eq!((&ia - &ib).to_i128(), Some(i128::from(a) - i128::from(b)));
        prop_assert_eq!((&ia * &ib).to_i128(), Some(i128::from(a) * i128::from(b)));
    }

    #[test]
    fn int_div_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let ia = Int::from(a);
        let ib = Int::from(b);
        prop_assert_eq!((&ia / &ib).to_i128(), Some(i128::from(a) / i128::from(b)));
        prop_assert_eq!((&ia % &ib).to_i128(), Some(i128::from(a) % i128::from(b)));
    }

    #[test]
    fn int_floor_div_matches_euclid_law(a in arb_big_int(), b in arb_big_int()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem_floor(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        // 0 <= r < |b| for positive b, and -|b| < r <= 0 for negative b.
        if b > Int::zero() {
            prop_assert!(r >= Int::zero() && r < b);
        } else {
            prop_assert!(r <= Int::zero() && r > b);
        }
    }

    #[test]
    fn int_display_parse_roundtrip(a in arb_big_int()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Int>().unwrap(), a);
    }

    #[test]
    fn int_neg_involution(a in arb_big_int()) {
        prop_assert_eq!(-(-a.clone()), a);
    }

    #[test]
    fn nat_gcd_divides(a in any::<u64>(), b in any::<u64>()) {
        let g = Nat::from(a).gcd(&Nat::from(b));
        if !g.is_zero() {
            prop_assert!((&Nat::from(a) % &g).is_zero());
            prop_assert!((&Nat::from(b) % &g).is_zero());
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }
}
