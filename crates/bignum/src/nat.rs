//! Arbitrary-precision natural numbers.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Rem, Shl, Shr, Sub};
use std::str::FromStr;

use crate::ParseBigNumError;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision natural number (the stand-in for HOL's `nat`).
///
/// Internally a little-endian vector of base-2³² limbs with no trailing zero
/// limbs (so the representation of every value is unique and `Eq`/`Hash` are
/// structural).
///
/// # Examples
///
/// ```
/// use bignum::Nat;
///
/// let n: Nat = "340282366920938463463374607431768211456".parse().unwrap();
/// assert_eq!(n, Nat::from(2u64).pow(128));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u32>,
}

impl Nat {
    /// The natural number 0.
    #[must_use]
    pub fn zero() -> Nat {
        Nat { limbs: Vec::new() }
    }

    /// The natural number 1.
    #[must_use]
    pub fn one() -> Nat {
        Nat { limbs: vec![1] }
    }

    /// Returns `true` if this is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Constructs a `Nat` from little-endian limbs, normalising trailing zeros.
    #[must_use]
    pub fn from_limbs(mut limbs: Vec<u32>) -> Nat {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Little-endian limb view.
    #[must_use]
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * BASE_BITS as usize + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian position).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / BASE_BITS as usize;
        let off = i % BASE_BITS as usize;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64` if the value fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut out: u128 = 0;
        for (i, l) in self.limbs.iter().enumerate() {
            out |= u128::from(*l) << (32 * i);
        }
        Some(out)
    }

    /// Subtraction that reports underflow instead of truncating.
    #[must_use]
    pub fn checked_sub(&self, rhs: &Nat) -> Option<Nat> {
        if self < rhs {
            None
        } else {
            Some(sub_magnitudes(&self.limbs, &rhs.limbs))
        }
    }

    /// HOL-style truncated subtraction: returns zero when `rhs > self`.
    #[must_use]
    pub fn saturating_sub(&self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).unwrap_or_else(Nat::zero)
    }

    /// Division and remainder in one pass.
    ///
    /// Follows HOL's total-function convention: division by zero yields
    /// `(0, self)`.
    #[must_use]
    pub fn div_rem(&self, rhs: &Nat) -> (Nat, Nat) {
        if rhs.is_zero() {
            return (Nat::zero(), self.clone());
        }
        if self < rhs {
            return (Nat::zero(), self.clone());
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = div_rem_small(&self.limbs, rhs.limbs[0]);
            return (q, Nat::from(u64::from(r)));
        }
        div_rem_long(self, rhs)
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    #[must_use]
    pub fn pow(&self, exp: u32) -> Nat {
        let mut base = self.clone();
        let mut acc = Nat::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid's algorithm); `gcd(0, n) = n`.
    #[must_use]
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Returns `2^n`.
    #[must_use]
    pub fn pow2(n: u32) -> Nat {
        Nat::one() << n as usize
    }
}

fn add_magnitudes(a: &[u32], b: &[u32]) -> Nat {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: u64 = 0;
    for (i, &limb) in long.iter().enumerate() {
        let s = u64::from(limb) + u64::from(*short.get(i).unwrap_or(&0)) + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry > 0 {
        out.push(carry as u32);
    }
    Nat::from_limbs(out)
}

/// Requires `a >= b` as magnitudes.
fn sub_magnitudes(a: &[u32], b: &[u32]) -> Nat {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: i64 = 0;
    for (i, &limb) in a.iter().enumerate() {
        let d = i64::from(limb) - i64::from(*b.get(i).unwrap_or(&0)) - borrow;
        if d < 0 {
            out.push((d + (1i64 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "sub_magnitudes requires a >= b");
    Nat::from_limbs(out)
}

fn mul_magnitudes(a: &[u32], b: &[u32]) -> Nat {
    if a.is_empty() || b.is_empty() {
        return Nat::zero();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let cur = u64::from(out[i + j]) + u64::from(ai) * u64::from(bj) + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = u64::from(out[k]) + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    Nat::from_limbs(out)
}

fn div_rem_small(a: &[u32], d: u32) -> (Nat, u32) {
    let mut out = vec![0u32; a.len()];
    let mut rem: u64 = 0;
    for i in (0..a.len()).rev() {
        let cur = (rem << 32) | u64::from(a[i]);
        out[i] = (cur / u64::from(d)) as u32;
        rem = cur % u64::from(d);
    }
    (Nat::from_limbs(out), rem as u32)
}

/// Long division: shift-and-subtract, bit at a time. Simple and adequate for
/// the term sizes this workspace manipulates.
fn div_rem_long(a: &Nat, d: &Nat) -> (Nat, Nat) {
    let bits = a.bit_len();
    let mut quot = vec![0u32; a.limbs.len()];
    let mut rem = Nat::zero();
    for i in (0..bits).rev() {
        rem = &rem << 1;
        if a.bit(i) {
            rem = &rem + &Nat::one();
        }
        if rem >= *d {
            rem = sub_magnitudes(&rem.limbs, &d.limbs);
            quot[i / 32] |= 1 << (i % 32);
        }
    }
    (Nat::from_limbs(quot), rem)
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                let f: fn(&Nat, &Nat) -> Nat = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, |a, b| add_magnitudes(&a.limbs, &b.limbs));
impl_binop!(Sub, sub, |a, b| a.saturating_sub(b));
impl_binop!(Mul, mul, |a, b| mul_magnitudes(&a.limbs, &b.limbs));
impl_binop!(Div, div, |a, b| a.div_rem(b).0);
impl_binop!(Rem, rem, |a, b| a.div_rem(b).1);
impl_binop!(BitAnd, bitand, |a: &Nat, b: &Nat| {
    let n = a.limbs.len().min(b.limbs.len());
    Nat::from_limbs((0..n).map(|i| a.limbs[i] & b.limbs[i]).collect())
});
impl_binop!(BitOr, bitor, |a: &Nat, b: &Nat| {
    let n = a.limbs.len().max(b.limbs.len());
    Nat::from_limbs(
        (0..n)
            .map(|i| a.limbs.get(i).unwrap_or(&0) | b.limbs.get(i).unwrap_or(&0))
            .collect(),
    )
});
impl_binop!(BitXor, bitxor, |a: &Nat, b: &Nat| {
    let n = a.limbs.len().max(b.limbs.len());
    Nat::from_limbs(
        (0..n)
            .map(|i| a.limbs.get(i).unwrap_or(&0) ^ b.limbs.get(i).unwrap_or(&0))
            .collect(),
    )
});

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, n: usize) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = (n % 32) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shl<usize> for Nat {
    type Output = Nat;
    fn shl(self, n: usize) -> Nat {
        &self << n
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, n: usize) -> Nat {
        let limb_shift = n / 32;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = (n % 32) as u32;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Nat::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = if i + 1 < src.len() {
                src[i + 1] << (32 - bit_shift)
            } else {
                0
            };
            out.push((src[i] >> bit_shift) | hi);
        }
        Nat::from_limbs(out)
    }
}

impl Shr<usize> for Nat {
    type Output = Nat;
    fn shr(self, n: usize) -> Nat {
        &self >> n
    }
}

impl From<u8> for Nat {
    fn from(v: u8) -> Nat {
        Nat::from(u64::from(v))
    }
}
impl From<u16> for Nat {
    fn from(v: u16) -> Nat {
        Nat::from(u64::from(v))
    }
}
impl From<u32> for Nat {
    fn from(v: u32) -> Nat {
        Nat::from(u64::from(v))
    }
}
impl From<usize> for Nat {
    fn from(v: usize) -> Nat {
        Nat::from(v as u64)
    }
}
impl From<u64> for Nat {
    fn from(v: u64) -> Nat {
        Nat::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}
impl From<u128> for Nat {
    fn from(v: u128) -> Nat {
        Nat::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl FromStr for Nat {
    type Err = ParseBigNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigNumError::empty());
        }
        let mut out = Nat::zero();
        let ten = Nat::from(10u64);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or_else(|| ParseBigNumError::invalid(c))?;
            out = &(&out * &ten) + &Nat::from(u64::from(d));
        }
        Ok(out)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = div_rem_small(&cur.limbs, 10);
            digits.push(char::from(b'0' + r as u8));
            cur = q;
        }
        digits.reverse();
        let s: String = digits.into_iter().collect();
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

impl fmt::LowerHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:08x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl Sum for Nat {
    fn sum<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::zero(), |a, b| &a + &b)
    }
}

impl Product for Nat {
    fn product<I: Iterator<Item = Nat>>(iter: I) -> Nat {
        iter.fold(Nat::one(), |a, b| &a * &b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn basic_arith() {
        assert_eq!(&n(2) + &n(3), n(5));
        assert_eq!(&n(10) - &n(3), n(7));
        assert_eq!(&n(3) - &n(10), n(0), "nat subtraction truncates");
        assert_eq!(&n(6) * &n(7), n(42));
        assert_eq!(&n(42) / &n(5), n(8));
        assert_eq!(&n(42) % &n(5), n(2));
    }

    #[test]
    fn div_by_zero_is_total() {
        assert_eq!(&n(42) / &n(0), n(0));
        assert_eq!(&n(42) % &n(0), n(42));
    }

    #[test]
    fn carries_across_limbs() {
        let big = n(u64::MAX);
        let sum = &big + &n(1);
        assert_eq!(sum.to_u128(), Some(1u128 << 64));
        assert_eq!(sum.limbs().len(), 3);
    }

    #[test]
    fn pow_and_display() {
        let p = n(2).pow(128);
        assert_eq!(p.to_string(), "340282366920938463463374607431768211456");
        assert_eq!(p.bit_len(), 129);
    }

    #[test]
    fn parse_roundtrip() {
        let s = "123456789012345678901234567890";
        let v: Nat = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert!("12a".parse::<Nat>().is_err());
        assert!("".parse::<Nat>().is_err());
    }

    #[test]
    fn shifts() {
        assert_eq!(&n(1) << 100, n(2).pow(100));
        assert_eq!(&n(2).pow(100) >> 100, n(1));
        assert_eq!(&n(0b1011) >> 1, n(0b101));
        assert_eq!(&n(5) >> 10, n(0));
    }

    #[test]
    fn bitwise() {
        assert_eq!(&n(0b1100) & &n(0b1010), n(0b1000));
        assert_eq!(&n(0b1100) | &n(0b1010), n(0b1110));
        assert_eq!(&n(0b1100) ^ &n(0b1010), n(0b0110));
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(n(2).pow(64) > n(u64::MAX));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    #[test]
    fn gcd_matches_euclid() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(17).gcd(&n(13)), n(1));
    }

    #[test]
    fn long_division() {
        let a = n(2).pow(200);
        let d = &n(2).pow(100) + &n(3);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r < d);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", n(0xdead_beef)), "deadbeef");
        assert_eq!(format!("{:x}", n(2).pow(64)), "10000000000000000");
        assert_eq!(format!("{:#x}", n(255)), "0xff");
    }
}
