//! Arbitrary-precision natural numbers and integers.
//!
//! AutoCorres abstracts C machine words into Isabelle/HOL's unbounded `nat`
//! and `int` types. This crate provides the Rust stand-ins: [`Nat`] and
//! [`Int`], implemented from scratch (base-2³² limbs) so the workspace has no
//! external bignum dependency.
//!
//! The types deliberately mirror HOL's semantics:
//!
//! * [`Nat`] subtraction is *truncated* (`a - b = 0` when `b > a`), exactly
//!   like HOL's `nat` subtraction. Use [`Nat::checked_sub`] when you need to
//!   detect underflow.
//! * Division by zero yields zero (HOL's `x div 0 = 0` convention), so the
//!   evaluators never panic on the C guard-protected paths.
//!
//! # Examples
//!
//! ```
//! use bignum::{Int, Nat};
//!
//! let a = Nat::from(2u64).pow(100);
//! let b = &a + &Nat::from(1u64);
//! assert!(b > a);
//! assert_eq!((&b - &a).to_string(), "1");
//!
//! let neg = Int::from(-7i64);
//! assert_eq!((&neg * &Int::from(-3i64)).to_string(), "21");
//! ```

mod int;
mod nat;

pub use int::Int;
pub use nat::Nat;

/// Sign of an [`Int`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero or positive.
    #[default]
    Plus,
}

impl Sign {
    /// Returns the opposite sign.
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// Error returned when parsing a [`Nat`] or [`Int`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBigNumError {
    kind: ParseErrorKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl std::fmt::Display for ParseBigNumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse number from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit `{c}` in number"),
        }
    }
}

impl std::error::Error for ParseBigNumError {}

impl ParseBigNumError {
    pub(crate) fn empty() -> Self {
        ParseBigNumError {
            kind: ParseErrorKind::Empty,
        }
    }
    pub(crate) fn invalid(c: char) -> Self {
        ParseBigNumError {
            kind: ParseErrorKind::InvalidDigit(c),
        }
    }
}
