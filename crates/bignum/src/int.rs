//! Arbitrary-precision signed integers.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};
use std::str::FromStr;

use crate::{Nat, ParseBigNumError, Sign};

/// An arbitrary-precision signed integer (the stand-in for HOL's `int`).
///
/// Represented as a sign and a magnitude; zero is always `Plus` so
/// representations are unique and `Eq`/`Hash` are structural.
///
/// Division truncates toward zero with `rem` matching (C semantics, which is
/// what guarded C division abstracts to: the guards rule out the cases where
/// C and HOL `div` differ in sign handling never arise for in-range values).
/// Division by zero yields zero, keeping the evaluators total.
///
/// # Examples
///
/// ```
/// use bignum::Int;
///
/// let a = Int::from(-17i64);
/// let b = Int::from(5i64);
/// assert_eq!(&a / &b, Int::from(-3i64));
/// assert_eq!(&a % &b, Int::from(-2i64));
/// assert_eq!(&(&(&a / &b) * &b) + &(&a % &b), a);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

impl Int {
    /// The integer 0.
    #[must_use]
    pub fn zero() -> Int {
        Int {
            sign: Sign::Plus,
            mag: Nat::zero(),
        }
    }

    /// The integer 1.
    #[must_use]
    pub fn one() -> Int {
        Int {
            sign: Sign::Plus,
            mag: Nat::one(),
        }
    }

    /// Builds an integer from a sign and magnitude (zero is normalised to `Plus`).
    #[must_use]
    pub fn from_sign_mag(sign: Sign, mag: Nat) -> Int {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// Builds a non-negative integer from a natural number.
    #[must_use]
    pub fn from_nat(n: Nat) -> Int {
        Int::from_sign_mag(Sign::Plus, n)
    }

    /// Returns `true` if this is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` if strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The sign (`Plus` for zero).
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|` as a natural number.
    #[must_use]
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Int {
        Int::from_sign_mag(Sign::Plus, self.mag.clone())
    }

    /// HOL's `nat` coercion: negative integers map to 0.
    #[must_use]
    pub fn to_nat(&self) -> Nat {
        if self.is_negative() {
            Nat::zero()
        } else {
            self.mag.clone()
        }
    }

    /// Converts to `i64` if the value fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Plus => i64::try_from(m).ok(),
            Sign::Minus => {
                if m <= (1u128 << 63) {
                    Some((m as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `i128` if the value fits.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Plus => i128::try_from(m).ok(),
            Sign::Minus => {
                if m <= (1u128 << 127) {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Truncating division and remainder (C semantics, total: `x / 0 = 0`,
    /// `x % 0 = x`).
    #[must_use]
    pub fn div_rem_trunc(&self, rhs: &Int) -> (Int, Int) {
        let (q_mag, r_mag) = self.mag.div_rem(&rhs.mag);
        let q_sign = if self.sign == rhs.sign { Sign::Plus } else { Sign::Minus };
        (
            Int::from_sign_mag(q_sign, q_mag),
            Int::from_sign_mag(self.sign, r_mag),
        )
    }

    /// Flooring division and modulo (HOL `div`/`mod` semantics).
    ///
    /// `div_rem_floor` satisfies `self = q * rhs + r` with `0 <= r < |rhs|`
    /// when `rhs > 0` (and the mirrored property for `rhs < 0`).
    #[must_use]
    pub fn div_rem_floor(&self, rhs: &Int) -> (Int, Int) {
        let (q, r) = self.div_rem_trunc(rhs);
        if r.is_zero() || self.sign == rhs.sign || rhs.is_zero() {
            (q, r)
        } else {
            (&q - &Int::one(), &r + rhs)
        }
    }

    /// Raises `self` to the power `exp`.
    #[must_use]
    pub fn pow(&self, exp: u32) -> Int {
        let mag = self.mag.pow(exp);
        let sign = if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        Int::from_sign_mag(sign, mag)
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

fn add_signed(a: &Int, b: &Int) -> Int {
    if a.sign == b.sign {
        Int::from_sign_mag(a.sign, &a.mag + &b.mag)
    } else if a.mag >= b.mag {
        Int::from_sign_mag(a.sign, a.mag.saturating_sub(&b.mag))
    } else {
        Int::from_sign_mag(b.sign, b.mag.saturating_sub(&a.mag))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                let f: fn(&Int, &Int) -> Int = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<Int> for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_signed);
impl_binop!(Sub, sub, |a, b| add_signed(a, &-b.clone()));
impl_binop!(Mul, mul, |a: &Int, b: &Int| {
    let sign = if a.sign == b.sign { Sign::Plus } else { Sign::Minus };
    Int::from_sign_mag(sign, &a.mag * &b.mag)
});
impl_binop!(Div, div, |a: &Int, b: &Int| a.div_rem_trunc(b).0);
impl_binop!(Rem, rem, |a: &Int, b: &Int| a.div_rem_trunc(b).1);

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int::from_sign_mag(self.sign.negate(), self.mag)
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl From<i8> for Int {
    fn from(v: i8) -> Int {
        Int::from(i64::from(v))
    }
}
impl From<i16> for Int {
    fn from(v: i16) -> Int {
        Int::from(i64::from(v))
    }
}
impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::from(i64::from(v))
    }
}
impl From<i64> for Int {
    fn from(v: i64) -> Int {
        Int::from(i128::from(v))
    }
}
impl From<i128> for Int {
    fn from(v: i128) -> Int {
        if v < 0 {
            Int::from_sign_mag(Sign::Minus, Nat::from(v.unsigned_abs()))
        } else {
            Int::from_sign_mag(Sign::Plus, Nat::from(v as u128))
        }
    }
}
impl From<u32> for Int {
    fn from(v: u32) -> Int {
        Int::from_nat(Nat::from(v))
    }
}
impl From<u64> for Int {
    fn from(v: u64) -> Int {
        Int::from_nat(Nat::from(v))
    }
}
impl From<u128> for Int {
    fn from(v: u128) -> Int {
        Int::from_nat(Nat::from(v))
    }
}
impl From<Nat> for Int {
    fn from(n: Nat) -> Int {
        Int::from_nat(n)
    }
}

impl FromStr for Int {
    type Err = ParseBigNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(Int::from_sign_mag(Sign::Minus, rest.parse()?))
        } else {
            Ok(Int::from_nat(s.parse()?))
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.mag.to_string();
        f.pad_integral(self.sign == Sign::Plus, "", &s)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl Sum for Int {
    fn sum<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::zero(), |a, b| &a + &b)
    }
}

impl Product for Int {
    fn product<I: Iterator<Item = Int>>(iter: I) -> Int {
        iter.fold(Int::one(), |a, b| &a * &b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn signed_arith() {
        assert_eq!(&i(2) + &i(-5), i(-3));
        assert_eq!(&i(-2) + &i(5), i(3));
        assert_eq!(&i(-2) + &i(-5), i(-7));
        assert_eq!(&i(2) - &i(5), i(-3));
        assert_eq!(&i(-4) * &i(-6), i(24));
        assert_eq!(&i(-4) * &i(6), i(-24));
        assert_eq!(-i(7), i(-7));
        assert_eq!(-i(0), i(0));
    }

    #[test]
    fn zero_normalised() {
        let z = &i(5) - &i(5);
        assert_eq!(z.sign(), Sign::Plus);
        assert_eq!(z, Int::zero());
    }

    #[test]
    fn truncating_division() {
        assert_eq!(&i(17) / &i(5), i(3));
        assert_eq!(&i(-17) / &i(5), i(-3));
        assert_eq!(&i(17) / &i(-5), i(-3));
        assert_eq!(&i(-17) % &i(5), i(-2));
        assert_eq!(&i(17) % &i(-5), i(2));
    }

    #[test]
    fn flooring_division() {
        assert_eq!(i(-17).div_rem_floor(&i(5)), (i(-4), i(3)));
        assert_eq!(i(17).div_rem_floor(&i(-5)), (i(-4), i(-3)));
        assert_eq!(i(17).div_rem_floor(&i(5)), (i(3), i(2)));
        assert_eq!(i(-15).div_rem_floor(&i(5)), (i(-3), i(0)));
    }

    #[test]
    fn division_total() {
        assert_eq!(&i(5) / &i(0), i(0));
        assert_eq!(&i(5) % &i(0), i(5));
    }

    #[test]
    fn comparisons() {
        assert!(i(-5) < i(-3));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(i(3) < i(5));
    }

    #[test]
    fn conversions() {
        assert_eq!(i(-7).to_i64(), Some(-7));
        assert_eq!(i(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(Int::from(i128::MIN).to_i64(), None);
        assert_eq!(i(-3).to_nat(), Nat::zero());
        assert_eq!(i(3).to_nat(), Nat::from(3u64));
    }

    #[test]
    fn parse_and_display() {
        let v: Int = "-123456789012345678901234567890".parse().unwrap();
        assert_eq!(v.to_string(), "-123456789012345678901234567890");
        assert_eq!(v.abs().to_string(), "123456789012345678901234567890");
    }

    #[test]
    fn pow() {
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
        assert_eq!(i(10).pow(0), i(1));
    }
}
