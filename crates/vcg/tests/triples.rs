//! Hoare-triple verification through the real pipeline outputs: swap
//! (Fig 3/Fig 5), the midpoint VC (Sec 3.2), and Suzuki's challenge
//! (Sec 4.3).

use std::collections::HashMap;

use autocorres::{translate, Options};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{auto, verify, HeapModel, ProofEffort, Spec};

fn hl_body(src: &str, f: &str) -> (monadic::Prog, ir::ty::TypeEnv) {
    let out = translate(src, &Options::default()).unwrap();
    (out.hl.function(f).unwrap().body.clone(), out.hl.tenv.clone())
}

fn l2_body(src: &str, f: &str) -> (monadic::Prog, ir::ty::TypeEnv) {
    let out = translate(src, &Options::default()).unwrap();
    (out.l2.function(f).unwrap().body.clone(), out.l2.tenv.clone())
}

const SWAP: &str = "void swap(unsigned *a, unsigned *b) {\n\
                      unsigned t = *a; *a = *b; *b = t;\n\
                    }";

fn swap_spec() -> Spec {
    let read = |p: &str| Expr::read_heap(Ty::U32, Expr::var(p));
    Spec {
        // {is_valid a ∧ is_valid b ∧ s[a] = x ∧ s[b] = y}
        pre: Expr::and(
            Expr::and(
                Expr::is_valid(Ty::U32, Expr::var("a")),
                Expr::is_valid(Ty::U32, Expr::var("b")),
            ),
            Expr::and(
                Expr::eq(read("a"), Expr::var("x")),
                Expr::eq(read("b"), Expr::var("y")),
            ),
        ),
        // {s[a] = y ∧ s[b] = x}
        post: Expr::and(
            Expr::eq(read("a"), Expr::var("y")),
            Expr::eq(read("b"), Expr::var("x")),
        ),
    }
}

fn swap_vars() -> HashMap<String, Ty> {
    [
        ("a".to_owned(), Ty::U32.ptr_to()),
        ("b".to_owned(), Ty::U32.ptr_to()),
        ("x".to_owned(), Ty::U32),
        ("y".to_owned(), Ty::U32),
    ]
    .into()
}

#[test]
fn swap_on_split_heaps_is_automatic() {
    // Sec 4.5: "This goal is automatically discharged by applying a VCG and
    // running auto."
    let (body, tenv) = hl_body(SWAP, "swap");
    let (vcs, effort) =
        verify(&body, &swap_spec(), &[], HeapModel::SplitHeaps, &swap_vars(), &tenv).unwrap();
    assert_eq!(vcs.len(), 1);
    assert!(
        effort.fully_automatic(),
        "split-heap swap must be automatic: {effort}"
    );
}

#[test]
fn swap_at_byte_level_needs_overlap_preconditions() {
    // Sec 4.1: the naive byte-level triple is "not correct as written"; the
    // precondition must add non-overlap.
    let (body, tenv) = l2_body(SWAP, "swap");
    // At the byte level the spec must speak the byte-level language: the
    // naive triple (values only, plus the C-standard pointer conditions)
    // is NOT provable — Fig 3's missing condition (iv).
    let read = |p: &str| Expr::read_heap(Ty::U32, Expr::var(p));
    let naive = Spec {
        pre: Expr::and(
            Expr::and(
                Expr::c_guard(Ty::U32, Expr::var("a")),
                Expr::c_guard(Ty::U32, Expr::var("b")),
            ),
            Expr::and(
                Expr::eq(read("a"), Expr::var("x")),
                Expr::eq(read("b"), Expr::var("y")),
            ),
        ),
        post: Expr::and(
            Expr::eq(read("a"), Expr::var("y")),
            Expr::eq(read("b"), Expr::var("x")),
        ),
    };
    let (vcs, effort) = verify(
        &body,
        &naive,
        &[],
        HeapModel::ByteLevel,
        &swap_vars(),
        &tenv,
    )
    .unwrap();
    let goal_text = vcs[0].goal.to_string();
    assert!(
        goal_text.contains("ptr_val"),
        "disjointness obligations appear: {goal_text}"
    );
    assert!(
        !effort.fully_automatic(),
        "byte-level swap must NOT be automatic without the Fig 3 preconditions"
    );

    // With the strengthened (Fig 3) precondition the proof goes through:
    // a = b ∨ the objects are disjoint.
    let addr = |p: &str| {
        Expr::cast(
            ir::expr::CastKind::Unat,
            Expr::cast(ir::expr::CastKind::PtrToWord, Expr::var(p)),
        )
    };
    let disjoint = Expr::binop(
        BinOp::Or,
        Expr::eq(Expr::var("a"), Expr::var("b")),
        Expr::binop(
            BinOp::Or,
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Add, addr("a"), Expr::nat(4u64)),
                addr("b"),
            ),
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Add, addr("b"), Expr::nat(4u64)),
                addr("a"),
            ),
        ),
    );
    let strengthened = Spec {
        pre: Expr::and(naive.pre.clone(), disjoint),
        post: naive.post.clone(),
    };
    let (vcs2, effort2) = verify(
        &body,
        &strengthened,
        &[],
        HeapModel::ByteLevel,
        &swap_vars(),
        &tenv,
    )
    .unwrap();
    assert!(
        effort2.fully_automatic(),
        "byte-level swap with Fig 3 preconditions: {effort2}"
    );
    // And the byte-level obligations are structurally larger: the VC
    // carries the overlap/alignment conditions the split heap absorbs.
    let (split_vcs, _) = {
        let (hl, htenv) = hl_body(SWAP, "swap");
        verify(&hl, &swap_spec(), &[], HeapModel::SplitHeaps, &swap_vars(), &htenv).unwrap()
    };
    assert!(
        vcs2[0].goal.term_size() > split_vcs[0].goal.term_size(),
        "byte-level VC is larger ({} vs {})",
        vcs2[0].goal.term_size(),
        split_vcs[0].goal.term_size()
    );
}

#[test]
fn midpoint_vc_through_wa_output() {
    // The guard in the WA output of the binary-search midpoint, plus the
    // selected-element VC of Sec 3.2, is discharged automatically on nats.
    let out = translate(
        "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2u; }",
        &Options::default(),
    )
    .unwrap();
    let body = out.wa.function("mid").unwrap().body.clone();
    let vars: HashMap<String, Ty> =
        [("l".to_owned(), Ty::Nat), ("r".to_owned(), Ty::Nat)].into();
    // {l < r} mid {λrv. l ≤ rv ∧ rv < r}  — under the overflow guard the
    // WP includes `l + r ≤ UINT_MAX`, which l < r does not imply, so the
    // *total* spec needs it; use the paper's typical VC directly:
    let spec = Spec {
        pre: Expr::and(
            Expr::binop(BinOp::Lt, Expr::var("l"), Expr::var("r")),
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Add, Expr::var("l"), Expr::var("r")),
                Expr::nat(u64::from(u32::MAX)),
            ),
        ),
        post: Expr::and(
            Expr::binop(BinOp::Le, Expr::var("l"), Expr::var(vcg::wp::RV)),
            Expr::binop(BinOp::Lt, Expr::var(vcg::wp::RV), Expr::var("r")),
        ),
    };
    let (_, effort) = verify(
        &body,
        &spec,
        &[],
        HeapModel::SplitHeaps,
        &vars,
        &out.wa.tenv,
    )
    .unwrap();
    assert!(effort.fully_automatic(), "{effort}");
}

const SUZUKI: &str = "struct node { struct node *next; int data; };\n\
    int suzuki(struct node *w, struct node *x, struct node *y, struct node *z) {\n\
      w->next = x; x->next = y; y->next = z; x->next = z;\n\
      w->data = 1; x->data = 2; y->data = 3; z->data = 4;\n\
      return w->next->next->data;\n\
    }";

#[test]
fn suzuki_challenge_returns_4_automatically_on_split_heaps() {
    // Sec 4.5: "Isabelle/HOL's auto immediately discharges the generated
    // verification conditions" — on the lifted heap.
    let (body, tenv) = hl_body(SUZUKI, "suzuki");
    let node = Ty::Struct("node".into());
    let vars: HashMap<String, Ty> = ["w", "x", "y", "z"]
        .iter()
        .map(|n| ((*n).to_owned(), node.clone().ptr_to()))
        .collect();
    // Distinctness of the four pointers + validity.
    let mut pre = Expr::tt();
    let names = ["w", "x", "y", "z"];
    for n in names {
        pre = Expr::and(pre, Expr::is_valid(node.clone(), Expr::var(n)));
    }
    for i in 0..4 {
        for j in (i + 1)..4 {
            pre = Expr::and(
                pre,
                Expr::binop(BinOp::Ne, Expr::var(names[i]), Expr::var(names[j])),
            );
        }
    }
    let spec = Spec {
        pre,
        post: Expr::eq(Expr::var(vcg::wp::RV), Expr::i32(4)),
    };
    let mut effort = ProofEffort::default();
    let vcs = vcg::vcg(&body, &spec, &[], HeapModel::SplitHeaps, &tenv).unwrap();
    assert_eq!(vcs.len(), 1);
    assert!(
        auto(&vcs[0].goal, &vars, &mut effort),
        "Suzuki's challenge must be automatic on split heaps"
    );
}

#[test]
fn false_specs_are_rejected() {
    let (body, tenv) = hl_body(SWAP, "swap");
    let read = |p: &str| Expr::read_heap(Ty::U32, Expr::var(p));
    // Wrong postcondition: swap does not leave s[a] = x in general.
    let bogus = Spec {
        pre: swap_spec().pre,
        post: Expr::eq(read("a"), Expr::var("x")),
    };
    let (_, effort) = verify(
        &body,
        &bogus,
        &[],
        HeapModel::SplitHeaps,
        &swap_vars(),
        &tenv,
    )
    .unwrap();
    assert!(!effort.fully_automatic(), "bogus spec must not be proved");
}
