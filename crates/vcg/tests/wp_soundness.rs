//! Semantic soundness of the WP calculus, by sampling.
//!
//! For loop-free, heap-free programs the generated verification condition
//! is *exactly* the weakest precondition, so on every concrete environment
//!
//! ```text
//! eval(wp(p, Q))  ⟺  p terminates normally with value v  ∧  Q[·rv := v]
//! ```
//!
//! (exceptions escaping the program and failed guards both make the WP
//! false — the default spec forbids them). The test generates random
//! programs over three `word32` inputs with binds, conditionals, guards,
//! throw/catch, and tuple values, computes the VC once, and checks the
//! equivalence on many random environments.

use ir::eval::{eval, eval_bool, Env};
use ir::expr::{BinOp, Expr};
use ir::guard::GuardKind;
use ir::state::State;
use ir::ty::TypeEnv;
use ir::value::Value;
use monadic::{exec, MonadFault, MonadResult, Prog, ProgramCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcg::{vcg, HeapModel, Spec};

const VARS: [&str; 3] = ["a", "b", "c"];

/// A random `word32`-valued expression over the inputs and `depth` extra
/// bound names.
fn arb_word(rng: &mut StdRng, bound: &[String], fuel: u32) -> Expr {
    if fuel == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3) {
            0 => Expr::u32(rng.gen_range(0..10)),
            1 => Expr::var(VARS[rng.gen_range(0..VARS.len())]),
            _ => bound
                .last()
                .map_or_else(|| Expr::var(VARS[0]), |b| Expr::var(b.clone())),
        };
    }
    let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::BitAnd, BinOp::BitOr]
        [rng.gen_range(0..5)];
    Expr::binop(
        op,
        arb_word(rng, bound, fuel - 1),
        arb_word(rng, bound, fuel - 1),
    )
}

/// A random boolean expression over word32 terms.
fn arb_bool(rng: &mut StdRng, bound: &[String], fuel: u32) -> Expr {
    if fuel == 0 || rng.gen_bool(0.2) {
        let op = [BinOp::Lt, BinOp::Le, BinOp::Eq, BinOp::Ne][rng.gen_range(0..4)];
        return Expr::binop(op, arb_word(rng, bound, 1), arb_word(rng, bound, 1));
    }
    match rng.gen_range(0..3) {
        0 => Expr::and(
            arb_bool(rng, bound, fuel - 1),
            arb_bool(rng, bound, fuel - 1),
        ),
        1 => Expr::binop(
            BinOp::Or,
            arb_bool(rng, bound, fuel - 1),
            arb_bool(rng, bound, fuel - 1),
        ),
        _ => Expr::not(arb_bool(rng, bound, fuel - 1)),
    }
}

/// A random loop-free program yielding a `word32`.
fn arb_prog(rng: &mut StdRng, bound: &mut Vec<String>, fuel: u32) -> Prog {
    if fuel == 0 || rng.gen_bool(0.25) {
        return Prog::ret(arb_word(rng, bound, 2));
    }
    match rng.gen_range(0..5) {
        0 => {
            let v = format!("x{}", bound.len());
            let lhs = arb_prog(rng, bound, fuel - 1);
            bound.push(v.clone());
            let rhs = arb_prog(rng, bound, fuel - 1);
            bound.pop();
            Prog::bind(lhs, v, rhs)
        }
        1 => Prog::cond(
            arb_bool(rng, bound, 2),
            arb_prog(rng, bound, fuel - 1),
            arb_prog(rng, bound, fuel - 1),
        ),
        2 => Prog::bind(
            Prog::Guard(GuardKind::UnsignedOverflow, arb_bool(rng, bound, 2)),
            "·g",
            arb_prog(rng, bound, fuel - 1),
        ),
        3 => {
            // Maybe-throwing computation with a handler.
            let body = if rng.gen_bool(0.5) {
                Prog::cond(
                    arb_bool(rng, bound, 2),
                    Prog::Throw(arb_word(rng, bound, 2)),
                    arb_prog(rng, bound, fuel - 1),
                )
            } else {
                Prog::Throw(arb_word(rng, bound, 2))
            };
            let v = format!("e{}", bound.len());
            bound.push(v.clone());
            let handler = arb_prog(rng, bound, fuel - 1);
            bound.pop();
            Prog::Catch(ir::intern::Interned::new(body), v, ir::intern::Interned::new(handler))
        }
        _ => Prog::ret(Expr::ite(
            arb_bool(rng, bound, 2),
            arb_word(rng, bound, 2),
            arb_word(rng, bound, 2),
        )),
    }
}

fn sample_env(rng: &mut StdRng, tenv: &TypeEnv) -> Env {
    let mut env = Env {
        vars: std::collections::HashMap::new(),
        tenv: tenv.clone(),
    };
    for v in VARS {
        // Small values often, full range sometimes: exercise both the
        // comparison branches and wrapping arithmetic.
        let x: u32 = if rng.gen_bool(0.7) {
            rng.gen_range(0..12)
        } else {
            rng.gen()
        };
        env.vars.insert((*v).into(), Value::u32(x));
    }
    env
}

#[test]
fn wp_matches_execution_on_loop_free_programs() {
    let tenv = TypeEnv::new();
    let ctx = ProgramCtx {
        tenv: tenv.clone(),
        fns: std::collections::BTreeMap::new(),
        globals: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(0xAC_2014);
    let mut nonvacuous = 0u32;
    for round in 0..120 {
        let prog = arb_prog(&mut rng, &mut Vec::new(), 4);
        let post = arb_bool(
            &mut rng,
            &[vcg::RV.to_owned()],
            2,
        );
        let spec = Spec {
            pre: Expr::tt(),
            post: post.clone(),
        };
        let vcs = vcg(&prog, &spec, &[], HeapModel::SplitHeaps, &tenv)
            .expect("loop-free programs need no annotations");
        // Loop-free: a single "main" VC, which is tt → wp.
        assert_eq!(vcs.len(), 1, "round {round}");
        let wp = &vcs[0].goal;
        for trial in 0..40 {
            let env = sample_env(&mut rng, &tenv);
            let st = State::conc_empty();
            let wp_holds =
                eval_bool(wp, &env, &st).expect("VC evaluates on any env");
            let run = exec(&ctx, &prog, &env, st.clone(), 10_000);
            let exec_ok = match run {
                Ok((MonadResult::Normal(v), _)) => {
                    let mut env2 = env.clone();
                    env2.vars.insert(vcg::RV.into(), v);
                    eval_bool(&post, &env2, &st).expect("post evaluates")
                }
                Ok((MonadResult::Except(_), _))
                | Err(MonadFault::Failure(_)) => false,
                other => panic!("round {round}.{trial}: unexpected {other:?}"),
            };
            assert_eq!(
                wp_holds, exec_ok,
                "round {round} trial {trial}:\n  prog: {prog}\n  post: {post}\n  env: {:?}",
                env.vars
            );
            if wp_holds {
                nonvacuous += 1;
            }
        }
    }
    // The generator must not be degenerate: a healthy share of trials
    // exercise the "wp holds → execution satisfies post" direction.
    assert!(nonvacuous > 400, "only {nonvacuous} non-vacuous trials");
}

#[test]
fn wp_threads_exceptional_post_through_catch() {
    // catch (throw a) (λe. return e): never escapes, so with post
    // `·rv = a` the WP is tt → a = a … i.e. valid everywhere.
    let prog = Prog::Catch(
        ir::intern::Interned::new(Prog::Throw(Expr::var("a"))),
        "e".into(),
        ir::intern::Interned::new(Prog::ret(Expr::var("e"))),
    );
    let spec = Spec {
        pre: Expr::tt(),
        post: Expr::eq(Expr::var(vcg::RV), Expr::var("a")),
    };
    let tenv = TypeEnv::new();
    let vcs = vcg(&prog, &spec, &[], HeapModel::SplitHeaps, &tenv).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        let env = sample_env(&mut rng, &tenv);
        let st = State::conc_empty();
        assert!(eval_bool(&vcs[0].goal, &env, &st).unwrap());
    }
}

#[test]
fn escaping_throw_falsifies_the_wp() {
    // `if a < b then throw 0 else return a` with the default spec: the WP
    // must be false exactly when a < b.
    let prog = Prog::cond(
        Expr::binop(BinOp::Lt, Expr::var("a"), Expr::var("b")),
        Prog::Throw(Expr::u32(0)),
        Prog::ret(Expr::var("a")),
    );
    let spec = Spec {
        pre: Expr::tt(),
        post: Expr::tt(),
    };
    let tenv = TypeEnv::new();
    let vcs = vcg(&prog, &spec, &[], HeapModel::SplitHeaps, &tenv).unwrap();
    let env_of = |a: u32, b: u32| {
        let mut env = Env {
            vars: std::collections::HashMap::new(),
            tenv: tenv.clone(),
        };
        env.vars.insert("a".into(), Value::u32(a));
        env.vars.insert("b".into(), Value::u32(b));
        env
    };
    let st = State::conc_empty();
    assert!(!eval_bool(&vcs[0].goal, &env_of(1, 2), &st).unwrap());
    assert!(eval_bool(&vcs[0].goal, &env_of(2, 1), &st).unwrap());
    let _ = eval(&vcs[0].goal, &env_of(0, 0), &st);
}
