//! VCG error paths: the generator must reject out-of-fragment inputs with
//! clear messages rather than produce wrong conditions.

use std::collections::HashMap;

use ir::expr::Expr;
use ir::ty::TypeEnv;
use monadic::Prog;
use vcg::{vcg, verify, HeapModel, LoopAnn, Spec};

fn tt_spec() -> Spec {
    Spec {
        pre: Expr::tt(),
        post: Expr::tt(),
    }
}

fn a_loop() -> Prog {
    Prog::While {
        vars: vec!["i".into()],
        cond: Expr::binop(ir::expr::BinOp::Lt, Expr::var("i"), Expr::nat(3u64)),
        body: ir::intern::Interned::new(Prog::ret(Expr::binop(
            ir::expr::BinOp::Add,
            Expr::var("i"),
            Expr::nat(1u64),
        ))),
        init: vec![Expr::nat(0u64)],
    }
}

#[test]
fn missing_annotation_is_an_error() {
    let err = vcg(&a_loop(), &tt_spec(), &[], HeapModel::SplitHeaps, &TypeEnv::new())
        .unwrap_err();
    assert!(err.to_string().contains("annotation"), "{err}");
}

#[test]
fn calls_without_contracts_are_rejected() {
    let p = Prog::Call {
        fname: "f".into(),
        args: vec![],
    };
    let err = vcg(&p, &tt_spec(), &[], HeapModel::SplitHeaps, &TypeEnv::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("call") || msg.contains("contract"), "{msg}");
}

#[test]
fn exec_concrete_blocks_are_rejected() {
    let p = Prog::ExecConcrete(ir::intern::Interned::new(Prog::ret(Expr::u32(1))));
    let err = vcg(&p, &tt_spec(), &[], HeapModel::SplitHeaps, &TypeEnv::new())
        .unwrap_err();
    assert!(err.to_string().contains("exec_concrete"), "{err}");
}

#[test]
fn surplus_annotations_are_harmless() {
    // One loop, two annotations: the second is simply unused.
    let ann = LoopAnn {
        inv: Expr::tt(),
        measure: None,
        var_tys: vec![("i".into(), ir::ty::Ty::Nat)],
    };
    let spare = ann.clone();
    let vcs = vcg(
        &a_loop(),
        &tt_spec(),
        &[ann, spare],
        HeapModel::SplitHeaps,
        &TypeEnv::new(),
    )
    .unwrap();
    assert!(!vcs.is_empty());
}

#[test]
fn trivial_invariant_fails_a_nontrivial_post() {
    // With invariant `tt` the exit VC `tt → rv = 3` is not provable;
    // `verify` must report manual effort, not panic.
    let spec = Spec {
        pre: Expr::tt(),
        post: Expr::eq(Expr::var(vcg::RV), Expr::nat(3u64)),
    };
    let ann = LoopAnn {
        inv: Expr::tt(),
        measure: None,
        var_tys: vec![("i".into(), ir::ty::Ty::Nat)],
    };
    let vars: HashMap<String, ir::ty::Ty> = HashMap::new();
    let (_, effort) = verify(
        &a_loop(),
        &spec,
        &[ann],
        HeapModel::SplitHeaps,
        &vars,
        &TypeEnv::new(),
    )
    .unwrap();
    assert!(effort.manual > 0, "{effort}");
}
