//! Loop verification through annotations: invariants, exit conditions, and
//! termination measures (total correctness), on real pipeline outputs.

use std::collections::HashMap;

use autocorres::{translate, Options};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{verify, HeapModel, LoopAnn, Spec};

const COUNT: &str = "unsigned count(unsigned n) {\n\
    unsigned i = 0;\n\
    while (i < n) { i = i + 1u; }\n\
    return i;\n\
}";

#[test]
fn counting_loop_is_totally_correct() {
    let out = translate(COUNT, &Options::default()).unwrap();
    let body = out.wa.function("count").unwrap().body.clone();
    let n = || Expr::var("n");
    let i = || Expr::var("i");
    let umax = Expr::nat(u64::from(u32::MAX));
    // {n ≤ UINT_MAX} count {·rv = n}, invariant i ≤ n, measure n − i.
    let spec = Spec {
        pre: Expr::binop(BinOp::Le, n(), umax.clone()),
        post: Expr::eq(Expr::var(vcg::wp::RV), n()),
    };
    let ann = LoopAnn {
        inv: Expr::and(
            Expr::binop(BinOp::Le, i(), n()),
            Expr::binop(BinOp::Le, n(), umax),
        ),
        measure: Some(Expr::binop(BinOp::Sub, n(), i())),
        var_tys: vec![("i".into(), Ty::Nat), ("n".into(), Ty::Nat)],
    };
    let vars: HashMap<String, Ty> = [("n".to_owned(), Ty::Nat)].into();
    let (vcs, effort) = verify(
        &body,
        &spec,
        &[ann],
        HeapModel::SplitHeaps,
        &vars,
        &out.wa.tenv,
    )
    .unwrap();
    // Three obligations: entry, body (invariant preservation + measure
    // decrease), exit.
    assert_eq!(vcs.len(), 3, "{:?}", vcs.iter().map(|v| &v.name).collect::<Vec<_>>());
    assert!(
        effort.fully_automatic(),
        "total correctness of the counting loop must be automatic: {effort}"
    );
}

#[test]
fn wrong_invariant_is_rejected() {
    let out = translate(COUNT, &Options::default()).unwrap();
    let body = out.wa.function("count").unwrap().body.clone();
    let spec = Spec {
        pre: Expr::tt(),
        post: Expr::eq(Expr::var(vcg::wp::RV), Expr::var("n")),
    };
    // Bogus invariant: i = n at every iteration (false on entry for n > 0).
    let ann = LoopAnn {
        inv: Expr::eq(Expr::var("i"), Expr::var("n")),
        measure: None,
        var_tys: vec![("i".into(), Ty::Nat), ("n".into(), Ty::Nat)],
    };
    let vars: HashMap<String, Ty> = [("n".to_owned(), Ty::Nat)].into();
    let (_, effort) = verify(
        &body,
        &spec,
        &[ann],
        HeapModel::SplitHeaps,
        &vars,
        &out.wa.tenv,
    )
    .unwrap();
    assert!(!effort.fully_automatic(), "a false invariant must not verify");
}

#[test]
fn missing_measure_still_gives_partial_correctness() {
    let out = translate(COUNT, &Options::default()).unwrap();
    let body = out.wa.function("count").unwrap().body.clone();
    let n = || Expr::var("n");
    let i = || Expr::var("i");
    let umax = Expr::nat(u64::from(u32::MAX));
    let spec = Spec {
        pre: Expr::binop(BinOp::Le, n(), umax.clone()),
        post: Expr::eq(Expr::var(vcg::wp::RV), n()),
    };
    let ann = LoopAnn {
        inv: Expr::and(
            Expr::binop(BinOp::Le, i(), n()),
            Expr::binop(BinOp::Le, n(), umax),
        ),
        measure: None,
        var_tys: vec![("i".into(), Ty::Nat), ("n".into(), Ty::Nat)],
    };
    let vars: HashMap<String, Ty> = [("n".to_owned(), Ty::Nat)].into();
    let (vcs, effort) = verify(
        &body,
        &spec,
        &[ann],
        HeapModel::SplitHeaps,
        &vars,
        &out.wa.tenv,
    )
    .unwrap();
    assert_eq!(vcs.len(), 3);
    assert!(effort.fully_automatic(), "{effort}");
}

#[test]
fn decrementing_loop_with_word_fallback_condition() {
    // gcd-like countdown at the WA level; the loop condition is a plain
    // variable comparison so it abstracts cleanly.
    let src = "unsigned zero_out(unsigned n) {\n\
        while (n > 0u) { n = n - 1u; }\n\
        return n;\n\
    }";
    let out = translate(src, &Options::default()).unwrap();
    let body = out.wa.function("zero_out").unwrap().body.clone();
    let n = || Expr::var("n");
    let spec = Spec {
        pre: Expr::tt(),
        post: Expr::eq(Expr::var(vcg::wp::RV), Expr::nat(0u64)),
    };
    let ann = LoopAnn {
        inv: Expr::tt(),
        measure: Some(n()),
        var_tys: vec![("n".into(), Ty::Nat)],
    };
    let vars: HashMap<String, Ty> = [("n".to_owned(), Ty::Nat)].into();
    let (_, effort) = verify(
        &body,
        &spec,
        &[ann],
        HeapModel::SplitHeaps,
        &vars,
        &out.wa.tenv,
    )
    .unwrap();
    assert!(effort.fully_automatic(), "{effort}");
}
