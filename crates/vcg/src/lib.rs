//! Hoare logic and weakest-precondition verification condition generation
//! for monadic programs.
//!
//! This crate is the "program proof" layer the paper's case studies run on:
//! given a [`Spec`] (precondition, postcondition) and loop annotations
//! (invariant + optional termination measure for total correctness), [`vcg`]
//! computes verification conditions, and [`auto`] discharges them with a
//! case-split/simplify/decide waterfall — the stand-in for Isabelle's VCG +
//! `auto` (paper Sec 4.2: the lifted swap triple "can be proved by simply
//! unfolding the definition of swap′, executing a VCG and running
//! Isabelle/HOL's auto tactic").
//!
//! The key asymmetry the paper measures is reproduced here structurally:
//!
//! * On **split heaps** (post-HL programs), a heap write rewrites reads by
//!   the exact rule `read (write s p v) q = (if q = p then v else read s q)`
//!   and *validity is untouched by data writes* (Sec 4.4) — so VCs stay
//!   small.
//! * On the **byte-level heap**, the same rewrite is only sound when the
//!   objects do not partially overlap, so the generator emits an extra
//!   *disjointness obligation* per read-over-write pair — exactly the
//!   strengthened preconditions of the paper's Fig 3 discussion (conditions
//!   (i)–(iv) for `swap`).

pub mod wp;

use std::collections::HashMap;
use std::fmt;

use ir::expr::Expr;
use ir::ty::Ty;
use ir::value::Value;
use solver::Verdict;

pub use wp::{vcg, vcg_spanned, HeapModel, LoopAnn, SpanInfo, Spec, Vc, VcgError, RV};

/// The result of running the automation on a VC set.
#[derive(Clone, Debug, Default)]
pub struct ProofEffort {
    /// VCs discharged automatically.
    pub auto_discharged: usize,
    /// VCs the automation could not decide (requiring "manual proof").
    pub manual: usize,
    /// Case splits performed.
    pub splits: usize,
    /// Total solver invocations.
    pub solver_calls: usize,
    /// Goals (including split sub-goals) proved by interval abstract
    /// interpretation alone, before any solver call.
    pub static_discharged: usize,
}

impl ProofEffort {
    /// All obligations were discharged automatically.
    #[must_use]
    pub fn fully_automatic(&self) -> bool {
        self.manual == 0
    }
}

impl fmt::Display for ProofEffort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} auto, {} manual ({} splits, {} solver calls)",
            self.auto_discharged, self.manual, self.splits, self.solver_calls
        )
    }
}

/// Discharges a VC with a case-split / simplify / decide waterfall (the
/// `auto` stand-in): repeatedly picks an equality atom between variables,
/// splits on it (substituting under the positive assumption), simplifies,
/// and hands residual goals to the arithmetic decision procedures.
#[must_use]
pub fn auto(goal: &Expr, vars: &HashMap<String, Ty>, effort: &mut ProofEffort) -> bool {
    auto_depth(goal, vars, effort, 8)
}

fn auto_depth(
    goal: &Expr,
    vars: &HashMap<String, Ty>,
    effort: &mut ProofEffort,
    depth: u32,
) -> bool {
    let g = saturate(&solver::simplify::simplify(goal));
    if g.is_true_lit() {
        return true;
    }
    // Interval abstract interpretation first: it proves the common
    // bounds-shaped goals (`H ⟶ x + k ≤ max`) without touching the
    // decision procedures, mirroring the pipeline's absint guard
    // discharge.
    if solver::interval::prove(&g, vars) {
        effort.static_discharged += 1;
        return true;
    }
    effort.solver_calls += 1;
    match solver::decide(&g, vars) {
        Verdict::Valid => return true,
        Verdict::Counterexample(_) => return false,
        Verdict::Unknown => {}
    }
    if depth == 0 || g.term_size() > 20_000 {
        return false;
    }
    // Case split on a variable equality (pointer aliasing decisions).
    if let Some((a, b)) = find_var_eq(&g) {
        effort.splits += 1;
        // Positive: substitute b := a and re-simplify.
        let pos = g.subst_var(&b, &Expr::var(a));
        // Negative: assume a ≠ b — equalities become false, and the
        // disequality atoms themselves become true (so the split is not
        // re-discovered).
        let neg = g.map(&|e| {
            if is_eq_of(&e, &a, &b) {
                Expr::ff()
            } else if is_ne_of(&e, &a, &b) {
                Expr::tt()
            } else {
                e
            }
        });
        return auto_depth(&pos, vars, effort, depth - 1)
            && auto_depth(&neg, vars, effort, depth - 1);
    }
    false
}

/// Ground equational rewriting with hypotheses: in `H → C`, every equation
/// `t = u` in `H` whose left side reads the state and whose right side does
/// not is used to rewrite `t` to `u` inside `C` (all reads in a fully
/// wp-substituted VC refer to the same initial state, so this is sound).
#[doc(hidden)]
pub fn saturate(goal: &Expr) -> Expr {
    fn collect_eqs(h: &Expr, eqs: &mut Vec<(Expr, Expr)>, nes: &mut Vec<(ir::Symbol, ir::Symbol)>) {
        match h {
            Expr::BinOp(ir::expr::BinOp::And, a, b) => {
                collect_eqs(a, eqs, nes);
                collect_eqs(b, eqs, nes);
            }
            Expr::BinOp(ir::expr::BinOp::Eq, l, r) => {
                if l.reads_state() && !r.reads_state() {
                    eqs.push(((**l).clone(), (**r).clone()));
                } else if r.reads_state() && !l.reads_state() {
                    eqs.push(((**r).clone(), (**l).clone()));
                }
            }
            Expr::BinOp(ir::expr::BinOp::Ne, l, r) => {
                if let (Expr::Var(a), Expr::Var(b)) = (&**l, &**r) {
                    nes.push((*a, *b));
                }
            }
            _ => {}
        }
    }
    /// Known-distinct variables collapse equality atoms to `false`
    /// (pointer distinctness hypotheses kill read-over-write conditionals
    /// without case splitting — essential for Suzuki's challenge).
    fn apply_nes(c: &Expr, nes: &[(ir::Symbol, ir::Symbol)]) -> Expr {
        if nes.is_empty() {
            return c.clone();
        }
        c.map(&|x| {
            if let Expr::BinOp(ir::expr::BinOp::Eq, l, r) = &x {
                if let (Expr::Var(a), Expr::Var(b)) = (&**l, &**r) {
                    if nes
                        .iter()
                        .any(|(p, q)| (p == a && q == b) || (p == b && q == a))
                    {
                        return Expr::ff();
                    }
                }
            }
            x
        })
    }
    fn rewrite(c: &Expr, eqs: &[(Expr, Expr)]) -> Expr {
        let mut out = c.clone();
        for _ in 0..3 {
            let next = out.map(&|x| {
                for (t, u) in eqs {
                    if x == *t {
                        return u.clone();
                    }
                }
                x
            });
            if next == out {
                break;
            }
            out = next;
        }
        out
    }
    match goal {
        Expr::BinOp(ir::expr::BinOp::Implies, h, c) => {
            let mut eqs = Vec::new();
            let mut nes = Vec::new();
            collect_eqs(h, &mut eqs, &mut nes);
            let c = &solver::simplify::simplify(&apply_nes(c, &nes));
            // Keep the original hypotheses AND conjoin their rewritten
            // forms: rewriting alone would erase equations that become
            // relevant after a later case split identifies two reads,
            // while the rewritten copies expose derived variable
            // equalities (e.g. `s[a] = x ∧ s[a] = y` yields `x = y`).
            let h_rw = solver::simplify::simplify(&rewrite(h, &eqs));
            let h2 = if h_rw == **h {
                (**h).clone()
            } else {
                Expr::and((**h).clone(), h_rw)
            };
            let c2 = saturate(&rewrite(c, &eqs));
            Expr::implies(h2, c2)
        }
        other => other.clone(),
    }
}

/// Finds an equality atom `Var a = Var b` (`a ≠ b`) to split on.
fn find_var_eq(e: &Expr) -> Option<(ir::Symbol, ir::Symbol)> {
    let mut found = None;
    e.visit(&mut |sub| {
        if found.is_some() {
            return;
        }
        if let Expr::BinOp(ir::expr::BinOp::Eq | ir::expr::BinOp::Ne, l, r) = sub {
            if let (Expr::Var(a), Expr::Var(b)) = (&**l, &**r) {
                if a != b {
                    found = Some((*a, *b));
                }
            }
        }
    });
    found
}

fn is_ne_of(e: &Expr, a: &str, b: &str) -> bool {
    if let Expr::BinOp(ir::expr::BinOp::Ne, l, r) = e {
        if let (Expr::Var(x), Expr::Var(y)) = (&**l, &**r) {
            return (x == a && y == b) || (x == b && y == a);
        }
    }
    false
}

fn is_eq_of(e: &Expr, a: &str, b: &str) -> bool {
    if let Expr::BinOp(ir::expr::BinOp::Eq, l, r) = e {
        if let (Expr::Var(x), Expr::Var(y)) = (&**l, &**r) {
            return (x == a && y == b) || (x == b && y == a);
        }
    }
    false
}

/// Runs [`vcg`] then [`auto`] on every VC; returns the conditions and the
/// effort bookkeeping (used for the Table 6 / Suzuki benchmarks).
///
/// # Errors
///
/// Propagates [`VcgError`] from generation.
pub fn verify(
    prog: &monadic::Prog,
    spec: &Spec,
    anns: &[LoopAnn],
    model: HeapModel,
    vars: &HashMap<String, Ty>,
    tenv: &ir::ty::TypeEnv,
) -> Result<(Vec<Vc>, ProofEffort), VcgError> {
    let vcs = vcg(prog, spec, anns, model, tenv)?;
    let mut effort = ProofEffort::default();
    for vc in &vcs {
        let mut all_vars = vars.clone();
        for (v, t) in &vc.vars {
            all_vars.insert(v.clone(), t.clone());
        }
        if auto(&vc.goal, &all_vars, &mut effort) {
            effort.auto_discharged += 1;
        } else {
            effort.manual += 1;
        }
    }
    Ok((vcs, effort))
}

/// Per-VC outcome of [`examine`].
#[derive(Clone, Debug)]
pub enum VcOutcome {
    /// `auto` discharged the obligation.
    Proved,
    /// A decision procedure produced a falsifying assignment for the
    /// (simplified, saturated) goal. The map may be partial — unconstrained
    /// variables are simply absent (see `solver::complete_model`).
    Refuted(HashMap<String, Value>),
    /// Neither proved nor refuted (outside the decidable fragment, or the
    /// case-split budget ran out).
    Undecided,
}

/// Tries to refute a single goal: simplifies, saturates, and asks the
/// decision procedures for a countermodel. Returns `None` when the goal is
/// valid or undecided.
#[must_use]
pub fn refute(goal: &Expr, vars: &HashMap<String, Ty>) -> Option<HashMap<String, Value>> {
    let g = saturate(&solver::simplify::simplify(goal));
    if g.is_true_lit() {
        return None;
    }
    match solver::decide(&g, vars) {
        Verdict::Counterexample(m) => Some(m),
        Verdict::Valid | Verdict::Unknown => None,
    }
}

/// Runs [`vcg_spanned`] and classifies every VC: proved by [`auto`],
/// refuted with a concrete countermodel, or undecided. This is the entry
/// point counterexample extraction builds on — unlike [`verify`] it keeps
/// the falsifying assignment instead of collapsing it to a `manual` count.
///
/// # Errors
///
/// Propagates [`VcgError`] from generation.
pub fn examine(
    prog: &monadic::Prog,
    spec: &Spec,
    anns: &[LoopAnn],
    model: HeapModel,
    vars: &HashMap<String, Ty>,
    tenv: &ir::ty::TypeEnv,
    spans: &SpanInfo,
) -> Result<(Vec<(Vc, VcOutcome)>, ProofEffort), VcgError> {
    let vcs = vcg_spanned(prog, spec, anns, model, tenv, spans)?;
    let mut effort = ProofEffort::default();
    let mut out = Vec::with_capacity(vcs.len());
    for vc in vcs {
        let mut all_vars = vars.clone();
        for (v, t) in &vc.vars {
            all_vars.insert(v.clone(), t.clone());
        }
        let outcome = if auto(&vc.goal, &all_vars, &mut effort) {
            effort.auto_discharged += 1;
            VcOutcome::Proved
        } else {
            effort.manual += 1;
            match refute(&vc.goal, &all_vars) {
                Some(m) => VcOutcome::Refuted(m),
                None => VcOutcome::Undecided,
            }
        };
        out.push((vc, outcome));
    }
    Ok((out, effort))
}
