//! Weakest-precondition computation.

use std::collections::HashMap;
use std::fmt;

use ir::diag::Span;
use ir::expr::{BinOp, CastKind, Expr};
use ir::ty::{Ty, TypeEnv};
use ir::update::Update;
use monadic::Prog;

/// The result variable name used in postconditions.
pub const RV: &str = "·rv";

/// Which heap reasoning rules apply (the experiment's independent variable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapModel {
    /// Typed split heaps (post-HL): writes rewrite reads exactly; validity
    /// is independent of data (Sec 4.4).
    SplitHeaps,
    /// Byte-level heap (pre-HL): every read-over-write pair needs a
    /// disjointness obligation (the Fig 3 preconditions).
    ByteLevel,
}

/// A Hoare specification: `{pre} prog {λ·rv. post}`.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Precondition over the initial state.
    pub pre: Expr,
    /// Postcondition; the result is the free variable [`RV`].
    pub post: Expr,
}

/// A loop annotation: invariant (over the iterator variables and the
/// state) and optional termination measure (a `nat`-valued expression) for
/// total correctness.
#[derive(Clone, Debug)]
pub struct LoopAnn {
    /// Loop invariant.
    pub inv: Expr,
    /// Termination measure (strictly decreasing).
    pub measure: Option<Expr>,
    /// Types of the iterator variables (for the solver).
    pub var_tys: Vec<(String, Ty)>,
}

/// Statement-level source positions for VC provenance, parallel to the
/// annotation list: `loops[i]` is the span of the loop consuming annotation
/// `i` (WP-traversal order, same convention as `anns`), and `main` is the
/// span of the statement the main VC's postcondition is checked at
/// (typically the `return`).
///
/// Threaded through the WP traversal so a refuted VC can point at the
/// statement whose obligation failed instead of the function header.
#[derive(Clone, Debug, Default)]
pub struct SpanInfo {
    /// Span for the "main" VC (the return statement / function exit).
    pub main: Option<Span>,
    /// Span of the loop statement per annotation index.
    pub loops: Vec<Span>,
}

/// A verification condition.
#[derive(Clone, Debug)]
pub struct Vc {
    /// Human-readable origin ("main", "loop 0 body", "loop 0 exit", …).
    pub name: String,
    /// The goal (free variables universally quantified).
    pub goal: Expr,
    /// Types of goal-local variables introduced by the generator.
    pub vars: HashMap<String, Ty>,
    /// Statement-level source position of the obligation, when the caller
    /// supplied a [`SpanInfo`].
    pub span: Option<Span>,
}

/// A generation error (outside the supported fragment).
#[derive(Clone, Debug)]
pub struct VcgError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for VcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcg: {}", self.msg)
    }
}

impl std::error::Error for VcgError {}

type R<T> = Result<T, VcgError>;

/// Computes the verification conditions for `{spec.pre} prog {spec.post}`.
///
/// Loop annotations are consumed in the order loops are encountered
/// (preorder).
///
/// # Errors
///
/// Returns a [`VcgError`] on unsupported constructs (calls without
/// contracts, `exec_concrete` blocks).
pub fn vcg(
    prog: &Prog,
    spec: &Spec,
    anns: &[LoopAnn],
    model: HeapModel,
    tenv: &TypeEnv,
) -> R<Vec<Vc>> {
    vcg_spanned(prog, spec, anns, model, tenv, &SpanInfo::default())
}

/// [`vcg`] with statement-level source provenance: each generated VC gets
/// the span of the statement its obligation comes from (loop VCs the loop
/// statement, the main VC `spans.main`).
///
/// # Errors
///
/// Returns a [`VcgError`] on unsupported constructs, like [`vcg`].
pub fn vcg_spanned(
    prog: &Prog,
    spec: &Spec,
    anns: &[LoopAnn],
    model: HeapModel,
    tenv: &TypeEnv,
    spans: &SpanInfo,
) -> R<Vec<Vc>> {
    // Pointer-distinctness facts from the precondition prune
    // read-over-write conditionals during generation (keeping WP terms
    // linear for write-heavy code like Suzuki's challenge).
    let mut nes = Vec::new();
    collect_nes(&spec.pre, &mut nes);
    let mut w = Wp {
        anns,
        next_ann: 0,
        model,
        tenv,
        fresh: 0,
        side: Vec::new(),
        nes,
        spans,
    };
    // Exceptions escaping the program are not allowed by default specs.
    let wp = w.wp(prog, &spec.post, RV, &Expr::ff())?;
    let mut out = vec![Vc {
        name: "main".into(),
        goal: Expr::implies(spec.pre.clone(), wp),
        vars: HashMap::new(),
        span: spans.main,
    }];
    out.extend(w.side);
    Ok(out)
}

struct Wp<'a> {
    anns: &'a [LoopAnn],
    next_ann: usize,
    model: HeapModel,
    tenv: &'a TypeEnv,
    fresh: u64,
    side: Vec<Vc>,
    /// Variable pairs known distinct from the precondition.
    nes: Vec<(ir::Symbol, ir::Symbol)>,
    /// Statement spans, indexed like `anns`.
    spans: &'a SpanInfo,
}

/// Collects `Var ≠ Var` conjuncts of a precondition.
fn collect_nes(pre: &Expr, out: &mut Vec<(ir::Symbol, ir::Symbol)>) {
    match pre {
        Expr::BinOp(BinOp::And, a, b) => {
            collect_nes(a, out);
            collect_nes(b, out);
        }
        Expr::BinOp(BinOp::Ne, l, r) => {
            if let (Expr::Var(a), Expr::Var(b)) = (&**l, &**r) {
                out.push((*a, *b));
            }
        }
        _ => {}
    }
}

impl<'a> Wp<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> R<T> {
        Err(VcgError { msg: msg.into() })
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("·{prefix}{}", self.fresh)
    }

    /// `wp(p, post, rv, xpost)` — `post` sees the result as variable `rv`;
    /// `xpost` is the exceptional postcondition (the exception value is the
    /// variable `·exn`).
    fn wp(&mut self, p: &Prog, post: &Expr, rv: &str, xpost: &Expr) -> R<Expr> {
        match p {
            Prog::Return(e) | Prog::Gets(e) => Ok(post.subst_var(rv, e)),
            Prog::Throw(e) => Ok(xpost.subst_var("·exn", e)),
            Prog::Guard(_, g) => Ok(Expr::and(
                g.clone(),
                post.subst_var(rv, &Expr::unit()),
            )),
            Prog::Fail => Ok(Expr::ff()),
            Prog::Modify(u) => {
                let post_unit = post.subst_var(rv, &Expr::unit());
                self.apply_update(&post_unit, u)
            }
            Prog::Bind(l, v, r) => {
                let inner = self.wp(r, post, rv, xpost)?;
                self.wp(l, &inner, v, xpost)
            }
            Prog::BindTuple(l, vs, r) => {
                let inner = self.wp(r, post, rv, xpost)?;
                let t = self.fresh("t");
                let mut inner2 = inner;
                for (i, v) in vs.iter().enumerate() {
                    inner2 = inner2.subst_var(v, &Expr::proj(i, Expr::var(t.clone())));
                }
                self.wp(l, &inner2, &t, xpost)
            }
            Prog::Catch(l, v, h) => {
                let hw = self.wp(h, post, rv, xpost)?;
                let xpost_l = hw.subst_var(v, &Expr::var("·exn"));
                self.wp(l, post, rv, &xpost_l)
            }
            Prog::Condition(c, t, e) => {
                let wt = self.wp(t, post, rv, xpost)?;
                let we = self.wp(e, post, rv, xpost)?;
                Ok(Expr::and(
                    Expr::implies(c.clone(), wt),
                    Expr::implies(Expr::not(c.clone()), we),
                ))
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                let Some(ann) = self.anns.get(self.next_ann) else {
                    return self.err("missing loop annotation");
                };
                let ann = ann.clone();
                let loop_span = self.spans.loops.get(self.next_ann).copied();
                let idx = self.next_ann;
                self.next_ann += 1;

                let pack = if vars.len() == 1 {
                    Expr::var(vars[0].clone())
                } else {
                    Expr::Tuple(vars.iter().map(|v| Expr::var(v.clone())).collect())
                };
                // Exit VC: inv ∧ ¬cond → post[rv := pack].
                let exit_goal = Expr::implies(
                    Expr::and(ann.inv.clone(), Expr::not(cond.clone())),
                    post.subst_var(rv, &pack),
                );
                let mut vc_vars: HashMap<String, Ty> =
                    ann.var_tys.iter().cloned().collect();
                self.side.push(Vc {
                    name: format!("loop {idx} exit"),
                    goal: exit_goal,
                    vars: vc_vars.clone(),
                    span: loop_span,
                });

                // Body VC: inv ∧ cond (∧ measure = m₀) → wp(body, inv′ (∧ measure′ < m₀)).
                let rv_body = self.fresh("it");
                let mut inv_next = ann.inv.clone();
                for (i, v) in vars.iter().enumerate() {
                    let repl = if vars.len() == 1 {
                        Expr::var(rv_body.clone())
                    } else {
                        Expr::proj(i, Expr::var(rv_body.clone()))
                    };
                    inv_next = inv_next.subst_var(v, &repl);
                }
                let mut hyp = Expr::and(ann.inv.clone(), cond.clone());
                let mut body_post = inv_next;
                if let Some(m) = &ann.measure {
                    let m0 = self.fresh("m");
                    hyp = Expr::and(hyp, Expr::eq(m.clone(), Expr::var(m0.clone())));
                    let mut m_next = m.clone();
                    for (i, v) in vars.iter().enumerate() {
                        let repl = if vars.len() == 1 {
                            Expr::var(rv_body.clone())
                        } else {
                            Expr::proj(i, Expr::var(rv_body.clone()))
                        };
                        m_next = m_next.subst_var(v, &repl);
                    }
                    body_post = Expr::and(
                        body_post,
                        Expr::binop(BinOp::Lt, m_next, Expr::var(m0.clone())),
                    );
                    vc_vars.insert(m0, Ty::Nat);
                }
                let body_wp = self.wp(body, &body_post, &rv_body, xpost)?;
                self.side.push(Vc {
                    name: format!("loop {idx} body"),
                    goal: Expr::implies(hyp, body_wp),
                    vars: vc_vars,
                    span: loop_span,
                });

                // WP of the loop itself: the invariant holds initially.
                let mut entry = ann.inv.clone();
                for (v, i) in vars.iter().zip(init) {
                    entry = entry.subst_var(v, i);
                }
                Ok(entry)
            }
            Prog::Call { fname, .. } => {
                self.err(format!("calls need contracts (`{fname}`) — unsupported"))
            }
            Prog::ExecConcrete(_) | Prog::ExecAbstract(_) => self.err(
                "exec_concrete blocks need the manual mixed-level Hoare rule (Sec 4.6)",
            ),
        }
    }

    /// Substitutes a state update backwards through a postcondition.
    fn apply_update(&mut self, post: &Expr, u: &Update) -> R<Expr> {
        match u {
            Update::Global(n, e) => Ok(post.map(&|x| match &x {
                Expr::Global(m) if m == n => e.clone(),
                _ => x,
            })),
            Update::Local(n, e) => Ok(post.map(&|x| match &x {
                Expr::Local(m) if m == n => e.clone(),
                _ => x,
            })),
            Update::Heap(ty, p, v) => {
                let mut obligations = Vec::new();
                let rewritten = self.read_over_write(post, ty, p, v, &mut obligations);
                let mut out = rewritten;
                for ob in obligations.into_iter().rev() {
                    out = Expr::and(ob, out);
                }
                Ok(out)
            }
            Update::Byte(..) | Update::TagRegion(..) => {
                self.err("byte-level updates are outside the symbolic WP fragment")
            }
        }
    }

    /// Rewrites heap reads over a write `s[p := v]` at type `ty`.
    fn read_over_write(
        &mut self,
        e: &Expr,
        ty: &Ty,
        p: &Expr,
        v: &Expr,
        obligations: &mut Vec<Expr>,
    ) -> Expr {
        match e {
            Expr::ReadHeap(rt, q) => {
                let q2 = self.read_over_write(q, ty, p, v, obligations);
                if rt == ty {
                    // Exact on split heaps; on the byte level only with a
                    // non-partial-overlap obligation.
                    if self.model == HeapModel::ByteLevel && q2 != *p {
                        obligations.push(self.no_partial_overlap(rt, &q2, ty, p, true));
                    }
                    if q2 == *p {
                        v.clone()
                    } else if self.known_distinct(&q2, p) {
                        Expr::ReadHeap(rt.clone(), ir::intern::Interned::new(q2))
                    } else {
                        Expr::ite(
                            Expr::eq(q2.clone(), p.clone()),
                            v.clone(),
                            Expr::ReadHeap(rt.clone(), ir::intern::Interned::new(q2)),
                        )
                    }
                } else {
                    // Distinct heap types: unaffected on split heaps;
                    // on the byte level the objects must be disjoint.
                    if self.model == HeapModel::ByteLevel {
                        obligations.push(self.no_partial_overlap(rt, &q2, ty, p, false));
                    }
                    Expr::ReadHeap(rt.clone(), ir::intern::Interned::new(q2))
                }
            }
            // Validity is independent of data writes (the Sec 4.4 payoff).
            Expr::IsValid(rt, q) => {
                let q2 = self.read_over_write(q, ty, p, v, obligations);
                Expr::IsValid(rt.clone(), ir::intern::Interned::new(q2))
            }
            _ => {
                // Generic recursion.
                let kids: Vec<Expr> = children(e)
                    .into_iter()
                    .map(|k| self.read_over_write(k, ty, p, v, obligations))
                    .collect();
                with_children(e, &kids)
            }
        }
    }

    /// Are the two pointer expressions known distinct (by a precondition
    /// `≠` fact)?
    fn known_distinct(&self, q: &Expr, p: &Expr) -> bool {
        if let (Expr::Var(a), Expr::Var(b)) = (q, p) {
            return self
                .nes
                .iter()
                .any(|(x, y)| (x == a && y == b) || (x == b && y == a));
        }
        false
    }

    /// `q = p ∨ q + size ≤ p ∨ p + size ≤ q` over ideal naturals — the
    /// "pointers do not partially overlap" precondition of Fig 3.
    fn no_partial_overlap(
        &self,
        qt: &Ty,
        q: &Expr,
        pt: &Ty,
        p: &Expr,
        allow_equal: bool,
    ) -> Expr {
        let addr = |e: &Expr| {
            Expr::cast(
                CastKind::Unat,
                Expr::cast(CastKind::PtrToWord, e.clone()),
            )
        };
        let qsz = self.tenv.size_of(qt).unwrap_or(1);
        let psz = self.tenv.size_of(pt).unwrap_or(1);
        let before = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, addr(q), Expr::nat(qsz)),
            addr(p),
        );
        let after = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, addr(p), Expr::nat(psz)),
            addr(q),
        );
        let disjoint = Expr::binop(BinOp::Or, before, after);
        if allow_equal {
            Expr::binop(BinOp::Or, Expr::eq(q.clone(), p.clone()), disjoint)
        } else {
            disjoint
        }
    }
}

fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => vec![],
        Expr::ReadHeap(_, a)
        | Expr::ReadByte(a)
        | Expr::IsValid(_, a)
        | Expr::PtrAligned(_, a)
        | Expr::NullFree(_, a)
        | Expr::Field(a, _)
        | Expr::UnOp(_, a)
        | Expr::Cast(_, a)
        | Expr::Proj(_, a) => vec![a],
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => vec![a, b],
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => vec![a, b, c],
        Expr::Tuple(es) => es.iter().collect(),
    }
}

fn with_children(e: &Expr, kids: &[Expr]) -> Expr {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => e.clone(),
        Expr::ReadHeap(t, _) => Expr::ReadHeap(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::ReadByte(_) => Expr::ReadByte(ir::intern::Interned::new(kids[0].clone())),
        Expr::IsValid(t, _) => Expr::IsValid(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::PtrAligned(t, _) => Expr::PtrAligned(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::NullFree(t, _) => Expr::NullFree(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::Field(_, n) => Expr::Field(ir::intern::Interned::new(kids[0].clone()), n.clone()),
        Expr::UnOp(op, _) => Expr::UnOp(*op, ir::intern::Interned::new(kids[0].clone())),
        Expr::Cast(k, _) => Expr::Cast(k.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::Proj(i, _) => Expr::Proj(*i, ir::intern::Interned::new(kids[0].clone())),
        Expr::UpdateField(_, n, _) => Expr::UpdateField(
            ir::intern::Interned::new(kids[0].clone()),
            n.clone(),
            ir::intern::Interned::new(kids[1].clone()),
        ),
        Expr::BinOp(op, _, _) => {
            Expr::BinOp(*op, ir::intern::Interned::new(kids[0].clone()), ir::intern::Interned::new(kids[1].clone()))
        }
        Expr::Ite(..) => Expr::Ite(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
            ir::intern::Interned::new(kids[2].clone()),
        ),
        Expr::Tuple(_) => Expr::Tuple(kids.to_vec()),
        Expr::Index(..) => Expr::Index(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
        ),
        Expr::ArrUpd(..) => Expr::ArrUpd(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
            ir::intern::Interned::new(kids[2].clone()),
        ),
    }
}
