//! Heap-abstraction engine tests: Fig 3 → Fig 5 (swap), field accesses,
//! checker replay, and semantic differential validation of the theorems.

use autocorres::l1::l1_program;
use autocorres::l2::l2_program;
use heapabs::{hl_program, HlOptions};
use ir::eval::Env;
use kernel::{check, CheckCtx, Judgment};
use monadic::ProgramCtx;
use rand::{Rng, SeedableRng};

fn to_l2(src: &str) -> (ProgramCtx, CheckCtx) {
    let typed = cparser::parse_and_check(src).unwrap();
    let sp = simpl::translate_program(&typed).unwrap();
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };
    let (l1ctx, _) = l1_program(&cx, &sp).unwrap();
    let (l2ctx, _) = l2_program(&cx, &typed, &l1ctx, 60, 7).unwrap();
    (l2ctx, cx)
}

fn validate_hl(
    l2ctx: &ProgramCtx,
    hlctx: &ProgramCtx,
    cx: &CheckCtx,
    thms: &[(String, kernel::Thm)],
    seed: u64,
) {
    let heap_types = autocorres::testing::heap_types_of(&l2ctx.tenv, l2ctx);
    for (name, thm) in thms {
        check(thm, cx).unwrap();
        let f = &l2ctx.fns[name];
        let params = f.params.clone();
        let ht = heap_types.clone();
        kernel::semantics::test_hstmt(
            l2ctx,
            hlctx,
            thm.judgment(),
            &heap_types,
            40,
            seed,
            move |rng| {
                let st = autocorres::testing::gen_state(rng, &l2ctx.tenv, &ht, 4);
                let mut env = Env::with_tenv(l2ctx.tenv.clone());
                for (n, t) in &params {
                    env.bind_mut(n, autocorres::testing::random_arg(rng, t, &ht, 4));
                }
                (env, st)
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn fig5_swap() {
    let (l2ctx, cx) = to_l2(
        "void swap(unsigned *a, unsigned *b) {\n\
           unsigned t = *a; *a = *b; *b = t;\n\
         }",
    );
    let (hlctx, thms) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    let f = hlctx.function("swap").unwrap();
    let s = f.to_string();
    // Fig 5's shape: is_valid guards, split-heap reads and writes; no
    // byte-level pointer conditions remain.
    assert!(s.contains("guard (λs. is_valid_w32 s a)"), "{s}");
    assert!(s.contains("guard (λs. is_valid_w32 s b)"), "{s}");
    assert!(s.contains("s[a]·w32 := "), "{s}");
    assert!(!s.contains("ptr_aligned"), "{s}");
    assert!(!s.contains("..+"), "{s}");
    validate_hl(&l2ctx, &hlctx, &cx, &thms, 11);
}

#[test]
fn struct_fields_become_field_selects() {
    let (l2ctx, cx) = to_l2(
        "struct node { struct node *next; unsigned data; };\n\
         unsigned get(struct node *p) { return p->data; }\n\
         void set(struct node *p, unsigned v) { p->data = v; }",
    );
    let (hlctx, thms) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    let get = hlctx.function("get").unwrap().to_string();
    assert!(get.contains("s[p]·node_C→data"), "{get}");
    assert!(get.contains("is_valid_node_C"), "{get}");
    assert!(!get.contains("+p"), "offset arithmetic is gone: {get}");
    let set = hlctx.function("set").unwrap().to_string();
    assert!(set.contains("⦇data := "), "functional update: {set}");
    validate_hl(&l2ctx, &hlctx, &cx, &thms, 12);
}

#[test]
fn fig6_reverse_after_hl() {
    let (l2ctx, cx) = to_l2(
        "struct node { struct node *next; unsigned data; };\n\
         struct node *reverse(struct node *list) {\n\
           struct node *rev = NULL;\n\
           while (list) {\n\
             struct node *next = list->next;\n\
             list->next = rev; rev = list; list = next;\n\
           }\n\
           return rev;\n\
         }",
    );
    let (hlctx, thms) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    let f = hlctx.function("reverse").unwrap().to_string();
    // Fig 6 output: is_valid guard, field read, functional field update.
    assert!(f.contains("guard (λs. is_valid_node_C s list)"), "{f}");
    assert!(f.contains("s[list]·node_C→next"), "{f}");
    assert!(f.contains("next := "), "{f}");
    validate_hl(&l2ctx, &hlctx, &cx, &thms, 13);
}

#[test]
fn reverse_actually_reverses_at_hl_level() {
    let (l2ctx, cx) = to_l2(
        "struct node { struct node *next; unsigned data; };\n\
         struct node *reverse(struct node *list) {\n\
           struct node *rev = NULL;\n\
           while (list) {\n\
             struct node *next = list->next;\n\
             list->next = rev; rev = list; list = next;\n\
           }\n\
           return rev;\n\
         }",
    );
    let (hlctx, _) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    // Build a concrete 3-element list, lift it, run the abstract program.
    let node_ty = ir::ty::Ty::Struct("node".into());
    let mut conc = ir::state::ConcState::default();
    let mk = |next: u64, data: u32| {
        ir::value::Value::Struct(
            "node".into(),
            vec![
                (
                    "next".into(),
                    ir::value::Value::Ptr(ir::value::Ptr::new(next, node_ty.clone())),
                ),
                ("data".into(), ir::value::Value::u32(data)),
            ],
        )
    };
    conc.mem.alloc(0x100, &mk(0x200, 1), &l2ctx.tenv).unwrap();
    conc.mem.alloc(0x200, &mk(0x300, 2), &l2ctx.tenv).unwrap();
    conc.mem.alloc(0x300, &mk(0, 3), &l2ctx.tenv).unwrap();
    let abs = heapmodel::lift_state(&conc, &l2ctx.tenv, std::slice::from_ref(&node_ty));
    let head = ir::value::Value::Ptr(ir::value::Ptr::new(0x100, node_ty.clone()));
    let (r, st) = monadic::exec_fn(
        &hlctx,
        "reverse",
        &[head],
        ir::state::State::Abs(abs),
        100_000,
    )
    .unwrap();
    let monadic::MonadResult::Normal(ir::value::Value::Ptr(new_head)) = r else {
        panic!("expected a pointer result: {r:?}");
    };
    assert_eq!(new_head.addr, 0x300, "last node becomes the head");
    // Walk the reversed list on the abstract heap: 3, 2, 1.
    let heap = st.as_abs().unwrap().heap(&node_ty).unwrap();
    let n3 = heap.get(0x300).unwrap();
    assert_eq!(n3.field("data"), Some(&ir::value::Value::u32(3)));
    let ir::value::Value::Ptr(p2) = n3.field("next").unwrap() else {
        panic!()
    };
    assert_eq!(p2.addr, 0x200);
}

#[test]
fn byte_level_functions_must_stay_concrete() {
    let (l2ctx, cx) = to_l2(
        "void zero(unsigned char *p) { *p = 0; }\n\
         unsigned charread(unsigned char *p) { return *p; }",
    );
    // u8 access is still typed access — abstractable.
    let r = hl_program(&cx, &l2ctx, &HlOptions::default());
    assert!(r.is_ok());
}

#[test]
fn concrete_fns_get_exec_concrete_wrappers() {
    let (l2ctx, cx) = to_l2(
        "void low(unsigned *p) { *p = 1u; }\n\
         void high(unsigned *p) { low(p); }",
    );
    let mut opts = HlOptions::default();
    opts.concrete_fns.insert("low".into());
    let (hlctx, thms) = hl_program(&cx, &l2ctx, &opts).unwrap();
    let high = hlctx.function("high").unwrap().to_string();
    assert!(high.contains("exec_concrete"), "{high}");
    // `low` is untouched.
    assert_eq!(hlctx.function("low").unwrap().body, l2ctx.function("low").unwrap().body);
    // Only `high` has a theorem.
    assert_eq!(thms.len(), 1);
    assert_eq!(thms[0].0, "high");
}

#[test]
fn theorems_are_checker_replayable_and_nontrivial() {
    let (l2ctx, cx) = to_l2(
        "struct node { struct node *next; unsigned data; };\n\
         unsigned sum(struct node *p) {\n\
           unsigned s = 0;\n\
           while (p != NULL) { s = s + p->data; p = p->next; }\n\
           return s;\n\
         }",
    );
    let (hlctx, thms) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    assert_eq!(thms.len(), 1);
    let (_, thm) = &thms[0];
    check(thm, &cx).unwrap();
    assert!(thm.proof_size() > 10, "non-trivial derivation");
    let Judgment::HStmt { abs, .. } = thm.judgment() else {
        panic!()
    };
    assert_eq!(abs, &hlctx.function("sum").unwrap().body);
    validate_hl(&l2ctx, &hlctx, &cx, &thms, 14);

    // A tampered "theorem" cannot be constructed: the checker would reject
    // a mismatched conclusion (constructors validate), so the only way to
    // get an abs_h_stmt is through the rules. (Compile-time property —
    // `Thm` has no public constructor.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let _ = rng.gen::<u32>();
}
