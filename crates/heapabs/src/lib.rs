//! The heap-abstraction engine (paper Sec 4).
//!
//! Translates byte-level heap programs into typed-split-heap programs,
//! syntax-directedly, applying one kernel rule per node — so the engine
//! simultaneously produces the abstract program *and* an `abs_h_stmt`
//! theorem that the abstraction is sound (Sec 4.5).
//!
//! Key moves, mirroring Table 4 and the surrounding text:
//!
//! * heap reads become lookups on the per-type heaps, with `is_valid`
//!   guards emitted for each access,
//! * pointer-offset field accesses (`read s (Ptr (ptr_val p + off))`)
//!   become field selects/functional updates on the struct heap,
//! * concrete pointer guards (`ptr_aligned ∧ ¬null`) become `is_valid`
//!   checks (the `HPTR` rule),
//! * functions the user keeps at the byte level are wrapped in
//!   `exec_concrete` at their call sites (Sec 4.6).
//!
//! Functions that use byte-level operations (`memset`-style code) cannot be
//! abstracted and must be listed in [`HlOptions::concrete_fns`].

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use ir::typing::{infer_ty, ptr_pointee};
use ir::update::Update;
use kernel::rules::heap as hr;
use kernel::{CheckCtx, Judgment, KernelError, Thm};
use monadic::{MonadicFn, Prog, ProgramCtx};

/// Heap-abstraction options.
#[derive(Clone, Debug, Default)]
pub struct HlOptions {
    /// Functions to keep at the byte level (callable from abstracted code
    /// through `exec_concrete`).
    pub concrete_fns: BTreeSet<String>,
}

/// An engine error.
#[derive(Clone, Debug)]
pub enum HlError {
    /// A kernel rule rejected an application (engine bug).
    Kernel(KernelError),
    /// The function uses features outside the abstractable fragment.
    Unsupported(String),
}

impl fmt::Display for HlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlError::Kernel(e) => write!(f, "heap abstraction: {e}"),
            HlError::Unsupported(m) => write!(f, "heap abstraction: {m}"),
        }
    }
}

impl std::error::Error for HlError {}

impl From<HlError> for ir::diag::Diag {
    fn from(e: HlError) -> ir::diag::Diag {
        let kind = match &e {
            HlError::Kernel(_) => ir::diag::DiagKind::Kernel,
            HlError::Unsupported(_) => ir::diag::DiagKind::Unsupported,
        };
        ir::diag::Diag::new(ir::diag::Phase::Hl, kind, e.to_string())
    }
}

impl From<KernelError> for HlError {
    fn from(e: KernelError) -> HlError {
        HlError::Kernel(e)
    }
}

type R<T> = Result<T, HlError>;

/// Abstracts a whole program; returns the abstracted context and the
/// per-function `abs_h_stmt` theorems (absent for concrete-kept functions).
///
/// # Errors
///
/// Fails when an abstracted function uses byte-level memory operations.
pub fn hl_program(
    cx: &CheckCtx,
    l2ctx: &ProgramCtx,
    opts: &HlOptions,
) -> R<(ProgramCtx, Vec<(String, Thm)>)> {
    let mut out = ProgramCtx {
        tenv: l2ctx.tenv.clone(),
        globals: l2ctx.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut thms = Vec::new();
    for (name, f) in &l2ctx.fns {
        if opts.concrete_fns.contains(name) {
            out.fns.insert(name.clone(), hl_keep_concrete(f, opts));
            continue;
        }
        let (fun, thm) = hl_function(cx, f, opts)?;
        out.fns.insert(name.clone(), fun);
        thms.push((name.clone(), thm));
    }
    Ok((out, thms))
}

/// The HL treatment of a concrete-kept function: the body stays at the
/// byte level, with calls into *abstracted* callees routed through
/// `exec_abstract` markers (the analogous direction of Sec 4.6). No theorem
/// is produced — the function is not abstracted.
#[must_use]
pub fn hl_keep_concrete(f: &MonadicFn, opts: &HlOptions) -> MonadicFn {
    let mut kept = f.clone();
    kept.body = wrap_abstract_calls(&kept.body, opts);
    kept
}

/// Wraps calls from byte-level code to heap-abstracted callees in
/// `exec_abstract` markers (Sec 4.6's second direction).
fn wrap_abstract_calls(p: &Prog, opts: &HlOptions) -> Prog {
    match p {
        Prog::Call { fname, .. } if !opts.concrete_fns.contains(fname) => {
            Prog::ExecAbstract(ir::intern::Interned::new(p.clone()))
        }
        Prog::Bind(l, v, r) => Prog::bind(
            wrap_abstract_calls(l, opts),
            v.clone(),
            wrap_abstract_calls(r, opts),
        ),
        Prog::BindTuple(l, vs, r) => Prog::bind_tuple(
            wrap_abstract_calls(l, opts),
            vs.clone(),
            wrap_abstract_calls(r, opts),
        ),
        Prog::Catch(l, v, r) => Prog::Catch(
            ir::intern::Interned::new(wrap_abstract_calls(l, opts)),
            v.clone(),
            ir::intern::Interned::new(wrap_abstract_calls(r, opts)),
        ),
        Prog::Condition(c, t, e) => Prog::cond(
            c.clone(),
            wrap_abstract_calls(t, opts),
            wrap_abstract_calls(e, opts),
        ),
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => Prog::While {
            vars: vars.clone(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(wrap_abstract_calls(body, opts)),
            init: init.clone(),
        },
        other => other.clone(),
    }
}

/// Abstracts one function.
///
/// # Errors
///
/// As for [`hl_program`].
pub fn hl_function(cx: &CheckCtx, f: &MonadicFn, opts: &HlOptions) -> R<(MonadicFn, Thm)> {
    let mut eng = Engine {
        cx,
        opts,
        vars: f.params.iter().cloned().collect(),
    };
    let thm = eng.stmt(&f.body)?;
    let Judgment::HStmt { abs, .. } = thm.judgment() else {
        unreachable!("heap rules conclude abs_h_stmt");
    };
    Ok((
        MonadicFn {
            name: f.name.clone(),
            params: f.params.clone(),
            ret_ty: f.ret_ty.clone(),
            frame: f.frame.clone(),
            body: abs.clone(),
        },
        thm,
    ))
}

struct Engine<'a> {
    cx: &'a CheckCtx,
    opts: &'a HlOptions,
    /// Types of the lambda-bound variables in scope.
    vars: HashMap<String, Ty>,
}

impl<'a> Engine<'a> {
    fn unsupported<T>(&self, msg: impl Into<String>) -> R<T> {
        Err(HlError::Unsupported(msg.into()))
    }

    /// Abstracts an expression, producing an `abs_h_val` theorem.
    fn val(&mut self, e: &Expr) -> R<Thm> {
        match e {
            Expr::Lit(_) | Expr::Var(_) | Expr::Global(_) | Expr::Local(_) => {
                Ok(hr::h_leaf(self.cx, e)?)
            }
            Expr::ReadByte(_) => self.unsupported(
                "byte-level heap access in an abstracted function (keep it concrete)",
            ),
            Expr::ReadHeap(fty, p) => {
                // Field access through a struct pointer?
                if let Expr::BinOp(BinOp::PtrAdd, base, off) = &**p {
                    if let Expr::Lit(ir::value::Value::Word(offw)) = &**off {
                        if let Some(Ty::Struct(sname)) =
                            ptr_pointee(base, &self.vars, &self.cx.tenv)
                        {
                            let pt = self.val(base)?;
                            return Ok(hr::h_read_field(
                                self.cx,
                                &sname,
                                fty,
                                offw.bits(),
                                pt,
                            )?);
                        }
                    }
                }
                let pt = self.val(p)?;
                Ok(hr::h_read(self.cx, fty, pt)?)
            }
            // Concrete pointer guard: ptr_aligned ∧ null-free → is_valid.
            Expr::BinOp(BinOp::And, l, r) => {
                if let (Expr::PtrAligned(t1, p1), Expr::NullFree(t2, p2)) = (&**l, &**r) {
                    if t1 == t2 && p1 == p2 {
                        let pt = self.val(p1)?;
                        return Ok(hr::h_guard_ptr(self.cx, t1, pt)?);
                    }
                }
                let lt = self.val(l)?;
                let rt = self.val(r)?;
                Ok(hr::h_val_weaken(self.cx, BinOp::And, lt, rt)?)
            }
            // Short-circuit weakening keeps validity side conditions of
            // guarded operands conditional (the C translation's weakened
            // guards survive abstraction unchanged in strength).
            Expr::BinOp(op @ (BinOp::Or | BinOp::Implies), l, r) => {
                let lt = self.val(l)?;
                let rt = self.val(r)?;
                Ok(hr::h_val_weaken(self.cx, *op, lt, rt)?)
            }
            Expr::PtrAligned(..) | Expr::NullFree(..) | Expr::IsValid(..) => {
                // A bare pointer-shape predicate outside the c_guard pattern:
                // conservatively keep the function concrete.
                self.unsupported("bare pointer-validity predicate outside a guard")
            }
            _ => self.cong(e),
        }
    }

    /// Congruence: abstract all children.
    fn cong(&mut self, e: &Expr) -> R<Thm> {
        let kids = kernel_children(e);
        let mut thms = Vec::with_capacity(kids.len());
        for k in kids {
            thms.push(self.val(k)?);
        }
        Ok(hr::h_cong(self.cx, e, thms)?)
    }

    /// Abstracts an update, producing an `abs_h_modifies` theorem.
    fn upd(&mut self, u: &Update) -> R<Thm> {
        match u {
            Update::Byte(..) | Update::TagRegion(..) => self.unsupported(
                "byte-level heap update in an abstracted function (keep it concrete)",
            ),
            Update::Local(_, e) | Update::Global(_, e) => {
                let vt = self.val(e)?;
                Ok(hr::h_upd_var(self.cx, u, vt)?)
            }
            Update::Heap(fty, p, v) => {
                if let Expr::BinOp(BinOp::PtrAdd, base, off) = p {
                    if let Expr::Lit(ir::value::Value::Word(offw)) = &**off {
                        if let Some(Ty::Struct(sname)) =
                            ptr_pointee(base, &self.vars, &self.cx.tenv)
                        {
                            let pt = self.val(base)?;
                            let vt = self.val(v)?;
                            return Ok(hr::h_upd_field(
                                self.cx,
                                &sname,
                                fty,
                                offw.bits(),
                                pt,
                                vt,
                            )?);
                        }
                    }
                }
                let pt = self.val(p)?;
                let vt = self.val(v)?;
                Ok(hr::h_upd(self.cx, fty, pt, vt)?)
            }
        }
    }

    /// Abstracts a statement, producing an `abs_h_stmt` theorem.
    fn stmt(&mut self, p: &Prog) -> R<Thm> {
        match p {
            Prog::Return(e) => {
                let vt = self.val(e)?;
                Ok(hr::hs_value_stmt(self.cx, kernel::Rule::HsRet, vt)?)
            }
            Prog::Gets(e) => {
                let vt = self.val(e)?;
                Ok(hr::hs_value_stmt(self.cx, kernel::Rule::HsGets, vt)?)
            }
            Prog::Throw(e) => {
                let vt = self.val(e)?;
                Ok(hr::hs_value_stmt(self.cx, kernel::Rule::HsThrow, vt)?)
            }
            Prog::Modify(u) => {
                let ut = self.upd(u)?;
                Ok(hr::hs_modify(self.cx, ut)?)
            }
            Prog::Guard(kind, g) => {
                let vt = self.val(g)?;
                Ok(hr::hs_guard(self.cx, kind.clone(), vt)?)
            }
            Prog::Fail => Ok(hr::hs_fail(self.cx)?),
            Prog::Bind(l, v, r) => {
                let lt = self.stmt(l)?;
                let saved = self.bind_var(v, l);
                let rt = self.stmt(r);
                self.restore(v, saved);
                Ok(hr::hs_bind(self.cx, v, lt, rt?)?)
            }
            Prog::BindTuple(l, vs, r) => {
                let lt = self.stmt(l)?;
                let mut saves = Vec::new();
                let comps = self.prog_tuple_tys(l, vs.len());
                for (v, t) in vs.iter().zip(comps) {
                    let old = match t {
                        Some(t) => self.vars.insert(v.clone(), t),
                        None => self.vars.remove(v),
                    };
                    saves.push(old);
                }
                let rt = self.stmt(r);
                for (v, old) in vs.iter().zip(saves) {
                    self.restore(v, old);
                }
                Ok(hr::hs_bind_tuple(self.cx, vs, lt, rt?)?)
            }
            Prog::Catch(l, v, r) => {
                let lt = self.stmt(l)?;
                // Exception payloads keep their (tuple) types; a best-effort
                // entry is enough for pointee resolution.
                let saved = self.vars.remove(v);
                let rt = self.stmt(r);
                self.restore(v, saved);
                Ok(hr::hs_catch(self.cx, v, lt, rt?)?)
            }
            Prog::Condition(c, t, e) => {
                let ct = self.val(c)?;
                let tt = self.stmt(t)?;
                let et = self.stmt(e)?;
                Ok(hr::hs_cond(self.cx, ct, tt, et)?)
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                let mut saves = Vec::new();
                for (v, i) in vars.iter().zip(init) {
                    let t = infer_ty(i, &self.vars, &self.cx.tenv);
                    let old = match t {
                        Some(t) => self.vars.insert(v.clone(), t),
                        None => self.vars.remove(v),
                    };
                    saves.push(old);
                }
                let ct = self.val(cond);
                let bt = ct.and_then(|ct| {
                    let bt = self.stmt(body)?;
                    Ok((ct, bt))
                });
                for (v, old) in vars.iter().zip(saves) {
                    self.restore(v, old);
                }
                let (ct, bt) = bt?;
                Ok(hr::hs_while(self.cx, vars, init, ct, bt)?)
            }
            Prog::Call { fname, args } => {
                if args.iter().any(Expr::reads_heap) {
                    return self.unsupported("call with heap-reading arguments (L2 hoists these)");
                }
                if self.opts.concrete_fns.contains(fname) {
                    // Sec 4.6: keep the callee at the byte level.
                    let call = Prog::Call {
                        fname: fname.clone(),
                        args: args.clone(),
                    };
                    return Ok(hr::hs_exec_concrete(self.cx, &call)?);
                }
                Ok(hr::hs_call(self.cx, fname, args)?)
            }
            Prog::ExecConcrete(_) | Prog::ExecAbstract(_) => {
                self.unsupported("nested level-mixing markers")
            }
        }
    }

    fn bind_var(&mut self, v: &str, l: &Prog) -> Option<Ty> {
        match self.prog_value_ty(l) {
            Some(t) => self.vars.insert(v.to_owned(), t),
            None => self.vars.remove(v),
        }
    }

    fn restore(&mut self, v: &str, old: Option<Ty>) {
        match old {
            Some(t) => {
                self.vars.insert(v.to_owned(), t);
            }
            None => {
                self.vars.remove(v);
            }
        }
    }

    /// Best-effort value type of a program (for variable-type tracking).
    fn prog_value_ty(&self, p: &Prog) -> Option<Ty> {
        match p {
            Prog::Return(e) | Prog::Gets(e) => infer_ty(e, &self.vars, &self.cx.tenv),
            Prog::Bind(_, _, r) | Prog::BindTuple(_, _, r) => self.prog_value_ty(r),
            Prog::Condition(_, t, e) => {
                self.prog_value_ty(t).or_else(|| self.prog_value_ty(e))
            }
            Prog::While { init, .. } => {
                if init.len() == 1 {
                    infer_ty(&init[0], &self.vars, &self.cx.tenv)
                } else {
                    let ts: Option<Vec<Ty>> = init
                        .iter()
                        .map(|i| infer_ty(i, &self.vars, &self.cx.tenv))
                        .collect();
                    ts.map(Ty::Tuple)
                }
            }
            Prog::Catch(l, _, _) => self.prog_value_ty(l),
            _ => None,
        }
    }

    fn prog_tuple_tys(&self, p: &Prog, n: usize) -> Vec<Option<Ty>> {
        match self.prog_value_ty(p) {
            Some(Ty::Tuple(ts)) if ts.len() == n => ts.into_iter().map(Some).collect(),
            Some(t) if n == 1 => vec![Some(t)],
            _ => vec![None; n],
        }
    }
}

/// Immediate children of an expression (mirrors the kernel's view used by
/// the congruence rule).
fn kernel_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => vec![],
        Expr::ReadHeap(_, a)
        | Expr::ReadByte(a)
        | Expr::IsValid(_, a)
        | Expr::PtrAligned(_, a)
        | Expr::NullFree(_, a)
        | Expr::Field(a, _)
        | Expr::UnOp(_, a)
        | Expr::Cast(_, a)
        | Expr::Proj(_, a) => vec![a],
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => vec![a, b],
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => vec![a, b, c],
        Expr::Tuple(es) => es.iter().collect(),
    }
}
