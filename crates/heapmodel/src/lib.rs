//! Heap lifting: from the byte-level memory model to typed split heaps.
//!
//! Implements the paper's Sec 4.2 (`heap_lift`, Fig 4) and the state
//! abstraction function `st : globals ⇒ abs_globals` of Sec 4.5 that the
//! heap-abstraction refinement statement `abs_h_stmt` is phrased over.
//!
//! `heap_lift s p` projects the byte heap to a partial object heap:
//!
//! ```text
//! heap_lift s p ≡
//!   if type_tag_valid s p ∧ ptr_aligned p ∧ 0 ∉ {p ..+ obj_size p}
//!   then Some (read s p) else None
//! ```
//!
//! # Example (the Fig 4 scenario)
//!
//! ```
//! use heapmodel::heap_lift;
//! use ir::mem::Memory;
//! use ir::ty::{Ty, TypeEnv};
//! use ir::value::Value;
//!
//! let tenv = TypeEnv::new();
//! let mut mem = Memory::new();
//! mem.alloc(0xf300, &Value::u32(0x2159_48a4), &tenv).unwrap();
//!
//! // Lifting at the tagged, aligned address succeeds …
//! assert_eq!(heap_lift(&mem, &tenv, &Ty::U32, 0xf300), Some(Value::u32(0x2159_48a4)));
//! // … but a misaligned or differently-typed view resolves to None.
//! assert_eq!(heap_lift(&mem, &tenv, &Ty::U32, 0xf301), None);
//! assert_eq!(heap_lift(&mem, &tenv, &Ty::U16, 0xf300), None);
//! ```

use ir::mem::Memory;
use ir::state::{AbsState, ConcState, TypedHeap};
use ir::ty::{Ty, TypeEnv};
use ir::value::Value;

/// `heap_lift s p` for pointee type `ty` at address `addr`.
///
/// Returns `Some(value)` iff the address is correctly tagged for `ty` over
/// the object's whole footprint, aligned, non-null, and the object does not
/// wrap around the end of the address space.
#[must_use]
pub fn heap_lift(mem: &Memory, tenv: &TypeEnv, ty: &Ty, addr: u64) -> Option<Value> {
    if mem.type_tag_valid(addr, ty, tenv)
        && Memory::ptr_aligned(addr, ty, tenv)
        && Memory::null_free(addr, ty, tenv)
    {
        mem.decode(addr, ty, tenv).ok()
    } else {
        None
    }
}

/// Is `heap_lift` defined at this address? (The abstract `is_valid_τ`.)
#[must_use]
pub fn lift_defined(mem: &Memory, tenv: &TypeEnv, ty: &Ty, addr: u64) -> bool {
    heap_lift(mem, tenv, ty, addr).is_some()
}

/// The state abstraction function `st : globals ⇒ abs_globals` (Sec 4.5).
///
/// For each type in `heap_types`, the abstract validity function holds where
/// `heap_lift` is defined, and the abstract data function carries the lifted
/// values. Locals and globals are carried over unchanged.
///
/// (Our typed heaps are finite maps rather than total functions: addresses
/// absent from `vals` read as the type's zero value, which matches reading
/// from all-zero untagged memory.)
#[must_use]
pub fn lift_state(conc: &ConcState, tenv: &TypeEnv, heap_types: &[Ty]) -> AbsState {
    let mut out = AbsState {
        locals: conc.locals.clone(),
        globals: conc.globals.clone(),
        ..AbsState::default()
    };
    for ty in heap_types {
        let mut heap = TypedHeap::default();
        for (addr, tag_ty) in conc.mem.tagged_objects() {
            if tag_ty == ty {
                if let Some(v) = heap_lift(&conc.mem, tenv, ty, addr) {
                    heap.valid.insert(addr);
                    heap.vals.insert(addr, v);
                }
            }
        }
        out.heaps.insert(ty.clone(), heap);
    }
    out
}

/// Lifts a full [`ir::state::State`], passing abstract states through
/// unchanged (useful in generic validators).
#[must_use]
pub fn lift(st: &ir::state::State, tenv: &TypeEnv, heap_types: &[Ty]) -> AbsState {
    match st {
        ir::state::State::Conc(c) => lift_state(c, tenv, heap_types),
        ir::state::State::Abs(a) => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::value::Ptr;

    fn node_tenv() -> TypeEnv {
        let mut tenv = TypeEnv::new();
        tenv.define_struct(
            "node",
            vec![
                ("next".into(), Ty::Struct("node".into()).ptr_to()),
                ("data".into(), Ty::U32),
            ],
        )
        .unwrap();
        tenv
    }

    #[test]
    fn lift_requires_all_three_conditions() {
        let tenv = TypeEnv::new();
        let mut mem = Memory::new();
        mem.alloc(0x100, &Value::u32(7), &tenv).unwrap();

        // tagged + aligned + null-free
        assert!(lift_defined(&mem, &tenv, &Ty::U32, 0x100));
        // untagged
        assert!(!lift_defined(&mem, &tenv, &Ty::U32, 0x200));
        // misaligned (also has wrong tags, but alignment alone kills it)
        let mut m2 = Memory::new();
        m2.tag_region(0x101, &Ty::U32, &tenv).unwrap();
        assert!(!lift_defined(&m2, &tenv, &Ty::U32, 0x101));
        // NULL
        let mut m3 = Memory::new();
        m3.tag_region(0, &Ty::U32, &tenv).unwrap();
        assert!(!lift_defined(&m3, &tenv, &Ty::U32, 0));
        // wraps around the address space
        let mut m4 = Memory::new();
        m4.tag_region(0xFFFF_FFFE, &Ty::U16, &tenv).unwrap();
        assert!(lift_defined(&m4, &tenv, &Ty::U16, 0xFFFF_FFFE));
        let mut m5 = Memory::new();
        m5.tag_region(0xFFFF_FFFC, &Ty::U32, &tenv).unwrap();
        assert!(lift_defined(&m5, &tenv, &Ty::U32, 0xFFFF_FFFC));
    }

    #[test]
    fn objects_cannot_alias_at_different_types() {
        // Fig 4: once the w16 object is tagged, the overlapping w8 view at
        // the same address is not liftable.
        let tenv = TypeEnv::new();
        let mut mem = Memory::new();
        mem.alloc(0xf300, &Value::Word(ir::word::Word::new(0x48a4, ir::ty::Width::W16, ir::ty::Signedness::Unsigned)), &tenv)
            .unwrap();
        assert!(lift_defined(&mem, &tenv, &Ty::U16, 0xf300));
        assert!(!lift_defined(&mem, &tenv, &Ty::U8, 0xf300));
        assert!(!lift_defined(&mem, &tenv, &Ty::U8, 0xf301));
    }

    #[test]
    fn lift_state_builds_split_heaps() {
        let tenv = node_tenv();
        let node_ty = Ty::Struct("node".into());
        let mut conc = ConcState::default();
        let node = Value::Struct(
            "node".into(),
            vec![
                ("next".into(), Value::Ptr(Ptr::null(node_ty.clone()))),
                ("data".into(), Value::u32(42)),
            ],
        );
        conc.mem.alloc(0x1000, &node, &tenv).unwrap();
        conc.mem.alloc(0x2000, &Value::u32(7), &tenv).unwrap();
        conc.globals.insert("g".into(), Value::u32(1));

        let abs = lift_state(&conc, &tenv, &[node_ty.clone(), Ty::U32]);
        let nh = abs.heap(&node_ty).unwrap();
        assert!(nh.is_valid(0x1000));
        assert_eq!(nh.get(0x1000), Some(&node));
        let wh = abs.heap(&Ty::U32).unwrap();
        assert!(wh.is_valid(0x2000));
        assert!(!wh.is_valid(0x1000), "node object is not a u32 object");
        assert_eq!(abs.globals.get("g"), Some(&Value::u32(1)));
    }

    #[test]
    fn writes_to_valid_addresses_commute_with_lifting() {
        // heap_lift (write s p v) = (heap_lift s)(p := Some v)  — Sec 4.2.
        let tenv = TypeEnv::new();
        let mut conc = ConcState::default();
        conc.mem.alloc(0x100, &Value::u32(1), &tenv).unwrap();
        conc.mem.alloc(0x200, &Value::u32(2), &tenv).unwrap();

        let before = lift_state(&conc, &tenv, &[Ty::U32]);
        conc.mem.encode(0x100, &Value::u32(99), &tenv).unwrap();
        let after = lift_state(&conc, &tenv, &[Ty::U32]);

        let hb = before.heap(&Ty::U32).unwrap();
        let ha = after.heap(&Ty::U32).unwrap();
        assert_eq!(ha.get(0x100), Some(&Value::u32(99)));
        assert_eq!(ha.get(0x200), hb.get(0x200), "disjoint object untouched");
        assert_eq!(ha.valid, hb.valid, "validity unchanged by data writes");
    }

    #[test]
    fn retyping_moves_objects_between_heaps() {
        let tenv = TypeEnv::new();
        let mut conc = ConcState::default();
        conc.mem.alloc(0x100, &Value::u32(0xAABBCCDD), &tenv).unwrap();
        let abs = lift_state(&conc, &tenv, &[Ty::U32, Ty::U16]);
        assert!(abs.heap(&Ty::U32).unwrap().is_valid(0x100));
        assert!(!abs.heap(&Ty::U16).unwrap().is_valid(0x100));

        // Retype as two u16s (malloc/free-style reuse).
        conc.mem.tag_region(0x100, &Ty::U16, &tenv).unwrap();
        conc.mem.tag_region(0x102, &Ty::U16, &tenv).unwrap();
        let abs = lift_state(&conc, &tenv, &[Ty::U32, Ty::U16]);
        assert!(!abs.heap(&Ty::U32).unwrap().is_valid(0x100));
        assert!(abs.heap(&Ty::U16).unwrap().is_valid(0x100));
        assert!(abs.heap(&Ty::U16).unwrap().is_valid(0x102));
        // The bytes are preserved: the u16 views read the old halves.
        assert_eq!(
            abs.heap(&Ty::U16).unwrap().get(0x100),
            Some(&Value::Word(ir::word::Word::new(
                0xCCDD,
                ir::ty::Width::W16,
                ir::ty::Signedness::Unsigned
            )))
        );
    }
}
