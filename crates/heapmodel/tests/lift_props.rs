//! Property tests for heap lifting: totality, the Sec 4.2 laws, and
//! retyping behaviour on random memories.

use heapmodel::{heap_lift, lift_defined, lift_state};
use ir::mem::Memory;
use ir::state::ConcState;
use ir::ty::{Ty, TypeEnv};
use ir::value::Value;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u64..64).prop_map(|k| 0x100 + k * 4),
        (0u64..0x300u64),
        Just(0u64),
    ]
}

proptest! {
    /// Lifting is defined exactly on tagged, aligned, null-free objects.
    #[test]
    fn lift_definedness(objs in proptest::collection::vec((arb_addr(), any::<u32>()), 0..8),
                        probe in arb_addr()) {
        let tenv = TypeEnv::new();
        let mut mem = Memory::new();
        let mut expect_valid = std::collections::BTreeSet::new();
        for (addr, v) in &objs {
            if *addr != 0 && addr % 4 == 0 {
                mem.alloc(*addr, &Value::u32(*v), &tenv).unwrap();
                // Later allocations may overwrite earlier tags; track last.
                expect_valid.retain(|a: &u64| {
                    *a + 4 <= *addr || *a >= addr + 4
                });
                expect_valid.insert(*addr);
            }
        }
        let defined = lift_defined(&mem, &tenv, &Ty::U32, probe);
        prop_assert_eq!(defined, expect_valid.contains(&probe));
    }

    /// Lifted values decode the current bytes.
    #[test]
    fn lift_reads_current_bytes(v1 in any::<u32>(), v2 in any::<u32>()) {
        let tenv = TypeEnv::new();
        let mut mem = Memory::new();
        mem.alloc(0x100, &Value::u32(v1), &tenv).unwrap();
        prop_assert_eq!(heap_lift(&mem, &tenv, &Ty::U32, 0x100), Some(Value::u32(v1)));
        mem.encode(0x100, &Value::u32(v2), &tenv).unwrap();
        prop_assert_eq!(heap_lift(&mem, &tenv, &Ty::U32, 0x100), Some(Value::u32(v2)));
    }

    /// lift_state is stable under re-lifting (idempotence through the
    /// abstract side: lifting the same concrete state twice gives the same
    /// abstract state).
    #[test]
    fn lift_state_deterministic(objs in proptest::collection::vec((arb_addr(), any::<u32>()), 0..6)) {
        let tenv = TypeEnv::new();
        let mut st = ConcState::default();
        for (addr, v) in &objs {
            if *addr != 0 && addr % 4 == 0 {
                st.mem.alloc(*addr, &Value::u32(*v), &tenv).unwrap();
            }
        }
        let a = lift_state(&st, &tenv, &[Ty::U32]);
        let b = lift_state(&st, &tenv, &[Ty::U32]);
        prop_assert_eq!(a, b);
    }

    /// Retyping a u32 region as u16s removes it from the u32 heap and adds
    /// two u16 objects whose concatenation is the original bytes.
    #[test]
    fn retyping_preserves_bytes(v in any::<u32>()) {
        let tenv = TypeEnv::new();
        let mut st = ConcState::default();
        st.mem.alloc(0x100, &Value::u32(v), &tenv).unwrap();
        st.mem.tag_region(0x100, &Ty::U16, &tenv).unwrap();
        st.mem.tag_region(0x102, &Ty::U16, &tenv).unwrap();
        let abs = lift_state(&st, &tenv, &[Ty::U32, Ty::U16]);
        prop_assert!(!abs.heaps[&Ty::U32].is_valid(0x100));
        let lo = abs.heaps[&Ty::U16].get(0x100).cloned();
        let hi = abs.heaps[&Ty::U16].get(0x102).cloned();
        let (Some(Value::Word(lo)), Some(Value::Word(hi))) = (lo, hi) else {
            return Err(TestCaseError::fail("u16 views missing"));
        };
        prop_assert_eq!(lo.bits() as u32 | ((hi.bits() as u32) << 16), v);
    }
}
