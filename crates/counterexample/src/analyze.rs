//! Counterexample extraction: VC refutation → concrete falsifying input.
//!
//! [`analyze`] verifies one function of a pipeline [`Output`] against a
//! [`FnSpec`] at the HL level (typed split heaps — the same level the
//! paper's case-study proofs run at) and, for every VC the automation
//! *refutes*, turns the solver's satisfying assignment into a concrete
//! input: argument values plus typed heap cells. The assignment alone is
//! not trusted — a countermodel of a loop VC can describe an unreachable
//! mid-loop state — so every candidate is **validated by execution**: the
//! function is run on the candidate input through the interpreters and
//! the spec is evaluated on the observed result. Only inputs whose run
//! genuinely falsifies the spec (postcondition false, or a guard fault
//! under a satisfied precondition) are reported, which makes spurious
//! counterexamples impossible by construction.
//!
//! When the model's values do not reproduce the failure, a deterministic
//! boundary-value grid and a seeded random search (heap shapes from
//! `autocorres::testing`) look for a nearby falsifying input. Functions
//! outside the VCG's fragment (e.g. recursion — `calls need contracts`)
//! fall back to the same execution-backed search against the spec, with
//! the VC name `"exec"`.

use std::collections::HashMap;

use autocorres::testing::{gen_state, heap_types_of, random_arg};
use autocorres::{derive_seed, Output};
use ir::diag::{CexHeapCell, Counterexample, Diag, DiagKind, Phase, Span};
use ir::eval::Env;
use ir::state::{AbsState, ConcState, State};
use ir::ty::{Signedness, Ty};
use ir::value::{Ptr, Value};
use ir::word::Word;
use ir::Symbol;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vcg::{examine, HeapModel, LoopAnn, ProofEffort, SpanInfo, Spec, VcOutcome, RV};

use crate::trace;

/// Seed salt for the deterministic falsification search.
const SEARCH_SALT: u64 = 0xCE11_AB1E;
/// Random search attempts after the model-derived and grid candidates.
const RANDOM_ATTEMPTS: u64 = 400;
/// Cap on grid candidates (cartesian product truncated by odometer).
const GRID_CAP: usize = 800;
/// Objects per heap type in generated candidate states.
const HEAP_OBJS: usize = 4;

/// A specification for one function: pre/postcondition plus one loop
/// annotation per loop in WP traversal order (see `Output::fn_spans`).
#[derive(Clone, Debug)]
pub struct FnSpec {
    /// Precondition over parameters and the initial state.
    pub pre: ir::expr::Expr,
    /// Postcondition; the result is the free variable [`RV`], heap reads
    /// refer to the final state.
    pub post: ir::expr::Expr,
    /// Loop annotations, WP traversal order.
    pub anns: Vec<LoopAnn>,
}

/// What the HL interpreter observed on the falsifying input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observed {
    /// Normal termination with this value (postcondition evaluated false).
    Normal(Value),
    /// Early exit with this value (postcondition evaluated false).
    Except(Value),
    /// A guard failed — under a satisfied precondition this falsifies any
    /// (total-correctness) spec.
    Fault,
}

impl Observed {
    /// Stable text form used in seed files: `(normal V)`, `(except V)`,
    /// `fault`.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Observed::Normal(v) => format!("(normal {})", crate::sexp::value_to_sexp(v)),
            Observed::Except(v) => format!("(except {})", crate::sexp::value_to_sexp(v)),
            Observed::Fault => "fault".to_owned(),
        }
    }

    /// Parses the [`Observed::render`] form.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn parse(s: &str) -> Result<Observed, String> {
        if s.trim() == "fault" {
            return Ok(Observed::Fault);
        }
        let sx = crate::sexp::Sexp::parse(s)?;
        let crate::sexp::Sexp::List(items) = &sx else {
            return Err(format!("bad observed `{s}`"));
        };
        match items.as_slice() {
            [crate::sexp::Sexp::Atom(tag), v] if tag == "normal" => {
                Ok(Observed::Normal(crate::sexp::value_from_sexp(v)?))
            }
            [crate::sexp::Sexp::Atom(tag), v] if tag == "except" => {
                Ok(Observed::Except(crate::sexp::value_from_sexp(v)?))
            }
            _ => Err(format!("bad observed `{s}`")),
        }
    }
}

/// A validated concrete counterexample.
#[derive(Clone, Debug)]
pub struct Cex {
    /// The structured payload attached to diagnostics (model, heap cells,
    /// span, `validated` flag).
    pub info: Counterexample,
    /// Argument values in parameter order.
    pub args: Vec<Value>,
    /// The HL interpreter's observation on this input.
    pub observed: Observed,
    /// Pretty-printed five-layer divergence trace.
    pub trace: String,
}

impl Cex {
    /// Packages the counterexample as a solver-phase [`Diag`].
    #[must_use]
    pub fn diag(&self) -> Diag {
        Diag::new(
            Phase::Solver,
            DiagKind::Refuted,
            format!("{}", self.info),
        )
        .with_counterexample(self.info.clone())
    }

    /// Rebuilds the concrete input state from the heap cells.
    ///
    /// # Errors
    ///
    /// Returns a message when a cell fails to encode.
    pub fn input_state(&self, tenv: &ir::ty::TypeEnv) -> Result<ConcState, String> {
        state_from_cells(&self.info.heap, tenv)
    }
}

/// Builds a concrete state by allocating each cell at its address.
///
/// # Errors
///
/// Returns a message when a cell fails to encode.
pub fn state_from_cells(
    cells: &[CexHeapCell],
    tenv: &ir::ty::TypeEnv,
) -> Result<ConcState, String> {
    let mut st = ConcState::default();
    for c in cells {
        st.mem
            .alloc(c.addr, &c.value, tenv)
            .map_err(|e| format!("cell {c}: {e}"))?;
    }
    Ok(st)
}

/// Per-VC classification after extraction.
#[derive(Clone, Debug)]
pub enum VcStatus {
    /// The automation proved the obligation.
    Proved,
    /// Neither proved nor refuted with a validated input.
    Undecided,
    /// Refuted, with a validated concrete counterexample.
    Refuted(Box<Cex>),
}

/// One VC's name, span, and outcome.
#[derive(Clone, Debug)]
pub struct VcReport {
    /// VC name (`"main"`, `"loop 0 exit"`, …; `"exec"` for the
    /// execution-search fallback).
    pub vc: String,
    /// Statement-level source span.
    pub span: Option<Span>,
    /// Outcome.
    pub status: VcStatus,
}

/// The result of analyzing one function against a spec.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The analyzed function.
    pub function: String,
    /// Per-VC outcomes.
    pub reports: Vec<VcReport>,
    /// Proof-effort bookkeeping from the VC pass.
    pub effort: ProofEffort,
}

impl Analysis {
    /// All obligations proved (no refutations, nothing undecided).
    #[must_use]
    pub fn verified(&self) -> bool {
        self.reports
            .iter()
            .all(|r| matches!(r.status, VcStatus::Proved))
    }

    /// The first validated counterexample, if any VC was refuted.
    #[must_use]
    pub fn first_cex(&self) -> Option<&Cex> {
        self.reports.iter().find_map(|r| match &r.status {
            VcStatus::Refuted(c) => Some(&**c),
            _ => None,
        })
    }
}

/// Verifies `name` against `spec` and extracts validated counterexamples
/// for refuted VCs. See the module docs for the extraction discipline.
///
/// # Errors
///
/// Returns a message when the function is missing from the pipeline
/// output.
pub fn analyze(out: &Output, name: &str, spec: &FnSpec) -> Result<Analysis, String> {
    let hl_f = out
        .hl
        .function(name)
        .ok_or_else(|| format!("no function named `{name}`"))?;
    let vars: HashMap<String, Ty> = hl_f
        .params
        .iter()
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    let (main_span, loop_spans) = out
        .fn_spans(name)
        .map_or((None, Vec::new()), |(m, l)| (Some(m), l));
    let spans = SpanInfo {
        main: main_span,
        loops: loop_spans,
    };
    let vcg_spec = Spec {
        pre: spec.pre.clone(),
        post: spec.post.clone(),
    };

    let examined = examine(
        &hl_f.body,
        &vcg_spec,
        &spec.anns,
        HeapModel::SplitHeaps,
        &vars,
        &out.hl.tenv,
        &spans,
    );
    match examined {
        Ok((vcs, effort)) => {
            let mut reports = Vec::new();
            for (vc, outcome) in vcs {
                let status = match outcome {
                    VcOutcome::Proved => VcStatus::Proved,
                    VcOutcome::Refuted(model) => {
                        match falsify(out, name, spec, Some(&model), &vc.name, vc.span) {
                            Some(cex) => VcStatus::Refuted(Box::new(cex)),
                            None => VcStatus::Undecided,
                        }
                    }
                    VcOutcome::Undecided => {
                        // The solver could not refute the goal symbolically;
                        // the execution search may still find a concrete
                        // falsifying input (heap-dependent goals degrade to
                        // Unknown in the decision procedures).
                        match falsify(out, name, spec, None, &vc.name, vc.span) {
                            Some(cex) => VcStatus::Refuted(Box::new(cex)),
                            None => VcStatus::Undecided,
                        }
                    }
                };
                reports.push(VcReport {
                    vc: vc.name,
                    span: vc.span,
                    status,
                });
            }
            Ok(Analysis {
                function: name.to_owned(),
                reports,
                effort,
            })
        }
        Err(_) => {
            // Outside the VCG fragment (recursion, missing annotations):
            // fall back to pure execution search against the spec.
            let status = match falsify(out, name, spec, None, "exec", spans.main) {
                Some(cex) => VcStatus::Refuted(Box::new(cex)),
                None => VcStatus::Undecided,
            };
            Ok(Analysis {
                function: name.to_owned(),
                reports: vec![VcReport {
                    vc: "exec".to_owned(),
                    span: spans.main,
                    status,
                }],
                effort: ProofEffort::default(),
            })
        }
    }
}

/// Validates one recorded input against `spec` and, when it still
/// falsifies, rebuilds the full [`Cex`] (fresh layer runs and trace).
/// This is the replay entry point used by seed playback.
#[must_use]
pub fn validate_input(
    out: &Output,
    name: &str,
    spec: &FnSpec,
    vc_name: &str,
    span: Option<Span>,
    args: &[Value],
    conc0: &ConcState,
) -> Option<Cex> {
    let heap_types = heap_types_of(&out.simpl.tenv, &out.l1);
    let observed = check_falsifies(out, name, spec, args, conc0, &heap_types)?;
    Some(build_cex(
        out,
        name,
        spec,
        None,
        vc_name,
        span,
        args,
        conc0,
        &heap_types,
        observed,
    ))
}

/// Coerces a solver-model value to a parameter's HL type (linarith hands
/// back `Nat`/`Int` where the variable is a word).
fn coerce(v: &Value, ty: &Ty) -> Option<Value> {
    match (v, ty) {
        (Value::Word(w), Ty::Word(width, sign)) => {
            Some(Value::Word(Word::new(w.bits(), *width, *sign)))
        }
        (Value::Nat(n), Ty::Word(width, sign)) => Some(Value::Word(Word::of_nat(n, *width, *sign))),
        (Value::Int(i), Ty::Word(width, sign)) => Some(Value::Word(Word::of_int(i, *width, *sign))),
        (Value::Nat(_) | Value::Int(_), Ty::Nat | Ty::Int) | (Value::Bool(_), Ty::Bool) => {
            Some(v.clone())
        }
        (Value::Ptr(p), Ty::Ptr(t)) if p.pointee == **t => Some(v.clone()),
        _ => None,
    }
}

/// The boundary word grid the deterministic candidate pass draws from.
fn word_grid(sign: Signedness) -> Vec<i64> {
    match sign {
        Signedness::Unsigned => vec![0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33],
        Signedness::Signed => vec![0, 1, 2, 3, -1, -2, 5, 8, -8, 16, 31, -31, 33],
    }
}

/// Searches for a concrete input falsifying `spec`: the model-derived
/// candidate first, then a boundary grid, then seeded random states.
/// Returns a fully-built [`Cex`] (trace included) on success.
fn falsify(
    out: &Output,
    name: &str,
    spec: &FnSpec,
    model: Option<&HashMap<String, Value>>,
    vc_name: &str,
    span: Option<Span>,
) -> Option<Cex> {
    let hl_f = out.hl.function(name)?;
    let heap_types = heap_types_of(&out.simpl.tenv, &out.l1);
    let params = &hl_f.params;

    let mut try_args = |args: &[Value], conc0: &ConcState| -> Option<Cex> {
        let observed = check_falsifies(out, name, spec, args, conc0, &heap_types)?;
        Some(build_cex(
            out,
            name,
            spec,
            model,
            vc_name,
            span,
            args,
            conc0,
            &heap_types,
            observed,
        ))
    };

    // A fixed heap shape for the model-derived and grid candidates: the
    // same deterministic layout the random pass uses, at a pinned seed.
    let base_state = {
        let mut rng = StdRng::seed_from_u64(derive_seed(SEARCH_SALT, name));
        gen_state(&mut rng, &out.simpl.tenv, &heap_types, HEAP_OBJS)
    };

    // 1. Model-derived candidate: exact values from the solver's
    //    assignment (catches magic constants like overflow boundaries the
    //    grid and random passes would never hit).
    if let Some(m) = model {
        let mut m = m.clone();
        let ptys: HashMap<String, Ty> =
            params.iter().map(|(n, t)| (n.clone(), t.clone())).collect();
        solver::complete_model(&mut m, &ptys);
        let args: Option<Vec<Value>> = params
            .iter()
            .map(|(n, t)| m.get(n).and_then(|v| coerce(v, t)))
            .collect();
        if let Some(args) = args {
            if let Some(cex) = try_args(&args, &ConcState::default()) {
                return Some(cex);
            }
            if let Some(cex) = try_args(&args, &base_state) {
                return Some(cex);
            }
        }
    }

    // 2. Deterministic boundary grid over word parameters (pointer
    //    parameters cycle through NULL and the first object slots).
    if let Some(cex) = grid_search(out, name, params, &base_state, &heap_types, &mut try_args) {
        return Some(cex);
    }

    // 3. Seeded random search: fresh heap shapes and argument draws.
    let mut rng = StdRng::seed_from_u64(derive_seed(SEARCH_SALT ^ 1, name));
    for _ in 0..RANDOM_ATTEMPTS {
        let conc0 = gen_state(&mut rng, &out.simpl.tenv, &heap_types, HEAP_OBJS);
        let args: Vec<Value> = params
            .iter()
            .map(|(_, t)| random_arg(&mut rng, t, &heap_types, HEAP_OBJS))
            .collect();
        if let Some(cex) = try_args(&args, &conc0) {
            return Some(cex);
        }
    }
    None
}

/// Odometer-style cartesian sweep over per-parameter candidate lists.
fn grid_search(
    out: &Output,
    _name: &str,
    params: &[(String, Ty)],
    base_state: &ConcState,
    heap_types: &[Ty],
    try_args: &mut impl FnMut(&[Value], &ConcState) -> Option<Cex>,
) -> Option<Cex> {
    let lists: Vec<Vec<Value>> = params
        .iter()
        .map(|(_, t)| match t {
            Ty::Word(w, s) => word_grid(*s)
                .into_iter()
                .map(|v| Value::Word(Word::of_int(&bignum::Int::from(v), *w, *s)))
                .collect(),
            Ty::Ptr(p) => {
                let mut vals = vec![Value::Ptr(Ptr::null((**p).clone()))];
                // The first object slots of this pointee type in the
                // deterministic layout of `gen_state`.
                let mut next = autocorres::testing::OBJ_BASE;
                for ht in heap_types {
                    if ht == &**p {
                        for k in 0..HEAP_OBJS as u64 {
                            vals.push(Value::Ptr(Ptr::new(
                                next + k * autocorres::testing::OBJ_STRIDE,
                                (**p).clone(),
                            )));
                        }
                        break;
                    }
                    next += autocorres::testing::OBJ_STRIDE * HEAP_OBJS as u64;
                }
                vals
            }
            Ty::Bool => vec![Value::Bool(false), Value::Bool(true)],
            other => vec![Value::zero_of(other, &out.hl.tenv)],
        })
        .collect();
    if lists.is_empty() {
        return try_args(&[], base_state);
    }
    let mut idx = vec![0usize; lists.len()];
    for _ in 0..GRID_CAP {
        let args: Vec<Value> = idx.iter().zip(&lists).map(|(&i, l)| l[i].clone()).collect();
        if let Some(cex) = try_args(&args, base_state) {
            return Some(cex);
        }
        // Advance the odometer.
        let mut k = 0;
        loop {
            if k == lists.len() {
                return None;
            }
            idx[k] += 1;
            if idx[k] < lists[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
    None
}

/// The parameter environment for spec evaluation.
fn param_env(params: &[(String, Ty)], args: &[Value], tenv: &ir::ty::TypeEnv) -> Env {
    let mut vars = HashMap::new();
    for ((n, _), v) in params.iter().zip(args) {
        vars.insert(Symbol::intern(n), v.clone());
    }
    Env {
        vars,
        tenv: tenv.clone(),
    }
}

/// Runs `name` on the candidate at the HL level only and checks whether
/// the spec is falsified: precondition true on the initial abstract state,
/// and either the run faults or the postcondition evaluates to false on
/// the result. Anything ambiguous (pre doesn't hold, fuel, stuck, post
/// can't be evaluated) rejects the candidate — no spurious acceptances.
fn check_falsifies(
    out: &Output,
    name: &str,
    spec: &FnSpec,
    args: &[Value],
    conc0: &ConcState,
    heap_types: &[Ty],
) -> Option<Observed> {
    let hl_f = out.hl.function(name)?;
    let tenv = &out.hl.tenv;
    let abs0 = heapmodel::lift_state(conc0, &out.simpl.tenv, heap_types);
    let env = param_env(&hl_f.params, args, tenv);
    if !matches!(
        ir::eval::eval_bool(&spec.pre, &env, &State::Abs(abs0.clone())),
        Ok(true)
    ) {
        return None;
    }
    match audit::layers::run_monadic(&out.hl, name, args, State::Abs(abs0)) {
        audit::layers::LayerRun::Fault => Some(Observed::Fault),
        audit::layers::LayerRun::Normal(v, st) => {
            post_falsified(spec, &env, &v, &st).then_some(Observed::Normal(v))
        }
        audit::layers::LayerRun::Except(v, st) => {
            post_falsified(spec, &env, &v, &st).then_some(Observed::Except(v))
        }
        _ => None,
    }
}

/// Evaluates the postcondition with [`RV`] bound to the observed result,
/// on the final state. `true` = genuinely falsified.
fn post_falsified(spec: &FnSpec, env: &Env, rv: &Value, final_st: &State) -> bool {
    let mut env = env.clone();
    env.vars.insert(Symbol::intern(RV), rv.clone());
    matches!(
        ir::eval::eval_bool(&spec.post, &env, final_st),
        Ok(false)
    )
}

/// Extracts the typed heap cells of the candidate's initial state
/// (deterministic: `BTreeMap` order — type, then address).
fn cells_of(abs0: &AbsState, tenv: &ir::ty::TypeEnv) -> Vec<CexHeapCell> {
    let mut cells = Vec::new();
    for (ty, heap) in &abs0.heaps {
        for &addr in &heap.valid {
            let value = heap
                .get(addr)
                .cloned()
                .unwrap_or_else(|| Value::zero_of(ty, tenv));
            cells.push(CexHeapCell {
                ty: ty.clone(),
                addr,
                value,
            });
        }
    }
    cells
}

/// Assembles the final [`Cex`]: structured payload, five-layer runs, and
/// the pretty trace.
#[allow(clippy::too_many_arguments)]
fn build_cex(
    out: &Output,
    name: &str,
    spec: &FnSpec,
    model: Option<&HashMap<String, Value>>,
    vc_name: &str,
    span: Option<Span>,
    args: &[Value],
    conc0: &ConcState,
    heap_types: &[Ty],
    observed: Observed,
) -> Cex {
    let hl_f = out.hl.function(name).expect("checked by caller");
    let tenv = &out.hl.tenv;
    let abs0 = heapmodel::lift_state(conc0, &out.simpl.tenv, heap_types);
    let cells = cells_of(&abs0, tenv);

    // The reported assignment: parameters (validated values) first, then
    // any solver-model variables not shadowed by a parameter.
    let mut assignment: Vec<(String, Value)> = hl_f
        .params
        .iter()
        .zip(args)
        .map(|((n, _), v)| (n.clone(), v.clone()))
        .collect();
    if let Some(m) = model {
        let mut extra: Vec<(String, Value)> = m
            .iter()
            .filter(|(k, _)| !hl_f.params.iter().any(|(n, _)| n == *k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        extra.sort_by(|a, b| a.0.cmp(&b.0));
        assignment.extend(extra);
    }

    let info = Counterexample {
        function: name.to_owned(),
        vc: vc_name.to_owned(),
        span,
        model: assignment,
        heap: cells,
        validated: true,
    };
    let runs = audit::layers::run_all(out, name, args, conc0, heap_types).ok();
    let trace = trace::render(out, spec, &info, args, runs.as_ref(), &observed, heap_types);
    Cex {
        info,
        args: args.to_vec(),
        observed,
        trace,
    }
}
