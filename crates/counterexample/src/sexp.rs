//! S-expression (de)serialization for the seed artifacts.
//!
//! Counterexample seeds must survive a round trip through a text file and
//! come back to the *same* spec, argument values, and heap cells — so the
//! writer and parser here cover exactly the [`Ty`], [`Value`], [`Expr`],
//! and [`LoopAnn`] shapes the VCG layer works over. The format is a plain
//! parenthesized prefix notation with bare atoms (every name that appears
//! — variables, fields, structs — is a C identifier or the VCG's `·rv`),
//! no quoting or escapes needed.

use ir::diag::Span;
use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::intern::Interned;
use ir::ty::{Signedness, Ty, Width};
use ir::value::{Ptr, Value};
use ir::word::Word;
use vcg::LoopAnn;

/// A parsed S-expression node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sexp {
    /// A bare token.
    Atom(String),
    /// A parenthesized list.
    List(Vec<Sexp>),
}

impl std::fmt::Display for Sexp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sexp::Atom(a) => f.write_str(a),
            Sexp::List(items) => {
                f.write_str("(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{s}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl Sexp {
    fn atom(s: impl Into<String>) -> Sexp {
        Sexp::Atom(s.into())
    }

    fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items)
    }

    /// Parses one S-expression from `text` (ignoring trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn parse(text: &str) -> Result<Sexp, String> {
        let mut chars = text.char_indices().peekable();
        let sexp = parse_one(text, &mut chars)?;
        skip_ws(&mut chars);
        if let Some((i, c)) = chars.peek() {
            return Err(format!("trailing input at byte {i}: `{c}`"));
        }
        Ok(sexp)
    }

    fn as_atom(&self) -> Result<&str, String> {
        match self {
            Sexp::Atom(a) => Ok(a),
            Sexp::List(_) => Err(format!("expected atom, got {self}")),
        }
    }

    fn as_list(&self) -> Result<&[Sexp], String> {
        match self {
            Sexp::List(items) => Ok(items),
            Sexp::Atom(_) => Err(format!("expected list, got {self}")),
        }
    }

    /// A list whose head atom is `tag`, returning the remaining items.
    fn tagged(&self, tag: &str) -> Result<&[Sexp], String> {
        let items = self.as_list()?;
        match items.first() {
            Some(Sexp::Atom(a)) if a == tag => Ok(&items[1..]),
            _ => Err(format!("expected ({tag} …), got {self}")),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while let Some((_, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else {
            break;
        }
    }
}

fn parse_one(text: &str, chars: &mut Chars<'_>) -> Result<Sexp, String> {
    skip_ws(chars);
    match chars.peek().copied() {
        None => Err("unexpected end of input".into()),
        Some((_, '(')) => {
            chars.next();
            let mut items = Vec::new();
            loop {
                skip_ws(chars);
                match chars.peek().copied() {
                    None => return Err("unclosed `(`".into()),
                    Some((_, ')')) => {
                        chars.next();
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_one(text, chars)?),
                }
            }
        }
        Some((_, ')')) => Err("unexpected `)`".into()),
        Some((start, _)) => {
            let mut end = text.len();
            while let Some((i, c)) = chars.peek().copied() {
                if c.is_whitespace() || c == '(' || c == ')' {
                    end = i;
                    break;
                }
                chars.next();
            }
            if chars.peek().is_none() {
                end = text.len();
            }
            Ok(Sexp::Atom(text[start..end].to_owned()))
        }
    }
}

fn width_atom(w: Width) -> Sexp {
    Sexp::atom(w.bits().to_string())
}

fn parse_width(s: &Sexp) -> Result<Width, String> {
    match s.as_atom()? {
        "8" => Ok(Width::W8),
        "16" => Ok(Width::W16),
        "32" => Ok(Width::W32),
        "64" => Ok(Width::W64),
        other => Err(format!("bad width `{other}`")),
    }
}

fn sign_atom(s: Signedness) -> Sexp {
    Sexp::atom(match s {
        Signedness::Signed => "s",
        Signedness::Unsigned => "u",
    })
}

fn parse_sign(s: &Sexp) -> Result<Signedness, String> {
    match s.as_atom()? {
        "s" => Ok(Signedness::Signed),
        "u" => Ok(Signedness::Unsigned),
        other => Err(format!("bad signedness `{other}`")),
    }
}

/// Serializes a type.
#[must_use]
pub fn ty_to_sexp(t: &Ty) -> Sexp {
    match t {
        Ty::Unit => Sexp::atom("unit"),
        Ty::Bool => Sexp::atom("bool"),
        Ty::Nat => Sexp::atom("nat"),
        Ty::Int => Sexp::atom("int"),
        Ty::Word(w, s) => Sexp::list(vec![Sexp::atom("word"), width_atom(*w), sign_atom(*s)]),
        Ty::Ptr(p) => Sexp::list(vec![Sexp::atom("ptr"), ty_to_sexp(p)]),
        Ty::Struct(n) => Sexp::list(vec![Sexp::atom("struct"), Sexp::atom(n.clone())]),
        Ty::Tuple(ts) => {
            let mut items = vec![Sexp::atom("tuple")];
            items.extend(ts.iter().map(ty_to_sexp));
            Sexp::list(items)
        }
        Ty::Arr(t, n) => Sexp::list(vec![
            Sexp::atom("arr"),
            ty_to_sexp(t),
            Sexp::atom(n.to_string()),
        ]),
    }
}

/// Parses a type.
///
/// # Errors
///
/// Returns a message on shape mismatches.
pub fn ty_from_sexp(s: &Sexp) -> Result<Ty, String> {
    match s {
        Sexp::Atom(a) => match a.as_str() {
            "unit" => Ok(Ty::Unit),
            "bool" => Ok(Ty::Bool),
            "nat" => Ok(Ty::Nat),
            "int" => Ok(Ty::Int),
            other => Err(format!("bad type atom `{other}`")),
        },
        Sexp::List(items) => {
            let tag = items
                .first()
                .ok_or_else(|| "empty type list".to_owned())?
                .as_atom()?;
            match (tag, &items[1..]) {
                ("word", [w, sg]) => Ok(Ty::Word(parse_width(w)?, parse_sign(sg)?)),
                ("ptr", [p]) => Ok(Ty::Ptr(Box::new(ty_from_sexp(p)?))),
                ("struct", [n]) => Ok(Ty::Struct(n.as_atom()?.to_owned())),
                ("tuple", ts) => Ok(Ty::Tuple(
                    ts.iter().map(ty_from_sexp).collect::<Result<_, _>>()?,
                )),
                ("arr", [t, n]) => Ok(Ty::Arr(
                    Box::new(ty_from_sexp(t)?),
                    n.as_atom()?
                        .parse()
                        .map_err(|e| format!("bad array length: {e}"))?,
                )),
                _ => Err(format!("bad type {s}")),
            }
        }
    }
}

/// Serializes a value.
#[must_use]
pub fn value_to_sexp(v: &Value) -> Sexp {
    match v {
        Value::Unit => Sexp::atom("unit"),
        Value::Bool(b) => Sexp::atom(if *b { "true" } else { "false" }),
        Value::Word(w) => Sexp::list(vec![
            Sexp::atom("w"),
            width_atom(w.width()),
            sign_atom(w.sign()),
            Sexp::atom(w.bits().to_string()),
        ]),
        Value::Nat(n) => Sexp::list(vec![Sexp::atom("nat"), Sexp::atom(n.to_string())]),
        Value::Int(i) => Sexp::list(vec![Sexp::atom("int"), Sexp::atom(i.to_string())]),
        Value::Ptr(p) => Sexp::list(vec![
            Sexp::atom("ptr"),
            Sexp::atom(p.addr.to_string()),
            ty_to_sexp(&p.pointee),
        ]),
        Value::Struct(n, fields) => {
            let mut items = vec![Sexp::atom("sv"), Sexp::atom(n.clone())];
            for (f, fv) in fields {
                items.push(Sexp::list(vec![Sexp::atom(f.clone()), value_to_sexp(fv)]));
            }
            Sexp::list(items)
        }
        Value::Tuple(vs) => {
            let mut items = vec![Sexp::atom("tv")];
            items.extend(vs.iter().map(value_to_sexp));
            Sexp::list(items)
        }
        Value::Arr(t, vs) => {
            let mut items = vec![Sexp::atom("av"), ty_to_sexp(t)];
            items.extend(vs.iter().map(value_to_sexp));
            Sexp::list(items)
        }
    }
}

/// Parses a value.
///
/// # Errors
///
/// Returns a message on shape mismatches.
pub fn value_from_sexp(s: &Sexp) -> Result<Value, String> {
    match s {
        Sexp::Atom(a) => match a.as_str() {
            "unit" => Ok(Value::Unit),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(format!("bad value atom `{other}`")),
        },
        Sexp::List(items) => {
            let tag = items
                .first()
                .ok_or_else(|| "empty value list".to_owned())?
                .as_atom()?;
            match (tag, &items[1..]) {
                ("w", [w, sg, bits]) => {
                    let bits: u64 = bits
                        .as_atom()?
                        .parse()
                        .map_err(|e| format!("bad word bits: {e}"))?;
                    Ok(Value::Word(Word::new(bits, parse_width(w)?, parse_sign(sg)?)))
                }
                ("nat", [n]) => Ok(Value::Nat(
                    n.as_atom()?.parse().map_err(|e| format!("bad nat: {e}"))?,
                )),
                ("int", [i]) => Ok(Value::Int(
                    i.as_atom()?.parse().map_err(|e| format!("bad int: {e}"))?,
                )),
                ("ptr", [addr, t]) => {
                    let addr: u64 = addr
                        .as_atom()?
                        .parse()
                        .map_err(|e| format!("bad addr: {e}"))?;
                    Ok(Value::Ptr(Ptr::new(addr, ty_from_sexp(t)?)))
                }
                ("sv", [n, fields @ ..]) => {
                    let fields = fields
                        .iter()
                        .map(|f| {
                            let pair = f.as_list()?;
                            match pair {
                                [name, v] => {
                                    Ok((name.as_atom()?.to_owned(), value_from_sexp(v)?))
                                }
                                _ => Err(format!("bad struct field {f}")),
                            }
                        })
                        .collect::<Result<_, String>>()?;
                    Ok(Value::Struct(n.as_atom()?.to_owned(), fields))
                }
                ("tv", vs) => Ok(Value::Tuple(
                    vs.iter().map(value_from_sexp).collect::<Result<_, _>>()?,
                )),
                ("av", [t, vs @ ..]) => Ok(Value::Arr(
                    Box::new(ty_from_sexp(t)?),
                    vs.iter().map(value_from_sexp).collect::<Result<_, _>>()?,
                )),
                _ => Err(format!("bad value {s}")),
            }
        }
    }
}

fn binop_atom(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::BitAnd => "band",
        BinOp::BitOr => "bor",
        BinOp::BitXor => "bxor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Implies => "implies",
        BinOp::PtrAdd => "ptradd",
    }
}

fn parse_binop(s: &str) -> Result<BinOp, String> {
    Ok(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "mod" => BinOp::Mod,
        "band" => BinOp::BitAnd,
        "bor" => BinOp::BitOr,
        "bxor" => BinOp::BitXor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "implies" => BinOp::Implies,
        "ptradd" => BinOp::PtrAdd,
        other => return Err(format!("bad binop `{other}`")),
    })
}

fn unop_atom(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "not",
        UnOp::BitNot => "bitnot",
        UnOp::Neg => "neg",
    }
}

fn parse_unop(s: &str) -> Result<UnOp, String> {
    Ok(match s {
        "not" => UnOp::Not,
        "bitnot" => UnOp::BitNot,
        "neg" => UnOp::Neg,
        other => return Err(format!("bad unop `{other}`")),
    })
}

fn cast_to_sexp(k: &CastKind) -> Sexp {
    match k {
        CastKind::WordToWord(w, s) => {
            Sexp::list(vec![Sexp::atom("w2w"), width_atom(*w), sign_atom(*s)])
        }
        CastKind::Unat => Sexp::atom("unat"),
        CastKind::Sint => Sexp::atom("sint"),
        CastKind::OfNat(w, s) => {
            Sexp::list(vec![Sexp::atom("ofnat"), width_atom(*w), sign_atom(*s)])
        }
        CastKind::OfInt(w, s) => {
            Sexp::list(vec![Sexp::atom("ofint"), width_atom(*w), sign_atom(*s)])
        }
        CastKind::NatToInt => Sexp::atom("nat2int"),
        CastKind::IntToNat => Sexp::atom("int2nat"),
        CastKind::PtrToWord => Sexp::atom("ptr2word"),
        CastKind::WordToPtr(t) => Sexp::list(vec![Sexp::atom("word2ptr"), ty_to_sexp(t)]),
        CastKind::PtrRetype(t) => Sexp::list(vec![Sexp::atom("retype"), ty_to_sexp(t)]),
    }
}

fn cast_from_sexp(s: &Sexp) -> Result<CastKind, String> {
    match s {
        Sexp::Atom(a) => Ok(match a.as_str() {
            "unat" => CastKind::Unat,
            "sint" => CastKind::Sint,
            "nat2int" => CastKind::NatToInt,
            "int2nat" => CastKind::IntToNat,
            "ptr2word" => CastKind::PtrToWord,
            other => return Err(format!("bad cast `{other}`")),
        }),
        Sexp::List(items) => {
            let tag = items
                .first()
                .ok_or_else(|| "empty cast list".to_owned())?
                .as_atom()?;
            match (tag, &items[1..]) {
                ("w2w", [w, sg]) => Ok(CastKind::WordToWord(parse_width(w)?, parse_sign(sg)?)),
                ("ofnat", [w, sg]) => Ok(CastKind::OfNat(parse_width(w)?, parse_sign(sg)?)),
                ("ofint", [w, sg]) => Ok(CastKind::OfInt(parse_width(w)?, parse_sign(sg)?)),
                ("word2ptr", [t]) => Ok(CastKind::WordToPtr(ty_from_sexp(t)?)),
                ("retype", [t]) => Ok(CastKind::PtrRetype(ty_from_sexp(t)?)),
                _ => Err(format!("bad cast {s}")),
            }
        }
    }
}

/// Serializes an expression.
#[must_use]
pub fn expr_to_sexp(e: &Expr) -> Sexp {
    let l = |tag: &str, rest: Vec<Sexp>| {
        let mut items = vec![Sexp::atom(tag)];
        items.extend(rest);
        Sexp::list(items)
    };
    match e {
        Expr::Lit(v) => l("lit", vec![value_to_sexp(v)]),
        Expr::Var(n) => l("var", vec![Sexp::atom(n.as_str())]),
        Expr::Local(n) => l("local", vec![Sexp::atom(n.as_str())]),
        Expr::Global(n) => l("global", vec![Sexp::atom(n.as_str())]),
        Expr::ReadHeap(t, p) => l("rh", vec![ty_to_sexp(t), expr_to_sexp(p)]),
        Expr::ReadByte(p) => l("rb", vec![expr_to_sexp(p)]),
        Expr::IsValid(t, p) => l("valid", vec![ty_to_sexp(t), expr_to_sexp(p)]),
        Expr::PtrAligned(t, p) => l("aligned", vec![ty_to_sexp(t), expr_to_sexp(p)]),
        Expr::NullFree(t, p) => l("nullfree", vec![ty_to_sexp(t), expr_to_sexp(p)]),
        Expr::Field(s, f) => l("field", vec![expr_to_sexp(s), Sexp::atom(f.clone())]),
        Expr::UpdateField(s, f, v) => l(
            "updf",
            vec![expr_to_sexp(s), Sexp::atom(f.clone()), expr_to_sexp(v)],
        ),
        Expr::UnOp(op, a) => l("un", vec![Sexp::atom(unop_atom(*op)), expr_to_sexp(a)]),
        Expr::BinOp(op, a, b) => l(
            "bin",
            vec![Sexp::atom(binop_atom(*op)), expr_to_sexp(a), expr_to_sexp(b)],
        ),
        Expr::Cast(k, a) => l("cast", vec![cast_to_sexp(k), expr_to_sexp(a)]),
        Expr::Ite(c, t, f) => l(
            "ite",
            vec![expr_to_sexp(c), expr_to_sexp(t), expr_to_sexp(f)],
        ),
        Expr::Tuple(es) => l("tuple", es.iter().map(expr_to_sexp).collect()),
        Expr::Proj(i, a) => l("proj", vec![Sexp::atom(i.to_string()), expr_to_sexp(a)]),
        Expr::Index(a, ix) => l("index", vec![expr_to_sexp(a), expr_to_sexp(ix)]),
        Expr::ArrUpd(a, ix, v) => l(
            "arrupd",
            vec![expr_to_sexp(a), expr_to_sexp(ix), expr_to_sexp(v)],
        ),
    }
}

/// Parses an expression.
///
/// # Errors
///
/// Returns a message on shape mismatches.
pub fn expr_from_sexp(s: &Sexp) -> Result<Expr, String> {
    let items = s.as_list()?;
    let tag = items
        .first()
        .ok_or_else(|| "empty expr list".to_owned())?
        .as_atom()?;
    let rest = &items[1..];
    let i = |e: &Sexp| -> Result<Interned<Expr>, String> { Ok(Interned::new(expr_from_sexp(e)?)) };
    match (tag, rest) {
        ("lit", [v]) => Ok(Expr::Lit(value_from_sexp(v)?)),
        ("var", [n]) => Ok(Expr::var(n.as_atom()?)),
        ("local", [n]) => Ok(Expr::local(n.as_atom()?)),
        ("global", [n]) => Ok(Expr::global(n.as_atom()?)),
        ("rh", [t, p]) => Ok(Expr::ReadHeap(ty_from_sexp(t)?, i(p)?)),
        ("rb", [p]) => Ok(Expr::ReadByte(i(p)?)),
        ("valid", [t, p]) => Ok(Expr::IsValid(ty_from_sexp(t)?, i(p)?)),
        ("aligned", [t, p]) => Ok(Expr::PtrAligned(ty_from_sexp(t)?, i(p)?)),
        ("nullfree", [t, p]) => Ok(Expr::NullFree(ty_from_sexp(t)?, i(p)?)),
        ("field", [e, f]) => Ok(Expr::Field(i(e)?, f.as_atom()?.to_owned())),
        ("updf", [e, f, v]) => Ok(Expr::UpdateField(i(e)?, f.as_atom()?.to_owned(), i(v)?)),
        ("un", [op, a]) => Ok(Expr::UnOp(parse_unop(op.as_atom()?)?, i(a)?)),
        ("bin", [op, a, b]) => Ok(Expr::BinOp(parse_binop(op.as_atom()?)?, i(a)?, i(b)?)),
        ("cast", [k, a]) => Ok(Expr::Cast(cast_from_sexp(k)?, i(a)?)),
        ("ite", [c, t, f]) => Ok(Expr::Ite(i(c)?, i(t)?, i(f)?)),
        ("tuple", es) => Ok(Expr::Tuple(
            es.iter().map(expr_from_sexp).collect::<Result<_, _>>()?,
        )),
        ("proj", [idx, a]) => Ok(Expr::Proj(
            idx.as_atom()?.parse().map_err(|e| format!("bad proj: {e}"))?,
            i(a)?,
        )),
        ("index", [a, ix]) => Ok(Expr::Index(i(a)?, i(ix)?)),
        ("arrupd", [a, ix, v]) => Ok(Expr::ArrUpd(i(a)?, i(ix)?, i(v)?)),
        _ => Err(format!("bad expr {s}")),
    }
}

/// Serializes a loop annotation.
#[must_use]
pub fn ann_to_sexp(a: &LoopAnn) -> Sexp {
    let measure = match &a.measure {
        Some(m) => expr_to_sexp(m),
        None => Sexp::atom("none"),
    };
    let vars = a
        .var_tys
        .iter()
        .map(|(n, t)| Sexp::list(vec![Sexp::atom(n.clone()), ty_to_sexp(t)]))
        .collect();
    Sexp::list(vec![
        Sexp::atom("ann"),
        Sexp::list(vec![Sexp::atom("inv"), expr_to_sexp(&a.inv)]),
        Sexp::list(vec![Sexp::atom("measure"), measure]),
        Sexp::list({
            let mut items = vec![Sexp::atom("vars")];
            items.extend::<Vec<Sexp>>(vars);
            items
        }),
    ])
}

/// Parses a loop annotation.
///
/// # Errors
///
/// Returns a message on shape mismatches.
pub fn ann_from_sexp(s: &Sexp) -> Result<LoopAnn, String> {
    let rest = s.tagged("ann")?;
    let [inv, measure, vars] = rest else {
        return Err(format!("bad ann {s}"));
    };
    let inv = match inv.tagged("inv")? {
        [e] => expr_from_sexp(e)?,
        _ => return Err(format!("bad ann inv {inv}")),
    };
    let measure = match measure.tagged("measure")? {
        [Sexp::Atom(a)] if a == "none" => None,
        [e] => Some(expr_from_sexp(e)?),
        _ => return Err(format!("bad ann measure {measure}")),
    };
    let var_tys = vars
        .tagged("vars")?
        .iter()
        .map(|v| {
            let pair = v.as_list()?;
            match pair {
                [n, t] => Ok((n.as_atom()?.to_owned(), ty_from_sexp(t)?)),
                _ => Err(format!("bad ann var {v}")),
            }
        })
        .collect::<Result<_, String>>()?;
    Ok(LoopAnn {
        inv,
        measure,
        var_tys,
    })
}

/// Serializes a span as `line:col@offset`.
#[must_use]
pub fn span_to_text(s: Span) -> String {
    format!("{}:{}@{}", s.line, s.col, s.offset)
}

/// Parses a `line:col@offset` span.
///
/// # Errors
///
/// Returns a message on malformed input.
pub fn span_from_text(s: &str) -> Result<Span, String> {
    let (lc, off) = s.split_once('@').ok_or_else(|| format!("bad span `{s}`"))?;
    let (l, c) = lc.split_once(':').ok_or_else(|| format!("bad span `{s}`"))?;
    let parse = |x: &str| x.parse::<u32>().map_err(|e| format!("bad span `{s}`: {e}"));
    Ok(Span::new(parse(off)?, parse(l)?, parse(c)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_expr(e: &Expr) {
        let text = expr_to_sexp(e).to_string();
        let back = expr_from_sexp(&Sexp::parse(&text).unwrap()).unwrap();
        assert_eq!(*e, back, "via {text}");
    }

    #[test]
    fn exprs_roundtrip() {
        let node = Ty::Struct("node".into());
        roundtrip_expr(&Expr::eq(Expr::var("·rv"), Expr::i32(4)));
        roundtrip_expr(&Expr::implies(
            Expr::is_valid(node.clone(), Expr::var("p")),
            Expr::eq(
                Expr::field(Expr::read_heap(node.clone(), Expr::var("p")), "val"),
                Expr::u32(7),
            ),
        ));
        roundtrip_expr(&Expr::ite(
            Expr::binop(BinOp::Lt, Expr::var("a"), Expr::var("b")),
            Expr::cast(CastKind::Unat, Expr::var("a")),
            Expr::nat(3u32),
        ));
        roundtrip_expr(&Expr::Tuple(vec![
            Expr::unop(UnOp::Neg, Expr::int(-5)),
            Expr::proj(1, Expr::var("x")),
            Expr::null(Ty::U32),
        ]));
    }

    #[test]
    fn values_and_tys_roundtrip() {
        let vals = [
            Value::Unit,
            Value::Bool(true),
            Value::u32(0xFFFF_FFFF),
            Value::Nat(7u32.into()),
            Value::Int((-12i64).into()),
            Value::Ptr(Ptr::new(0x1000, Ty::Struct("node".into()))),
            Value::Struct(
                "node".into(),
                vec![
                    ("next".into(), Value::Ptr(Ptr::null(Ty::Struct("node".into())))),
                    ("val".into(), Value::u32(3)),
                ],
            ),
            Value::Tuple(vec![Value::u32(1), Value::Bool(false)]),
        ];
        for v in &vals {
            let text = value_to_sexp(v).to_string();
            let back = value_from_sexp(&Sexp::parse(&text).unwrap()).unwrap();
            assert_eq!(*v, back, "via {text}");
        }
        let tys = [
            Ty::Unit,
            Ty::Word(Width::W64, Signedness::Signed),
            Ty::Ptr(Box::new(Ty::Struct("obj".into()))),
            Ty::Tuple(vec![Ty::Nat, Ty::Bool]),
        ];
        for t in &tys {
            let text = ty_to_sexp(t).to_string();
            assert_eq!(*t, ty_from_sexp(&Sexp::parse(&text).unwrap()).unwrap(), "via {text}");
        }
    }

    #[test]
    fn spans_roundtrip() {
        let s = Span::new(42, 3, 7);
        assert_eq!(span_from_text(&span_to_text(s)).unwrap(), s);
    }
}
