//! Pretty-printed divergence traces.
//!
//! One trace per counterexample: the falsifying input (assignment + heap
//! cells), each of the five layer runs' outcomes, the first layer pair
//! where abstract and concrete behavior split (usually *none* — a wrong
//! program is translated consistently; the split is between the program
//! and its spec), and the spec verdict with its source span. The output
//! is fully deterministic (sorted maps, no timing, no addresses beyond
//! the fixed object pool), so it can be golden-snapshotted and must be
//! byte-identical at any pipeline worker count.

use audit::layers::{first_divergence, LayerRun, LAYER_NAMES};
use autocorres::Output;
use ir::diag::Counterexample;
use ir::ty::Ty;
use ir::value::Value;

use crate::analyze::{FnSpec, Observed};

/// Renders the trace for one validated counterexample.
#[must_use]
pub fn render(
    out: &Output,
    _spec: &FnSpec,
    info: &Counterexample,
    args: &[Value],
    runs: Option<&[LayerRun; 5]>,
    observed: &Observed,
    heap_types: &[Ty],
) -> String {
    let mut s = String::new();
    let push = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };

    let mut head = format!("counterexample: {} / {}", info.function, info.vc);
    if let Some(sp) = info.span {
        head.push_str(&format!(" (at {sp})"));
    }
    push(&mut s, &head);

    push(&mut s, "input assignment:");
    for (n, v) in &info.model {
        push(&mut s, &format!("  {n} = {v}"));
    }
    if info.model.is_empty() {
        push(&mut s, "  (none)");
    }

    push(&mut s, "input heap:");
    for c in &info.heap {
        push(&mut s, &format!("  {c}"));
    }
    if info.heap.is_empty() {
        push(&mut s, "  (empty)");
    }

    let hl_params = out
        .hl
        .function(&info.function)
        .map(|f| f.params.clone())
        .unwrap_or_default();
    let arg_list: Vec<String> = hl_params
        .iter()
        .zip(args)
        .map(|((n, _), v)| format!("{n} = {v}"))
        .collect();
    push(&mut s, &format!("call: {}({})", info.function, arg_list.join(", ")));

    push(&mut s, "layer runs:");
    match runs {
        Some(runs) => {
            for (name, r) in LAYER_NAMES.iter().zip(runs.iter()) {
                let line = match r {
                    LayerRun::Normal(v, _) => format!("  {name:<5} normal  {v}"),
                    LayerRun::Except(v, _) => format!("  {name:<5} except  {v}"),
                    LayerRun::Fault => format!("  {name:<5} fault"),
                    LayerRun::Fuel => format!("  {name:<5} out-of-fuel"),
                    LayerRun::Broken(e) => format!("  {name:<5} broken: {e}"),
                };
                push(&mut s, &line);
            }
            match first_divergence(out, &info.function, runs, heap_types) {
                Some(d) => push(&mut s, &format!("first layer split: {d}")),
                None => push(&mut s, "first layer split: none (all layers agree)"),
            }
        }
        None => push(&mut s, "  (layer runs unavailable)"),
    }

    let verdict = match observed {
        Observed::Fault => {
            "spec verdict: pre holds; the run FAULTS (guard failure falsifies the spec)"
                .to_owned()
        }
        Observed::Normal(v) => {
            format!("spec verdict: pre holds; post evaluates FALSE with ·rv = {v}")
        }
        Observed::Except(v) => {
            format!("spec verdict: pre holds; post evaluates FALSE with ·rv = {v} (early exit)")
        }
    };
    push(&mut s, &verdict);
    s
}
