//! Replayable counterexample seeds.
//!
//! A seed file packages everything needed to re-run a verification
//! failure from scratch, with no state beyond the file itself: the C
//! source, the spec (pre/post + loop annotations), the falsifying input
//! (arguments + typed heap cells), and the outcome the HL interpreter
//! observed at extraction time. [`playback`] re-translates the source,
//! rebuilds the input state, re-runs the function, re-evaluates the spec
//! and compares against the recorded verdict — a counterexample is a
//! *runnable regression test*: if the C code is later fixed, playback
//! reports that the input no longer falsifies the spec.
//!
//! Format (`cex-v1`): `key = value` header lines (same line discipline as
//! the fuzz-corpus seeds, values are S-expressions from [`crate::sexp`]),
//! then the C source verbatim after a `--- source ---` separator.

use ir::diag::{CexHeapCell, Span};
use ir::value::Value;

use crate::analyze::{validate_input, Cex, FnSpec, Observed};
use crate::sexp::{
    ann_from_sexp, ann_to_sexp, expr_from_sexp, expr_to_sexp, span_from_text, span_to_text,
    ty_from_sexp, ty_to_sexp, value_from_sexp, value_to_sexp, Sexp,
};

/// The format tag of the current seed version.
pub const FORMAT: &str = "cex-v1";
/// The separator between the header and the C source.
pub const SOURCE_SEP: &str = "--- source ---";

/// A parsed (or to-be-rendered) counterexample seed.
#[derive(Clone, Debug)]
pub struct Seed {
    /// The function whose spec was refuted.
    pub function: String,
    /// The refuted VC's name.
    pub vc: String,
    /// Statement-level span of the refuted obligation.
    pub span: Option<Span>,
    /// Argument values, parameter order.
    pub args: Vec<Value>,
    /// Typed heap cells of the input state.
    pub cells: Vec<CexHeapCell>,
    /// The spec the function was verified against.
    pub spec: FnSpec,
    /// The outcome observed at extraction time ([`Observed::render`]).
    pub observed: Observed,
    /// The C translation unit, verbatim.
    pub source: String,
}

impl Seed {
    /// Builds a seed from an extraction result.
    #[must_use]
    pub fn from_cex(cex: &Cex, spec: &FnSpec, source: &str) -> Seed {
        Seed {
            function: cex.info.function.clone(),
            vc: cex.info.vc.clone(),
            span: cex.info.span,
            args: cex.args.clone(),
            cells: cex.info.heap.clone(),
            spec: spec.clone(),
            observed: cex.observed.clone(),
            source: source.to_owned(),
        }
    }

    /// Renders the seed file text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# counterexample seed ({FORMAT}): {} / {}\n",
            self.function, self.vc
        ));
        s.push_str(&format!("format = {FORMAT}\n"));
        s.push_str(&format!("function = {}\n", self.function));
        s.push_str(&format!("vc = {}\n", self.vc));
        if let Some(sp) = self.span {
            s.push_str(&format!("span = {}\n", span_to_text(sp)));
        }
        s.push_str("verdict = falsified\n");
        s.push_str(&format!("observed = {}\n", self.observed.render()));
        for a in &self.args {
            s.push_str(&format!("arg = {}\n", value_to_sexp(a)));
        }
        for c in &self.cells {
            s.push_str(&format!(
                "cell = ({} {} {})\n",
                ty_to_sexp(&c.ty),
                c.addr,
                value_to_sexp(&c.value)
            ));
        }
        s.push_str(&format!("pre = {}\n", expr_to_sexp(&self.spec.pre)));
        s.push_str(&format!("post = {}\n", expr_to_sexp(&self.spec.post)));
        for a in &self.spec.anns {
            s.push_str(&format!("ann = {}\n", ann_to_sexp(a)));
        }
        s.push_str(SOURCE_SEP);
        s.push('\n');
        s.push_str(&self.source);
        s
    }

    /// Parses a seed file.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input or a format-tag mismatch.
    pub fn parse(text: &str) -> Result<Seed, String> {
        let (header, source) = text
            .split_once(SOURCE_SEP)
            .ok_or_else(|| format!("missing `{SOURCE_SEP}` separator"))?;
        let source = source.strip_prefix('\n').unwrap_or(source).to_owned();
        let mut function = None;
        let mut vc = None;
        let mut span = None;
        let mut observed = None;
        let mut args = Vec::new();
        let mut cells = Vec::new();
        let mut pre = None;
        let mut post = None;
        let mut anns = Vec::new();
        for line in header.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("bad seed line `{line}`"))?;
            match key {
                "format" => {
                    if value != FORMAT {
                        return Err(format!("unsupported seed format `{value}`"));
                    }
                }
                "function" => function = Some(value.to_owned()),
                "vc" => vc = Some(value.to_owned()),
                "span" => span = Some(span_from_text(value)?),
                "verdict" => {
                    if value != "falsified" {
                        return Err(format!("unsupported verdict `{value}`"));
                    }
                }
                "observed" => observed = Some(Observed::parse(value)?),
                "arg" => args.push(value_from_sexp(&Sexp::parse(value)?)?),
                "cell" => {
                    let sx = Sexp::parse(value)?;
                    let Sexp::List(items) = &sx else {
                        return Err(format!("bad cell `{value}`"));
                    };
                    let [ty, addr, v] = items.as_slice() else {
                        return Err(format!("bad cell `{value}`"));
                    };
                    let Sexp::Atom(addr) = addr else {
                        return Err(format!("bad cell addr in `{value}`"));
                    };
                    cells.push(CexHeapCell {
                        ty: ty_from_sexp(ty)?,
                        addr: addr.parse().map_err(|e| format!("bad cell addr: {e}"))?,
                        value: value_from_sexp(v)?,
                    });
                }
                "pre" => pre = Some(expr_from_sexp(&Sexp::parse(value)?)?),
                "post" => post = Some(expr_from_sexp(&Sexp::parse(value)?)?),
                "ann" => anns.push(ann_from_sexp(&Sexp::parse(value)?)?),
                other => return Err(format!("unknown seed key `{other}`")),
            }
        }
        Ok(Seed {
            function: function.ok_or("seed missing `function`")?,
            vc: vc.ok_or("seed missing `vc`")?,
            span,
            args,
            cells,
            spec: FnSpec {
                pre: pre.ok_or("seed missing `pre`")?,
                post: post.ok_or("seed missing `post`")?,
                anns,
            },
            observed: observed.ok_or("seed missing `observed`")?,
            source,
        })
    }

    /// A human-readable description of the concrete input (for mismatch
    /// reports).
    #[must_use]
    pub fn describe_input(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("function: {} (VC {})\n", self.function, self.vc));
        s.push_str("args:\n");
        for a in &self.args {
            s.push_str(&format!("  {a}\n"));
        }
        if self.args.is_empty() {
            s.push_str("  (none)\n");
        }
        s.push_str("heap cells:\n");
        for c in &self.cells {
            s.push_str(&format!("  {c}\n"));
        }
        if self.cells.is_empty() {
            s.push_str("  (empty)\n");
        }
        s
    }
}

/// The result of replaying a seed.
#[derive(Clone, Debug)]
pub struct Playback {
    /// The parsed seed.
    pub seed: Seed,
    /// The re-validated counterexample, when the recorded input still
    /// falsifies the spec (carries a fresh trace).
    pub cex: Option<Cex>,
    /// The recorded verdict (`falsified`) still holds.
    pub verdict_matches: bool,
    /// The observed outcome is identical to the recorded one.
    pub observed_matches: bool,
}

/// Replays a seed from its text: re-translates the source, rebuilds the
/// input state, re-runs the function, and re-checks the spec.
///
/// # Errors
///
/// Returns a message when the seed is malformed, the source no longer
/// translates, or the input state no longer encodes.
pub fn playback(text: &str) -> Result<Playback, String> {
    playback_with(text, &autocorres::Options::default())
}

/// [`playback`] with explicit pipeline options — lets the bench assert
/// that seed replays are byte-identical with the abstract-interpretation
/// phase disabled.
///
/// # Errors
///
/// As for [`playback`].
pub fn playback_with(text: &str, opts: &autocorres::Options) -> Result<Playback, String> {
    let seed = Seed::parse(text)?;
    let out = autocorres::translate(&seed.source, opts)
        .map_err(|e| format!("seed source no longer translates: {e}"))?;
    let conc0 = crate::analyze::state_from_cells(&seed.cells, &out.simpl.tenv)?;
    let cex = validate_input(
        &out,
        &seed.function,
        &seed.spec,
        &seed.vc,
        seed.span,
        &seed.args,
        &conc0,
    );
    let verdict_matches = cex.is_some();
    let observed_matches = cex
        .as_ref()
        .is_some_and(|c| c.observed == seed.observed);
    Ok(Playback {
        seed,
        cex,
        verdict_matches,
        observed_matches,
    })
}
