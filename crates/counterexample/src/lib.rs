//! Counterexample extraction and concrete playback.
//!
//! When the verification pipeline refutes a VC, the solver's satisfying
//! assignment is only a *symbolic* story about why the proof fails. This
//! crate turns it into a *concrete* one:
//!
//! 1. [`analyze`] runs the VCG over a function's spec, and for every
//!    refuted (or undecided) obligation searches for a concrete input —
//!    argument values plus typed heap cells — that genuinely falsifies
//!    the spec **under execution**. Candidates come from the solver
//!    model first, then a deterministic boundary grid, then a seeded
//!    random search; each one is validated by running the HL interpreter
//!    and re-evaluating the spec, so spurious counterexamples are
//!    impossible by construction.
//! 2. Every validated [`Cex`] carries a structured
//!    [`ir::diag::Counterexample`] payload (attachable to a `Diag`), the
//!    five-layer interpreter runs (Simpl/L1/L2/HL/WA), and a
//!    deterministic pretty-printed divergence trace ([`trace`]).
//! 3. [`Seed`] packages a counterexample as a standalone replayable
//!    artifact (`cex-v1` text format: spec + input + observed outcome +
//!    the C source verbatim); [`playback`] re-translates, re-runs, and
//!    re-checks it — a verification failure becomes a runnable
//!    regression test.

pub mod analyze;
pub mod seed;
pub mod sexp;
pub mod trace;

pub use analyze::{
    analyze, state_from_cells, validate_input, Analysis, Cex, FnSpec, Observed, VcReport, VcStatus,
};
pub use seed::{playback, playback_with, Playback, Seed, FORMAT, SOURCE_SEP};
