//! The LCF-style proof kernel.
//!
//! In the paper, AutoCorres runs inside Isabelle/HOL: every abstraction step
//! is justified by applying proven inference rules through the kernel, so a
//! theorem can only come into existence via rules. This crate reproduces
//! that architecture in Rust:
//!
//! * [`Thm`] is the theorem type. Its constructor is private — the **only**
//!   way to obtain a `Thm` is through the rule functions in [`rules`], each
//!   of which checks its side conditions before admitting the conclusion.
//! * [`judgment::Judgment`] is the statement language: the refinement
//!   judgments of the paper — `abs_w_val`/`abs_w_stmt` (Sec 3.3),
//!   `abs_h_val`/`abs_h_modifies`/`abs_h_stmt` (Sec 4.5), the L1
//!   Simpl-to-monadic correspondence, and plain monadic refinement used by
//!   the L2 rewrites.
//! * Every `Thm` carries its full derivation tree; [`check`] replays the
//!   derivation through the same rule validations, independently of the
//!   engine that produced it.
//! * [`semantics`] gives each judgment form its executable meaning, and
//!   provides randomized differential validators — the documented substitute
//!   for Isabelle's meta-level soundness proofs of the rules (DESIGN.md §2).
//!
//! Two rules consult oracles: `DischargeGuard` uses the `solver` simplifier
//! (the analogue of `simp` being part of Isabelle's trusted tactics), and
//! `ExecTested` admits a refinement after randomized differential testing
//! with a recorded seed/trial count.

pub mod cert;
pub mod codec;
pub mod judgment;
pub mod rules;
pub mod semantics;
pub mod thm;

pub use judgment::{AbsFun, Judgment};
pub use thm::{
    check, check_all, check_all_with, CheckCtx, KernelError, ReplayCache, ReplayReport, Rule, Side,
    Thm,
};
