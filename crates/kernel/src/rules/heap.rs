//! Heap-abstraction rules (paper Sec 4.5, Table 4).
//!
//! Value rules (`abs_h_val`) relate byte-heap expressions to split-heap
//! expressions under `is_valid` preconditions; update rules
//! (`abs_h_modifies`) do the same for state updates; statement rules lift
//! them, emitting `guard` statements (kind [`GuardKind::HeapValid`]) for the
//! accumulated validity side conditions.

use ir::expr::{BinOp, Expr};
use ir::guard::GuardKind;
use ir::ty::Ty;
use ir::update::Update;
use monadic::Prog;

use crate::judgment::{guarded, Judgment};
use crate::rules::{children, pre_all, with_children, V};
use crate::thm::{CheckCtx, KernelError, Rule, Side, Thm};

fn as_hval(j: &Judgment) -> Result<(&Expr, &Expr, &Expr), String> {
    match j {
        Judgment::HVal { pre, abs, conc } => Ok((pre, abs, conc)),
        other => Err(format!("expected abs_h_val, got {}", other.describe())),
    }
}

fn as_hupd(j: &Judgment) -> Result<(&Expr, &Update, &Update), String> {
    match j {
        Judgment::HUpd { pre, abs, conc } => Ok((pre, abs, conc)),
        other => Err(format!("expected abs_h_modifies, got {}", other.describe())),
    }
}

fn as_hstmt(j: &Judgment) -> Result<(&Prog, &Prog), String> {
    match j {
        Judgment::HStmt { abs, conc } => Ok((abs, conc)),
        other => Err(format!("expected abs_h_stmt, got {}", other.describe())),
    }
}

/// Resolves a concrete pointer-offset access `PtrAdd(p, off)` against a
/// struct type: which field chain starts at `off`?
fn field_at_offset(
    tenv: &ir::ty::TypeEnv,
    sname: &str,
    off: u64,
    want: &Ty,
) -> Option<Vec<String>> {
    let def = tenv.struct_def(sname)?;
    for f in &def.fields {
        if f.offset == off && f.ty == *want {
            return Some(vec![f.name.clone()]);
        }
        // Nested structs: recurse when the offset lands inside the field.
        if let Ty::Struct(inner) = &f.ty {
            let size = tenv.size_of(&f.ty).ok()?;
            if off >= f.offset && off < f.offset + size {
                if let Some(mut rest) = field_at_offset(tenv, inner, off - f.offset, want) {
                    let mut path = vec![f.name.clone()];
                    path.append(&mut rest);
                    return Some(path);
                }
            }
        }
    }
    None
}

/// Builds `Field(Field(base, p₀), p₁)…` along a path.
fn field_chain(base: Expr, path: &[String]) -> Expr {
    path.iter().fold(base, |acc, f| Expr::field(acc, f.clone()))
}

/// Builds the nested functional update for a write at a field path.
fn field_update_chain(base: Expr, path: &[String], value: Expr) -> Expr {
    if path.is_empty() {
        return value;
    }
    let inner_base = field_chain(base.clone(), &path[..path.len() - 1]);
    let mut acc = Expr::UpdateField(
        ir::intern::Interned::new(inner_base),
        path[path.len() - 1].clone(),
        ir::intern::Interned::new(value),
    );
    for i in (0..path.len() - 1).rev() {
        let b = field_chain(base.clone(), &path[..i]);
        acc = Expr::UpdateField(ir::intern::Interned::new(b), path[i].clone(), ir::intern::Interned::new(acc));
    }
    acc
}

/// Validates a heap-abstraction value/update rule.
pub(crate) fn validate_val(rule: Rule, prems: &[&Judgment], concl: &Judgment, cx: &CheckCtx) -> V {
    match rule {
        Rule::HLit => {
            let (pre, abs, conc) = as_hval(concl)?;
            if !pre.is_true_lit() || abs != conc {
                return Err("HLit relates an expression to itself".into());
            }
            if matches!(conc, Expr::Lit(_) | Expr::Var(_)) {
                Ok(())
            } else {
                Err("HLit applies to literals and variables".into())
            }
        }
        Rule::HVar => {
            let (pre, abs, conc) = as_hval(concl)?;
            if !pre.is_true_lit() || abs != conc {
                return Err("HVar relates a variable to itself".into());
            }
            if matches!(conc, Expr::Var(_) | Expr::Global(_) | Expr::Local(_)) {
                Ok(())
            } else {
                Err("HVar applies to variables".into())
            }
        }
        Rule::HCong => {
            let (pre, abs, conc) = as_hval(concl)?;
            // The operator itself must not touch the heap (heap access has
            // dedicated rules).
            if matches!(
                conc,
                Expr::ReadHeap(..)
                    | Expr::ReadByte(_)
                    | Expr::IsValid(..)
                    | Expr::PtrAligned(..)
                    | Expr::NullFree(..)
            ) {
                return Err("HCong does not apply to heap operators".into());
            }
            let conc_kids = children(conc);
            if conc_kids.len() != prems.len() {
                return Err("HCong arity mismatch".into());
            }
            let mut abs_kids = Vec::new();
            let mut pres = Vec::new();
            for (p, ck) in prems.iter().zip(&conc_kids) {
                let (pp, pa, pc) = as_hval(p)?;
                if pc != *ck {
                    return Err("HCong premise concrete side must be the child".into());
                }
                abs_kids.push(pa.clone());
                pres.push(pp.clone());
            }
            if *abs != with_children(conc, &abs_kids)? {
                return Err("HCong abstract side must be the rebuilt operator".into());
            }
            if *pre != pre_all(pres) {
                return Err("HCong precondition must be the conjunction".into());
            }
            Ok(())
        }
        Rule::HValWeaken => {
            let [l, r] = prems else {
                return Err("HValWeaken takes two premises".into());
            };
            let (pl, la, lc) = as_hval(l)?;
            let (pr, ra, rc) = as_hval(r)?;
            let (pre, abs, conc) = as_hval(concl)?;
            let (Expr::BinOp(op, ca, cb), Expr::BinOp(op2, aa, ab)) = (conc, abs) else {
                return Err("HValWeaken relates binary connectives".into());
            };
            if op != op2
                || !matches!(op, BinOp::And | BinOp::Or | BinOp::Implies)
            {
                return Err("HValWeaken applies to ∧/∨/⟶".into());
            }
            if **ca != *lc || **cb != *rc || **aa != *la || **ab != *ra {
                return Err("HValWeaken components mismatch".into());
            }
            let expect = pre_all([pl.clone(), weaken_pre(*op, la, pr)]);
            if *pre == expect {
                Ok(())
            } else {
                Err("HValWeaken precondition must be short-circuit weakened".into())
            }
        }
        Rule::HRead => {
            let [p] = prems else {
                return Err("HRead takes one pointer premise".into());
            };
            let (pp, pa, pc) = as_hval(p)?;
            let (pre, abs, conc) = as_hval(concl)?;
            let (Expr::ReadHeap(ty, cp), Expr::ReadHeap(ty2, ap)) = (conc, abs) else {
                return Err("HRead relates heap reads".into());
            };
            if ty != ty2 || **cp != *pc || **ap != *pa {
                return Err("HRead sides do not match the premise".into());
            }
            let expect = pre_all([pp.clone(), Expr::is_valid(ty.clone(), pa.clone())]);
            if *pre == expect {
                Ok(())
            } else {
                Err("HRead precondition must add is_valid".into())
            }
        }
        Rule::HReadField => {
            let [p] = prems else {
                return Err("HReadField takes one pointer premise".into());
            };
            let (pp, pa, pc) = as_hval(p)?;
            let (pre, abs, conc) = as_hval(concl)?;
            // conc = read (fty) (pc +p off)
            let Expr::ReadHeap(fty, cp) = conc else {
                return Err("HReadField concrete side must be a heap read".into());
            };
            let Expr::BinOp(BinOp::PtrAdd, base, off) = &**cp else {
                return Err("HReadField concrete pointer must be an offset".into());
            };
            if **base != *pc {
                return Err("HReadField base pointer mismatch".into());
            }
            let Expr::Lit(ir::value::Value::Word(offw)) = &**off else {
                return Err("HReadField offset must be a literal".into());
            };
            // abs = field chain of a struct read
            let (sname, path) = strip_field_chain(abs)?;
            let struct_ty = Ty::Struct(sname.clone());
            let expect_path = field_at_offset(&cx.tenv, &sname, offw.bits(), fty)
                .ok_or_else(|| format!("no field of `{sname}` at offset {}", offw.bits()))?;
            if path != expect_path {
                return Err("HReadField field path does not match the offset".into());
            }
            let expect_pre = pre_all([pp.clone(), Expr::is_valid(struct_ty, pa.clone())]);
            if *pre == expect_pre {
                Ok(())
            } else {
                Err("HReadField precondition must add struct is_valid".into())
            }
        }
        Rule::HGuardPtr => {
            let [p] = prems else {
                return Err("HGuardPtr takes one pointer premise".into());
            };
            let (pp, pa, pc) = as_hval(p)?;
            let (pre, abs, conc) = as_hval(concl)?;
            if !abs.is_true_lit() {
                return Err("HGuardPtr abstracts the guard to True".into());
            }
            // conc must be the c_guard of some type at pc.
            let ty = match conc {
                Expr::BinOp(BinOp::And, l, r) => match (&**l, &**r) {
                    (Expr::PtrAligned(t1, p1), Expr::NullFree(t2, p2))
                        if t1 == t2 && **p1 == *pc && **p2 == *pc =>
                    {
                        t1.clone()
                    }
                    _ => return Err("HGuardPtr concrete side must be a pointer guard".into()),
                },
                _ => return Err("HGuardPtr concrete side must be a pointer guard".into()),
            };
            let expect = pre_all([pp.clone(), Expr::is_valid(ty, pa.clone())]);
            if *pre == expect {
                Ok(())
            } else {
                Err("HGuardPtr precondition must be is_valid".into())
            }
        }
        Rule::HUpd => {
            let [p, v] = prems else {
                return Err("HUpd takes pointer and value premises".into());
            };
            let (pp, pa, pc) = as_hval(p)?;
            let (pv, va, vc) = as_hval(v)?;
            let (pre, abs, conc) = as_hupd(concl)?;
            let (Update::Heap(ty, cp, cv), Update::Heap(ty2, ap, av)) = (conc, abs) else {
                return Err("HUpd relates heap writes".into());
            };
            if ty != ty2 || cp != pc || cv != vc || ap != pa || av != va {
                return Err("HUpd sides do not match the premises".into());
            }
            let expect = pre_all([
                pp.clone(),
                pv.clone(),
                Expr::is_valid(ty.clone(), pa.clone()),
            ]);
            if *pre == expect {
                Ok(())
            } else {
                Err("HUpd precondition must add is_valid".into())
            }
        }
        Rule::HUpdField => {
            let [p, v] = prems else {
                return Err("HUpdField takes pointer and value premises".into());
            };
            let (pp, pa, pc) = as_hval(p)?;
            let (pv, va, vc) = as_hval(v)?;
            let (pre, abs, conc) = as_hupd(concl)?;
            let Update::Heap(fty, cp, cv) = conc else {
                return Err("HUpdField concrete side must be a heap write".into());
            };
            if cv != vc {
                return Err("HUpdField value mismatch".into());
            }
            let Expr::BinOp(BinOp::PtrAdd, base, off) = cp else {
                return Err("HUpdField concrete pointer must be an offset".into());
            };
            if **base != *pc {
                return Err("HUpdField base pointer mismatch".into());
            }
            let Expr::Lit(ir::value::Value::Word(offw)) = &**off else {
                return Err("HUpdField offset must be a literal".into());
            };
            // abs must be: heap write at struct ty of a functional field update.
            let Update::Heap(sty @ Ty::Struct(sname), ap, av) = abs else {
                return Err("HUpdField abstract side must be a struct-heap write".into());
            };
            if ap != pa {
                return Err("HUpdField abstract pointer mismatch".into());
            }
            let path = field_at_offset(&cx.tenv, sname, offw.bits(), fty)
                .ok_or_else(|| format!("no field of `{sname}` at offset {}", offw.bits()))?;
            let base_read = Expr::read_heap(sty.clone(), pa.clone());
            let expect_av = field_update_chain(base_read, &path, va.clone());
            if *av != expect_av {
                return Err("HUpdField functional update does not match".into());
            }
            let expect_pre = pre_all([
                pp.clone(),
                pv.clone(),
                Expr::is_valid(sty.clone(), pa.clone()),
            ]);
            if *pre == expect_pre {
                Ok(())
            } else {
                Err("HUpdField precondition must add struct is_valid".into())
            }
        }
        Rule::HUpdVar => {
            let [v] = prems else {
                return Err("HUpdVar takes one value premise".into());
            };
            let (pv, va, vc) = as_hval(v)?;
            let (pre, abs, conc) = as_hupd(concl)?;
            let ok = match (abs, conc) {
                (Update::Local(n1, a), Update::Local(n2, c)) => n1 == n2 && a == va && c == vc,
                (Update::Global(n1, a), Update::Global(n2, c)) => n1 == n2 && a == va && c == vc,
                _ => false,
            };
            if !ok {
                return Err("HUpdVar relates matching variable updates".into());
            }
            if pre == pv {
                Ok(())
            } else {
                Err("HUpdVar precondition must be the premise's".into())
            }
        }
        other => Err(format!("not a heap-value rule: {other:?}")),
    }
}

/// The short-circuit-weakened right precondition: trivially true stays
/// trivial; otherwise it only needs to hold when the right operand is
/// evaluated (`la` for ∧/⟶, `¬la` for ∨).
fn weaken_pre(op: BinOp, la: &Expr, pr: &Expr) -> Expr {
    if pr.is_true_lit() {
        return Expr::tt();
    }
    let cond = match op {
        BinOp::Or => Expr::not(la.clone()),
        _ => la.clone(),
    };
    Expr::implies(cond, pr.clone())
}

/// Destructures a field-select chain `Field(…Field(ReadHeap(S, p), f₀)…, fₙ)`.
fn strip_field_chain(e: &Expr) -> Result<(String, Vec<String>), String> {
    let mut path = Vec::new();
    let mut cur = e;
    while let Expr::Field(inner, f) = cur {
        path.push(f.clone());
        cur = inner;
    }
    path.reverse();
    match cur {
        Expr::ReadHeap(Ty::Struct(s), _) => Ok((s.clone(), path)),
        _ => Err("expected a field chain over a struct heap read".into()),
    }
}

/// Validates a heap-abstraction statement rule.
#[allow(clippy::too_many_lines)]
pub(crate) fn validate_stmt(rule: Rule, prems: &[&Judgment], concl: &Judgment, _cx: &CheckCtx) -> V {
    let (abs, conc) = as_hstmt(concl)?;
    match rule {
        Rule::HsGets | Rule::HsRet | Rule::HsThrow => {
            let [v] = prems else {
                return Err("rule takes one value premise".into());
            };
            let (pre, va, vc) = as_hval(v)?;
            let mk: fn(Expr) -> Prog = match rule {
                Rule::HsGets => Prog::Gets,
                Rule::HsRet => Prog::Return,
                _ => Prog::Throw,
            };
            let expect_abs = guarded(GuardKind::HeapValid, pre, mk(va.clone()));
            if *abs == expect_abs && *conc == mk(vc.clone()) {
                Ok(())
            } else {
                Err("conclusion does not match the guarded statement".into())
            }
        }
        Rule::HsModify => {
            let [u] = prems else {
                return Err("HsModify takes one update premise".into());
            };
            let (pre, ua, uc) = as_hupd(u)?;
            let expect_abs = guarded(GuardKind::HeapValid, pre, Prog::Modify(ua.clone()));
            if *abs == expect_abs && *conc == Prog::Modify(uc.clone()) {
                Ok(())
            } else {
                Err("HsModify conclusion does not match".into())
            }
        }
        Rule::HsGuard => {
            let [v] = prems else {
                return Err("HsGuard takes one premise".into());
            };
            let (pre, va, vc) = as_hval(v)?;
            let Prog::Guard(kind, gc) = conc else {
                return Err("HsGuard concrete side must be a guard".into());
            };
            if gc != vc {
                return Err("HsGuard guard expression mismatch".into());
            }
            // guard(True) after abstraction collapses to skip-like guard —
            // keep it literal: guard pre; guard abs (abs may be True).
            let inner = if va.is_true_lit() {
                Prog::skip()
            } else {
                Prog::Guard(kind.clone(), va.clone())
            };
            let expect_abs = guarded(GuardKind::HeapValid, pre, inner);
            if *abs == expect_abs {
                Ok(())
            } else {
                Err("HsGuard conclusion does not match".into())
            }
        }
        Rule::HsFail => {
            if prems.is_empty() && *abs == Prog::Fail && *conc == Prog::Fail {
                Ok(())
            } else {
                Err("HsFail relates fail to fail".into())
            }
        }
        Rule::HsBind => {
            let [l, r] = prems else {
                return Err("HsBind takes two premises".into());
            };
            let (la, lc) = as_hstmt(l)?;
            let (ra, rc) = as_hstmt(r)?;
            let (Prog::Bind(ca, v, cb), Prog::Bind(aa, v2, ab)) = (conc, abs) else {
                return Err("HsBind relates binds".into());
            };
            if v != v2 {
                return Err("HsBind variable mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("HsBind components do not match".into())
            }
        }
        Rule::HsBindTuple => {
            let [l, r] = prems else {
                return Err("HsBindTuple takes two premises".into());
            };
            let (la, lc) = as_hstmt(l)?;
            let (ra, rc) = as_hstmt(r)?;
            let (Prog::BindTuple(ca, vs, cb), Prog::BindTuple(aa, vs2, ab)) = (conc, abs) else {
                return Err("HsBindTuple relates tuple binds".into());
            };
            if vs != vs2 {
                return Err("HsBindTuple pattern mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("HsBindTuple components do not match".into())
            }
        }
        Rule::HsCond => {
            let [c, t, e] = prems else {
                return Err("HsCond takes three premises".into());
            };
            let (pc, ca, cc) = as_hval(c)?;
            let (ta, tc) = as_hstmt(t)?;
            let (ea, ec) = as_hstmt(e)?;
            let expect_abs = guarded(
                GuardKind::HeapValid,
                pc,
                Prog::cond(ca.clone(), ta.clone(), ea.clone()),
            );
            let expect_conc = Prog::cond(cc.clone(), tc.clone(), ec.clone());
            if *abs == expect_abs && *conc == expect_conc {
                Ok(())
            } else {
                Err("HsCond conclusion does not match".into())
            }
        }
        Rule::HsWhile => {
            let [c, b] = prems else {
                return Err("HsWhile takes condition and body premises".into());
            };
            let (pc, ca, cc) = as_hval(c)?;
            let (ba, bc) = as_hstmt(b)?;
            let Prog::While {
                vars: cv,
                cond: ccond,
                body: cbody,
                init: ci,
            } = conc
            else {
                return Err("HsWhile concrete side must be a loop".into());
            };
            // Initialisers must be heap-free (HL does not change them).
            if ci.iter().any(Expr::reads_heap) {
                return Err("HsWhile initialisers must not read the heap".into());
            }
            if *ccond != *cc || **cbody != *bc {
                return Err("HsWhile concrete components do not match".into());
            }
            let expect_abs = hs_while_abs(cv, ca, pc, ba, ci);
            if *abs == expect_abs {
                Ok(())
            } else {
                Err("HsWhile abstract side does not match the guarded loop".into())
            }
        }
        Rule::HsCatch => {
            let [l, r] = prems else {
                return Err("HsCatch takes two premises".into());
            };
            let (la, lc) = as_hstmt(l)?;
            let (ra, rc) = as_hstmt(r)?;
            let (Prog::Catch(ca, v, cb), Prog::Catch(aa, v2, ab)) = (conc, abs) else {
                return Err("HsCatch relates catches".into());
            };
            if v != v2 {
                return Err("HsCatch variable mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("HsCatch components do not match".into())
            }
        }
        Rule::HsCall => {
            // Arguments must be heap-free; the callee is abstracted
            // elsewhere (same name at both levels).
            let (Prog::Call { fname: cf, args: ca }, Prog::Call { fname: af, args: aa }) =
                (conc, abs)
            else {
                return Err("HsCall relates calls".into());
            };
            if cf != af || ca != aa {
                return Err("HsCall must preserve callee and arguments".into());
            }
            if ca.iter().any(Expr::reads_heap) {
                return Err("HsCall arguments must not read the heap".into());
            }
            Ok(())
        }
        Rule::HsExecConcrete => {
            // exec_concrete M refines M (Sec 4.6).
            let Prog::ExecConcrete(inner) = abs else {
                return Err("HsExecConcrete abstract side must be exec_concrete".into());
            };
            if **inner == *conc {
                Ok(())
            } else {
                Err("HsExecConcrete must wrap the concrete program".into())
            }
        }
        other => Err(format!("not a heap-statement rule: {other:?}")),
    }
}

// ---- public constructors ---------------------------------------------------

type R = Result<Thm, KernelError>;

fn err(rule: Rule, msg: impl Into<String>) -> KernelError {
    KernelError {
        rule,
        msg: msg.into(),
    }
}

/// `abs_h_val True e e` for literals/variables.
///
/// # Errors
///
/// Fails on non-leaf expressions.
pub fn h_leaf(cx: &CheckCtx, e: &Expr) -> R {
    let rule = if matches!(e, Expr::Lit(_)) {
        Rule::HLit
    } else {
        Rule::HVar
    };
    Thm::admit(
        rule,
        vec![],
        Judgment::HVal {
            pre: Expr::tt(),
            abs: e.clone(),
            conc: e.clone(),
        },
        Side::None,
        cx,
    )
}

/// Congruence over heap-free operators.
///
/// # Errors
///
/// Fails when premises do not match the children.
pub fn h_cong(cx: &CheckCtx, conc: &Expr, kids: Vec<Thm>) -> R {
    let mut abs_kids = Vec::new();
    let mut pres = Vec::new();
    for k in &kids {
        let (pp, pa, _) = as_hval(k.judgment()).map_err(|m| err(Rule::HCong, m))?;
        abs_kids.push(pa.clone());
        pres.push(pp.clone());
    }
    let abs = with_children(conc, &abs_kids).map_err(|m| err(Rule::HCong, m))?;
    Thm::admit(
        Rule::HCong,
        kids,
        Judgment::HVal {
            pre: pre_all(pres),
            abs,
            conc: conc.clone(),
        },
        Side::None,
        cx,
    )
}

/// Boolean connective with short-circuit weakening.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn h_val_weaken(cx: &CheckCtx, op: BinOp, l: Thm, r: Thm) -> R {
    let (pl, la, lc) = as_hval(l.judgment()).map_err(|m| err(Rule::HValWeaken, m))?;
    let (pr, ra, rc) = as_hval(r.judgment()).map_err(|m| err(Rule::HValWeaken, m))?;
    let concl = Judgment::HVal {
        pre: pre_all([pl.clone(), weaken_pre(op, la, pr)]),
        abs: Expr::binop(op, la.clone(), ra.clone()),
        conc: Expr::binop(op, lc.clone(), rc.clone()),
    };
    Thm::admit(Rule::HValWeaken, vec![l, r], concl, Side::None, cx)
}

/// Typed heap read (direct, non-field).
///
/// # Errors
///
/// Fails on a malformed pointer premise.
pub fn h_read(cx: &CheckCtx, ty: &Ty, p: Thm) -> R {
    let (pp, pa, pc) = as_hval(p.judgment()).map_err(|m| err(Rule::HRead, m))?;
    let concl = Judgment::HVal {
        pre: pre_all([pp.clone(), Expr::is_valid(ty.clone(), pa.clone())]),
        abs: Expr::read_heap(ty.clone(), pa.clone()),
        conc: Expr::read_heap(ty.clone(), pc.clone()),
    };
    Thm::admit(Rule::HRead, vec![p], concl, Side::None, cx)
}

/// Field read through a struct pointer (offset form → field select).
///
/// # Errors
///
/// Fails when the offset does not name a field of the struct.
pub fn h_read_field(cx: &CheckCtx, sname: &str, fty: &Ty, offset: u64, p: Thm) -> R {
    let (pp, pa, pc) = as_hval(p.judgment()).map_err(|m| err(Rule::HReadField, m))?;
    let path = field_at_offset(&cx.tenv, sname, offset, fty)
        .ok_or_else(|| err(Rule::HReadField, format!("no field at offset {offset}")))?;
    let sty = Ty::Struct(sname.to_owned());
    let abs = field_chain(Expr::read_heap(sty.clone(), pa.clone()), &path);
    let conc = Expr::read_heap(
        fty.clone(),
        Expr::binop(BinOp::PtrAdd, pc.clone(), Expr::u32(offset as u32)),
    );
    let concl = Judgment::HVal {
        pre: pre_all([pp.clone(), Expr::is_valid(sty, pa.clone())]),
        abs,
        conc,
    };
    Thm::admit(Rule::HReadField, vec![p], concl, Side::None, cx)
}

/// `HPTR`: the concrete pointer guard becomes `is_valid`.
///
/// # Errors
///
/// Fails on a malformed pointer premise.
pub fn h_guard_ptr(cx: &CheckCtx, ty: &Ty, p: Thm) -> R {
    let (pp, pa, pc) = as_hval(p.judgment()).map_err(|m| err(Rule::HGuardPtr, m))?;
    let concl = Judgment::HVal {
        pre: pre_all([pp.clone(), Expr::is_valid(ty.clone(), pa.clone())]),
        abs: Expr::tt(),
        conc: Expr::c_guard(ty.clone(), pc.clone()),
    };
    Thm::admit(Rule::HGuardPtr, vec![p], concl, Side::None, cx)
}

/// Heap write (direct, non-field).
///
/// # Errors
///
/// Fails on malformed premises.
pub fn h_upd(cx: &CheckCtx, ty: &Ty, p: Thm, v: Thm) -> R {
    let (pp, pa, pc) = as_hval(p.judgment()).map_err(|m| err(Rule::HUpd, m))?;
    let (pv, va, vc) = as_hval(v.judgment()).map_err(|m| err(Rule::HUpd, m))?;
    let concl = Judgment::HUpd {
        pre: pre_all([
            pp.clone(),
            pv.clone(),
            Expr::is_valid(ty.clone(), pa.clone()),
        ]),
        abs: Update::Heap(ty.clone(), pa.clone(), va.clone()),
        conc: Update::Heap(ty.clone(), pc.clone(), vc.clone()),
    };
    Thm::admit(Rule::HUpd, vec![p, v], concl, Side::None, cx)
}

/// Field write through a struct pointer (offset form → functional update).
///
/// # Errors
///
/// Fails when the offset does not name a field of the struct.
pub fn h_upd_field(
    cx: &CheckCtx,
    sname: &str,
    fty: &Ty,
    offset: u64,
    p: Thm,
    v: Thm,
) -> R {
    let (pp, pa, pc) = as_hval(p.judgment()).map_err(|m| err(Rule::HUpdField, m))?;
    let (pv, va, vc) = as_hval(v.judgment()).map_err(|m| err(Rule::HUpdField, m))?;
    let path = field_at_offset(&cx.tenv, sname, offset, fty)
        .ok_or_else(|| err(Rule::HUpdField, format!("no field at offset {offset}")))?;
    let sty = Ty::Struct(sname.to_owned());
    let base_read = Expr::read_heap(sty.clone(), pa.clone());
    let concl = Judgment::HUpd {
        pre: pre_all([
            pp.clone(),
            pv.clone(),
            Expr::is_valid(sty.clone(), pa.clone()),
        ]),
        abs: Update::Heap(
            sty,
            pa.clone(),
            field_update_chain(base_read, &path, va.clone()),
        ),
        conc: Update::Heap(
            fty.clone(),
            Expr::binop(BinOp::PtrAdd, pc.clone(), Expr::u32(offset as u32)),
            vc.clone(),
        ),
    };
    Thm::admit(Rule::HUpdField, vec![p, v], concl, Side::None, cx)
}

/// Lifts a value premise to a `gets`/`return`/`throw` statement.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_value_stmt(cx: &CheckCtx, rule: Rule, v: Thm) -> R {
    let (pre, va, vc) = as_hval(v.judgment()).map_err(|m| err(rule, m))?;
    let mk: fn(Expr) -> Prog = match rule {
        Rule::HsGets => Prog::Gets,
        Rule::HsRet => Prog::Return,
        Rule::HsThrow => Prog::Throw,
        other => return Err(err(other, "not a value-statement rule")),
    };
    let concl = Judgment::HStmt {
        abs: guarded(GuardKind::HeapValid, pre, mk(va.clone())),
        conc: mk(vc.clone()),
    };
    Thm::admit(rule, vec![v], concl, Side::None, cx)
}

/// `HMODIFY`.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_modify(cx: &CheckCtx, u: Thm) -> R {
    let (pre, ua, uc) = as_hupd(u.judgment()).map_err(|m| err(Rule::HsModify, m))?;
    let concl = Judgment::HStmt {
        abs: guarded(GuardKind::HeapValid, pre, Prog::Modify(ua.clone())),
        conc: Prog::Modify(uc.clone()),
    };
    Thm::admit(Rule::HsModify, vec![u], concl, Side::None, cx)
}

/// Guard-statement abstraction.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_guard(cx: &CheckCtx, kind: GuardKind, v: Thm) -> R {
    let (pre, va, vc) = as_hval(v.judgment()).map_err(|m| err(Rule::HsGuard, m))?;
    let inner = if va.is_true_lit() {
        Prog::skip()
    } else {
        Prog::Guard(kind.clone(), va.clone())
    };
    let concl = Judgment::HStmt {
        abs: guarded(GuardKind::HeapValid, pre, inner),
        conc: Prog::Guard(kind, vc.clone()),
    };
    Thm::admit(Rule::HsGuard, vec![v], concl, Side::None, cx)
}

/// `fail ⊑ fail`.
///
/// # Errors
///
/// Infallible in practice.
pub fn hs_fail(cx: &CheckCtx) -> R {
    Thm::admit(
        Rule::HsFail,
        vec![],
        Judgment::HStmt {
            abs: Prog::Fail,
            conc: Prog::Fail,
        },
        Side::None,
        cx,
    )
}

/// `HBIND`.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_bind(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (la, lc) = as_hstmt(l.judgment()).map_err(|m| err(Rule::HsBind, m))?;
    let (ra, rc) = as_hstmt(r.judgment()).map_err(|m| err(Rule::HsBind, m))?;
    let concl = Judgment::HStmt {
        abs: Prog::bind(la.clone(), v, ra.clone()),
        conc: Prog::bind(lc.clone(), v, rc.clone()),
    };
    Thm::admit(Rule::HsBind, vec![l, r], concl, Side::None, cx)
}

/// `HBIND` with a tuple pattern.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_bind_tuple(cx: &CheckCtx, vs: &[String], l: Thm, r: Thm) -> R {
    let (la, lc) = as_hstmt(l.judgment()).map_err(|m| err(Rule::HsBindTuple, m))?;
    let (ra, rc) = as_hstmt(r.judgment()).map_err(|m| err(Rule::HsBindTuple, m))?;
    let concl = Judgment::HStmt {
        abs: Prog::bind_tuple(la.clone(), vs.to_vec(), ra.clone()),
        conc: Prog::bind_tuple(lc.clone(), vs.to_vec(), rc.clone()),
    };
    Thm::admit(Rule::HsBindTuple, vec![l, r], concl, Side::None, cx)
}

/// `condition` abstraction.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_cond(cx: &CheckCtx, c: Thm, t: Thm, e: Thm) -> R {
    let (pc, ca, cc) = as_hval(c.judgment()).map_err(|m| err(Rule::HsCond, m))?;
    let (ta, tc) = as_hstmt(t.judgment()).map_err(|m| err(Rule::HsCond, m))?;
    let (ea, ec) = as_hstmt(e.judgment()).map_err(|m| err(Rule::HsCond, m))?;
    let concl = Judgment::HStmt {
        abs: guarded(
            GuardKind::HeapValid,
            pc,
            Prog::cond(ca.clone(), ta.clone(), ea.clone()),
        ),
        conc: Prog::cond(cc.clone(), tc.clone(), ec.clone()),
    };
    Thm::admit(Rule::HsCond, vec![c, t, e], concl, Side::None, cx)
}

/// The guarded abstract loop: the condition's validity precondition is
/// checked before the loop (over the initial values) and at the end of each
/// iteration (over the new iterator values, which the rebinding makes
/// current).
fn hs_while_abs(vars: &[String], ca: &Expr, pc: &Expr, ba: &Prog, init: &[Expr]) -> Prog {
    if pc.is_true_lit() {
        return Prog::While {
            vars: vars.to_vec(),
            cond: ca.clone(),
            body: ir::intern::Interned::new(ba.clone()),
            init: init.to_vec(),
        };
    }
    let pack = if vars.len() == 1 {
        Expr::var(vars[0].clone())
    } else {
        Expr::Tuple(vars.iter().map(|v| Expr::var(v.clone())).collect())
    };
    let tail = Prog::then(
        Prog::Guard(GuardKind::HeapValid, pc.clone()),
        Prog::ret(pack),
    );
    let wrapped_body = if vars.len() == 1 {
        Prog::bind(ba.clone(), vars[0].clone(), tail)
    } else {
        Prog::bind_tuple(ba.clone(), vars.to_vec(), tail)
    };
    // Head guard: the precondition over the initial values.
    let subst: std::collections::HashMap<String, Expr> = vars
        .iter()
        .cloned()
        .zip(init.iter().cloned())
        .collect();
    let head = pc.subst_vars(&subst);
    Prog::then(
        Prog::Guard(GuardKind::HeapValid, head),
        Prog::While {
            vars: vars.to_vec(),
            cond: ca.clone(),
            body: ir::intern::Interned::new(wrapped_body),
            init: init.to_vec(),
        },
    )
}

/// `whileLoop` abstraction (condition validity preconditions become loop
/// guards).
///
/// # Errors
///
/// Fails when the initialisers read the heap.
pub fn hs_while(
    cx: &CheckCtx,
    vars: &[String],
    init: &[Expr],
    c: Thm,
    b: Thm,
) -> R {
    let (pc, ca, cc) = as_hval(c.judgment()).map_err(|m| err(Rule::HsWhile, m))?;
    let (ba, bc) = as_hstmt(b.judgment()).map_err(|m| err(Rule::HsWhile, m))?;
    let concl = Judgment::HStmt {
        abs: hs_while_abs(vars, ca, pc, ba, init),
        conc: Prog::While {
            vars: vars.to_vec(),
            cond: cc.clone(),
            body: ir::intern::Interned::new(bc.clone()),
            init: init.to_vec(),
        },
    };
    Thm::admit(Rule::HsWhile, vec![c, b], concl, Side::None, cx)
}

/// Local/global update whose value may read the heap.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn h_upd_var(cx: &CheckCtx, conc: &Update, v: Thm) -> R {
    let (pv, va, vc) = as_hval(v.judgment()).map_err(|m| err(Rule::HUpdVar, m))?;
    let abs = match conc {
        Update::Local(n, c) if c == vc => Update::Local(n.clone(), va.clone()),
        Update::Global(n, c) if c == vc => Update::Global(n.clone(), va.clone()),
        _ => return Err(err(Rule::HUpdVar, "update does not match the premise")),
    };
    let concl = Judgment::HUpd {
        pre: pv.clone(),
        abs,
        conc: conc.clone(),
    };
    Thm::admit(Rule::HUpdVar, vec![v], concl, Side::None, cx)
}

/// `catch` abstraction.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn hs_catch(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (la, lc) = as_hstmt(l.judgment()).map_err(|m| err(Rule::HsCatch, m))?;
    let (ra, rc) = as_hstmt(r.judgment()).map_err(|m| err(Rule::HsCatch, m))?;
    let concl = Judgment::HStmt {
        abs: Prog::Catch(ir::intern::Interned::new(la.clone()), v.to_owned(), ir::intern::Interned::new(ra.clone())),
        conc: Prog::Catch(ir::intern::Interned::new(lc.clone()), v.to_owned(), ir::intern::Interned::new(rc.clone())),
    };
    Thm::admit(Rule::HsCatch, vec![l, r], concl, Side::None, cx)
}

/// Call congruence (arguments must be heap-free).
///
/// # Errors
///
/// Fails when an argument reads the heap.
pub fn hs_call(cx: &CheckCtx, fname: &str, args: &[Expr]) -> R {
    let call = Prog::Call {
        fname: fname.to_owned(),
        args: args.to_vec(),
    };
    Thm::admit(
        Rule::HsCall,
        vec![],
        Judgment::HStmt {
            abs: call.clone(),
            conc: call,
        },
        Side::None,
        cx,
    )
}

/// `exec_concrete` introduction (Sec 4.6): keeps a function at the
/// byte-heap level inside heap-abstracted code.
///
/// # Errors
///
/// Infallible in practice.
pub fn hs_exec_concrete(cx: &CheckCtx, m: &Prog) -> R {
    Thm::admit(
        Rule::HsExecConcrete,
        vec![],
        Judgment::HStmt {
            abs: Prog::ExecConcrete(ir::intern::Interned::new(m.clone())),
            conc: m.clone(),
        },
        Side::None,
        cx,
    )
}
