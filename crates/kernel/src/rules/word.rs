//! Word-abstraction rules (paper Sec 3.3, Table 3).
//!
//! Value rules relate a concrete word expression to an abstract `nat`/`int`
//! expression under a precondition; statement rules lift the relation to
//! programs, turning accumulated preconditions into `guard` statements
//! (guard kind [`GuardKind::WordAbs`]).

use std::collections::BTreeMap;

use bignum::{Int, Nat};
use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::guard::GuardKind;
use ir::ty::{Signedness, Ty, Width};
use ir::update::Update;
use ir::value::Value;
use monadic::Prog;

use crate::judgment::{guarded, AbsFun, Judgment, VarCtx};
use crate::rules::{children, pre_all, with_children, V};
use crate::thm::{CheckCtx, KernelError, Rule, Side, Thm};

const WIDTHS: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];

/// `(wrap₀ (π0 a), …, wrapₙ (πn a))` for componentwise wraps.
fn tuple_wrap_expr(fs: &[AbsFun], a: &Expr) -> Option<Expr> {
    let mut comps = Vec::with_capacity(fs.len());
    for (i, f) in fs.iter().enumerate() {
        let proj = Expr::proj(i, a.clone());
        comps.push(match f {
            AbsFun::Id => proj,
            AbsFun::Unat => Expr::cast(CastKind::Unat, proj),
            AbsFun::Sint => Expr::cast(CastKind::Sint, proj),
            AbsFun::Tuple(_) => return None,
        });
    }
    Some(Expr::Tuple(comps))
}

/// Is the abstraction (recursively) the identity?
fn absfun_id_like(f: &AbsFun) -> bool {
    match f {
        AbsFun::Id => true,
        AbsFun::Tuple(fs) => fs.iter().all(absfun_id_like),
        _ => false,
    }
}

fn as_wval(j: &Judgment) -> Result<(&VarCtx, &Expr, &AbsFun, &Expr, &Expr), String> {
    match j {
        Judgment::WVal { ctx, pre, f, abs, conc } => Ok((ctx, pre, f, abs, conc)),
        other => Err(format!("expected abs_w_val, got {}", other.describe())),
    }
}

fn as_wstmt(j: &Judgment) -> Result<(&VarCtx, &AbsFun, &AbsFun, &Prog, &Prog), String> {
    match j {
        Judgment::WStmt { ctx, rx, ex, abs, conc } => Ok((ctx, rx, ex, abs, conc)),
        other => Err(format!("expected abs_w_stmt, got {}", other.describe())),
    }
}

/// `UINT_MAX` for a width, as a nat literal expression.
fn nat_max(w: Width) -> Expr {
    Expr::nat(Nat::pow2(w.bits()) - Nat::one())
}

/// `INT_MIN ≤ t ∧ t ≤ INT_MAX` for a width.
fn in_range(t: Expr, w: Width) -> Expr {
    let min = Expr::int(-Int::from_nat(Nat::pow2(w.bits() - 1)));
    let max = Expr::int(Int::from_nat(Nat::pow2(w.bits() - 1)) - Int::one());
    Expr::and(
        Expr::binop(BinOp::Le, min, t.clone()),
        Expr::binop(BinOp::Le, t, max),
    )
}

fn int_min_lit(w: Width) -> Expr {
    Expr::int(-Int::from_nat(Nat::pow2(w.bits() - 1)))
}

/// Weakened precondition `c → p` (dropped when trivial).
fn weaken(c: &Expr, p: &Expr) -> Expr {
    if p.is_true_lit() {
        Expr::tt()
    } else {
        Expr::implies(c.clone(), p.clone())
    }
}

/// Builds the conclusion of a binary arithmetic rule for one width.
#[allow(clippy::too_many_lines)]
fn arith_conclusion(
    rule: Rule,
    w: Width,
    a: &Judgment,
    b: Option<&Judgment>,
) -> Result<Judgment, String> {
    let (ctx, pa, fa, aa, ac) = as_wval(a)?;
    if rule == Rule::SNeg {
        if *fa != AbsFun::Sint {
            return Err("SNeg premise must be sint".into());
        }
        return Ok(Judgment::WVal {
            ctx: ctx.clone(),
            pre: pre_all([
                pa.clone(),
                Expr::binop(BinOp::Ne, aa.clone(), int_min_lit(w)),
            ]),
            f: AbsFun::Sint,
            abs: Expr::unop(UnOp::Neg, aa.clone()),
            conc: Expr::unop(UnOp::Neg, ac.clone()),
        });
    }
    let b = b.ok_or_else(|| "binary rule needs two premises".to_string())?;
    let (ctxb, pb, fb, ba, bc) = as_wval(b)?;
    if ctx != ctxb {
        return Err("premise variable contexts differ".into());
    }
    if fa != fb {
        return Err("premise abstraction functions differ".into());
    }
    let unsigned = matches!(rule, Rule::WSum | Rule::WSub | Rule::WMul | Rule::WDiv | Rule::WMod);
    let expect_f = if unsigned { AbsFun::Unat } else { AbsFun::Sint };
    if *fa != expect_f {
        return Err(format!("rule {rule:?} expects {expect_f:?} premises"));
    }
    let (op, extra_pre) = match rule {
        Rule::WSum => (
            BinOp::Add,
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Add, aa.clone(), ba.clone()),
                nat_max(w),
            ),
        ),
        Rule::WSub => (BinOp::Sub, Expr::binop(BinOp::Le, ba.clone(), aa.clone())),
        Rule::WMul => (
            BinOp::Mul,
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Mul, aa.clone(), ba.clone()),
                nat_max(w),
            ),
        ),
        Rule::WDiv => (BinOp::Div, Expr::tt()),
        Rule::WMod => (BinOp::Mod, Expr::tt()),
        Rule::SSum => (
            BinOp::Add,
            in_range(Expr::binop(BinOp::Add, aa.clone(), ba.clone()), w),
        ),
        Rule::SSub => (
            BinOp::Sub,
            in_range(Expr::binop(BinOp::Sub, aa.clone(), ba.clone()), w),
        ),
        Rule::SMul => (
            BinOp::Mul,
            in_range(Expr::binop(BinOp::Mul, aa.clone(), ba.clone()), w),
        ),
        Rule::SDiv | Rule::SMod => (
            if rule == Rule::SDiv { BinOp::Div } else { BinOp::Mod },
            Expr::not(Expr::and(
                Expr::eq(aa.clone(), int_min_lit(w)),
                Expr::eq(ba.clone(), Expr::int(-1)),
            )),
        ),
        other => return Err(format!("not an arithmetic rule: {other:?}")),
    };
    Ok(Judgment::WVal {
        ctx: ctx.clone(),
        pre: pre_all([pa.clone(), pb.clone(), extra_pre]),
        f: expect_f,
        abs: Expr::binop(op, aa.clone(), ba.clone()),
        conc: Expr::binop(op, ac.clone(), bc.clone()),
    })
}

/// Validates a word-abstraction *value* rule.
pub(crate) fn validate_val(
    rule: Rule,
    prems: &[&Judgment],
    concl: &Judgment,
    side: &Side,
) -> V {
    match rule {
        Rule::WVar => {
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            let Expr::Var(n) = conc else {
                return Err("WVar concrete side must be a variable".into());
            };
            if abs != conc {
                return Err("WVar abstract side must be the same variable".into());
            }
            if !pre.is_true_lit() {
                return Err("WVar precondition must be trivial".into());
            }
            match ctx.get(n.as_str()) {
                Some(g) if g == f => Ok(()),
                Some(g) => Err(format!("variable `{n}` has context abstraction {g}, not {f}")),
                // Variables absent from the context are not abstracted.
                None if *f == AbsFun::Id => Ok(()),
                None => Err(format!("variable `{n}` not in the abstraction context")),
            }
        }
        Rule::WLit => {
            let (_, pre, f, abs, conc) = as_wval(concl)?;
            if !pre.is_true_lit() {
                return Err("WLit precondition must be trivial".into());
            }
            let (Expr::Lit(va), Expr::Lit(vc)) = (abs, conc) else {
                return Err("WLit relates literals".into());
            };
            let expect = f.apply(vc)?;
            if *va == expect {
                Ok(())
            } else {
                Err(format!("literal mismatch: {va} ≠ {f} {vc}"))
            }
        }
        Rule::WSum
        | Rule::WSub
        | Rule::WMul
        | Rule::WDiv
        | Rule::WMod
        | Rule::SSum
        | Rule::SSub
        | Rule::SMul
        | Rule::SDiv
        | Rule::SMod => {
            let [a, b] = prems else {
                return Err("arithmetic rules take two premises".into());
            };
            for w in WIDTHS {
                if arith_conclusion(rule, w, a, Some(b)).as_ref() == Ok(concl) {
                    return Ok(());
                }
            }
            Err("conclusion does not match the rule at any width".into())
        }
        Rule::SNeg => {
            let [a] = prems else {
                return Err("SNeg takes one premise".into());
            };
            for w in WIDTHS {
                if arith_conclusion(rule, w, a, None).as_ref() == Ok(concl) {
                    return Ok(());
                }
            }
            Err("conclusion does not match SNeg at any width".into())
        }
        Rule::WCmp => {
            let [a, b] = prems else {
                return Err("WCmp takes two premises".into());
            };
            let (ctx, pa, fa, aa, ac) = as_wval(a)?;
            let (ctxb, pb, fb, ba, bc) = as_wval(b)?;
            if ctx != ctxb || fa != fb {
                return Err("WCmp premises must share context and abstraction".into());
            }
            if !matches!(fa, AbsFun::Unat | AbsFun::Sint | AbsFun::Id) {
                return Err("WCmp premises must be value abstractions".into());
            }
            let (cctx, pre, f, abs, conc) = as_wval(concl)?;
            if cctx != ctx || *f != AbsFun::Id {
                return Err("WCmp concludes an id-abstracted boolean".into());
            }
            let Expr::BinOp(op, la, ra) = abs else {
                return Err("WCmp abstract side must be a comparison".into());
            };
            if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Eq | BinOp::Ne) {
                return Err("WCmp operator must be a comparison".into());
            }
            // Equality is injective for unat/sint; order is monotone.
            let expected_conc = Expr::BinOp(*op, ir::intern::Interned::new(ac.clone()), ir::intern::Interned::new(bc.clone()));
            if **la != *aa || **ra != *ba || *conc != expected_conc {
                return Err("WCmp sides do not match the premises".into());
            }
            if *pre != pre_all([pa.clone(), pb.clone()]) {
                return Err("WCmp precondition must be the conjunction of the premises'".into());
            }
            Ok(())
        }
        Rule::WOfNat | Rule::WOfInt => {
            let [a] = prems else {
                return Err("re-concretisation takes one premise".into());
            };
            let (ctx, pa, fa, aa, ac) = as_wval(a)?;
            let expect_f = if rule == Rule::WOfNat { AbsFun::Unat } else { AbsFun::Sint };
            if *fa != expect_f {
                return Err(format!("premise must be {expect_f:?}"));
            }
            let (cctx, pre, f, abs, conc) = as_wval(concl)?;
            if cctx != ctx || *f != AbsFun::Id || pre != pa || conc != ac {
                return Err("re-concretisation changes only the abstract side".into());
            }
            match abs {
                Expr::Cast(CastKind::OfNat(..), inner) if rule == Rule::WOfNat && **inner == *aa => {
                    Ok(())
                }
                Expr::Cast(CastKind::OfInt(..), inner) if rule == Rule::WOfInt && **inner == *aa => {
                    Ok(())
                }
                _ => Err("abstract side must be of_nat/of_int of the premise".into()),
            }
        }
        Rule::WUnatWrap | Rule::WSintWrap => {
            let [a] = prems else {
                return Err("wrap takes one premise".into());
            };
            let (ctx, pa, fa, aa, ac) = as_wval(a)?;
            if *fa != AbsFun::Id {
                return Err("wrap premise must be id-abstracted".into());
            }
            let (cctx, pre, f, abs, conc) = as_wval(concl)?;
            if cctx != ctx || pre != pa || conc != ac {
                return Err("wrap changes only the abstract side".into());
            }
            let (expect_f, kind) = if rule == Rule::WUnatWrap {
                (AbsFun::Unat, CastKind::Unat)
            } else {
                (AbsFun::Sint, CastKind::Sint)
            };
            if *f != expect_f {
                return Err(format!("wrap concludes {expect_f:?}"));
            }
            if *abs == Expr::Cast(kind, ir::intern::Interned::new(aa.clone())) {
                Ok(())
            } else {
                Err("abstract side must be unat/sint of the premise".into())
            }
        }
        Rule::WIdCong => {
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            if *f != AbsFun::Id {
                return Err("WIdCong concludes id abstraction".into());
            }
            let conc_kids = children(conc);
            if conc_kids.len() != prems.len() {
                return Err("WIdCong premise count must match the operator arity".into());
            }
            let mut abs_kids = Vec::new();
            let mut pres = Vec::new();
            for (p, ck) in prems.iter().zip(&conc_kids) {
                let (pctx, pp, pf, pa, pc) = as_wval(p)?;
                if pctx != ctx || *pf != AbsFun::Id {
                    return Err("WIdCong premises must be id-abstracted in the same context".into());
                }
                if pc != *ck {
                    return Err("WIdCong premise concrete side must be the child".into());
                }
                abs_kids.push(pa.clone());
                pres.push(pp.clone());
            }
            if *abs != with_children(conc, &abs_kids)? {
                return Err("WIdCong abstract side must be the rebuilt operator".into());
            }
            if *pre != pre_all(pres) {
                return Err("WIdCong precondition must be the conjunction".into());
            }
            Ok(())
        }
        Rule::WIte => {
            let [c, t, e] = prems else {
                return Err("WIte takes three premises".into());
            };
            let (ctx, pc, fc, ca, cc) = as_wval(c)?;
            let (ctxt, pt, ft, ta, tc) = as_wval(t)?;
            let (ctxe, pe, fe, ea, ec) = as_wval(e)?;
            if *fc != AbsFun::Id || ctx != ctxt || ctx != ctxe || ft != fe {
                return Err("WIte premise shapes wrong".into());
            }
            let (cctx, pre, f, abs, conc) = as_wval(concl)?;
            if cctx != ctx || f != ft {
                return Err("WIte conclusion context/abstraction mismatch".into());
            }
            let expect_abs = Expr::ite(ca.clone(), ta.clone(), ea.clone());
            let expect_conc = Expr::ite(cc.clone(), tc.clone(), ec.clone());
            let expect_pre = pre_all([
                pc.clone(),
                weaken(ca, pt),
                weaken(&Expr::not(ca.clone()), pe),
            ]);
            if *abs == expect_abs && *conc == expect_conc && *pre == expect_pre {
                Ok(())
            } else {
                Err("WIte conclusion does not match".into())
            }
        }
        Rule::WTuple => {
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            let (Expr::Tuple(cas), Expr::Tuple(aas)) = (conc, abs) else {
                return Err("WTuple relates tuples".into());
            };
            let AbsFun::Tuple(fs) = f else {
                return Err("WTuple concludes a tuple abstraction".into());
            };
            if prems.len() != cas.len() || fs.len() != cas.len() || aas.len() != cas.len() {
                return Err("WTuple arity mismatch".into());
            }
            let mut pres = Vec::new();
            for (i, p) in prems.iter().enumerate() {
                let (pctx, pp, pf, pa, pc) = as_wval(p)?;
                if pctx != ctx || *pf != fs[i] || *pa != aas[i] || *pc != cas[i] {
                    return Err("WTuple component mismatch".into());
                }
                pres.push(pp.clone());
            }
            if *pre == pre_all(pres) {
                Ok(())
            } else {
                Err("WTuple precondition must be the conjunction".into())
            }
        }
        Rule::WProj => {
            let [t] = prems else {
                return Err("WProj takes one premise".into());
            };
            let (tctx, tp, tf, ta, tc) = as_wval(t)?;
            let AbsFun::Tuple(fs) = tf else {
                return Err("WProj premise must be tuple-abstracted".into());
            };
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            let (Expr::Proj(i, ca), Expr::Proj(j, aa)) = (conc, abs) else {
                return Err("WProj relates projections".into());
            };
            if i != j || *i >= fs.len() {
                return Err("WProj index mismatch".into());
            }
            if ctx != tctx || pre != tp || *f != fs[*i] || **aa != *ta || **ca != *tc {
                return Err("WProj conclusion does not match".into());
            }
            Ok(())
        }
        Rule::WTupleId => {
            let [t] = prems else {
                return Err("WTupleId takes one premise".into());
            };
            let (tctx, tp, tf, ta, tc) = as_wval(t)?;
            if !absfun_id_like(tf) {
                return Err("WTupleId premise must be identity-like".into());
            }
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            if ctx != tctx || pre != tp || *f != AbsFun::Id || abs != ta || conc != tc {
                return Err("WTupleId changes only the abstraction function".into());
            }
            Ok(())
        }
        Rule::WTupleWrap => {
            let [t] = prems else {
                return Err("WTupleWrap takes one premise".into());
            };
            let (tctx, tp, tf, ta, tc) = as_wval(t)?;
            if *tf != AbsFun::Id {
                return Err("WTupleWrap premise must be id-abstracted".into());
            }
            let (ctx, pre, f, abs, conc) = as_wval(concl)?;
            let AbsFun::Tuple(fs) = f else {
                return Err("WTupleWrap concludes a tuple abstraction".into());
            };
            if ctx != tctx || pre != tp || conc != tc {
                return Err("WTupleWrap changes only the abstract side".into());
            }
            let expect = tuple_wrap_expr(fs, ta)
                .ok_or("WTupleWrap supports unat/sint/id components")?;
            if *abs == expect {
                Ok(())
            } else {
                Err("WTupleWrap abstract side must be the projected casts".into())
            }
        }
        Rule::WCustomSampled => {
            let Side::SampledWVal { vars, trials, seed } = side else {
                return Err("WCustomSampled needs sampling side data".into());
            };
            crate::semantics::sample_wval(concl, vars, *trials, *seed)
                .map_err(|e| e.message)
        }
        other => Err(format!("not a word-value rule: {other:?}")),
    }
}

/// Validates a word-abstraction *statement* rule.
#[allow(clippy::too_many_lines)]
pub(crate) fn validate_stmt(
    rule: Rule,
    prems: &[&Judgment],
    concl: &Judgment,
    cx: &CheckCtx,
) -> V {
    let (ctx, rx, ex, abs, conc) = as_wstmt(concl)?;
    match rule {
        Rule::WsRet | Rule::WsGets | Rule::WsThrow => {
            let [v] = prems else {
                return Err("rule takes one value premise".into());
            };
            let (vctx, pre, f, va, vc) = as_wval(v)?;
            if vctx != ctx {
                return Err("context mismatch".into());
            }
            type MkProg = fn(Expr) -> Prog;
            let (mk_abs, mk_conc): (MkProg, MkProg) = match rule {
                Rule::WsRet => (Prog::Return, Prog::Return),
                Rule::WsGets => (Prog::Gets, Prog::Gets),
                _ => (Prog::Throw, Prog::Throw),
            };
            if rule == Rule::WsThrow {
                if ex != f {
                    return Err("throw abstraction must match ex".into());
                }
            } else if rx != f {
                return Err("value abstraction must match rx".into());
            }
            let expect_abs = guarded(GuardKind::WordAbs, pre, mk_abs(va.clone()));
            if *abs == expect_abs && *conc == mk_conc(vc.clone()) {
                Ok(())
            } else {
                Err("conclusion does not match the guarded return/gets/throw".into())
            }
        }
        Rule::WsModify => {
            let Prog::Modify(cu) = conc else {
                return Err("WsModify concrete side must be modify".into());
            };
            let cu_exprs = update_exprs(cu);
            if prems.len() != cu_exprs.len() {
                return Err("WsModify premise count mismatch".into());
            }
            let mut abs_exprs = Vec::new();
            let mut pres = Vec::new();
            for (p, ce) in prems.iter().zip(&cu_exprs) {
                let (pctx, pp, pf, pa, pc) = as_wval(p)?;
                if pctx != ctx || *pf != AbsFun::Id || pc != *ce {
                    return Err("WsModify premises must be id-abstractions of the update".into());
                }
                abs_exprs.push(pa.clone());
                pres.push(pp.clone());
            }
            if *rx != AbsFun::Id {
                return Err("modify yields unit (rx = id)".into());
            }
            let au = update_with_exprs(cu, &abs_exprs);
            let expect = guarded(GuardKind::WordAbs, &pre_all(pres), Prog::Modify(au));
            if *abs == expect {
                Ok(())
            } else {
                Err("WsModify conclusion does not match".into())
            }
        }
        Rule::WsGuard => {
            let [v] = prems else {
                return Err("WsGuard takes one premise".into());
            };
            let (vctx, pre, f, va, vc) = as_wval(v)?;
            if vctx != ctx || *f != AbsFun::Id || *rx != AbsFun::Id {
                return Err("WsGuard premise must be an id-abstracted boolean".into());
            }
            let Prog::Guard(kind, gc) = conc else {
                return Err("WsGuard concrete side must be a guard".into());
            };
            if gc != vc {
                return Err("guard expression mismatch".into());
            }
            let expect = guarded(
                GuardKind::WordAbs,
                pre,
                Prog::Guard(kind.clone(), va.clone()),
            );
            if *abs == expect {
                Ok(())
            } else {
                Err("WsGuard conclusion does not match".into())
            }
        }
        Rule::WsFail => {
            if prems.is_empty() && *abs == Prog::Fail && *conc == Prog::Fail {
                Ok(())
            } else {
                Err("WsFail relates fail to fail".into())
            }
        }
        Rule::WsBind => {
            let [l, r] = prems else {
                return Err("WsBind takes two premises".into());
            };
            let (lctx, lrx, lex, la, lc) = as_wstmt(l)?;
            let (rctx, rrx, rex, ra, rc) = as_wstmt(r)?;
            let (Prog::Bind(ca, v, cb), Prog::Bind(aa, v2, ab)) = (conc, abs) else {
                return Err("WsBind relates binds".into());
            };
            if v != v2 {
                return Err("WsBind variable mismatch".into());
            }
            let mut expect_rctx = lctx.clone();
            expect_rctx.insert(v.clone(), lrx.clone());
            if lctx != ctx || *rctx != expect_rctx {
                return Err("WsBind context discipline violated".into());
            }
            if lex != ex || rex != ex || rrx != rx {
                return Err("WsBind rx/ex mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("WsBind components do not match premises".into())
            }
        }
        Rule::WsBindTuple => {
            let [l, r] = prems else {
                return Err("WsBindTuple takes two premises".into());
            };
            let (lctx, lrx, lex, la, lc) = as_wstmt(l)?;
            let (rctx, rrx, rex, ra, rc) = as_wstmt(r)?;
            let (Prog::BindTuple(ca, vs, cb), Prog::BindTuple(aa, vs2, ab)) = (conc, abs) else {
                return Err("WsBindTuple relates tuple binds".into());
            };
            if vs != vs2 {
                return Err("WsBindTuple pattern mismatch".into());
            }
            // Components of the left rx bind the pattern variables.
            let fs: Vec<AbsFun> = match lrx {
                AbsFun::Tuple(fs) if fs.len() == vs.len() => fs.clone(),
                f if vs.len() == 1 => vec![f.clone()],
                _ => return Err("WsBindTuple rx arity mismatch".into()),
            };
            let mut expect_rctx = lctx.clone();
            for (v, f) in vs.iter().zip(&fs) {
                expect_rctx.insert(v.clone(), f.clone());
            }
            if lctx != ctx || *rctx != expect_rctx {
                return Err("WsBindTuple context discipline violated".into());
            }
            if lex != ex || rex != ex || rrx != rx {
                return Err("WsBindTuple rx/ex mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("WsBindTuple components do not match".into())
            }
        }
        Rule::WsCond => {
            let [c, t, e] = prems else {
                return Err("WsCond takes three premises".into());
            };
            let (cctx, pc, fc, ca, cc) = as_wval(c)?;
            let (tctx, trx, tex, ta, tc) = as_wstmt(t)?;
            let (ectx, erx, eex, ea, ec) = as_wstmt(e)?;
            if cctx != ctx || tctx != ctx || ectx != ctx || *fc != AbsFun::Id {
                return Err("WsCond contexts mismatch".into());
            }
            if trx != rx || erx != rx || tex != ex || eex != ex {
                return Err("WsCond rx/ex mismatch".into());
            }
            let expect_abs = guarded(
                GuardKind::WordAbs,
                pc,
                Prog::cond(ca.clone(), ta.clone(), ea.clone()),
            );
            let expect_conc = Prog::cond(cc.clone(), tc.clone(), ec.clone());
            if *abs == expect_abs && *conc == expect_conc {
                Ok(())
            } else {
                Err("WsCond conclusion does not match".into())
            }
        }
        Rule::WsWhile => {
            // premises: cond val, body stmt, then one val per initialiser
            if prems.len() < 3 {
                return Err("WsWhile takes cond, body and initialisers".into());
            }
            let (
                Prog::While {
                    vars: cvars,
                    cond: ccond,
                    body: cbody,
                    init: cinit,
                },
                abs_inner,
            ) = (conc, strip_guard(abs))
            else {
                return Err("WsWhile concrete side must be a loop".into());
            };
            let Prog::While {
                vars: avars,
                cond: acond,
                body: abody,
                init: ainit,
            } = abs_inner
            else {
                return Err("WsWhile abstract side must be a loop".into());
            };
            if cvars != avars {
                return Err("WsWhile iterator names must be preserved".into());
            }
            let init_prems = &prems[2..];
            if init_prems.len() != cinit.len() || cinit.len() != cvars.len() {
                return Err("WsWhile initialiser count mismatch".into());
            }
            let mut fs = Vec::new();
            let mut pres = Vec::new();
            for (p, (ci, ai)) in init_prems.iter().zip(cinit.iter().zip(ainit)) {
                let (pctx, pp, pf, pa, pc) = as_wval(p)?;
                if pctx != ctx || pc != ci || pa != ai {
                    return Err("WsWhile initialiser premise mismatch".into());
                }
                fs.push(pf.clone());
                pres.push(pp.clone());
            }
            let packed = if fs.len() == 1 {
                fs[0].clone()
            } else {
                AbsFun::Tuple(fs.clone())
            };
            let mut ctx2 = ctx.clone();
            for (v, f) in cvars.iter().zip(&fs) {
                ctx2.insert(v.clone(), f.clone());
            }
            let (cvctx, cvpre, cvf, cva, cvc) = as_wval(prems[0])?;
            if *cvctx != ctx2 || !cvpre.is_true_lit() || *cvf != AbsFun::Id {
                return Err(
                    "WsWhile condition must be id-abstracted with trivial precondition".into(),
                );
            }
            if cva != acond || cvc != ccond {
                return Err("WsWhile condition mismatch".into());
            }
            let (bctx, brx, bex, ba, bc) = as_wstmt(prems[1])?;
            if *bctx != ctx2 || bex != ex || *brx != packed {
                return Err("WsWhile body context/abstraction mismatch".into());
            }
            if ba != &**abody || bc != &**cbody {
                return Err("WsWhile body mismatch".into());
            }
            if rx != &packed {
                return Err("WsWhile rx must be the packed iterator abstraction".into());
            }
            // the guard prefix must be exactly the initialiser preconditions
            let expect = guarded(GuardKind::WordAbs, &pre_all(pres), abs_inner.clone());
            if *abs == expect {
                Ok(())
            } else {
                Err("WsWhile initialiser guards do not match".into())
            }
        }
        Rule::WsCall => {
            let (Prog::Call { fname, args: cargs }, abs_inner) = (conc, strip_guard(abs)) else {
                return Err("WsCall concrete side must be a call".into());
            };
            let mut pres = Vec::new();
            let mut abs_args = Vec::new();
            let mut arg_fs = Vec::new();
            if prems.len() != cargs.len() {
                return Err("WsCall premise count mismatch".into());
            }
            for (p, ca) in prems.iter().zip(cargs) {
                let (pctx, pp, pf, pa, pc) = as_wval(p)?;
                if pctx != ctx || pc != ca {
                    return Err("WsCall argument premise mismatch".into());
                }
                pres.push(pp.clone());
                abs_args.push(pa.clone());
                arg_fs.push(pf.clone());
            }
            match cx.fn_abs.get(fname) {
                Some((param_fs, f_rx, f_ex)) => {
                    if *param_fs != arg_fs {
                        return Err("WsCall argument abstractions do not match the callee".into());
                    }
                    if rx != f_rx || ex != f_ex {
                        return Err("WsCall rx/ex must match the callee".into());
                    }
                    let expect = Prog::Call {
                        fname: fname.clone(),
                        args: abs_args,
                    };
                    if *abs_inner == expect
                        && *abs == guarded(GuardKind::WordAbs, &pre_all(pres), expect.clone())
                    {
                        Ok(())
                    } else {
                        Err("WsCall conclusion does not match".into())
                    }
                }
                None => {
                    // Call to a non-abstracted function: arguments must be
                    // id-abstracted; the result may be wrapped.
                    if arg_fs.iter().any(|f| *f != AbsFun::Id) {
                        return Err(
                            "WsCall to non-abstracted callee requires id arguments".into()
                        );
                    }
                    if *ex != AbsFun::Id {
                        return Err("non-abstracted callee has id exceptions".into());
                    }
                    let call = Prog::Call {
                        fname: fname.clone(),
                        args: abs_args,
                    };
                    let expect_inner = match rx.forward_cast() {
                        None if *rx == AbsFun::Id => call,
                        Some(cast) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(cast, Expr::var("·r"))),
                        ),
                        _ => return Err("WsCall cannot wrap with tuple abstraction".into()),
                    };
                    if *abs == guarded(GuardKind::WordAbs, &pre_all(pres), expect_inner) {
                        Ok(())
                    } else {
                        Err("WsCall (concrete callee) conclusion does not match".into())
                    }
                }
            }
        }
        Rule::WsCatch => {
            let [l, r] = prems else {
                return Err("WsCatch takes two premises".into());
            };
            let (lctx, lrx, lex, la, lc) = as_wstmt(l)?;
            let (rctx, rrx, rex, ra, rc) = as_wstmt(r)?;
            let (Prog::Catch(ca, v, cb), Prog::Catch(aa, v2, ab)) = (conc, abs) else {
                return Err("WsCatch relates catches".into());
            };
            if v != v2 {
                return Err("WsCatch variable mismatch".into());
            }
            let mut expect_rctx = lctx.clone();
            expect_rctx.insert(v.clone(), lex.clone());
            if lctx != ctx || *rctx != expect_rctx {
                return Err("WsCatch context discipline violated".into());
            }
            if lrx != rx || rrx != rx || rex != ex {
                return Err("WsCatch rx/ex mismatch".into());
            }
            if **ca == *lc && **cb == *rc && **aa == *la && **ab == *ra {
                Ok(())
            } else {
                Err("WsCatch components do not match premises".into())
            }
        }
        Rule::WsExecConcrete => {
            if !prems.is_empty() {
                return Err("WsExecConcrete takes no premises".into());
            }
            if abs != conc {
                return Err("WsExecConcrete passes the program through unchanged".into());
            }
            if !matches!(conc, Prog::ExecConcrete(_) | Prog::ExecAbstract(_)) {
                return Err("WsExecConcrete applies to level-mixing markers".into());
            }
            if *rx != AbsFun::Id || *ex != AbsFun::Id {
                return Err("concrete-level programs have id abstractions".into());
            }
            Ok(())
        }
        other => Err(format!("not a word-statement rule: {other:?}")),
    }
}

/// Strips a leading `guard P;` from a program (returns the continuation).
fn strip_guard(p: &Prog) -> &Prog {
    match p {
        Prog::Bind(l, _, r) if matches!(**l, Prog::Guard(..)) => r,
        other => other,
    }
}

fn update_exprs(u: &Update) -> Vec<&Expr> {
    match u {
        Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => vec![e],
        Update::Heap(_, p, e) | Update::Byte(p, e) => vec![p, e],
    }
}

fn update_with_exprs(u: &Update, es: &[Expr]) -> Update {
    match u {
        Update::Local(n, _) => Update::Local(n.clone(), es[0].clone()),
        Update::Global(n, _) => Update::Global(n.clone(), es[0].clone()),
        Update::TagRegion(t, _) => Update::TagRegion(t.clone(), es[0].clone()),
        Update::Heap(t, _, _) => Update::Heap(t.clone(), es[0].clone(), es[1].clone()),
        Update::Byte(_, _) => Update::Byte(es[0].clone(), es[1].clone()),
    }
}

// ---- public constructors ---------------------------------------------------

type R = Result<Thm, KernelError>;

/// `abs_w_val True f v v` for a context variable.
///
/// # Errors
///
/// Fails when `name` is not in `ctx` with abstraction `f`.
pub fn w_var(cx: &CheckCtx, ctx: &VarCtx, name: &str) -> R {
    let f = ctx.get(name).cloned().unwrap_or(AbsFun::Id);
    Thm::admit(
        Rule::WVar,
        vec![],
        Judgment::WVal {
            ctx: ctx.clone(),
            pre: Expr::tt(),
            f,
            abs: Expr::var(name),
            conc: Expr::var(name),
        },
        Side::None,
        cx,
    )
}

/// `abs_w_val True f (f v) v` for a literal.
///
/// # Errors
///
/// Fails when `f` does not apply to the value.
pub fn w_lit(cx: &CheckCtx, ctx: &VarCtx, f: AbsFun, v: &Value) -> R {
    let abs = f
        .apply(v)
        .map_err(|msg| KernelError { rule: Rule::WLit, msg })?;
    Thm::admit(
        Rule::WLit,
        vec![],
        Judgment::WVal {
            ctx: ctx.clone(),
            pre: Expr::tt(),
            f,
            abs: Expr::Lit(abs),
            conc: Expr::Lit(v.clone()),
        },
        Side::None,
        cx,
    )
}

/// A binary arithmetic rule at width `w` (see [`Rule`] for the variants).
///
/// # Errors
///
/// Fails when the premises do not have the required abstraction functions.
pub fn w_arith(cx: &CheckCtx, rule: Rule, w: Width, a: Thm, b: Thm) -> R {
    let concl = arith_conclusion(rule, w, a.judgment(), Some(b.judgment()))
        .map_err(|msg| KernelError { rule, msg })?;
    Thm::admit(rule, vec![a, b], concl, Side::None, cx)
}

/// Signed negation at width `w`.
///
/// # Errors
///
/// Fails when the premise is not a `sint` abstraction.
pub fn s_neg(cx: &CheckCtx, w: Width, a: Thm) -> R {
    let concl = arith_conclusion(Rule::SNeg, w, a.judgment(), None)
        .map_err(|msg| KernelError { rule: Rule::SNeg, msg })?;
    Thm::admit(Rule::SNeg, vec![a], concl, Side::None, cx)
}

/// Comparison under value abstraction (`f = id` on the boolean result).
///
/// # Errors
///
/// Fails on mismatched premise contexts or non-comparison operators.
pub fn w_cmp(cx: &CheckCtx, op: BinOp, a: Thm, b: Thm) -> R {
    let (ctx, pa, _, aa, ac) = as_wval(a.judgment()).map_err(|msg| KernelError {
        rule: Rule::WCmp,
        msg,
    })?;
    let (_, pb, _, ba, bc) = as_wval(b.judgment()).map_err(|msg| KernelError {
        rule: Rule::WCmp,
        msg,
    })?;
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: pre_all([pa.clone(), pb.clone()]),
        f: AbsFun::Id,
        abs: Expr::binop(op, aa.clone(), ba.clone()),
        conc: Expr::binop(op, ac.clone(), bc.clone()),
    };
    Thm::admit(Rule::WCmp, vec![a, b], concl, Side::None, cx)
}

/// `of_nat`/`of_int` re-concretisation of an abstracted value.
///
/// # Errors
///
/// Fails when the premise has the wrong abstraction function.
pub fn w_reconcretize(cx: &CheckCtx, w: Width, s: Signedness, a: Thm) -> R {
    let (ctx, pa, fa, aa, ac) = as_wval(a.judgment()).map_err(|msg| KernelError {
        rule: Rule::WOfNat,
        msg,
    })?;
    let (rule, kind) = match fa {
        AbsFun::Unat => (Rule::WOfNat, CastKind::OfNat(w, s)),
        AbsFun::Sint => (Rule::WOfInt, CastKind::OfInt(w, s)),
        other => {
            return Err(KernelError {
                rule: Rule::WOfNat,
                msg: format!("cannot re-concretise {other}"),
            })
        }
    };
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: pa.clone(),
        f: AbsFun::Id,
        abs: Expr::cast(kind, aa.clone()),
        conc: ac.clone(),
    };
    Thm::admit(rule, vec![a], concl, Side::None, cx)
}

/// Wraps an id-abstracted word term in `unat`/`sint`.
///
/// # Errors
///
/// Fails when the premise is not id-abstracted.
pub fn w_wrap(cx: &CheckCtx, f: AbsFun, a: Thm) -> R {
    let (ctx, pa, _, aa, ac) = as_wval(a.judgment()).map_err(|msg| KernelError {
        rule: Rule::WUnatWrap,
        msg,
    })?;
    let (rule, kind) = match f {
        AbsFun::Unat => (Rule::WUnatWrap, CastKind::Unat),
        AbsFun::Sint => (Rule::WSintWrap, CastKind::Sint),
        other => {
            return Err(KernelError {
                rule: Rule::WUnatWrap,
                msg: format!("cannot wrap with {other}"),
            })
        }
    };
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: pa.clone(),
        f,
        abs: Expr::cast(kind, aa.clone()),
        conc: ac.clone(),
    };
    Thm::admit(rule, vec![a], concl, Side::None, cx)
}

/// Congruence for id-abstracted operators: rebuilds `conc`'s operator with
/// the premises' abstract children.
///
/// # Errors
///
/// Fails when the premises do not match `conc`'s children.
pub fn w_id_cong(cx: &CheckCtx, ctx: &VarCtx, conc: &Expr, kids: Vec<Thm>) -> R {
    let mut abs_kids = Vec::new();
    let mut pres = Vec::new();
    for k in &kids {
        let (_, pp, _, pa, _) = as_wval(k.judgment()).map_err(|msg| KernelError {
            rule: Rule::WIdCong,
            msg,
        })?;
        abs_kids.push(pa.clone());
        pres.push(pp.clone());
    }
    let abs = with_children(conc, &abs_kids).map_err(|msg| KernelError {
        rule: Rule::WIdCong,
        msg,
    })?;
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: pre_all(pres),
        f: AbsFun::Id,
        abs,
        conc: conc.clone(),
    };
    Thm::admit(Rule::WIdCong, kids, concl, Side::None, cx)
}

/// Conditional expression with branch-weakened preconditions.
///
/// # Errors
///
/// Fails on mismatched branch abstractions.
pub fn w_ite(cx: &CheckCtx, c: Thm, t: Thm, e: Thm) -> R {
    let (ctx, pc, _, ca, cc) = as_wval(c.judgment()).map_err(|msg| KernelError {
        rule: Rule::WIte,
        msg,
    })?;
    let (_, pt, ft, ta, tc) = as_wval(t.judgment()).map_err(|msg| KernelError {
        rule: Rule::WIte,
        msg,
    })?;
    let (_, pe, _, ea, ec) = as_wval(e.judgment()).map_err(|msg| KernelError {
        rule: Rule::WIte,
        msg,
    })?;
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: pre_all([
            pc.clone(),
            weaken(ca, pt),
            weaken(&Expr::not(ca.clone()), pe),
        ]),
        f: ft.clone(),
        abs: Expr::ite(ca.clone(), ta.clone(), ea.clone()),
        conc: Expr::ite(cc.clone(), tc.clone(), ec.clone()),
    };
    Thm::admit(Rule::WIte, vec![c, t, e], concl, Side::None, cx)
}

/// Componentwise tuple abstraction.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn w_tuple(cx: &CheckCtx, kids: Vec<Thm>) -> R {
    let mut ctx0 = None;
    let mut pres = Vec::new();
    let mut fs = Vec::new();
    let mut abss = Vec::new();
    let mut concs = Vec::new();
    for k in &kids {
        let (ctx, pp, pf, pa, pc) = as_wval(k.judgment()).map_err(|msg| KernelError {
            rule: Rule::WTuple,
            msg,
        })?;
        ctx0.get_or_insert_with(|| ctx.clone());
        pres.push(pp.clone());
        fs.push(pf.clone());
        abss.push(pa.clone());
        concs.push(pc.clone());
    }
    let concl = Judgment::WVal {
        ctx: ctx0.unwrap_or_default(),
        pre: pre_all(pres),
        f: AbsFun::Tuple(fs),
        abs: Expr::Tuple(abss),
        conc: Expr::Tuple(concs),
    };
    Thm::admit(Rule::WTuple, kids, concl, Side::None, cx)
}

/// Tuple projection.
///
/// # Errors
///
/// Fails when the premise is not tuple-abstracted.
pub fn w_proj(cx: &CheckCtx, i: usize, t: Thm) -> R {
    let (ctx, tp, tf, ta, tc) = as_wval(t.judgment()).map_err(|msg| KernelError {
        rule: Rule::WProj,
        msg,
    })?;
    let AbsFun::Tuple(fs) = tf else {
        return Err(KernelError {
            rule: Rule::WProj,
            msg: "premise must be tuple-abstracted".into(),
        });
    };
    if i >= fs.len() {
        return Err(KernelError {
            rule: Rule::WProj,
            msg: "projection out of range".into(),
        });
    }
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: tp.clone(),
        f: fs[i].clone(),
        abs: Expr::proj(i, ta.clone()),
        conc: Expr::proj(i, tc.clone()),
    };
    Thm::admit(Rule::WProj, vec![t], concl, Side::None, cx)
}

/// `exec_concrete`/`exec_abstract` pass-through.
///
/// # Errors
///
/// Fails when `p` is not a level-mixing marker.
pub fn ws_exec_concrete(cx: &CheckCtx, ctx: &VarCtx, p: &Prog) -> R {
    Thm::admit(
        Rule::WsExecConcrete,
        vec![],
        Judgment::WStmt {
            ctx: ctx.clone(),
            rx: AbsFun::Id,
            ex: AbsFun::Id,
            abs: p.clone(),
            conc: p.clone(),
        },
        Side::None,
        cx,
    )
}

/// Collapses a tuple of identity abstractions to the identity.
///
/// # Errors
///
/// Fails when the premise is not identity-like.
pub fn w_tuple_id(cx: &CheckCtx, t: Thm) -> R {
    let (ctx, tp, _, ta, tc) = as_wval(t.judgment()).map_err(|msg| KernelError {
        rule: Rule::WTupleId,
        msg,
    })?;
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: tp.clone(),
        f: AbsFun::Id,
        abs: ta.clone(),
        conc: tc.clone(),
    };
    Thm::admit(Rule::WTupleId, vec![t], concl, Side::None, cx)
}

/// Wraps an id-abstracted tuple into a componentwise abstraction.
///
/// # Errors
///
/// Fails for nested-tuple components.
pub fn w_tuple_wrap(cx: &CheckCtx, fs: &[AbsFun], t: Thm) -> R {
    let (ctx, tp, _, ta, tc) = as_wval(t.judgment()).map_err(|msg| KernelError {
        rule: Rule::WTupleWrap,
        msg,
    })?;
    let abs = tuple_wrap_expr(fs, ta).ok_or_else(|| KernelError {
        rule: Rule::WTupleWrap,
        msg: "unsupported component abstraction".into(),
    })?;
    let concl = Judgment::WVal {
        ctx: ctx.clone(),
        pre: tp.clone(),
        f: AbsFun::Tuple(fs.to_vec()),
        abs,
        conc: tc.clone(),
    };
    Thm::admit(Rule::WTupleWrap, vec![t], concl, Side::None, cx)
}

/// A user-supplied idiom rule (Sec 3.3), admitted after randomized sampling
/// of the judgment's semantics.
///
/// # Errors
///
/// Fails when sampling finds a violation.
pub fn w_custom_sampled(
    cx: &CheckCtx,
    judgment: Judgment,
    vars: BTreeMap<String, Ty>,
    trials: u32,
    seed: u64,
) -> R {
    Thm::admit(
        Rule::WCustomSampled,
        vec![],
        judgment,
        Side::SampledWVal { vars, trials, seed },
        cx,
    )
}

/// `WRET`/`WGETS`/`WTHROW`: lifts a value abstraction to a statement,
/// prepending the precondition as a guard.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn ws_value_stmt(cx: &CheckCtx, rule: Rule, ex: AbsFun, v: Thm) -> R {
    let (ctx, pre, f, va, vc) = as_wval(v.judgment()).map_err(|msg| KernelError { rule, msg })?;
    let (mk, rx, ex) = match rule {
        Rule::WsRet => (Prog::Return as fn(Expr) -> Prog, f.clone(), ex),
        Rule::WsGets => (Prog::Gets as fn(Expr) -> Prog, f.clone(), ex),
        Rule::WsThrow => (Prog::Throw as fn(Expr) -> Prog, ex, f.clone()),
        other => {
            return Err(KernelError {
                rule: other,
                msg: "not a value-statement rule".into(),
            })
        }
    };
    let concl = Judgment::WStmt {
        ctx: ctx.clone(),
        rx,
        ex,
        abs: guarded(GuardKind::WordAbs, pre, mk(va.clone())),
        conc: mk(vc.clone()),
    };
    Thm::admit(rule, vec![v], concl, Side::None, cx)
}

/// `modify` abstraction.
///
/// # Errors
///
/// Fails when the premises do not match the update's expressions.
pub fn ws_modify(cx: &CheckCtx, ctx: &VarCtx, ex: AbsFun, conc_upd: &Update, kids: Vec<Thm>) -> R {
    let mut abs_exprs = Vec::new();
    let mut pres = Vec::new();
    for k in &kids {
        let (_, pp, _, pa, _) = as_wval(k.judgment()).map_err(|msg| KernelError {
            rule: Rule::WsModify,
            msg,
        })?;
        abs_exprs.push(pa.clone());
        pres.push(pp.clone());
    }
    let au = update_with_exprs(conc_upd, &abs_exprs);
    let concl = Judgment::WStmt {
        ctx: ctx.clone(),
        rx: AbsFun::Id,
        ex,
        abs: guarded(GuardKind::WordAbs, &pre_all(pres), Prog::Modify(au)),
        conc: Prog::Modify(conc_upd.clone()),
    };
    Thm::admit(Rule::WsModify, kids, concl, Side::None, cx)
}

/// Guard-statement abstraction.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn ws_guard(cx: &CheckCtx, kind: GuardKind, ex: AbsFun, v: Thm) -> R {
    let (ctx, pre, _, va, vc) = as_wval(v.judgment()).map_err(|msg| KernelError {
        rule: Rule::WsGuard,
        msg,
    })?;
    let concl = Judgment::WStmt {
        ctx: ctx.clone(),
        rx: AbsFun::Id,
        ex,
        abs: guarded(
            GuardKind::WordAbs,
            pre,
            Prog::Guard(kind.clone(), va.clone()),
        ),
        conc: Prog::Guard(kind, vc.clone()),
    };
    Thm::admit(Rule::WsGuard, vec![v], concl, Side::None, cx)
}

/// `fail ⊑ fail`.
///
/// # Errors
///
/// Never fails in practice (infallible side conditions).
pub fn ws_fail(cx: &CheckCtx, ctx: &VarCtx, rx: AbsFun, ex: AbsFun) -> R {
    Thm::admit(
        Rule::WsFail,
        vec![],
        Judgment::WStmt {
            ctx: ctx.clone(),
            rx,
            ex,
            abs: Prog::Fail,
            conc: Prog::Fail,
        },
        Side::None,
        cx,
    )
}

/// `WBIND`.
///
/// # Errors
///
/// Fails when the continuation's context does not extend the left side's.
pub fn ws_bind(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (ctx, _, ex, la, lc) = clone_wstmt(&l)?;
    let (_, rrx, _, ra, rc) = clone_wstmt(&r)?;
    let concl = Judgment::WStmt {
        ctx,
        rx: rrx,
        ex,
        abs: Prog::bind(la, v, ra),
        conc: Prog::bind(lc, v, rc),
    };
    Thm::admit(Rule::WsBind, vec![l, r], concl, Side::None, cx)
}

/// `condition` abstraction.
///
/// # Errors
///
/// Fails on mismatched branches.
pub fn ws_cond(cx: &CheckCtx, c: Thm, t: Thm, e: Thm) -> R {
    let (ctx, pc, _, ca, cc) = match c.judgment() {
        Judgment::WVal { ctx, pre, f, abs, conc } => {
            (ctx.clone(), pre.clone(), f.clone(), abs.clone(), conc.clone())
        }
        other => {
            return Err(KernelError {
                rule: Rule::WsCond,
                msg: format!("expected abs_w_val, got {}", other.describe()),
            })
        }
    };
    let (_, rx, ex, ta, tc) = clone_wstmt(&t)?;
    let (_, _, _, ea, ec) = clone_wstmt(&e)?;
    let concl = Judgment::WStmt {
        ctx,
        rx,
        ex,
        abs: guarded(GuardKind::WordAbs, &pc, Prog::cond(ca, ta, ea)),
        conc: Prog::cond(cc, tc, ec),
    };
    Thm::admit(Rule::WsCond, vec![c, t, e], concl, Side::None, cx)
}

/// `whileLoop` abstraction.
///
/// # Errors
///
/// Fails when the condition has a non-trivial precondition or the iterator
/// contexts are inconsistent.
pub fn ws_while(
    cx: &CheckCtx,
    ctx: &VarCtx,
    vars: &[String],
    cond: Thm,
    body: Thm,
    inits: Vec<Thm>,
) -> R {
    let (_, _, cvf, cva, cvc) = as_wval(cond.judgment()).map_err(|msg| KernelError {
        rule: Rule::WsWhile,
        msg,
    })?;
    let _ = cvf;
    let (_, brx, bex, ba, bc) = clone_wstmt(&body)?;
    let _ = brx;
    let mut fs = Vec::new();
    let mut pres = Vec::new();
    let mut ainit = Vec::new();
    let mut cinit = Vec::new();
    for i in &inits {
        let (_, pp, pf, pa, pc) = as_wval(i.judgment()).map_err(|msg| KernelError {
            rule: Rule::WsWhile,
            msg,
        })?;
        fs.push(pf.clone());
        pres.push(pp.clone());
        ainit.push(pa.clone());
        cinit.push(pc.clone());
    }
    let packed = if fs.len() == 1 {
        fs[0].clone()
    } else {
        AbsFun::Tuple(fs)
    };
    let abs_loop = Prog::While {
        vars: vars.to_vec(),
        cond: cva.clone(),
        body: ir::intern::Interned::new(ba),
        init: ainit,
    };
    let conc_loop = Prog::While {
        vars: vars.to_vec(),
        cond: cvc.clone(),
        body: ir::intern::Interned::new(bc),
        init: cinit,
    };
    let concl = Judgment::WStmt {
        ctx: ctx.clone(),
        rx: packed,
        ex: bex,
        abs: guarded(GuardKind::WordAbs, &pre_all(pres), abs_loop),
        conc: conc_loop,
    };
    let mut prems = vec![cond, body];
    prems.extend(inits);
    Thm::admit(Rule::WsWhile, prems, concl, Side::None, cx)
}

/// Call abstraction (both abstracted and non-abstracted callees).
///
/// # Errors
///
/// Fails when the argument abstractions do not match the callee signature.
pub fn ws_call(
    cx: &CheckCtx,
    ctx: &VarCtx,
    fname: &str,
    args: Vec<Thm>,
    rx_for_conc_callee: AbsFun,
) -> R {
    let mut pres = Vec::new();
    let mut abs_args = Vec::new();
    let mut conc_args = Vec::new();
    for a in &args {
        let (_, pp, _, pa, pc) = as_wval(a.judgment()).map_err(|msg| KernelError {
            rule: Rule::WsCall,
            msg,
        })?;
        pres.push(pp.clone());
        abs_args.push(pa.clone());
        conc_args.push(pc.clone());
    }
    let call = Prog::Call {
        fname: fname.to_owned(),
        args: abs_args,
    };
    let (rx, ex, abs_inner) = match cx.fn_abs.get(fname) {
        Some((_, f_rx, f_ex)) => (f_rx.clone(), f_ex.clone(), call),
        None => {
            let inner = match rx_for_conc_callee.forward_cast() {
                None => call,
                Some(cast) => Prog::bind(
                    call,
                    "·r",
                    Prog::ret(Expr::cast(cast, Expr::var("·r"))),
                ),
            };
            (rx_for_conc_callee, AbsFun::Id, inner)
        }
    };
    let concl = Judgment::WStmt {
        ctx: ctx.clone(),
        rx,
        ex,
        abs: guarded(GuardKind::WordAbs, &pre_all(pres), abs_inner),
        conc: Prog::Call {
            fname: fname.to_owned(),
            args: conc_args,
        },
    };
    Thm::admit(Rule::WsCall, args, concl, Side::None, cx)
}

/// `catch` abstraction.
///
/// # Errors
///
/// Fails when the handler's context does not bind the exception variable.
pub fn ws_catch(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (ctx, rx, _, la, lc) = clone_wstmt(&l)?;
    let (_, _, rex, ra, rc) = clone_wstmt(&r)?;
    let concl = Judgment::WStmt {
        ctx,
        rx,
        ex: rex,
        abs: Prog::Catch(ir::intern::Interned::new(la), v.to_owned(), ir::intern::Interned::new(ra)),
        conc: Prog::Catch(ir::intern::Interned::new(lc), v.to_owned(), ir::intern::Interned::new(rc)),
    };
    Thm::admit(Rule::WsCatch, vec![l, r], concl, Side::None, cx)
}

/// `WBIND` with a tuple pattern.
///
/// # Errors
///
/// Fails when the continuation's context does not extend the left side's
/// componentwise.
pub fn ws_bind_tuple(cx: &CheckCtx, vs: &[String], l: Thm, r: Thm) -> R {
    let (ctx, _, ex, la, lc) = clone_wstmt(&l)?;
    let (_, rrx, _, ra, rc) = clone_wstmt(&r)?;
    let concl = Judgment::WStmt {
        ctx,
        rx: rrx,
        ex,
        abs: Prog::bind_tuple(la, vs.to_vec(), ra),
        conc: Prog::bind_tuple(lc, vs.to_vec(), rc),
    };
    Thm::admit(Rule::WsBindTuple, vec![l, r], concl, Side::None, cx)
}

fn clone_wstmt(t: &Thm) -> Result<(VarCtx, AbsFun, AbsFun, Prog, Prog), KernelError> {
    match t.judgment() {
        Judgment::WStmt { ctx, rx, ex, abs, conc } => Ok((
            ctx.clone(),
            rx.clone(),
            ex.clone(),
            abs.clone(),
            conc.clone(),
        )),
        other => Err(KernelError {
            rule: Rule::WsBind,
            msg: format!("expected abs_w_stmt, got {}", other.describe()),
        }),
    }
}
