//! The inference rules.
//!
//! Each rule has (i) a *validation* — a pure function checking that a
//! conclusion follows from premises, used both at construction time and by
//! the proof checker — and (ii) a public *constructor* that builds the
//! conclusion from premises and admits the theorem. Constructors are the
//! only way to obtain a [`Thm`](crate::Thm).

pub mod heap;
pub mod refine;
pub mod word;

use crate::judgment::Judgment;
use crate::thm::{CheckCtx, Rule, Side};

use ir::expr::Expr;

pub(crate) type V = Result<(), String>;

/// Validates one rule application (used by construction and replay).
///
/// # Errors
///
/// Returns a human-readable reason when the conclusion does not follow.
pub(crate) fn validate(
    rule: Rule,
    premises: &[&Judgment],
    concl: &Judgment,
    side: &Side,
    cx: &CheckCtx,
) -> V {
    use Rule::*;
    match rule {
        WVar | WLit | WSum | WSub | WMul | WDiv | WMod | SSum | SSub | SMul | SDiv | SMod
        | SNeg | WCmp | WOfNat | WOfInt | WUnatWrap | WSintWrap | WIdCong | WIte | WTuple
        | WProj | WTupleId | WTupleWrap | WCustomSampled => word::validate_val(rule, premises, concl, side),
        WsRet | WsGets | WsModify | WsGuard | WsThrow | WsFail | WsBind | WsBindTuple | WsCond | WsWhile
        | WsCall | WsCatch | WsExecConcrete => word::validate_stmt(rule, premises, concl, cx),
        HLit | HVar | HCong | HValWeaken | HRead | HReadField | HGuardPtr | HUpd | HUpdField | HUpdVar => {
            heap::validate_val(rule, premises, concl, cx)
        }
        HsGets | HsModify | HsGuard | HsRet | HsThrow | HsFail | HsBind | HsBindTuple | HsCond | HsWhile
        | HsCatch | HsCall | HsExecConcrete => heap::validate_stmt(rule, premises, concl, cx),
        L1Skip | L1Basic | L1Seq | L1Cond | L1While | L1Guard | L1Throw | L1Catch | L1Call => {
            refine::validate_l1(rule, premises, concl)
        }
        ReflRefines | TransRefines | BindCong | CondCong | CatchCong | WhileCong
        | DischargeGuard | ExecTested => refine::validate_refines(rule, premises, concl, side),
        AbsintDischarge => refine::validate_absint(premises, concl),
    }
}

/// Conjunction of preconditions in canonical (left-fold) order, dropping
/// trivial `true` conjuncts. Engines and validations must use the same
/// helper so recomputed conclusions compare equal.
#[must_use]
pub fn pre_all(pres: impl IntoIterator<Item = Expr>) -> Expr {
    pres.into_iter().fold(Expr::tt(), Expr::and)
}

// ---- expression skeleton helpers (shared by the congruence rules) --------

/// The immediate subexpressions of `e`.
pub(crate) fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => vec![],
        Expr::ReadHeap(_, a)
        | Expr::ReadByte(a)
        | Expr::IsValid(_, a)
        | Expr::PtrAligned(_, a)
        | Expr::NullFree(_, a)
        | Expr::Field(a, _)
        | Expr::UnOp(_, a)
        | Expr::Cast(_, a)
        | Expr::Proj(_, a) => vec![a],
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => vec![a, b],
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => vec![a, b, c],
        Expr::Tuple(es) => es.iter().collect(),
    }
}

/// Rebuilds `e` with new children (same shape).
pub(crate) fn with_children(e: &Expr, kids: &[Expr]) -> Result<Expr, String> {
    let expect = children(e).len();
    if kids.len() != expect {
        return Err(format!("expected {expect} children, got {}", kids.len()));
    }
    Ok(match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => e.clone(),
        Expr::ReadHeap(t, _) => Expr::ReadHeap(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::ReadByte(_) => Expr::ReadByte(ir::intern::Interned::new(kids[0].clone())),
        Expr::IsValid(t, _) => Expr::IsValid(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::PtrAligned(t, _) => Expr::PtrAligned(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::NullFree(t, _) => Expr::NullFree(t.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::Field(_, n) => Expr::Field(ir::intern::Interned::new(kids[0].clone()), n.clone()),
        Expr::UnOp(op, _) => Expr::UnOp(*op, ir::intern::Interned::new(kids[0].clone())),
        Expr::Cast(k, _) => Expr::Cast(k.clone(), ir::intern::Interned::new(kids[0].clone())),
        Expr::Proj(i, _) => Expr::Proj(*i, ir::intern::Interned::new(kids[0].clone())),
        Expr::UpdateField(_, n, _) => Expr::UpdateField(
            ir::intern::Interned::new(kids[0].clone()),
            n.clone(),
            ir::intern::Interned::new(kids[1].clone()),
        ),
        Expr::BinOp(op, _, _) => {
            Expr::BinOp(*op, ir::intern::Interned::new(kids[0].clone()), ir::intern::Interned::new(kids[1].clone()))
        }
        Expr::Ite(..) => Expr::Ite(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
            ir::intern::Interned::new(kids[2].clone()),
        ),
        Expr::Tuple(_) => Expr::Tuple(kids.to_vec()),
        Expr::Index(..) => Expr::Index(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
        ),
        Expr::ArrUpd(..) => Expr::ArrUpd(
            ir::intern::Interned::new(kids[0].clone()),
            ir::intern::Interned::new(kids[1].clone()),
            ir::intern::Interned::new(kids[2].clone()),
        ),
    })
}
