//! L1 correspondence rules (Table 1) and the monadic refinement rules used
//! by the L2 rewrites.

use ir::expr::Expr;
use monadic::Prog;
use simpl::stmt::SimplStmt;

use crate::judgment::Judgment;
use crate::rules::V;
use crate::thm::{CheckCtx, KernelError, Rule, Side, Thm};

fn as_l1(j: &Judgment) -> Result<(&Prog, &SimplStmt), String> {
    match j {
        Judgment::L1 { prog, simpl } => Ok((prog, simpl)),
        other => Err(format!("expected l1corres, got {}", other.describe())),
    }
}

fn as_refines(j: &Judgment) -> Result<(&Prog, &Prog), String> {
    match j {
        Judgment::Refines { abs, conc } => Ok((abs, conc)),
        other => Err(format!("expected refines, got {}", other.describe())),
    }
}

/// The canonical L1 image of a Simpl statement given the images of its
/// sub-statements (the content of Table 1).
fn l1_image(simpl: &SimplStmt, sub: &[&Prog]) -> Result<Prog, String> {
    let arity = sub_stmts(simpl).len();
    if sub.len() != arity {
        return Err(format!(
            "statement has {arity} sub-statements, got {} premises",
            sub.len()
        ));
    }
    Ok(match simpl {
        SimplStmt::Skip => Prog::skip(),
        SimplStmt::Basic(u) => Prog::Modify(u.clone()),
        SimplStmt::Seq(..) => Prog::bind(sub[0].clone(), "_", sub[1].clone()),
        SimplStmt::Cond(c, ..) => Prog::cond(c.clone(), sub[0].clone(), sub[1].clone()),
        SimplStmt::While(c, _) => Prog::While {
            vars: vec!["_".to_owned()],
            cond: c.clone(),
            body: ir::intern::Interned::new(Prog::then(sub[0].clone(), Prog::skip())),
            init: vec![Expr::unit()],
        },
        SimplStmt::Guard(k, g, _) => Prog::then(Prog::Guard(k.clone(), g.clone()), sub[0].clone()),
        SimplStmt::Throw => Prog::Throw(Expr::unit()),
        SimplStmt::TryCatch(..) => Prog::Catch(
            ir::intern::Interned::new(sub[0].clone()),
            "_".to_owned(),
            ir::intern::Interned::new(sub[1].clone()),
        ),
        SimplStmt::Call {
            fname,
            args,
            ret_local,
        } => {
            let call = Prog::Call {
                fname: fname.clone(),
                args: args.clone(),
            };
            match ret_local {
                Some(r) => Prog::bind(
                    call,
                    "·ret",
                    Prog::Modify(ir::update::Update::Local(r.clone(), Expr::var("·ret"))),
                ),
                None => Prog::then(call, Prog::skip()),
            }
        }
    })
}

fn sub_stmts(simpl: &SimplStmt) -> Vec<&SimplStmt> {
    match simpl {
        SimplStmt::Seq(a, b) | SimplStmt::TryCatch(a, b) => vec![a, b],
        SimplStmt::Cond(_, a, b) => vec![a, b],
        SimplStmt::While(_, b) | SimplStmt::Guard(_, _, b) => vec![b],
        _ => vec![],
    }
}

/// Validates an L1 rule.
pub(crate) fn validate_l1(rule: Rule, prems: &[&Judgment], concl: &Judgment) -> V {
    let (prog, simpl) = as_l1(concl)?;
    // Check the rule applies to this statement shape.
    let shape_ok = matches!(
        (rule, simpl),
        (Rule::L1Skip, SimplStmt::Skip)
            | (Rule::L1Basic, SimplStmt::Basic(_))
            | (Rule::L1Seq, SimplStmt::Seq(..))
            | (Rule::L1Cond, SimplStmt::Cond(..))
            | (Rule::L1While, SimplStmt::While(..))
            | (Rule::L1Guard, SimplStmt::Guard(..))
            | (Rule::L1Throw, SimplStmt::Throw)
            | (Rule::L1Catch, SimplStmt::TryCatch(..))
            | (Rule::L1Call, SimplStmt::Call { .. })
    );
    if !shape_ok {
        return Err(format!("rule {rule:?} does not apply to this statement"));
    }
    let subs = sub_stmts(simpl);
    if prems.len() != subs.len() {
        return Err("premise count must match sub-statement count".into());
    }
    let mut sub_progs = Vec::new();
    for (p, s) in prems.iter().zip(&subs) {
        let (pp, ps) = as_l1(p)?;
        if ps != *s {
            return Err("premise Simpl side must be the sub-statement".into());
        }
        sub_progs.push(pp);
    }
    let expect = l1_image(simpl, &sub_progs)?;
    if *prog == expect {
        Ok(())
    } else {
        Err("monadic side is not the canonical L1 image".into())
    }
}

/// Validates a monadic refinement rule.
pub(crate) fn validate_refines(
    rule: Rule,
    prems: &[&Judgment],
    concl: &Judgment,
    side: &Side,
) -> V {
    let (abs, conc) = as_refines(concl)?;
    match rule {
        Rule::ReflRefines => {
            if prems.is_empty() && abs == conc {
                Ok(())
            } else {
                Err("reflexivity requires identical sides".into())
            }
        }
        Rule::TransRefines => {
            let [a, b] = prems else {
                return Err("transitivity takes two premises".into());
            };
            let (a1, a2) = as_refines(a)?;
            let (b1, b2) = as_refines(b)?;
            if a2 == b1 && abs == a1 && conc == b2 {
                Ok(())
            } else {
                Err("transitivity sides do not chain".into())
            }
        }
        Rule::BindCong => {
            let [l, r] = prems else {
                return Err("bind congruence takes two premises".into());
            };
            let (la, lc) = as_refines(l)?;
            let (ra, rc) = as_refines(r)?;
            let (Prog::Bind(aa, v, ab), Prog::Bind(ca, v2, cb)) = (abs, conc) else {
                return Err("bind congruence relates binds".into());
            };
            if v == v2 && **aa == *la && **ca == *lc && **ab == *ra && **cb == *rc {
                Ok(())
            } else {
                Err("bind congruence components mismatch".into())
            }
        }
        Rule::CondCong => {
            let [t, e] = prems else {
                return Err("condition congruence takes two premises".into());
            };
            let (ta, tc) = as_refines(t)?;
            let (ea, ec) = as_refines(e)?;
            let (Prog::Condition(ac, at, ae), Prog::Condition(cc, ct, ce)) = (abs, conc) else {
                return Err("condition congruence relates conditions".into());
            };
            if ac == cc && **at == *ta && **ct == *tc && **ae == *ea && **ce == *ec {
                Ok(())
            } else {
                Err("condition congruence components mismatch".into())
            }
        }
        Rule::CatchCong => {
            let [l, r] = prems else {
                return Err("catch congruence takes two premises".into());
            };
            let (la, lc) = as_refines(l)?;
            let (ra, rc) = as_refines(r)?;
            let (Prog::Catch(aa, v, ab), Prog::Catch(ca, v2, cb)) = (abs, conc) else {
                return Err("catch congruence relates catches".into());
            };
            if v == v2 && **aa == *la && **ca == *lc && **ab == *ra && **cb == *rc {
                Ok(())
            } else {
                Err("catch congruence components mismatch".into())
            }
        }
        Rule::WhileCong => {
            let [b] = prems else {
                return Err("while congruence takes a body premise".into());
            };
            let (ba, bc) = as_refines(b)?;
            let (
                Prog::While {
                    vars: av,
                    cond: ac,
                    body: ab,
                    init: ai,
                },
                Prog::While {
                    vars: cv,
                    cond: cc,
                    body: cb,
                    init: ci,
                },
            ) = (abs, conc)
            else {
                return Err("while congruence relates loops".into());
            };
            if av == cv && ac == cc && ai == ci && **ab == *ba && **cb == *bc {
                Ok(())
            } else {
                Err("while congruence components mismatch".into())
            }
        }
        Rule::DischargeGuard => {
            // conc = guard g with g provably true; abs = skip.
            let Prog::Guard(_, g) = conc else {
                return Err("guard discharge applies to guards".into());
            };
            if *abs != Prog::skip() {
                return Err("guard discharge concludes skip".into());
            }
            if solver::simplify::simplify(g).is_true_lit() {
                Ok(())
            } else {
                Err(format!("simplifier cannot prove guard `{g}`"))
            }
        }
        Rule::ExecTested => match side {
            Side::Tested { trials, .. } if *trials > 0 => Ok(()),
            _ => Err("ExecTested requires recorded testing evidence".into()),
        },
        other => Err(format!("not a refinement rule: {other:?}")),
    }
}

/// Validates an abstract-interpretation guard discharge: the recorded
/// hypothesis must entail the guard by interval reasoning alone. The
/// judgment is self-contained, so replay needs nothing from the engine
/// that produced it.
pub(crate) fn validate_absint(prems: &[&Judgment], concl: &Judgment) -> V {
    let Judgment::AbsGuard { hyp, guard, .. } = concl else {
        return Err(format!("expected abs_guard, got {}", concl.describe()));
    };
    if !prems.is_empty() {
        return Err("absint discharge is a leaf rule".into());
    }
    if solver::interval::entails(hyp, guard) {
        Ok(())
    } else {
        Err(format!("interval reasoning cannot derive `{guard}` from `{hyp}`"))
    }
}

// ---- public constructors ---------------------------------------------------

type R = Result<Thm, KernelError>;

fn err(rule: Rule, msg: impl Into<String>) -> KernelError {
    KernelError {
        rule,
        msg: msg.into(),
    }
}

/// L1 translation of one Simpl statement given premises for its
/// sub-statements; picks the matching Table 1 rule.
///
/// # Errors
///
/// Fails when the premises do not match the statement's children.
pub fn l1(cx: &CheckCtx, simpl: &SimplStmt, subs: Vec<Thm>) -> R {
    let rule = match simpl {
        SimplStmt::Skip => Rule::L1Skip,
        SimplStmt::Basic(_) => Rule::L1Basic,
        SimplStmt::Seq(..) => Rule::L1Seq,
        SimplStmt::Cond(..) => Rule::L1Cond,
        SimplStmt::While(..) => Rule::L1While,
        SimplStmt::Guard(..) => Rule::L1Guard,
        SimplStmt::Throw => Rule::L1Throw,
        SimplStmt::TryCatch(..) => Rule::L1Catch,
        SimplStmt::Call { .. } => Rule::L1Call,
    };
    let sub_progs: Vec<&Prog> = subs
        .iter()
        .map(|t| as_l1(t.judgment()).map(|(p, _)| p))
        .collect::<Result<_, _>>()
        .map_err(|m| err(rule, m))?;
    let prog = l1_image(simpl, &sub_progs).map_err(|m| err(rule, m))?;
    Thm::admit(
        rule,
        subs,
        Judgment::L1 {
            prog,
            simpl: simpl.clone(),
        },
        Side::None,
        cx,
    )
}

/// Reflexivity.
///
/// # Errors
///
/// Infallible in practice.
pub fn refines_refl(cx: &CheckCtx, p: &Prog) -> R {
    Thm::admit(
        Rule::ReflRefines,
        vec![],
        Judgment::Refines {
            abs: p.clone(),
            conc: p.clone(),
        },
        Side::None,
        cx,
    )
}

/// Transitivity.
///
/// # Errors
///
/// Fails when the middle programs differ.
pub fn refines_trans(cx: &CheckCtx, a: Thm, b: Thm) -> R {
    let (a1, _) = as_refines(a.judgment()).map_err(|m| err(Rule::TransRefines, m))?;
    let (_, b2) = as_refines(b.judgment()).map_err(|m| err(Rule::TransRefines, m))?;
    let concl = Judgment::Refines {
        abs: a1.clone(),
        conc: b2.clone(),
    };
    Thm::admit(Rule::TransRefines, vec![a, b], concl, Side::None, cx)
}

/// Congruence under `bind`.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn bind_cong(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (la, lc) = as_refines(l.judgment()).map_err(|m| err(Rule::BindCong, m))?;
    let (ra, rc) = as_refines(r.judgment()).map_err(|m| err(Rule::BindCong, m))?;
    let concl = Judgment::Refines {
        abs: Prog::bind(la.clone(), v, ra.clone()),
        conc: Prog::bind(lc.clone(), v, rc.clone()),
    };
    Thm::admit(Rule::BindCong, vec![l, r], concl, Side::None, cx)
}

/// Congruence under `condition` (same condition).
///
/// # Errors
///
/// Fails on malformed premises.
pub fn cond_cong(cx: &CheckCtx, c: &Expr, t: Thm, e: Thm) -> R {
    let (ta, tc) = as_refines(t.judgment()).map_err(|m| err(Rule::CondCong, m))?;
    let (ea, ec) = as_refines(e.judgment()).map_err(|m| err(Rule::CondCong, m))?;
    let concl = Judgment::Refines {
        abs: Prog::cond(c.clone(), ta.clone(), ea.clone()),
        conc: Prog::cond(c.clone(), tc.clone(), ec.clone()),
    };
    Thm::admit(Rule::CondCong, vec![t, e], concl, Side::None, cx)
}

/// Congruence under `catch`.
///
/// # Errors
///
/// Fails on malformed premises.
pub fn catch_cong(cx: &CheckCtx, v: &str, l: Thm, r: Thm) -> R {
    let (la, lc) = as_refines(l.judgment()).map_err(|m| err(Rule::CatchCong, m))?;
    let (ra, rc) = as_refines(r.judgment()).map_err(|m| err(Rule::CatchCong, m))?;
    let concl = Judgment::Refines {
        abs: Prog::Catch(ir::intern::Interned::new(la.clone()), v.to_owned(), ir::intern::Interned::new(ra.clone())),
        conc: Prog::Catch(ir::intern::Interned::new(lc.clone()), v.to_owned(), ir::intern::Interned::new(rc.clone())),
    };
    Thm::admit(Rule::CatchCong, vec![l, r], concl, Side::None, cx)
}

/// Congruence under `whileLoop` (same condition/initialisers).
///
/// # Errors
///
/// Fails on malformed premises.
pub fn while_cong(
    cx: &CheckCtx,
    vars: &[String],
    cond: &Expr,
    init: &[Expr],
    body: Thm,
) -> R {
    let (ba, bc) = as_refines(body.judgment()).map_err(|m| err(Rule::WhileCong, m))?;
    let concl = Judgment::Refines {
        abs: Prog::While {
            vars: vars.to_vec(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(ba.clone()),
            init: init.to_vec(),
        },
        conc: Prog::While {
            vars: vars.to_vec(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(bc.clone()),
            init: init.to_vec(),
        },
    };
    Thm::admit(Rule::WhileCong, vec![body], concl, Side::None, cx)
}

/// Guard discharge: the simplifier proves the guard condition.
///
/// # Errors
///
/// Fails when the simplifier cannot reduce the guard to `true`.
pub fn discharge_guard(cx: &CheckCtx, conc: &Prog) -> R {
    Thm::admit(
        Rule::DischargeGuard,
        vec![],
        Judgment::Refines {
            abs: Prog::skip(),
            conc: conc.clone(),
        },
        Side::None,
        cx,
    )
}

/// Abstract-interpretation guard discharge: admits `hyp ⟹ guard` when
/// interval entailment derives it (the rule's side condition, re-run by the
/// independent checker on replay).
///
/// # Errors
///
/// Fails when interval reasoning cannot derive the guard from the
/// hypothesis.
pub fn absint_discharge(cx: &CheckCtx, hyp: &Expr, kind: ir::guard::GuardKind, guard: &Expr) -> R {
    Thm::admit(
        Rule::AbsintDischarge,
        vec![],
        Judgment::AbsGuard {
            hyp: hyp.clone(),
            kind,
            guard: guard.clone(),
        },
        Side::None,
        cx,
    )
}

/// Refinement admitted after randomized differential testing: runs
/// `validate` (the caller's differential tester, typically built from
/// [`crate::semantics::test_refines`]) and records the evidence.
///
/// # Errors
///
/// Fails when a trial finds a violation.
pub fn exec_tested(
    cx: &CheckCtx,
    abs: &Prog,
    conc: &Prog,
    trials: u32,
    seed: u64,
    validate: impl FnOnce() -> Result<(), ir::diag::Diag>,
) -> R {
    validate().map_err(|d| err(Rule::ExecTested, d.message))?;
    Thm::admit(
        Rule::ExecTested,
        vec![],
        Judgment::Refines {
            abs: abs.clone(),
            conc: conc.clone(),
        },
        Side::Tested { trials, seed },
        cx,
    )
}
