//! Self-contained proof certificates (`cert-v1`).
//!
//! A certificate packages checked theorems for transport to an
//! *independent* checker (`certcheck`): the file carries the checking
//! context, every derivation node, and named roots — nothing else is
//! needed to replay it. Layout:
//!
//! ```text
//! b"ACRCERT1"                                  8-byte magic + version
//! payload:
//!   CheckCtx                                   layouts + fn signatures
//!   varint node-count
//!   node*        judgment, rule, side, varint premise-count,
//!                premise ids (varints, each < the node's own index —
//!                the DAG is stored in postorder, so premises always
//!                precede their conclusion)
//!   varint root-count
//!   root*        label (string), varint node id
//! digest128(payload)                           16 bytes, little-endian
//! ```
//!
//! Trust model: **nothing in the file is trusted.** The checker rebuilds
//! every node through [`Thm::admit`], which runs the full rule
//! validation, so a certificate for a false judgment is structurally
//! impossible to accept — at worst a forged file names a *different*
//! theorem than the producer intended, which the caller detects by
//! reading the replayed root judgments. The trailing digest is not a
//! security boundary (the rules are); it exists so accidental corruption
//! fails fast with a precise diagnosis instead of a confusing rule error.

use std::fmt;

use ir::codec::{digest128_bytes, Codec, Decoder, Encoder};

use crate::thm::{CheckCtx, KernelError, Rule, Side, Thm};
use crate::Judgment;

/// Magic + version prefix of a `cert-v1` file.
pub const CERT_MAGIC: &[u8; 8] = b"ACRCERT1";

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum CertError {
    /// Not a `cert-v1` file, or the structure is malformed.
    Format(String),
    /// The payload digest does not match — the file was corrupted.
    Digest,
    /// A node failed rule validation during replay.
    Replay {
        /// Postorder index of the failing node.
        node: usize,
        /// The kernel's rejection.
        err: KernelError,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Format(msg) => write!(f, "certificate malformed: {msg}"),
            CertError::Digest => write!(f, "certificate integrity digest mismatch"),
            CertError::Replay { node, err } => {
                write!(f, "certificate node {node} failed replay: {err}")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Result of a successful certificate replay.
#[derive(Clone, Debug)]
pub struct CertReport {
    /// Derivation nodes replayed (each one a validated rule application).
    pub nodes: usize,
    /// The certificate's named root theorems, freshly re-admitted.
    pub roots: Vec<(String, Thm)>,
    /// The checking context the certificate was replayed under.
    pub cx: CheckCtx,
}

/// Serializes checked theorems into a `cert-v1` byte vector.
///
/// The derivation DAG is linearized in postorder with pointer-identity
/// dedup, so a sub-derivation shared by several roots (or several times
/// within one — hash-consed programs produce hash-consed proofs) is
/// written once.
#[must_use]
pub fn encode_cert(cx: &CheckCtx, roots: &[(&str, &Thm)]) -> Vec<u8> {
    // Iterative postorder: derivations for large functions can be deeper
    // than the default stack allows.
    let mut ids: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut order: Vec<&Thm> = Vec::new();
    for &(_, root) in roots {
        let mut stack: Vec<(&Thm, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            let key = std::ptr::from_ref(t) as usize;
            if ids.contains_key(&key) {
                continue;
            }
            if expanded {
                ids.insert(key, order.len() as u64);
                order.push(t);
            } else {
                stack.push((t, true));
                for p in t.premises() {
                    stack.push((p, false));
                }
            }
        }
    }

    let mut e = Encoder::new();
    cx.encode(&mut e);
    e.varint(order.len() as u64);
    for t in &order {
        t.judgment().encode(&mut e);
        t.rule().encode(&mut e);
        t.side().encode(&mut e);
        e.varint(t.premises().len() as u64);
        for p in t.premises() {
            let key = std::ptr::from_ref(p) as usize;
            e.varint(ids[&key]);
        }
    }
    e.varint(roots.len() as u64);
    for (label, root) in roots {
        e.str(label);
        let key = std::ptr::from_ref(*root) as usize;
        e.varint(ids[&key]);
    }

    let payload = e.finish();
    let mut out = Vec::with_capacity(8 + payload.len() + 16);
    out.extend_from_slice(CERT_MAGIC);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&digest128_bytes(&payload).to_le_bytes());
    out
}

/// Replays a `cert-v1` file, re-admitting every node through the
/// validating kernel.
///
/// # Errors
///
/// [`CertError::Format`] for anything that is not a well-formed
/// certificate, [`CertError::Digest`] if the payload was corrupted, and
/// [`CertError::Replay`] if any node fails rule validation.
pub fn check_cert(bytes: &[u8]) -> Result<CertReport, CertError> {
    if bytes.len() < CERT_MAGIC.len() + 16 {
        return Err(CertError::Format("file too short".into()));
    }
    if &bytes[..CERT_MAGIC.len()] != CERT_MAGIC {
        return Err(CertError::Format(
            "bad magic (not a cert-v1 file)".into(),
        ));
    }
    let payload = &bytes[CERT_MAGIC.len()..bytes.len() - 16];
    let mut stored = [0u8; 16];
    stored.copy_from_slice(&bytes[bytes.len() - 16..]);
    if digest128_bytes(payload) != u128::from_le_bytes(stored) {
        return Err(CertError::Digest);
    }

    let fmt_err = |e: ir::codec::DecodeError| CertError::Format(e.0);
    let mut d = Decoder::new(payload);
    let cx = CheckCtx::decode(&mut d).map_err(fmt_err)?;
    let n = d.seq_len().map_err(fmt_err)?;
    let mut thms: Vec<Thm> = Vec::with_capacity(n);
    for i in 0..n {
        let judgment = Judgment::decode(&mut d).map_err(fmt_err)?;
        let rule = Rule::decode(&mut d).map_err(fmt_err)?;
        let side = Side::decode(&mut d).map_err(fmt_err)?;
        let np = d.seq_len().map_err(fmt_err)?;
        let mut premises = Vec::with_capacity(np);
        for _ in 0..np {
            let id = d.varint().map_err(fmt_err)? as usize;
            if id >= i {
                return Err(CertError::Format(format!(
                    "node {i} references premise {id} (not in postorder)"
                )));
            }
            premises.push(thms[id].clone());
        }
        let thm = Thm::admit(rule, premises, judgment, side, &cx)
            .map_err(|err| CertError::Replay { node: i, err })?;
        thms.push(thm);
    }
    let nroots = d.seq_len().map_err(fmt_err)?;
    let mut roots = Vec::with_capacity(nroots);
    for _ in 0..nroots {
        let label = d.str().map_err(fmt_err)?;
        let id = d.varint().map_err(fmt_err)? as usize;
        let thm = thms
            .get(id)
            .cloned()
            .ok_or_else(|| CertError::Format(format!("root {label:?} id {id} out of range")))?;
        roots.push((label, thm));
    }
    if d.remaining() != 0 {
        return Err(CertError::Format(format!(
            "{} trailing bytes after roots",
            d.remaining()
        )));
    }
    Ok(CertReport {
        nodes: n,
        roots,
        cx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CheckCtx, Thm) {
        let cx = CheckCtx::default();
        // ⊢ lit 5 ▹ unat: a tiny real derivation via the rule API.
        let t = crate::rules::word::w_lit(
            &cx,
            &Default::default(),
            crate::AbsFun::Unat,
            &ir::value::Value::u32(5),
        )
        .expect("w_lit");
        (cx, t)
    }

    #[test]
    fn cert_round_trips_and_replays() {
        let (cx, t) = sample();
        let bytes = encode_cert(&cx, &[("lit5", &t)]);
        let report = check_cert(&bytes).expect("replay");
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].0, "lit5");
        assert_eq!(report.roots[0].1.judgment(), t.judgment());
        assert!(report.nodes >= 1);
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let (cx, t) = sample();
        let bytes = encode_cert(&cx, &[("lit5", &t)]);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                assert!(
                    check_cert(&m).is_err(),
                    "flip of byte {i} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn truncations_and_garbage_are_rejected() {
        let (cx, t) = sample();
        let bytes = encode_cert(&cx, &[("lit5", &t)]);
        for i in 0..bytes.len() {
            assert!(check_cert(&bytes[..i]).is_err(), "truncation at {i} accepted");
        }
        assert!(matches!(
            check_cert(b"not a certificate, definitely"),
            Err(CertError::Format(_))
        ));
    }
}
