//! The judgment (statement) language of the kernel.

use std::collections::BTreeMap;
use std::fmt;

use ir::expr::{CastKind, Expr};
use ir::guard::GuardKind;
use ir::ty::{Signedness, Ty};
use ir::update::Update;
use ir::value::Value;
use monadic::Prog;
use simpl::SimplStmt;

/// A value-abstraction function: how an abstract value relates to a concrete
/// one (the `rx`/`ex` of `abs_w_stmt` and the `f` of `abs_w_val`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AbsFun {
    /// Identity (pointers, booleans, unit, non-abstracted words).
    Id,
    /// `unat`: unsigned word → ideal natural.
    Unat,
    /// `sint`: signed word → ideal integer.
    Sint,
    /// Componentwise abstraction of a tuple (loop iterators).
    Tuple(Vec<AbsFun>),
}

impl AbsFun {
    /// Applies the abstraction to a concrete value.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not fit the abstraction
    /// (e.g. `Unat` of a pointer).
    pub fn apply(&self, v: &Value) -> Result<Value, String> {
        match (self, v) {
            (AbsFun::Id, v) => Ok(v.clone()),
            (AbsFun::Unat, Value::Word(w)) => Ok(Value::Nat(w.unat())),
            (AbsFun::Sint, Value::Word(w)) => Ok(Value::Int(w.sint())),
            (AbsFun::Tuple(fs), Value::Tuple(vs)) if fs.len() == vs.len() => {
                let mut out = Vec::with_capacity(vs.len());
                for (f, v) in fs.iter().zip(vs) {
                    out.push(f.apply(v)?);
                }
                Ok(Value::Tuple(out))
            }
            (f, v) => Err(format!("cannot apply {f:?} to `{v}`")),
        }
    }

    /// The natural abstraction for a concrete type under word abstraction.
    #[must_use]
    pub fn for_ty(ty: &Ty) -> AbsFun {
        match ty {
            Ty::Word(_, Signedness::Unsigned) => AbsFun::Unat,
            Ty::Word(_, Signedness::Signed) => AbsFun::Sint,
            Ty::Tuple(ts) => AbsFun::Tuple(ts.iter().map(AbsFun::for_ty).collect()),
            _ => AbsFun::Id,
        }
    }

    /// The cast that *undoes* this abstraction on expressions
    /// (`of_nat`/`of_int`), given the concrete word shape.
    #[must_use]
    pub fn inverse_cast(&self, ty: &Ty) -> Option<CastKind> {
        match (self, ty) {
            (AbsFun::Unat, Ty::Word(w, s)) => Some(CastKind::OfNat(*w, *s)),
            (AbsFun::Sint, Ty::Word(w, s)) => Some(CastKind::OfInt(*w, *s)),
            _ => None,
        }
    }

    /// The cast implementing this abstraction on expressions (`unat`/`sint`).
    #[must_use]
    pub fn forward_cast(&self) -> Option<CastKind> {
        match self {
            AbsFun::Unat => Some(CastKind::Unat),
            AbsFun::Sint => Some(CastKind::Sint),
            AbsFun::Id | AbsFun::Tuple(_) => None,
        }
    }
}

impl fmt::Display for AbsFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsFun::Id => write!(f, "id"),
            AbsFun::Unat => write!(f, "unat"),
            AbsFun::Sint => write!(f, "sint"),
            AbsFun::Tuple(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Variable abstraction context: which lambda-bound variables of the
/// concrete program are word-abstracted, and how. Shared by the abstract
/// and concrete sides (the variables keep their names; their *meaning*
/// differs by the recorded `AbsFun`).
pub type VarCtx = BTreeMap<String, AbsFun>;

/// A kernel judgment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Judgment {
    /// `abs_w_val P f a c` under variable context `ctx` (Sec 3.3):
    /// whenever the abstract variables equal the abstraction of the
    /// concrete ones and `P` holds, `a = f c`.
    WVal {
        /// Variable abstraction context.
        ctx: VarCtx,
        /// Precondition (over abstract variables and the state).
        pre: Expr,
        /// The abstraction function.
        f: AbsFun,
        /// Abstract expression.
        abs: Expr,
        /// Concrete expression.
        conc: Expr,
    },
    /// `abs_w_stmt (λ_. True) rx ex A C` under variable context `ctx`:
    /// the abstract program `abs` refines `conc` with return values related
    /// by `rx` and exception values by `ex` (preconditions have been
    /// discharged into guards inside `abs`).
    WStmt {
        /// Variable abstraction context.
        ctx: VarCtx,
        /// Return-value abstraction.
        rx: AbsFun,
        /// Exception-value abstraction.
        ex: AbsFun,
        /// Abstract program.
        abs: Prog,
        /// Concrete program.
        conc: Prog,
    },
    /// `abs_h_val P a c` (Sec 4.5): under precondition `P` (over the
    /// abstract state), `c s = a (st s)`.
    HVal {
        /// Precondition over the abstract state.
        pre: Expr,
        /// Abstract expression.
        abs: Expr,
        /// Concrete expression.
        conc: Expr,
    },
    /// `abs_h_modifies P a c`: under `P`, `st (c s) = a (st s)`.
    HUpd {
        /// Precondition over the abstract state.
        pre: Expr,
        /// Abstract update.
        abs: Update,
        /// Concrete update.
        conc: Update,
    },
    /// `abs_h_stmt A C` (Sec 4.5).
    HStmt {
        /// Abstract (typed-split-heap) program.
        abs: Prog,
        /// Concrete (byte-heap) program.
        conc: Prog,
    },
    /// L1 correspondence: the monadic program has exactly the behaviour of
    /// the Simpl statement (Table 1 translation).
    L1 {
        /// Monadic program.
        prog: Prog,
        /// Simpl statement.
        simpl: SimplStmt,
    },
    /// Plain monadic refinement on the same state representation:
    /// if `abs` does not fail, then `conc`'s behaviour is contained in
    /// `abs`'s and `conc` does not fail. Used by the L2 rewrites.
    Refines {
        /// Abstract (rewritten) program.
        abs: Prog,
        /// Concrete (original) program.
        conc: Prog,
    },
    /// Abstract-interpretation guard discharge: `hyp ⟹ guard` by interval
    /// entailment. The judgment is self-contained — the hypothesis records
    /// everything the flow-sensitive analysis knew at the guard's program
    /// point, so the independent checker re-validates the entailment from
    /// the theorem alone (the flow-sensitivity claim itself is covered by
    /// the audit differential, which re-decides every discharge with the
    /// solver).
    AbsGuard {
        /// Conjunction of facts the abstract interpreter established at the
        /// guard's program point (variable bounds, validity facts).
        hyp: Expr,
        /// What kind of side condition the guard protects.
        kind: GuardKind,
        /// The guard condition being discharged.
        guard: Expr,
    },
}

impl Judgment {
    /// A one-line description for error messages.
    #[must_use]
    pub fn describe(&self) -> &'static str {
        match self {
            Judgment::WVal { .. } => "abs_w_val",
            Judgment::WStmt { .. } => "abs_w_stmt",
            Judgment::HVal { .. } => "abs_h_val",
            Judgment::HUpd { .. } => "abs_h_modifies",
            Judgment::HStmt { .. } => "abs_h_stmt",
            Judgment::L1 { .. } => "l1corres",
            Judgment::Refines { .. } => "refines",
            Judgment::AbsGuard { .. } => "abs_guard",
        }
    }
}

/// Prepends `guard pre` to a program unless the precondition is trivial.
#[must_use]
pub fn guarded(kind: GuardKind, pre: &Expr, prog: Prog) -> Prog {
    if pre.is_true_lit() {
        prog
    } else {
        Prog::then(Prog::guard(kind, pre.clone()), prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::word::Word;

    #[test]
    fn absfun_application() {
        assert_eq!(
            AbsFun::Unat.apply(&Value::u32(5)).unwrap(),
            Value::nat(5u64)
        );
        assert_eq!(
            AbsFun::Sint.apply(&Value::i32(-5)).unwrap(),
            Value::int(-5)
        );
        assert_eq!(
            AbsFun::Id.apply(&Value::Bool(true)).unwrap(),
            Value::Bool(true)
        );
        let t = AbsFun::Tuple(vec![AbsFun::Unat, AbsFun::Id]);
        assert_eq!(
            t.apply(&Value::Tuple(vec![Value::u32(3), Value::Bool(false)]))
                .unwrap(),
            Value::Tuple(vec![Value::nat(3u64), Value::Bool(false)])
        );
        assert!(AbsFun::Unat.apply(&Value::Bool(true)).is_err());
    }

    #[test]
    fn absfun_for_types() {
        assert_eq!(AbsFun::for_ty(&Ty::U32), AbsFun::Unat);
        assert_eq!(AbsFun::for_ty(&Ty::I32), AbsFun::Sint);
        assert_eq!(AbsFun::for_ty(&Ty::U32.ptr_to()), AbsFun::Id);
        assert_eq!(
            AbsFun::for_ty(&Ty::Tuple(vec![Ty::U32, Ty::Bool])),
            AbsFun::Tuple(vec![AbsFun::Unat, AbsFun::Id])
        );
    }

    #[test]
    fn unat_wraps_correctly() {
        // unat of the all-ones word is 2^32 - 1.
        let w = Word::u32(u32::MAX);
        assert_eq!(
            AbsFun::Unat.apply(&Value::Word(w)).unwrap(),
            Value::nat(u64::from(u32::MAX))
        );
    }

    #[test]
    fn guarded_helper() {
        let p = Prog::ret(Expr::u32(1));
        assert_eq!(guarded(GuardKind::UnsignedOverflow, &Expr::tt(), p.clone()), p);
        let g = guarded(GuardKind::UnsignedOverflow, &Expr::var("P"), p);
        assert!(matches!(g, Prog::Bind(..)));
    }
}
