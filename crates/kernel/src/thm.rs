//! Theorems, rules, and the proof checker.

use std::collections::BTreeMap;
use std::fmt;

use crate::judgment::{AbsFun, Judgment};

/// The inference rules of the kernel. Every theorem records which rule
/// admitted it; the checker replays the rule's validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    // --- word abstraction: values (Table 3 and Sec 3.3) ---
    /// Variable lookup consistent with the variable context.
    WVar,
    /// Literal abstraction (`unat`/`sint`/`id` of a constant).
    WLit,
    /// Unsigned addition (`WSUM`).
    WSum,
    /// Unsigned subtraction (precondition `b ≤ a`).
    WSub,
    /// Unsigned multiplication (precondition `a·b ≤ UINT_MAX`).
    WMul,
    /// Unsigned division (`WDIV`, no precondition).
    WDiv,
    /// Unsigned modulo.
    WMod,
    /// Signed addition (range precondition).
    SSum,
    /// Signed subtraction.
    SSub,
    /// Signed multiplication.
    SMul,
    /// Signed division (precondition `¬(a = INT_MIN ∧ b = -1)`).
    SDiv,
    /// Signed modulo.
    SMod,
    /// Signed negation (precondition `a ≠ INT_MIN`).
    SNeg,
    /// Comparison under `unat`/`sint` (monotone, `f = id` on the result).
    WCmp,
    /// `of_nat` re-concretisation: `of_nat (unat c) = c`.
    WOfNat,
    /// `of_int` re-concretisation.
    WOfInt,
    /// Wrap an identity-abstracted word term in `unat`.
    WUnatWrap,
    /// Wrap an identity-abstracted word term in `sint`.
    WSintWrap,
    /// Congruence for identity-abstracted operators.
    WIdCong,
    /// Conditional expression with branch-weakened preconditions.
    WIte,
    /// Componentwise tuple abstraction (loop iterator values).
    WTuple,
    /// Tuple projection under a componentwise abstraction.
    WProj,
    /// A tuple of identity abstractions is the identity abstraction.
    WTupleId,
    /// Wraps an identity-abstracted tuple into a componentwise abstraction
    /// by projecting and casting each component.
    WTupleWrap,
    /// A user-supplied idiom rule validated by randomized sampling
    /// (Sec 3.3's extensible rule sets).
    WCustomSampled,

    // --- word abstraction: statements ---
    /// `WRET`.
    WsRet,
    /// `gets` abstraction.
    WsGets,
    /// `modify` abstraction (state untouched by WA; expressions rebuilt).
    WsModify,
    /// Guard abstraction.
    WsGuard,
    /// `throw` abstraction.
    WsThrow,
    /// `fail` maps to `fail`.
    WsFail,
    /// `WBIND`.
    WsBind,
    /// `WBIND` with a tuple pattern (loop-iterator destructuring).
    WsBindTuple,
    /// `condition` abstraction.
    WsCond,
    /// `whileLoop` abstraction with iterator-variable contexts.
    WsWhile,
    /// Call to a word-abstracted function.
    WsCall,
    /// `catch` abstraction.
    WsCatch,
    /// `exec_concrete`/`exec_abstract` pass through word abstraction
    /// untouched (their contents stay at the concrete word level).
    WsExecConcrete,

    // --- heap abstraction (Table 4 and Sec 4.5) ---
    /// Literals are state-independent.
    HLit,
    /// Variables are unchanged.
    HVar,
    /// Congruence for heap-free operators.
    HCong,
    /// Boolean connectives with short-circuit-weakened preconditions
    /// (sound because the unevaluated side cannot influence the value).
    HValWeaken,
    /// Typed heap read becomes split-heap lookup under `is_valid`.
    HRead,
    /// Pointer-offset field read becomes a field select (Sec 4.5).
    HReadField,
    /// `HPTR`: the concrete pointer guard becomes `is_valid`.
    HGuardPtr,
    /// Heap write becomes a split-heap functional update.
    HUpd,
    /// Pointer-offset field write becomes a functional field update.
    HUpdField,
    /// Local/global variable update with a heap-reading right-hand side.
    HUpdVar,
    /// `HGETS`.
    HsGets,
    /// `HMODIFY`.
    HsModify,
    /// Guard statement abstraction.
    HsGuard,
    /// `return` abstraction.
    HsRet,
    /// `throw` abstraction.
    HsThrow,
    /// `fail` abstraction.
    HsFail,
    /// `HBIND`.
    HsBind,
    /// `HBIND` with a tuple pattern.
    HsBindTuple,
    /// `condition` abstraction.
    HsCond,
    /// `whileLoop` abstraction.
    HsWhile,
    /// `catch` abstraction.
    HsCatch,
    /// Call congruence.
    HsCall,
    /// `exec_concrete` introduction (Sec 4.6).
    HsExecConcrete,

    // --- L1: Simpl to monadic (Table 1) ---
    /// `SKIP ↦ skip`.
    L1Skip,
    /// `Basic m ↦ modify m`.
    L1Basic,
    /// Sequencing.
    L1Seq,
    /// Conditional.
    L1Cond,
    /// While loop.
    L1While,
    /// Guard.
    L1Guard,
    /// Throw.
    L1Throw,
    /// Try/catch.
    L1Catch,
    /// Procedure call (with result stored to a local).
    L1Call,

    // --- L2 rewrites: monadic refinement ---
    /// Reflexivity.
    ReflRefines,
    /// Transitivity.
    TransRefines,
    /// Congruence under `bind`.
    BindCong,
    /// Congruence under `condition`.
    CondCong,
    /// Congruence under `catch`.
    CatchCong,
    /// Congruence under `whileLoop`.
    WhileCong,
    /// Guard discharge: the simplifier proves the guard true.
    DischargeGuard,
    /// Guard discharge by abstract interpretation: the recorded hypothesis
    /// entails the guard by interval reasoning (`solver::interval::entails`).
    AbsintDischarge,
    /// Refinement admitted after randomized differential testing
    /// (seed and trial count recorded; the substitute for Isabelle's
    /// rewrite-step proofs, see DESIGN.md §2).
    ExecTested,
}

/// Extra data recorded for oracle rules.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// No side data.
    None,
    /// Randomized testing evidence for a refinement.
    Tested {
        /// Number of trials run.
        trials: u32,
        /// RNG seed used.
        seed: u64,
    },
    /// Randomized sampling evidence for a custom `abs_w_val` rule
    /// (self-contained: the variable shapes are recorded so the checker can
    /// re-run the sampling).
    SampledWVal {
        /// Concrete types of the judgment's variables.
        vars: std::collections::BTreeMap<String, ir::ty::Ty>,
        /// Number of samples.
        trials: u32,
        /// RNG seed used.
        seed: u64,
    },
}

/// A theorem: a judgment together with its full derivation.
///
/// `Thm` has no public constructor; instances can only be produced by the
/// rule functions in [`crate::rules`], each of which validates its side
/// conditions first (the LCF discipline).
#[derive(Clone, Debug, PartialEq)]
pub struct Thm {
    judgment: Judgment,
    rule: Rule,
    /// Refcounted so `Thm::clone` is O(1) instead of copying the whole
    /// derivation — session artifact stores clone theorems on every
    /// retrieval.
    premises: std::sync::Arc<[Thm]>,
    side: Side,
    /// Rule applications in the derivation, computed once at `admit` time
    /// (derived from the other fields, so excluded from comparisons).
    proof_size: usize,
}

impl Thm {
    /// The statement this theorem proves.
    #[must_use]
    pub fn judgment(&self) -> &Judgment {
        &self.judgment
    }

    /// The rule that admitted the conclusion.
    #[must_use]
    pub fn rule(&self) -> Rule {
        self.rule
    }

    /// The premise derivations.
    #[must_use]
    pub fn premises(&self) -> &[Thm] {
        &self.premises
    }

    /// Side data for oracle rules.
    #[must_use]
    pub fn side(&self) -> &Side {
        &self.side
    }

    /// Number of rule applications in the derivation (proof size). O(1):
    /// cached at `admit` time.
    #[must_use]
    pub fn proof_size(&self) -> usize {
        self.proof_size
    }

    /// Audit-only constructor that **skips validation** (`forge` feature).
    ///
    /// This deliberately breaks the LCF discipline: it mints a theorem
    /// from arbitrary parts so the fault-injection harness
    /// (`crates/audit`) can hand the checker derivations that are *lies*
    /// and assert every one is rejected. `proof_size` is computed normally
    /// so forged trees are indistinguishable from real ones except through
    /// replay. Nothing outside audit builds may enable the feature.
    #[cfg(feature = "forge")]
    #[must_use]
    pub fn forge(rule: Rule, premises: Vec<Thm>, judgment: Judgment, side: Side) -> Thm {
        let proof_size = 1 + premises.iter().map(Thm::proof_size).sum::<usize>();
        Thm {
            judgment,
            rule,
            premises: premises.into(),
            side,
            proof_size,
        }
    }

    /// Store-only constructor (`persist` feature) that rebuilds a theorem
    /// from its serialized parts **without re-validating**.
    ///
    /// Only the disk-artifact codec (`kernel::codec`) may call this: disk
    /// entries sit behind a whole-payload integrity digest and the cache
    /// directory is part of the local trusted base, so re-running every
    /// rule on load would forfeit the warm start the store exists for.
    /// `check`/`check_all` still replay reconstructed theorems like any
    /// other. Certificates never take this path — `kernel::cert` rebuilds
    /// through the validating [`Thm::admit`].
    #[cfg(feature = "persist")]
    #[must_use]
    pub(crate) fn from_persisted(
        rule: Rule,
        premises: Vec<Thm>,
        judgment: Judgment,
        side: Side,
    ) -> Thm {
        let proof_size = 1 + premises.iter().map(Thm::proof_size).sum::<usize>();
        Thm {
            judgment,
            rule,
            premises: premises.into(),
            side,
            proof_size,
        }
    }

    /// Kernel-internal constructor (`pub(crate)`) — validates before
    /// admitting.
    pub(crate) fn admit(
        rule: Rule,
        premises: Vec<Thm>,
        judgment: Judgment,
        side: Side,
        cx: &CheckCtx,
    ) -> Result<Thm, KernelError> {
        let prem_judgments: Vec<&Judgment> = premises.iter().map(Thm::judgment).collect();
        crate::rules::validate(rule, &prem_judgments, &judgment, &side, cx)
            .map_err(|msg| KernelError { rule, msg })?;
        let proof_size = 1 + premises.iter().map(Thm::proof_size).sum::<usize>();
        Ok(Thm {
            judgment,
            rule,
            premises: premises.into(),
            side,
            proof_size,
        })
    }
}

impl fmt::Display for Thm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⊢ {} [by {:?}, {} steps]",
            self.judgment.describe(),
            self.rule,
            self.proof_size()
        )
    }
}

/// A kernel error: a rule application whose side conditions failed.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelError {
    /// The rule that was attempted.
    pub rule: Rule,
    /// Why it was rejected.
    pub msg: String,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel: rule {:?} rejected: {}", self.rule, self.msg)
    }
}

impl std::error::Error for KernelError {}

/// The checking context: structure layouts and the signatures of abstracted
/// functions, needed by layout-dependent and call rules.
#[derive(Clone, Debug, Default)]
pub struct CheckCtx {
    /// Structure layouts (for field-offset rules).
    pub tenv: ir::ty::TypeEnv,
    /// For each word-abstracted function: parameter abstractions, return
    /// abstraction, exception abstraction.
    pub fn_abs: BTreeMap<String, (Vec<AbsFun>, AbsFun, AbsFun)>,
}

/// Replays a theorem's entire derivation through the rule validations.
///
/// This is the independent proof checker: it does not trust the engine that
/// constructed the theorem, only the kernel rules.
///
/// # Errors
///
/// Returns the first failing rule application.
pub fn check(thm: &Thm, cx: &CheckCtx) -> Result<(), KernelError> {
    check_cached(thm, cx, None)
}

fn check_cached(thm: &Thm, cx: &CheckCtx, cache: Option<&ReplayCache>) -> Result<(), KernelError> {
    if let Some(c) = cache {
        if c.contains(thm) {
            return Ok(());
        }
    }
    for p in thm.premises.iter() {
        check_cached(p, cx, cache)?;
    }
    let prem_judgments: Vec<&Judgment> = thm.premises.iter().map(Thm::judgment).collect();
    crate::rules::validate(thm.rule, &prem_judgments, &thm.judgment, &thm.side, cx).map_err(
        |msg| KernelError {
            rule: thm.rule,
            msg,
        },
    )?;
    if let Some(c) = cache {
        c.insert(thm);
    }
    Ok(())
}

/// A replay-side cache of validated proof nodes, shared across theorems and
/// workers. A node is identified by a 128-bit structural digest of
/// everything `rules::validate` consumes — the rule, the conclusion
/// judgment, the premise judgments, and the side data — so an identical
/// `(rule, premises)` application appearing in several derivations (common
/// once terms are hash-consed: shared subprograms produce shared
/// sub-derivations) is validated once and skipped thereafter.
///
/// Soundness: `validate` is a deterministic pure function of exactly the
/// digested data, so skipping a re-run cannot change any verdict; only
/// *successful* validations are inserted. The digest is two independent
/// fixed-key hash passes (collision probability ~2⁻¹²⁸ per pair — far below
/// any hardware error rate). Determinism: cache state never affects output,
/// only whether a validation is re-executed.
#[derive(Default)]
pub struct ReplayCache {
    shards: [std::sync::Mutex<std::collections::HashSet<u128>>; 16],
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ReplayCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> ReplayCache {
        ReplayCache::default()
    }

    fn digest(thm: &Thm) -> u128 {
        fn pass(seed: u64, thm: &Thm) -> u64 {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            seed.hash(&mut h);
            thm.rule.hash(&mut h);
            thm.judgment.hash(&mut h);
            for p in thm.premises.iter() {
                p.judgment.hash(&mut h);
            }
            thm.side.hash(&mut h);
            h.finish()
        }
        (u128::from(pass(0x9E37_79B9_7F4A_7C15, thm)) << 64)
            | u128::from(pass(0xC2B2_AE3D_27D4_EB4F, thm))
    }

    fn contains(&self, thm: &Thm) -> bool {
        let d = Self::digest(thm);
        let shard = &self.shards[(d as usize) % self.shards.len()];
        let hit = shard.lock().expect("replay cache poisoned").contains(&d);
        let ctr = if hit { &self.hits } else { &self.misses };
        ctr.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        hit
    }

    fn insert(&self, thm: &Thm) {
        let d = Self::digest(thm);
        let shard = &self.shards[(d as usize) % self.shards.len()];
        shard.lock().expect("replay cache poisoned").insert(d);
    }

    /// Audit-only (`forge` feature): the digest of a theorem's root node,
    /// as stored by this cache.
    #[cfg(feature = "forge")]
    #[must_use]
    pub fn forge_digest_of(thm: &Thm) -> u128 {
        Self::digest(thm)
    }

    /// Audit-only (`forge` feature): snapshot of every stored digest.
    #[cfg(feature = "forge")]
    #[must_use]
    pub fn forge_digests(&self) -> Vec<u128> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().expect("replay cache poisoned").iter().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Audit-only (`forge` feature): removes a stored digest, returning
    /// whether it was present.
    #[cfg(feature = "forge")]
    pub fn forge_remove(&self, d: u128) -> bool {
        let shard = &self.shards[(d as usize) % self.shards.len()];
        shard.lock().expect("replay cache poisoned").remove(&d)
    }

    /// Audit-only (`forge` feature): inserts a raw digest — the
    /// cache-corruption attack of the audit harness.
    #[cfg(feature = "forge")]
    pub fn forge_insert(&self, d: u128) {
        let shard = &self.shards[(d as usize) % self.shards.len()];
        shard.lock().expect("replay cache poisoned").insert(d);
    }

    /// Persistence (`persist` feature): snapshot of every stored digest,
    /// for writing the warm-start file. Digests are opaque: the store
    /// records them verbatim and feeds them back via [`Self::preload`].
    #[cfg(feature = "persist")]
    #[must_use]
    pub fn export_digests(&self) -> Vec<u128> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("replay cache poisoned")
                    .iter()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Persistence (`persist` feature): seeds the cache with digests of
    /// validations that succeeded in an earlier process.
    ///
    /// Soundness is unchanged from the in-process case — a preloaded
    /// digest only ever *skips a re-run* of the deterministic `validate`;
    /// it can never flip a verdict. A wrong digest (corruption the store's
    /// integrity check somehow missed) simply never matches a real lookup,
    /// costing nothing but a stale entry.
    #[cfg(feature = "persist")]
    pub fn preload(&self, digests: &[u128]) {
        for &d in digests {
            let shard = &self.shards[(d as usize) % self.shards.len()];
            shard.lock().expect("replay cache poisoned").insert(d);
        }
    }

    /// (hits, misses) lookup counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

/// Statistics of a [`check_all`] replay run.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Theorems replayed.
    pub checked: usize,
    /// Total rule applications in the replayed derivations.
    pub proof_nodes: usize,
    /// Proof nodes skipped because an identical (rule, premises) node was
    /// already validated (shared-node replay cache).
    pub cache_hits: u64,
    /// Proof nodes that had to be validated.
    pub cache_misses: u64,
    /// Workers the caller asked for (before clamping to the item count).
    pub requested: usize,
    /// Workers actually used.
    pub workers: usize,
    /// Sum of per-worker busy time (≤ `workers` × wall time).
    pub busy: std::time::Duration,
    /// Wall-clock time of the whole replay.
    pub wall: std::time::Duration,
}

impl ReplayReport {
    /// Fraction of cache lookups that hit (0.0 when the cache was unused).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Replays a batch of theorems through [`check`], fanning the work across
/// `workers` scoped threads (`workers <= 1` replays on the caller's
/// thread). Theorems are independent per-function certificates, so replay
/// order is irrelevant to soundness; on failure the error reported is the
/// *first* failing theorem in input order, independent of scheduling.
///
/// # Errors
///
/// Returns the failing theorem's label together with the kernel error.
pub fn check_all<'a, I>(
    items: I,
    cx: &CheckCtx,
    workers: usize,
) -> Result<ReplayReport, (String, KernelError)>
where
    I: IntoIterator<Item = (&'a str, &'a Thm)>,
{
    check_all_with(items, cx, workers, &ReplayCache::new())
}

/// [`check_all`] against a caller-supplied [`ReplayCache`]. A session-scoped
/// cache lets incremental re-checks skip proof nodes validated by earlier
/// runs; the report's hit/miss counters cover *this run only* (counter
/// deltas), not the cache's lifetime totals.
///
/// # Errors
///
/// Returns the failing theorem's label together with the kernel error.
pub fn check_all_with<'a, I>(
    items: I,
    cx: &CheckCtx,
    workers: usize,
    cache: &ReplayCache,
) -> Result<ReplayReport, (String, KernelError)>
where
    I: IntoIterator<Item = (&'a str, &'a Thm)>,
{
    let items: Vec<(&str, &Thm)> = items.into_iter().collect();
    let start = std::time::Instant::now();
    let (hits0, misses0) = cache.counters();
    let proof_nodes: usize = items.iter().map(|(_, t)| t.proof_size()).sum();
    let requested = workers.max(1);
    let workers = requested.clamp(1, items.len().max(1));
    let mut first_failure: Option<(usize, String, KernelError)> = None;
    if workers <= 1 {
        for (name, thm) in &items {
            if let Err(e) = check_cached(thm, cx, Some(cache)) {
                return Err(((*name).to_owned(), e));
            }
        }
        let wall = start.elapsed();
        let (hits1, misses1) = cache.counters();
        return Ok(ReplayReport {
            checked: items.len(),
            proof_nodes,
            cache_hits: hits1 - hits0,
            cache_misses: misses1 - misses0,
            requested,
            workers: 1,
            busy: wall,
            wall,
        });
    }
    // Claim contiguous chunks (≈4 per worker) instead of single items:
    // the shared counter is touched O(workers) times rather than O(items),
    // while stragglers can still rebalance across the last few chunks.
    // Replay interns terms while rebuilding rule conclusions, so route
    // interning through the per-thread caches for the pool's lifetime.
    let _intern_scope = ir::intern::ParallelScope::enter();
    let chunk = items.len().div_ceil(workers * 4).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut busy = std::time::Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let t0 = std::time::Instant::now();
                    let mut failures: Vec<(usize, String, KernelError)> = Vec::new();
                    loop {
                        let lo = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if lo >= items.len() {
                            break;
                        }
                        let hi = (lo + chunk).min(items.len());
                        for (i, (name, thm)) in
                            items[lo..hi].iter().enumerate().map(|(o, it)| (lo + o, it))
                        {
                            if let Err(e) = check_cached(thm, cx, Some(cache)) {
                                failures.push((i, (*name).to_owned(), e));
                            }
                        }
                    }
                    (failures, t0.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (failures, worker_busy) = h.join().expect("replay worker panicked");
            busy += worker_busy;
            for f in failures {
                if first_failure.as_ref().is_none_or(|(j, _, _)| f.0 < *j) {
                    first_failure = Some(f);
                }
            }
        }
    });
    let (hits1, misses1) = cache.counters();
    match first_failure {
        Some((_, name, e)) => Err((name, e)),
        None => Ok(ReplayReport {
            checked: items.len(),
            proof_nodes,
            cache_hits: hits1 - hits0,
            cache_misses: misses1 - misses0,
            requested,
            workers,
            busy,
            wall: start.elapsed(),
        }),
    }
}

// The parallel pipeline shares theorems, contexts, and programs across
// scoped threads; keep the core types `Send + Sync` (no interior
// mutability, no `Rc`) so that property is load-bearing, not incidental.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Thm>();
    assert_send_sync::<CheckCtx>();
    assert_send_sync::<Judgment>();
    assert_send_sync::<KernelError>();
};
