//! Executable meaning of the judgments, and randomized differential
//! validators.
//!
//! Isabelle proves the kernel rules sound against the monad semantics once
//! and for all. We cannot do that in Rust, so every judgment form gets an
//! *executable* meaning here, and the validators sample it — this is the
//! documented substitute (DESIGN.md §2). The validators are used
//! (i) by the `WCustomSampled`/`ExecTested` oracle rules, and (ii) broadly
//! in the test suites, where every end-to-end theorem produced by the
//! engines is also checked semantically on random inputs.

use std::collections::BTreeMap;

use ir::diag::{Diag, DiagKind, Phase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ir::eval::{eval, Env};
use ir::state::State;
use ir::ty::Ty;
use ir::value::{Ptr, Value};
use monadic::interp::{exec, MonadFault, MonadResult};
use monadic::{Prog, ProgramCtx};

use crate::judgment::{AbsFun, Judgment};

/// Builds a testing diagnostic. Messages are unchanged from the historic
/// stringly errors; the structured fields classify them.
fn derr(msg: impl Into<String>) -> Diag {
    Diag::new(Phase::Kernel, DiagKind::Testing, msg)
}

/// Samples a random value of a type (for word/pointer/bool leaves).
///
/// Pointer values land in a small aligned range so that heap-dependent
/// expressions have a chance of hitting allocated objects.
#[must_use]
pub fn random_value(rng: &mut StdRng, ty: &Ty) -> Value {
    match ty {
        Ty::Unit => Value::Unit,
        Ty::Bool => Value::Bool(rng.gen()),
        Ty::Word(w, s) => {
            // Mix uniform bits with boundary values.
            let bits = match rng.gen_range(0..4) {
                0 => rng.gen::<u64>(),
                1 => rng.gen_range(0..16),
                2 => w.mask(),
                _ => 1u64 << (w.bits() - 1),
            };
            Value::Word(ir::word::Word::new(bits, *w, *s))
        }
        Ty::Nat => Value::nat(rng.gen_range(0u64..100)),
        Ty::Int => Value::int(rng.gen_range(-100i64..100)),
        Ty::Ptr(p) => {
            let addr = if rng.gen_bool(0.2) {
                0
            } else {
                u64::from(rng.gen_range(1u32..16)) * 0x100
            };
            Value::Ptr(Ptr::new(addr, (**p).clone()))
        }
        Ty::Struct(_) | Ty::Tuple(_) => Value::Unit,
        Ty::Arr(t, n) => {
            let n = usize::try_from(*n).unwrap_or(0).min(64);
            Value::Arr(t.clone(), (0..n).map(|_| random_value(rng, t)).collect())
        }
    }
}

/// Samples the executable meaning of an `abs_w_val` judgment: for random
/// assignments of the concrete variables (with abstract variables set to
/// their abstraction), whenever the precondition holds, `abs = f conc`.
///
/// # Errors
///
/// Returns a description of the first violating sample.
pub fn sample_wval(
    j: &Judgment,
    vars: &BTreeMap<String, Ty>,
    trials: u32,
    seed: u64,
) -> Result<(), Diag> {
    let Judgment::WVal { ctx, pre, f, abs, conc } = j else {
        return Err(derr("sampling applies to abs_w_val"));
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let st = State::conc_empty();
    let mut checked = 0u32;
    for _ in 0..trials {
        let mut conc_env = Env::new();
        let mut abs_env = Env::new();
        for (name, ty) in vars {
            let cv = random_value(&mut rng, ty);
            let af = ctx.get(name).cloned().unwrap_or(AbsFun::Id);
            let av = af.apply(&cv).map_err(derr)?;
            conc_env.bind_mut(name, cv);
            abs_env.bind_mut(name, av);
        }
        // Precondition is an abstract-side formula.
        let pre_holds = match eval(pre, &abs_env, &st) {
            Ok(Value::Bool(b)) => b,
            _ => continue,
        };
        if !pre_holds {
            continue;
        }
        let (Ok(cv), Ok(av)) = (eval(conc, &conc_env, &st), eval(abs, &abs_env, &st)) else {
            continue;
        };
        let expected = f.apply(&cv).map_err(derr)?;
        if av != expected {
            return Err(derr(format!(
                "sample violates abs_w_val: abs = {av}, {f} conc = {expected}"
            )));
        }
        checked += 1;
    }
    if checked == 0 && trials > 0 {
        return Err(derr("no sample satisfied the precondition; cannot validate"));
    }
    Ok(())
}

/// Outcome classification for differential testing.
enum Run {
    Done(MonadResult, State),
    /// The failure flag was set (failed guard / `fail`).
    Failed,
    /// Fuel ran out — the trial is inconclusive (e.g. a cyclic random heap
    /// makes the loop diverge), never a violation.
    Timeout,
}

fn outcome(r: Result<(MonadResult, State), MonadFault>) -> Result<Run, Diag> {
    match r {
        Ok((v, st)) => Ok(Run::Done(v, st)),
        Err(MonadFault::Failure(_)) => Ok(Run::Failed),
        Err(MonadFault::OutOfFuel) => Ok(Run::Timeout),
        Err(e) => Err(derr(format!("stuck execution: {e}"))),
    }
}

/// Differentially tests a plain refinement (`Judgment::Refines` semantics):
/// for each generated `(env, state)`, if the abstract program does not fail
/// then the concrete program must not fail and must produce the same result
/// and state.
///
/// # Errors
///
/// Returns a description of the first violating trial.
pub fn test_refines(
    ctx: &ProgramCtx,
    abs: &Prog,
    conc: &Prog,
    trials: u32,
    seed: u64,
    mut gen: impl FnMut(&mut StdRng) -> (Env, State),
) -> Result<(), Diag> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..trials {
        let (env, st) = gen(&mut rng);
        let Run::Done(a_res, a_st) = outcome(exec(ctx, abs, &env, st.clone(), 200_000))? else {
            continue; // abstract failure/timeout: nothing to show
        };
        let c_run = outcome(exec(ctx, conc, &env, st, 200_000))?;
        let (c_res, c_st) = match c_run {
            Run::Done(v, s) => (v, s),
            Run::Timeout => continue,
            Run::Failed => {
                return Err(derr(format!("trial {i}: concrete fails but abstract succeeds")))
            }
        };
        if a_res != c_res || a_st != c_st {
            return Err(derr(format!(
                "trial {i}: results differ (abs: {a_res:?}, conc: {c_res:?})"
            )));
        }
    }
    Ok(())
}

/// Differentially tests an `abs_w_stmt` judgment: concrete variables are
/// sampled, abstract variables are their abstractions; if the abstract
/// program does not fail, results must be related by `rx`/`ex` and states
/// must be equal.
///
/// # Errors
///
/// Returns a description of the first violating trial.
#[allow(clippy::too_many_arguments)]
pub fn test_wstmt(
    conc_ctx: &ProgramCtx,
    abs_ctx: &ProgramCtx,
    j: &Judgment,
    vars: &BTreeMap<String, Ty>,
    trials: u32,
    seed: u64,
    mut gen_state: impl FnMut(&mut StdRng) -> State,
) -> Result<(), Diag> {
    let Judgment::WStmt { ctx, rx, ex, abs, conc } = j else {
        return Err(derr("expected abs_w_stmt"));
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..trials {
        let st = gen_state(&mut rng);
        let mut conc_env = Env::with_tenv(conc_ctx.tenv.clone());
        let mut abs_env = Env::with_tenv(abs_ctx.tenv.clone());
        for (name, ty) in vars {
            let cv = random_value(&mut rng, ty);
            let af = ctx.get(name).cloned().unwrap_or(AbsFun::Id);
            abs_env.bind_mut(name, af.apply(&cv).map_err(derr)?);
            conc_env.bind_mut(name, cv);
        }
        let Run::Done(a_res, a_st) =
            outcome(exec(abs_ctx, abs, &abs_env, st.clone(), 200_000))?
        else {
            continue;
        };
        let c_run = outcome(exec(conc_ctx, conc, &conc_env, st, 200_000))?;
        let (c_res, c_st) = match c_run {
            Run::Done(v, s) => (v, s),
            Run::Timeout => continue,
            Run::Failed => {
                return Err(derr(format!("trial {i}: concrete fails but abstract succeeds")))
            }
        };
        let related = match (&a_res, &c_res) {
            (MonadResult::Normal(a), MonadResult::Normal(c)) => *a == rx.apply(c).map_err(derr)?,
            (MonadResult::Except(a), MonadResult::Except(c)) => *a == ex.apply(c).map_err(derr)?,
            _ => false,
        };
        if !related {
            return Err(derr(format!(
                "trial {i}: results unrelated (abs: {a_res:?}, conc: {c_res:?})"
            )));
        }
        if a_st != c_st {
            return Err(derr(format!("trial {i}: states differ after execution")));
        }
    }
    Ok(())
}

/// Differentially tests an `abs_h_stmt` judgment: the concrete program runs
/// on a byte-level state `s`, the abstract program on `st(s)`; if the
/// abstract program does not fail, the concrete result must match and the
/// lifted final state must equal the abstract final state.
///
/// # Errors
///
/// Returns a description of the first violating trial.
#[allow(clippy::too_many_arguments)]
pub fn test_hstmt(
    conc_ctx: &ProgramCtx,
    abs_ctx: &ProgramCtx,
    j: &Judgment,
    heap_types: &[Ty],
    trials: u32,
    seed: u64,
    mut gen: impl FnMut(&mut StdRng) -> (Env, ir::state::ConcState),
) -> Result<(), Diag> {
    let Judgment::HStmt { abs, conc } = j else {
        return Err(derr("expected abs_h_stmt"));
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..trials {
        let (env, conc_st) = gen(&mut rng);
        let abs_st = heapmodel::lift_state(&conc_st, &conc_ctx.tenv, heap_types);
        let Run::Done(a_res, a_st) = outcome(exec(
            abs_ctx,
            abs,
            &env,
            State::Abs(abs_st),
            200_000,
        ))?
        else {
            continue;
        };
        let c_run = outcome(exec(
            conc_ctx,
            conc,
            &env,
            State::Conc(conc_st),
            200_000,
        ))?;
        let (c_res, c_st) = match c_run {
            Run::Done(v, s) => (v, s),
            Run::Timeout => continue,
            Run::Failed => {
                return Err(derr(format!("trial {i}: concrete fails but abstract succeeds")))
            }
        };
        if a_res != c_res {
            return Err(derr(format!(
                "trial {i}: results differ (abs: {a_res:?}, conc: {c_res:?})"
            )));
        }
        let State::Conc(c_final) = &c_st else {
            return Err(derr("concrete execution left a non-concrete state"));
        };
        let lifted = heapmodel::lift_state(c_final, &conc_ctx.tenv, heap_types);
        let State::Abs(a_final) = &a_st else {
            return Err(derr("abstract execution left a non-abstract state"));
        };
        if lifted.heaps != a_final.heaps
            || lifted.globals != a_final.globals
            || lifted.locals != a_final.locals
        {
            return Err(derr(format!("trial {i}: lifted final state differs")));
        }
    }
    Ok(())
}

/// Differentially tests an L1 judgment: the Simpl statement and the monadic
/// program must have identical behaviour (same faults, same abrupt/normal
/// outcome, same final state).
///
/// # Errors
///
/// Returns a description of the first violating trial.
pub fn test_l1(
    simpl_prog: &simpl::SimplProgram,
    monadic_ctx: &ProgramCtx,
    j: &Judgment,
    trials: u32,
    seed: u64,
    mut gen: impl FnMut(&mut StdRng) -> State,
) -> Result<(), Diag> {
    let Judgment::L1 { prog, simpl } = j else {
        return Err(derr("expected l1corres"));
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..trials {
        let st = gen(&mut rng);
        let mut s_state = st.clone();
        let mut fuel = 200_000u64;
        let s_result = simpl::interp::exec_stmt(simpl_prog, simpl, &mut s_state, &mut fuel);
        let env = Env::with_tenv(monadic_ctx.tenv.clone());
        let m_result = exec(monadic_ctx, prog, &env, st, 200_000);
        match (s_result, m_result) {
            (Ok(simpl::interp::Outcome::Normal), Ok((MonadResult::Normal(_), m_state))) => {
                if s_state != m_state {
                    return Err(derr(format!("trial {i}: states differ after normal outcome")));
                }
            }
            (Ok(simpl::interp::Outcome::Abrupt), Ok((MonadResult::Except(_), m_state))) => {
                if s_state != m_state {
                    return Err(derr(format!("trial {i}: states differ after abrupt outcome")));
                }
            }
            (Err(simpl::interp::Fault::GuardFailure(_)), Err(MonadFault::Failure(_))) => {}
            (Err(simpl::interp::Fault::OutOfFuel), _) | (_, Err(MonadFault::OutOfFuel)) => {}
            (s, m) => {
                return Err(derr(format!("trial {i}: outcomes diverge ({s:?} vs {m:?})")));
            }
        }
    }
    Ok(())
}
