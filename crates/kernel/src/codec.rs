//! Binary codec impls for kernel statements and derivations.
//!
//! Judgments, rules, and side data are plain data and always
//! serialisable — the certificate format (`kernel::cert`) is built from
//! them, and reconstructing a [`Thm`] *from* them goes through
//! [`Thm::admit`], i.e. through full rule validation.
//!
//! The direct [`Thm`] codec at the bottom is different: its decoder
//! rebuilds theorems **without** re-validating, so it is gated behind the
//! `persist` feature and reserved for the disk-backed artifact store,
//! where every entry is protected by a whole-payload integrity digest and
//! the store directory is part of the trusted base (see DESIGN.md §6g).
//! Adversarial-grade transport is the certificate path, never this one.

use ir::codec::{Codec, DecodeError, Decoder, Encoder};

use crate::judgment::{AbsFun, Judgment};
use crate::thm::{CheckCtx, Rule, Side};
#[cfg(feature = "persist")]
use crate::thm::Thm;

/// Every rule, in a fixed order that defines the on-disk tag. Append new
/// rules at the end — reordering is a format break.
pub(crate) const RULES: [Rule; 79] = [
    Rule::WVar,
    Rule::WLit,
    Rule::WSum,
    Rule::WSub,
    Rule::WMul,
    Rule::WDiv,
    Rule::WMod,
    Rule::SSum,
    Rule::SSub,
    Rule::SMul,
    Rule::SDiv,
    Rule::SMod,
    Rule::SNeg,
    Rule::WCmp,
    Rule::WOfNat,
    Rule::WOfInt,
    Rule::WUnatWrap,
    Rule::WSintWrap,
    Rule::WIdCong,
    Rule::WIte,
    Rule::WTuple,
    Rule::WProj,
    Rule::WTupleId,
    Rule::WTupleWrap,
    Rule::WCustomSampled,
    Rule::WsRet,
    Rule::WsGets,
    Rule::WsModify,
    Rule::WsGuard,
    Rule::WsThrow,
    Rule::WsFail,
    Rule::WsBind,
    Rule::WsBindTuple,
    Rule::WsCond,
    Rule::WsWhile,
    Rule::WsCall,
    Rule::WsCatch,
    Rule::WsExecConcrete,
    Rule::HLit,
    Rule::HVar,
    Rule::HCong,
    Rule::HValWeaken,
    Rule::HRead,
    Rule::HReadField,
    Rule::HGuardPtr,
    Rule::HUpd,
    Rule::HUpdField,
    Rule::HUpdVar,
    Rule::HsGets,
    Rule::HsModify,
    Rule::HsGuard,
    Rule::HsRet,
    Rule::HsThrow,
    Rule::HsFail,
    Rule::HsBind,
    Rule::HsBindTuple,
    Rule::HsCond,
    Rule::HsWhile,
    Rule::HsCatch,
    Rule::HsCall,
    Rule::HsExecConcrete,
    Rule::L1Skip,
    Rule::L1Basic,
    Rule::L1Seq,
    Rule::L1Cond,
    Rule::L1While,
    Rule::L1Guard,
    Rule::L1Throw,
    Rule::L1Catch,
    Rule::L1Call,
    Rule::ReflRefines,
    Rule::TransRefines,
    Rule::BindCong,
    Rule::CondCong,
    Rule::CatchCong,
    Rule::WhileCong,
    Rule::DischargeGuard,
    Rule::AbsintDischarge,
    Rule::ExecTested,
];

impl Codec for Rule {
    fn encode(&self, e: &mut Encoder) {
        let tag = RULES
            .iter()
            .position(|r| r == self)
            .expect("rule missing from codec table");
        e.u8(tag as u8);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = d.u8()?;
        RULES
            .get(usize::from(tag))
            .copied()
            .ok_or_else(|| DecodeError(format!("invalid Rule tag {tag}")))
    }
}

impl Codec for Side {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Side::None => e.u8(0),
            Side::Tested { trials, seed } => {
                e.u8(1);
                trials.encode(e);
                seed.encode(e);
            }
            Side::SampledWVal { vars, trials, seed } => {
                e.u8(2);
                vars.encode(e);
                trials.encode(e);
                seed.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Side::None,
            1 => Side::Tested {
                trials: u32::decode(d)?,
                seed: u64::decode(d)?,
            },
            2 => Side::SampledWVal {
                vars: Codec::decode(d)?,
                trials: u32::decode(d)?,
                seed: u64::decode(d)?,
            },
            b => return Err(DecodeError(format!("invalid Side tag {b}"))),
        })
    }
}

impl Codec for AbsFun {
    fn encode(&self, e: &mut Encoder) {
        match self {
            AbsFun::Id => e.u8(0),
            AbsFun::Unat => e.u8(1),
            AbsFun::Sint => e.u8(2),
            AbsFun::Tuple(fs) => {
                e.u8(3);
                fs.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(AbsFun::Id),
            1 => Ok(AbsFun::Unat),
            2 => Ok(AbsFun::Sint),
            3 => Ok(AbsFun::Tuple(Vec::decode(d)?)),
            b => Err(DecodeError(format!("invalid AbsFun tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for Judgment {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Judgment::WVal {
                ctx,
                pre,
                f,
                abs,
                conc,
            } => {
                e.u8(0);
                ctx.encode(e);
                pre.encode(e);
                f.encode(e);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::WStmt {
                ctx,
                rx,
                ex,
                abs,
                conc,
            } => {
                e.u8(1);
                ctx.encode(e);
                rx.encode(e);
                ex.encode(e);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::HVal { pre, abs, conc } => {
                e.u8(2);
                pre.encode(e);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::HUpd { pre, abs, conc } => {
                e.u8(3);
                pre.encode(e);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::HStmt { abs, conc } => {
                e.u8(4);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::L1 { prog, simpl } => {
                e.u8(5);
                prog.encode(e);
                simpl.encode(e);
            }
            Judgment::Refines { abs, conc } => {
                e.u8(6);
                abs.encode(e);
                conc.encode(e);
            }
            Judgment::AbsGuard { hyp, kind, guard } => {
                e.u8(7);
                hyp.encode(e);
                kind.encode(e);
                guard.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(Judgment::WVal {
                ctx: Codec::decode(d)?,
                pre: Codec::decode(d)?,
                f: Codec::decode(d)?,
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            1 => Ok(Judgment::WStmt {
                ctx: Codec::decode(d)?,
                rx: Codec::decode(d)?,
                ex: Codec::decode(d)?,
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            2 => Ok(Judgment::HVal {
                pre: Codec::decode(d)?,
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            3 => Ok(Judgment::HUpd {
                pre: Codec::decode(d)?,
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            4 => Ok(Judgment::HStmt {
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            5 => Ok(Judgment::L1 {
                prog: Codec::decode(d)?,
                simpl: Codec::decode(d)?,
            }),
            6 => Ok(Judgment::Refines {
                abs: Codec::decode(d)?,
                conc: Codec::decode(d)?,
            }),
            7 => Ok(Judgment::AbsGuard {
                hyp: Codec::decode(d)?,
                kind: Codec::decode(d)?,
                guard: Codec::decode(d)?,
            }),
            b => Err(DecodeError(format!("invalid Judgment tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for CheckCtx {
    fn encode(&self, e: &mut Encoder) {
        self.tenv.encode(e);
        self.fn_abs.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CheckCtx {
            tenv: Codec::decode(d)?,
            fn_abs: Codec::decode(d)?,
        })
    }
}

/// Store-only theorem codec (`persist` feature): derivations are written
/// as a DAG — premise slices shared between parents (`Arc<[Thm]>` clones)
/// are encoded once and back-referenced — and **rebuilt without
/// re-validation** on decode. Trust rests on the store's per-entry
/// integrity digest; replay through `kernel::check` (or warm-start's
/// preloaded replay digests) still covers the result. The adversarial
/// path is `kernel::cert`, whose reconstruction validates every node.
#[cfg(feature = "persist")]
impl Codec for Thm {
    fn encode(&self, e: &mut Encoder) {
        let key = self as *const Thm as usize;
        if let Some(id) = e.backref::<Thm>(key) {
            e.u8(1);
            e.varint(id);
            return;
        }
        e.u8(0);
        self.judgment().encode(e);
        self.rule().encode(e);
        self.side().encode(e);
        e.varint(self.premises().len() as u64);
        for p in self.premises() {
            p.encode(e);
        }
        e.define::<Thm>(key);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            1 => {
                let id = d.varint()?;
                d.shared_get::<Thm>(id)
            }
            0 => {
                d.enter()?;
                let body = (|| {
                    let judgment = Judgment::decode(d)?;
                    let rule = Rule::decode(d)?;
                    let side = Side::decode(d)?;
                    let n = d.seq_len()?;
                    let mut premises = Vec::with_capacity(n);
                    for _ in 0..n {
                        premises.push(Thm::decode(d)?);
                    }
                    Ok(Thm::from_persisted(rule, premises, judgment, side))
                })();
                d.exit();
                let t: Thm = body?;
                d.shared_push(t.clone());
                Ok(t)
            }
            b => Err(DecodeError(format!("invalid Thm tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::codec::{decode_from_slice, encode_to_vec};
    use ir::expr::Expr;

    #[test]
    fn rule_table_is_total_and_injective() {
        for (i, r) in RULES.iter().enumerate() {
            let bytes = encode_to_vec(r);
            assert_eq!(bytes, vec![i as u8]);
            assert_eq!(decode_from_slice::<Rule>(&bytes).unwrap(), *r);
        }
        assert!(decode_from_slice::<Rule>(&[RULES.len() as u8]).is_err());
    }

    #[test]
    fn side_and_absfun_round_trip() {
        for s in [
            Side::None,
            Side::Tested {
                trials: 80,
                seed: 2014,
            },
            Side::SampledWVal {
                vars: [("x".to_owned(), ir::ty::Ty::U32)].into_iter().collect(),
                trials: 64,
                seed: 7,
            },
        ] {
            let bytes = encode_to_vec(&s);
            assert_eq!(decode_from_slice::<Side>(&bytes).unwrap(), s);
        }
        let f = AbsFun::Tuple(vec![AbsFun::Unat, AbsFun::Id, AbsFun::Sint]);
        let bytes = encode_to_vec(&f);
        assert_eq!(decode_from_slice::<AbsFun>(&bytes).unwrap(), f);
    }

    #[cfg(feature = "persist")]
    #[test]
    fn thm_round_trips_with_dag_sharing() {
        use crate::thm::{CheckCtx, Thm};
        let cx = CheckCtx::default();
        let leaf = || {
            crate::rules::word::w_lit(
                &cx,
                &Default::default(),
                AbsFun::Unat,
                &ir::value::Value::u32(5),
            )
            .expect("w_lit")
        };
        let hval = || crate::Judgment::HVal {
            pre: ir::expr::Expr::tt(),
            abs: ir::expr::Expr::var("a"),
            conc: ir::expr::Expr::var("a"),
        };
        let mid = |l: Thm| Thm::from_persisted(Rule::WIdCong, vec![l], hval(), Side::None);
        let top = |a: Thm, b: Thm| {
            Thm::from_persisted(Rule::WIdCong, vec![a, b], hval(), Side::None)
        };
        // Cloning a mid shares its premises Arc, so the leaf below it is
        // written once; structurally equal but unshared mids are not.
        let shared_mid = mid(leaf());
        let t = top(shared_mid.clone(), shared_mid);
        let bytes = encode_to_vec(&t);
        let unshared = encode_to_vec(&top(mid(leaf()), mid(leaf())));
        assert!(
            bytes.len() < unshared.len(),
            "shared sub-derivation not deduplicated ({} vs {})",
            bytes.len(),
            unshared.len()
        );
        let back: Thm = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, t);
        assert_eq!(back.proof_size(), t.proof_size());
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x81;
            let _ = decode_from_slice::<Thm>(&m);
            let _ = decode_from_slice::<Thm>(&bytes[..i]);
        }
    }

    #[test]
    fn judgment_round_trips() {
        let j = Judgment::AbsGuard {
            hyp: Expr::binop(ir::expr::BinOp::Le, Expr::var("x"), Expr::nat(10u64)),
            kind: ir::guard::GuardKind::UnsignedOverflow,
            guard: Expr::binop(ir::expr::BinOp::Le, Expr::var("x"), Expr::nat(20u64)),
        };
        let bytes = encode_to_vec(&j);
        assert_eq!(decode_from_slice::<Judgment>(&bytes).unwrap(), j);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x11;
            let _ = decode_from_slice::<Judgment>(&m);
        }
    }
}
