//! Kernel rule tests: constructing derivations, replaying them through the
//! checker, rejecting bogus applications, and semantically sampling the
//! produced judgments (defence in depth for the rule set).

use std::collections::BTreeMap;

use ir::expr::{BinOp, CastKind, Expr};
use ir::guard::GuardKind;
use ir::ty::{Ty, Width};
use ir::value::Value;
use kernel::rules::{heap, refine, word};
use kernel::semantics::sample_wval;
use kernel::{check, AbsFun, CheckCtx, Judgment, Thm};
use monadic::Prog;

fn ctx_with(vars: &[(&str, AbsFun)]) -> BTreeMap<String, AbsFun> {
    vars.iter()
        .map(|(n, f)| ((*n).to_owned(), f.clone()))
        .collect()
}

fn var_tys(vars: &[(&str, Ty)]) -> BTreeMap<String, Ty> {
    vars.iter()
        .map(|(n, t)| ((*n).to_owned(), t.clone()))
        .collect()
}

/// Builds the paper's running example derivation (Sec 3.3):
/// `return ((l +w r) divw 2)` abstracts to
/// `do guard (l + r ≤ UINT_MAX); return ((l + r) div 2) od`.
fn midpoint_derivation(cx: &CheckCtx) -> Thm {
    let vctx = ctx_with(&[("l", AbsFun::Unat), ("r", AbsFun::Unat)]);
    let l = word::w_var(cx, &vctx, "l").unwrap();
    let r = word::w_var(cx, &vctx, "r").unwrap();
    let sum = word::w_arith(cx, kernel::Rule::WSum, Width::W32, l, r).unwrap();
    let two = word::w_lit(cx, &vctx, AbsFun::Unat, &Value::u32(2)).unwrap();
    let div = word::w_arith(cx, kernel::Rule::WDiv, Width::W32, sum, two).unwrap();
    word::ws_value_stmt(cx, kernel::Rule::WsRet, AbsFun::Id, div).unwrap()
}

#[test]
fn midpoint_abstraction_matches_paper() {
    let cx = CheckCtx::default();
    let thm = midpoint_derivation(&cx);
    let Judgment::WStmt { rx, abs, conc, .. } = thm.judgment() else {
        panic!("expected abs_w_stmt");
    };
    assert_eq!(*rx, AbsFun::Unat);

    // Concrete: return ((l +w r) divw 2)
    let expect_conc = Prog::Return(Expr::binop(
        BinOp::Div,
        Expr::binop(BinOp::Add, Expr::var("l"), Expr::var("r")),
        Expr::u32(2),
    ));
    assert_eq!(*conc, expect_conc);

    // Abstract: do guard (l + r ≤ UINT_MAX); return ((l + r) div 2) od
    let Prog::Bind(g, _, ret) = abs else {
        panic!("abstract program must start with the overflow guard: {abs}");
    };
    let Prog::Guard(GuardKind::WordAbs, pre) = &**g else {
        panic!("expected a word-abstraction guard");
    };
    assert_eq!(
        pre.to_string(),
        "l + r ≤ 4294967295",
        "the paper's UINT_MAX obligation"
    );
    assert_eq!(
        ret.to_string(),
        "return ((l + r) div 2)",
        "ideal-arithmetic return"
    );

    // The derivation replays through the independent checker.
    check(&thm, &cx).unwrap();
    assert!(thm.proof_size() >= 6, "non-trivial derivation");
}

#[test]
fn arithmetic_rules_are_semantically_sound() {
    // Sample every unsigned/signed arithmetic rule's conclusion.
    let cx = CheckCtx::default();
    let u_ctx = ctx_with(&[("a", AbsFun::Unat), ("b", AbsFun::Unat)]);
    let s_ctx = ctx_with(&[("a", AbsFun::Sint), ("b", AbsFun::Sint)]);
    let u_tys = var_tys(&[("a", Ty::U32), ("b", Ty::U32)]);
    let s_tys = var_tys(&[("a", Ty::I32), ("b", Ty::I32)]);

    use kernel::Rule::*;
    for rule in [WSum, WSub, WMul, WDiv, WMod] {
        let a = word::w_var(&cx, &u_ctx, "a").unwrap();
        let b = word::w_var(&cx, &u_ctx, "b").unwrap();
        let t = word::w_arith(&cx, rule, Width::W32, a, b).unwrap();
        sample_wval(t.judgment(), &u_tys, 500, 42)
            .unwrap_or_else(|e| panic!("{rule:?}: {e}"));
    }
    for rule in [SSum, SSub, SMul, SDiv, SMod] {
        let a = word::w_var(&cx, &s_ctx, "a").unwrap();
        let b = word::w_var(&cx, &s_ctx, "b").unwrap();
        let t = word::w_arith(&cx, rule, Width::W32, a, b).unwrap();
        sample_wval(t.judgment(), &s_tys, 500, 43)
            .unwrap_or_else(|e| panic!("{rule:?}: {e}"));
    }
    // Comparisons.
    for op in [BinOp::Lt, BinOp::Le, BinOp::Eq, BinOp::Ne] {
        let a = word::w_var(&cx, &u_ctx, "a").unwrap();
        let b = word::w_var(&cx, &u_ctx, "b").unwrap();
        let t = word::w_cmp(&cx, op, a, b).unwrap();
        sample_wval(t.judgment(), &u_tys, 500, 44).unwrap();
    }
    // Negation.
    let a = word::w_var(&cx, &s_ctx, "a").unwrap();
    let t = word::s_neg(&cx, Width::W32, a).unwrap();
    sample_wval(t.judgment(), &s_tys, 500, 45).unwrap();
}

#[test]
fn reconcretization_round_trips() {
    let cx = CheckCtx::default();
    let vctx = ctx_with(&[("x", AbsFun::Unat)]);
    let x = word::w_var(&cx, &vctx, "x").unwrap();
    let t = word::w_reconcretize(&cx, Width::W32, ir::ty::Signedness::Unsigned, x).unwrap();
    let Judgment::WVal { f, abs, .. } = t.judgment() else {
        panic!()
    };
    assert_eq!(*f, AbsFun::Id);
    assert_eq!(
        *abs,
        Expr::cast(CastKind::OfNat(Width::W32, ir::ty::Signedness::Unsigned), Expr::var("x"))
    );
    sample_wval(t.judgment(), &var_tys(&[("x", Ty::U32)]), 300, 7).unwrap();
    check(&t, &cx).unwrap();
}

#[test]
fn kernel_rejects_bogus_applications() {
    let cx = CheckCtx::default();
    let vctx = ctx_with(&[("x", AbsFun::Unat)]);
    // Variable not in context.
    assert!(word::w_var(&cx, &BTreeMap::new(), "x")
        .map(|t| matches!(
            t.judgment(),
            Judgment::WVal { f: AbsFun::Id, .. }
        ))
        .unwrap_or(false));
    // Mixing signed and unsigned premises in WSum.
    let sctx = ctx_with(&[("x", AbsFun::Unat), ("y", AbsFun::Sint)]);
    let x = word::w_var(&cx, &sctx, "x").unwrap();
    let y = word::w_var(&cx, &sctx, "y").unwrap();
    assert!(word::w_arith(&cx, kernel::Rule::WSum, Width::W32, x, y).is_err());
    // SNeg on an unsigned premise.
    let x = word::w_var(&cx, &vctx, "x").unwrap();
    assert!(word::s_neg(&cx, Width::W32, x).is_err());
}

#[test]
fn custom_sampled_rule_overflow_idiom() {
    // Sec 3.3's example: `UINT_MAX < x + y` abstracts `x' +w y' <w x'`
    // (the unsigned-overflow test idiom).
    let cx = CheckCtx::default();
    let vctx = ctx_with(&[("x", AbsFun::Unat), ("y", AbsFun::Unat)]);
    let j = Judgment::WVal {
        ctx: vctx,
        pre: Expr::tt(),
        f: AbsFun::Id,
        abs: Expr::binop(
            BinOp::Lt,
            Expr::nat(u64::from(u32::MAX)),
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y")),
        ),
        conc: Expr::binop(
            BinOp::Lt,
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y")),
            Expr::var("x"),
        ),
    };
    let vars = var_tys(&[("x", Ty::U32), ("y", Ty::U32)]);
    let t = word::w_custom_sampled(&cx, j, vars.clone(), 2000, 99).unwrap();
    check(&t, &cx).unwrap();

    // A bogus custom rule is rejected by sampling.
    let bogus = Judgment::WVal {
        ctx: ctx_with(&[("x", AbsFun::Unat)]),
        pre: Expr::tt(),
        f: AbsFun::Id,
        abs: Expr::tt(),
        conc: Expr::binop(BinOp::Lt, Expr::var("x"), Expr::u32(5)),
    };
    assert!(word::w_custom_sampled(&cx, bogus, var_tys(&[("x", Ty::U32)]), 2000, 99).is_err());
}

#[test]
fn heap_rules_build_swap_guard() {
    // is_valid introduction for a heap read through a pointer variable.
    let mut cx = CheckCtx::default();
    cx.tenv
        .define_struct(
            "node",
            vec![
                ("next".into(), Ty::Struct("node".into()).ptr_to()),
                ("data".into(), Ty::U32),
            ],
        )
        .unwrap();

    let p = heap::h_leaf(&cx, &Expr::var("a")).unwrap();
    let read = heap::h_read(&cx, &Ty::U32, p).unwrap();
    let Judgment::HVal { pre, abs, conc } = read.judgment() else {
        panic!()
    };
    assert_eq!(*abs, Expr::read_heap(Ty::U32, Expr::var("a")));
    assert_eq!(*conc, Expr::read_heap(Ty::U32, Expr::var("a")));
    assert_eq!(*pre, Expr::is_valid(Ty::U32, Expr::var("a")));
    check(&read, &cx).unwrap();

    // Field read p->data via offset 4 becomes a field select.
    let p = heap::h_leaf(&cx, &Expr::var("p")).unwrap();
    let fread = heap::h_read_field(&cx, "node", &Ty::U32, 4, p).unwrap();
    let Judgment::HVal { abs, conc, .. } = fread.judgment() else {
        panic!()
    };
    assert_eq!(
        abs.to_string(),
        "s[p]·node_C→data",
        "field select on the struct heap"
    );
    assert!(conc.to_string().contains("+p"), "offset read at concrete level");
    check(&fread, &cx).unwrap();

    // Wrong offset is rejected.
    let p = heap::h_leaf(&cx, &Expr::var("p")).unwrap();
    assert!(heap::h_read_field(&cx, "node", &Ty::U32, 2, p).is_err());
}

#[test]
fn heap_guard_becomes_is_valid() {
    let cx = CheckCtx::default();
    let p = heap::h_leaf(&cx, &Expr::var("a")).unwrap();
    let g = heap::h_guard_ptr(&cx, &Ty::U32, p).unwrap();
    let stmt = heap::hs_guard(&cx, GuardKind::PtrValid, g).unwrap();
    let Judgment::HStmt { abs, conc } = stmt.judgment() else {
        panic!()
    };
    // Concrete: guard (ptr_aligned a ∧ 0 ∉ {a ..+ 4}); abstract: guard (is_valid a).
    assert!(conc.to_string().contains("ptr_aligned"));
    assert!(abs.to_string().contains("is_valid_w32"));
    assert!(!abs.to_string().contains("ptr_aligned"));
    check(&stmt, &cx).unwrap();
}

#[test]
fn l1_rules_translate_table1() {
    let cx = CheckCtx::default();
    use simpl::stmt::SimplStmt;

    let skip = refine::l1(&cx, &SimplStmt::Skip, vec![]).unwrap();
    let Judgment::L1 { prog, .. } = skip.judgment() else {
        panic!()
    };
    assert_eq!(*prog, Prog::skip());

    let basic = SimplStmt::Basic(ir::update::Update::Local("x".into(), Expr::u32(1)));
    let b = refine::l1(&cx, &basic, vec![]).unwrap();
    let Judgment::L1 { prog, .. } = b.judgment() else {
        panic!()
    };
    assert!(matches!(prog, Prog::Modify(_)));

    let seq = SimplStmt::Seq(Box::new(SimplStmt::Skip), Box::new(basic.clone()));
    let s = refine::l1(&cx, &seq, vec![skip.clone(), b.clone()]).unwrap();
    check(&s, &cx).unwrap();

    // Premises in the wrong order are rejected.
    assert!(refine::l1(&cx, &seq, vec![b, skip]).is_err());
}

#[test]
fn guard_discharge_uses_simplifier() {
    let cx = CheckCtx::default();
    // guard (4 < 32) is simplifier-provable.
    let g = Prog::Guard(
        GuardKind::ShiftBound,
        Expr::binop(BinOp::Lt, Expr::u32(4), Expr::u32(32)),
    );
    let t = refine::discharge_guard(&cx, &g).unwrap();
    check(&t, &cx).unwrap();

    // guard (x < 32) is not.
    let g = Prog::Guard(
        GuardKind::ShiftBound,
        Expr::binop(BinOp::Lt, Expr::var("x"), Expr::u32(32)),
    );
    assert!(refine::discharge_guard(&cx, &g).is_err());
}

#[test]
fn exec_tested_records_evidence() {
    let cx = CheckCtx::default();
    let p = Prog::ret(Expr::u32(1));
    let q = Prog::bind(Prog::skip(), "_", Prog::ret(Expr::u32(1)));
    let ctx = monadic::ProgramCtx::default();
    let t = refine::exec_tested(&cx, &p, &q, 100, 7, || {
        kernel::semantics::test_refines(&ctx, &p, &q, 100, 7, |_| {
            (ir::eval::Env::new(), ir::state::State::conc_empty())
        })
    })
    .unwrap();
    check(&t, &cx).unwrap();
    assert!(matches!(
        t.side(),
        kernel::thm::Side::Tested { trials: 100, seed: 7 }
    ));

    // A wrong rewrite is caught by the differential test.
    let bad = Prog::ret(Expr::u32(2));
    assert!(refine::exec_tested(&cx, &bad, &q, 100, 7, || {
        kernel::semantics::test_refines(&ctx, &bad, &q, 100, 7, |_| {
            (ir::eval::Env::new(), ir::state::State::conc_empty())
        })
    })
    .is_err());
}

#[test]
fn congruence_rules_compose() {
    let cx = CheckCtx::default();
    let a = refine::refines_refl(&cx, &Prog::ret(Expr::u32(1))).unwrap();
    let b = refine::refines_refl(&cx, &Prog::ret(Expr::var("v"))).unwrap();
    let t = refine::bind_cong(&cx, "v", a, b).unwrap();
    check(&t, &cx).unwrap();
    let Judgment::Refines { abs, conc } = t.judgment() else {
        panic!()
    };
    assert_eq!(abs, conc);
}
