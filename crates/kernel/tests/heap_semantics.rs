//! Semantic sampling of the heap-abstraction rules: each `abs_h_val` /
//! `abs_h_modifies` conclusion produced by the rules is validated against
//! its executable meaning on random concrete states and their liftings —
//! the defence-in-depth counterpart of the word-rule sampling.

use ir::eval::{eval, Env};
use ir::expr::{BinOp, Expr};
use ir::state::State;
use ir::ty::{Ty, TypeEnv};
use ir::value::{Ptr, Value};
use kernel::rules::heap as hr;
use kernel::{CheckCtx, Judgment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn node_tenv() -> TypeEnv {
    let mut tenv = TypeEnv::new();
    tenv.define_struct(
        "node",
        vec![
            ("next".into(), Ty::Struct("node".into()).ptr_to()),
            ("data".into(), Ty::U32),
        ],
    )
    .unwrap();
    tenv
}

/// A random concrete state with some u32 cells and some nodes.
fn random_state(rng: &mut StdRng, tenv: &TypeEnv) -> ir::state::ConcState {
    let mut st = ir::state::ConcState::default();
    for k in 0..4u64 {
        st.mem
            .alloc(0x100 + k * 0x10, &Value::u32(rng.gen_range(0..100)), tenv)
            .unwrap();
    }
    for k in 0..3u64 {
        let node = Value::Struct(
            "node".into(),
            vec![
                (
                    "next".into(),
                    Value::Ptr(Ptr::new(
                        if rng.gen_bool(0.3) { 0 } else { 0x1000 + rng.gen_range(0..3u64) * 0x10 },
                        Ty::Struct("node".into()),
                    )),
                ),
                ("data".into(), Value::u32(rng.gen_range(0..100))),
            ],
        );
        st.mem.alloc(0x1000 + k * 0x10, &node, tenv).unwrap();
    }
    st
}

/// Samples the executable meaning of an `abs_h_val` judgment:
/// whenever the precondition holds on the lifted state,
/// `conc(s) = abs(st(s))`.
fn sample_hval(j: &Judgment, tenv: &TypeEnv, heap_types: &[Ty], trials: u32, seed: u64) {
    let Judgment::HVal { pre, abs, conc } = j else {
        panic!("expected abs_h_val");
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checked = 0;
    for _ in 0..trials {
        let cs = random_state(&mut rng, tenv);
        let lifted = heapmodel::lift_state(&cs, tenv, heap_types);
        let mut env = Env::with_tenv(tenv.clone());
        // Random pointer variable bindings.
        for v in ["p", "q"] {
            let addr = match rng.gen_range(0..4) {
                0 => 0,
                1 => 0x100 + rng.gen_range(0..4u64) * 0x10,
                2 => 0x1000 + rng.gen_range(0..3u64) * 0x10,
                _ => rng.gen_range(0..0x2000u64),
            };
            let ty = if rng.gen_bool(0.5) {
                Ty::U32
            } else {
                Ty::Struct("node".into())
            };
            env.bind_mut(v, Value::Ptr(Ptr::new(addr, ty)));
        }
        let abs_state = State::Abs(lifted);
        let Ok(Value::Bool(pre_holds)) = eval(pre, &env, &abs_state) else {
            continue;
        };
        if !pre_holds {
            continue;
        }
        let cv = eval(conc, &env, &State::Conc(cs)).expect("concrete evaluates");
        let av = eval(abs, &env, &abs_state).expect("abstract evaluates");
        assert_eq!(cv, av, "abs_h_val violated for {j:?}");
        checked += 1;
    }
    assert!(checked > 0, "no decidable sample for {j:?}");
}

#[test]
fn h_read_semantics() {
    let tenv = node_tenv();
    let cx = CheckCtx {
        tenv: tenv.clone(),
        ..CheckCtx::default()
    };
    let p = hr::h_leaf(&cx, &Expr::var("p")).unwrap();
    let read = hr::h_read(&cx, &Ty::U32, p).unwrap();
    sample_hval(read.judgment(), &tenv, &[Ty::U32, Ty::Struct("node".into())], 400, 1);
}

#[test]
fn h_read_field_semantics() {
    let tenv = node_tenv();
    let cx = CheckCtx {
        tenv: tenv.clone(),
        ..CheckCtx::default()
    };
    for (field, fty, off) in [("next", Ty::Struct("node".into()).ptr_to(), 0), ("data", Ty::U32, 4)]
    {
        let p = hr::h_leaf(&cx, &Expr::var("p")).unwrap();
        let read = hr::h_read_field(&cx, "node", &fty, off, p).unwrap();
        sample_hval(
            read.judgment(),
            &tenv,
            &[Ty::U32, Ty::Struct("node".into())],
            400,
            2,
        );
        let _ = field;
    }
}

#[test]
fn h_guard_ptr_semantics() {
    let tenv = node_tenv();
    let cx = CheckCtx {
        tenv: tenv.clone(),
        ..CheckCtx::default()
    };
    let p = hr::h_leaf(&cx, &Expr::var("p")).unwrap();
    let g = hr::h_guard_ptr(&cx, &Ty::U32, p).unwrap();
    // conc = c_guard, abs = True, pre = is_valid: whenever is_valid holds
    // on the lifted heap, the concrete pointer conditions hold.
    sample_hval(g.judgment(), &tenv, &[Ty::U32, Ty::Struct("node".into())], 400, 3);
}

#[test]
fn h_val_weaken_semantics() {
    let tenv = node_tenv();
    let cx = CheckCtx {
        tenv: tenv.clone(),
        ..CheckCtx::default()
    };
    // (p ≠ NULL) ∧ c_guard(p) with the weakened combination.
    let null_test = hr::h_cong(
        &cx,
        &Expr::binop(BinOp::Ne, Expr::var("p"), Expr::null(Ty::U32)),
        vec![
            hr::h_leaf(&cx, &Expr::var("p")).unwrap(),
            hr::h_leaf(&cx, &Expr::null(Ty::U32)).unwrap(),
        ],
    )
    .unwrap();
    let pv = hr::h_leaf(&cx, &Expr::var("p")).unwrap();
    let guard = hr::h_guard_ptr(&cx, &Ty::U32, pv).unwrap();
    let combined = hr::h_val_weaken(&cx, BinOp::And, null_test, guard).unwrap();
    sample_hval(
        combined.judgment(),
        &tenv,
        &[Ty::U32, Ty::Struct("node".into())],
        400,
        4,
    );
}

#[test]
fn h_upd_semantics() {
    // abs_h_modifies: st (conc-update s) = abs-update (st s), under pre.
    let tenv = node_tenv();
    let cx = CheckCtx {
        tenv: tenv.clone(),
        ..CheckCtx::default()
    };
    let p = hr::h_leaf(&cx, &Expr::var("p")).unwrap();
    let v = hr::h_leaf(&cx, &Expr::var("v")).unwrap();
    let upd = hr::h_upd(&cx, &Ty::U32, p, v).unwrap();
    let Judgment::HUpd { pre, abs, conc } = upd.judgment() else {
        panic!()
    };
    let heap_types = [Ty::U32, Ty::Struct("node".into())];
    let mut rng = StdRng::seed_from_u64(9);
    let mut checked = 0;
    for _ in 0..400 {
        let cs = random_state(&mut rng, &tenv);
        let lifted = heapmodel::lift_state(&cs, &tenv, &heap_types);
        let mut env = Env::with_tenv(tenv.clone());
        let addr = if rng.gen_bool(0.7) {
            0x100 + rng.gen_range(0..4u64) * 0x10
        } else {
            rng.gen_range(0..0x200u64)
        };
        env.bind_mut("p", Value::Ptr(Ptr::new(addr, Ty::U32)));
        env.bind_mut("v", Value::u32(rng.gen_range(0..1000)));
        let abs_state = State::Abs(lifted);
        let Ok(Value::Bool(true)) = eval(pre, &env, &abs_state) else {
            continue;
        };
        // Apply both updates and compare through lifting.
        let mut conc_side = State::Conc(cs);
        conc.apply(&env, &mut conc_side).unwrap();
        let State::Conc(cf) = conc_side else { unreachable!() };
        let lifted_after = heapmodel::lift_state(&cf, &tenv, &heap_types);
        let mut abs_side = abs_state.clone();
        abs.apply(&env, &mut abs_side).unwrap();
        let State::Abs(af) = abs_side else { unreachable!() };
        assert_eq!(lifted_after.heaps, af.heaps);
        checked += 1;
    }
    assert!(checked > 0);
}
