//! Intraprocedural lints over the typed C AST.
//!
//! These run where byte-offset spans are still available (the typed AST
//! mirrors the source shape), so every lint points at the offending
//! statement. All three passes are conservative in the lint direction:
//! they only report what is certainly suspicious on the AST alone —
//!
//! * **dead store** — an assignment (or initialiser) to a local whose
//!   value can never be read afterwards, computed by backward liveness;
//!   stores whose right-hand side calls a function are exempt (the call is
//!   the point of the statement).
//! * **unreachable code** — statements after a `return`/`break`/`continue`
//!   (or after an `if` both of whose branches terminate abruptly), and
//!   branches selected away by a constant condition.
//! * **use before initialisation** — a read of a local declared without an
//!   initialiser before any assignment definitely reaches it.
//!
//! The fourth lint kind, [`LintKind::DefiniteOverflow`], is produced by
//! the flow analysis in the crate root (a guard proved *false*) and only
//! rendered here.

use std::collections::BTreeSet;

use cparser::typecheck::{TExpr, TExprKind, TFunDef, TStmt};
use ir::diag::Span;

/// What a lint is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// A store to a local that is never subsequently read.
    DeadStore,
    /// A statement or branch that can never execute.
    UnreachableCode,
    /// A local read before any initialisation reaches it.
    UseBeforeInit,
    /// A guard the abstract interpreter proved false on every reachable
    /// run: the function definitely faults (e.g. signed overflow).
    DefiniteOverflow,
}

impl LintKind {
    /// Short machine-readable name, used in rendered lint lines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintKind::DeadStore => "dead-store",
            LintKind::UnreachableCode => "unreachable",
            LintKind::UseBeforeInit => "use-before-init",
            LintKind::DefiniteOverflow => "definite-overflow",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Lint {
    /// Classification.
    pub kind: LintKind,
    /// Human-readable description.
    pub message: String,
    /// Statement-level source position.
    pub span: Span,
}

/// Runs all AST lints over one function. Results are in a deterministic
/// order: by pass, then by traversal order within the pass.
#[must_use]
pub fn lint_fn(f: &TFunDef) -> Vec<Lint> {
    let mut out = Vec::new();
    unreachable_pass(&f.body, &mut out);
    use_before_init_pass(f, &mut out);
    dead_store_pass(f, &mut out);
    out
}

// ---- expression helpers ---------------------------------------------------

/// Collects local-variable reads of an expression into `acc`.
fn expr_reads(e: &TExpr, acc: &mut BTreeSet<String>) {
    match &e.kind {
        TExprKind::Local(n) => {
            acc.insert(n.clone());
        }
        TExprKind::IntLit(_) | TExprKind::Null | TExprKind::Global(_) => {}
        TExprKind::Unary(_, a) | TExprKind::Member(a, _) | TExprKind::Cast(_, a) => {
            expr_reads(a, acc);
        }
        TExprKind::Binary(_, a, b) | TExprKind::Index(a, b) => {
            expr_reads(a, acc);
            expr_reads(b, acc);
        }
        TExprKind::Call(_, args) => {
            for a in args {
                expr_reads(a, acc);
            }
        }
        TExprKind::Cond(c, t, e) => {
            expr_reads(c, acc);
            expr_reads(t, acc);
            expr_reads(e, acc);
        }
    }
}

fn reads_of(e: &TExpr) -> BTreeSet<String> {
    let mut s = BTreeSet::new();
    expr_reads(e, &mut s);
    s
}

/// Constant-evaluates a condition, when it is built from literals alone.
fn const_cond(e: &TExpr) -> Option<bool> {
    fn cv(e: &TExpr) -> Option<i128> {
        match &e.kind {
            TExprKind::IntLit(v) => Some(i128::from(*v)),
            TExprKind::Unary(cparser::ast::CUnOp::Neg, a) => Some(-cv(a)?),
            TExprKind::Unary(cparser::ast::CUnOp::Not, a) => Some(i128::from(cv(a)? == 0)),
            TExprKind::Cast(_, a) => cv(a),
            _ => None,
        }
    }
    use cparser::ast::CBinOp;
    match &e.kind {
        TExprKind::Binary(op, a, b) => {
            let (x, y) = (cv(a)?, cv(b)?);
            Some(match op {
                CBinOp::Eq => x == y,
                CBinOp::Ne => x != y,
                CBinOp::Lt => x < y,
                CBinOp::Le => x <= y,
                CBinOp::Gt => x > y,
                CBinOp::Ge => x >= y,
                CBinOp::LAnd => x != 0 && y != 0,
                CBinOp::LOr => x != 0 || y != 0,
                _ => return None,
            })
        }
        _ => cv(e).map(|v| v != 0),
    }
}

/// The first span inside a statement sequence (descending into blocks).
fn first_span(stmts: &[TStmt]) -> Option<Span> {
    for s in stmts {
        match s {
            TStmt::Decl { span, .. }
            | TStmt::Assign { span, .. }
            | TStmt::ExprCall(_, span)
            | TStmt::If { span, .. }
            | TStmt::While { span, .. }
            | TStmt::DoWhile { span, .. }
            | TStmt::Return(_, span) => return Some(*span),
            TStmt::Block(inner) => {
                if let Some(sp) = first_span(inner) {
                    return Some(sp);
                }
            }
            TStmt::Break(_) | TStmt::Continue(_) => {}
        }
    }
    None
}

// ---- unreachable code -----------------------------------------------------

/// Does this statement always leave the enclosing block abruptly?
fn terminates(s: &TStmt) -> bool {
    match s {
        TStmt::Return(..) | TStmt::Break(_) | TStmt::Continue(_) => true,
        TStmt::If {
            then_branch,
            else_branch,
            ..
        } => block_terminates(then_branch) && block_terminates(else_branch),
        TStmt::Block(inner) => block_terminates(inner),
        _ => false,
    }
}

fn block_terminates(stmts: &[TStmt]) -> bool {
    stmts.iter().any(terminates)
}

fn unreachable_pass(stmts: &[TStmt], out: &mut Vec<Lint>) {
    let mut dead = false;
    for s in stmts {
        if dead {
            if let Some(span) = first_span(std::slice::from_ref(s)) {
                out.push(Lint {
                    kind: LintKind::UnreachableCode,
                    message: "statement is unreachable".into(),
                    span,
                });
            }
            // One report per dead region.
            break;
        }
        match s {
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => match const_cond(cond) {
                Some(true) => {
                    unreachable_pass(then_branch, out);
                    if let Some(span) = first_span(else_branch) {
                        out.push(Lint {
                            kind: LintKind::UnreachableCode,
                            message: "branch is unreachable (condition is always true)".into(),
                            span,
                        });
                    }
                }
                Some(false) => {
                    if let Some(span) = first_span(then_branch) {
                        out.push(Lint {
                            kind: LintKind::UnreachableCode,
                            message: "branch is unreachable (condition is always false)".into(),
                            span,
                        });
                    }
                    unreachable_pass(else_branch, out);
                }
                None => {
                    unreachable_pass(then_branch, out);
                    unreachable_pass(else_branch, out);
                }
            },
            TStmt::While { cond, body, .. } => {
                if const_cond(cond) == Some(false) {
                    if let Some(span) = first_span(body) {
                        out.push(Lint {
                            kind: LintKind::UnreachableCode,
                            message: "loop body is unreachable (condition is always false)"
                                .into(),
                            span,
                        });
                    }
                } else {
                    unreachable_pass(body, out);
                }
            }
            TStmt::DoWhile { body, .. } => unreachable_pass(body, out),
            TStmt::Block(inner) => unreachable_pass(inner, out),
            _ => {}
        }
        if terminates(s) {
            dead = true;
        }
    }
}

// ---- use before initialisation --------------------------------------------

struct InitState {
    /// Locals declared without an initialiser and not yet assigned.
    uninit: BTreeSet<String>,
    /// Already reported (one lint per variable).
    reported: BTreeSet<String>,
}

fn check_reads(e: &TExpr, span: Span, st: &mut InitState, out: &mut Vec<Lint>) {
    for n in reads_of(e) {
        if st.uninit.contains(&n) && st.reported.insert(n.clone()) {
            out.push(Lint {
                kind: LintKind::UseBeforeInit,
                message: format!("`{n}` may be read before initialisation"),
                span,
            });
        }
    }
}

fn init_walk(stmts: &[TStmt], st: &mut InitState, out: &mut Vec<Lint>) {
    for s in stmts {
        match s {
            TStmt::Decl {
                name, init, span, ..
            } => {
                if let Some(e) = init {
                    check_reads(e, *span, st, out);
                    st.uninit.remove(name);
                } else {
                    st.uninit.insert(name.clone());
                }
            }
            TStmt::Assign { lhs, rhs, span } => {
                check_reads(rhs, *span, st, out);
                // Reads performed by the lvalue itself (pointer bases,
                // indices), excluding the stored-to local.
                if let TExprKind::Local(n) = &lhs.kind {
                    st.uninit.remove(n);
                } else if let TExprKind::Index(base, idx) = &lhs.kind {
                    // An element store reads the index; the functional
                    // update's read of the array itself is an encoding
                    // artefact, not a source-level read.
                    check_reads(idx, *span, st, out);
                    if let TExprKind::Local(n) = &base.kind {
                        st.uninit.remove(n);
                    }
                } else {
                    check_reads(lhs, *span, st, out);
                }
            }
            TStmt::ExprCall(e, span) => check_reads(e, *span, st, out),
            TStmt::Return(Some(e), span) => check_reads(e, *span, st, out),
            TStmt::Return(None, _) | TStmt::Break(_) | TStmt::Continue(_) => {}
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                check_reads(cond, *span, st, out);
                let saved = st.uninit.clone();
                init_walk(then_branch, st, out);
                let after_then = std::mem::replace(&mut st.uninit, saved);
                init_walk(else_branch, st, out);
                // Initialised-after = initialised on both paths, i.e.
                // still-uninitialised = union.
                st.uninit = st.uninit.union(&after_then).cloned().collect();
            }
            TStmt::While { cond, body, span } => {
                check_reads(cond, *span, st, out);
                let saved = st.uninit.clone();
                init_walk(body, st, out);
                // The body may not run.
                st.uninit = st.uninit.union(&saved).cloned().collect();
            }
            TStmt::DoWhile { body, cond, span } => {
                // The body runs at least once.
                init_walk(body, st, out);
                check_reads(cond, *span, st, out);
            }
            TStmt::Block(inner) => init_walk(inner, st, out),
        }
    }
}

fn use_before_init_pass(f: &TFunDef, out: &mut Vec<Lint>) {
    let mut st = InitState {
        uninit: BTreeSet::new(),
        reported: BTreeSet::new(),
    };
    init_walk(&f.body, &mut st, out);
}

// ---- dead stores ----------------------------------------------------------

/// Every local read anywhere inside `stmts` (used to close loop back
/// edges: a variable read anywhere in a loop body is live around it).
fn all_reads(stmts: &[TStmt], acc: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            TStmt::Decl { init, .. } => {
                if let Some(e) = init {
                    expr_reads(e, acc);
                }
            }
            TStmt::Assign { lhs, rhs, .. } => {
                expr_reads(rhs, acc);
                if let TExprKind::Local(_) = &lhs.kind {
                } else {
                    expr_reads(lhs, acc);
                }
            }
            TStmt::ExprCall(e, _) => expr_reads(e, acc),
            TStmt::Return(Some(e), _) => expr_reads(e, acc),
            TStmt::Return(None, _) | TStmt::Break(_) | TStmt::Continue(_) => {}
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                expr_reads(cond, acc);
                all_reads(then_branch, acc);
                all_reads(else_branch, acc);
            }
            TStmt::While { cond, body, .. } => {
                expr_reads(cond, acc);
                all_reads(body, acc);
            }
            TStmt::DoWhile { body, cond, .. } => {
                all_reads(body, acc);
                expr_reads(cond, acc);
            }
            TStmt::Block(inner) => all_reads(inner, acc),
        }
    }
}

/// Backward liveness over a statement list. `live` is the live-after set
/// on entry and is updated to the live-before set. Dead stores found on
/// the way are appended to `dead` (re-sorted by the caller).
fn live_walk(stmts: &[TStmt], live: &mut BTreeSet<String>, dead: &mut Vec<Lint>) {
    for s in stmts.iter().rev() {
        match s {
            TStmt::Decl {
                name, init, span, ..
            } => {
                if let Some(e) = init {
                    if !live.contains(name) && !e.has_call() && !is_trivial_init(e) {
                        dead.push(Lint {
                            kind: LintKind::DeadStore,
                            message: format!("value assigned to `{name}` is never read"),
                            span: *span,
                        });
                    }
                    live.remove(name);
                    expr_reads(e, live);
                } else {
                    live.remove(name);
                }
            }
            TStmt::Assign { lhs, rhs, span } => {
                if let TExprKind::Local(n) = &lhs.kind {
                    if !live.contains(n) && !rhs.has_call() {
                        dead.push(Lint {
                            kind: LintKind::DeadStore,
                            message: format!("value assigned to `{n}` is never read"),
                            span: *span,
                        });
                    }
                    live.remove(n);
                    expr_reads(rhs, live);
                } else {
                    // Heap / global stores are observable effects.
                    expr_reads(lhs, live);
                    expr_reads(rhs, live);
                }
            }
            TStmt::ExprCall(e, _) => expr_reads(e, live),
            TStmt::Return(Some(e), _) => expr_reads(e, live),
            TStmt::Return(None, _) | TStmt::Break(_) | TStmt::Continue(_) => {}
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut live_t = live.clone();
                live_walk(then_branch, &mut live_t, dead);
                live_walk(else_branch, live, dead);
                live.extend(live_t);
                expr_reads(cond, live);
            }
            TStmt::While { cond, body, .. } => {
                // Live around the back edge: everything read in the body.
                all_reads(body, live);
                expr_reads(cond, live);
                live_walk(body, live, dead);
                expr_reads(cond, live);
            }
            TStmt::DoWhile { body, cond, .. } => {
                all_reads(body, live);
                expr_reads(cond, live);
                live_walk(body, live, dead);
            }
            TStmt::Block(inner) => live_walk(inner, live, dead),
        }
    }
}

/// `int x = 0;`-style defensive initialisers are idiomatic; don't lint
/// them even when the first real store overwrites the value.
fn is_trivial_init(e: &TExpr) -> bool {
    matches!(e.kind, TExprKind::IntLit(0) | TExprKind::Null)
}

fn dead_store_pass(f: &TFunDef, out: &mut Vec<Lint>) {
    let mut live = BTreeSet::new();
    let mut dead = Vec::new();
    live_walk(&f.body, &mut live, &mut dead);
    // Backward traversal finds stores last-first; report in source order.
    dead.sort_by_key(|l| (l.span.offset, l.message.clone()));
    out.extend(dead);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<(LintKind, u32)> {
        let tp = cparser::parse_and_check(src).expect("frontend accepts");
        tp.functions
            .iter()
            .flat_map(lint_fn)
            .map(|l| (l.kind, l.span.line))
            .collect()
    }

    #[test]
    fn detects_dead_store() {
        let ls = lints_of(
            "int f(int a) {\n    int x = a + 1;\n    x = 2;\n    return x;\n}\n",
        );
        assert_eq!(ls, vec![(LintKind::DeadStore, 2)]);
    }

    #[test]
    fn live_through_loop_back_edge_is_not_dead() {
        let ls = lints_of(
            "unsigned f(unsigned n) {\n    unsigned s = 1u;\n    unsigned i = 0u;\n    while (i < n) {\n        s = s + i;\n        i = i + 1u;\n    }\n    return s;\n}\n",
        );
        assert!(ls.is_empty(), "{ls:?}");
    }

    #[test]
    fn detects_unreachable_after_return() {
        let ls = lints_of("int f(int a) {\n    return a;\n    a = 2;\n    return a;\n}\n");
        assert!(
            ls.contains(&(LintKind::UnreachableCode, 3)),
            "{ls:?}"
        );
    }

    #[test]
    fn detects_constant_branch() {
        let ls = lints_of(
            "int f(int a) {\n    if (0) {\n        a = 1;\n    }\n    return a;\n}\n",
        );
        assert_eq!(ls, vec![(LintKind::UnreachableCode, 3)]);
    }

    #[test]
    fn detects_use_before_init() {
        let ls = lints_of("int f(int a) {\n    int x;\n    return x + a;\n}\n");
        assert_eq!(ls, vec![(LintKind::UseBeforeInit, 3)]);
    }

    #[test]
    fn init_on_both_branches_is_initialised() {
        let ls = lints_of(
            "int f(int a) {\n    int x;\n    if (a < 0) {\n        x = 1;\n    } else {\n        x = 2;\n    }\n    return x;\n}\n",
        );
        assert!(ls.is_empty(), "{ls:?}");
    }

    #[test]
    fn init_on_one_branch_only_is_flagged() {
        let ls = lints_of(
            "int f(int a) {\n    int x;\n    if (a < 0) {\n        x = 1;\n    }\n    return x;\n}\n",
        );
        assert_eq!(ls, vec![(LintKind::UseBeforeInit, 6)]);
    }
}
