//! Flow-sensitive abstract interpretation over the monadic IR.
//!
//! This crate walks a word-abstracted [`MonadicFn`] with the three-domain
//! abstract environment from `solver::interval` — wrapping intervals per
//! numeric kind, pointer nullness/heap validity, and (via unreachable
//! branches collapsing to bottom) definite reachability — and assigns every
//! `guard` combinator a [`Verdict`]:
//!
//! * [`Verdict::ProvedTrue`] — the guard holds in every state reaching it.
//!   The verdict carries a *self-contained hypothesis* `hyp`: a conjunction
//!   of interval bounds and assumed facts, rendered from the abstract
//!   environment, such that `solver::interval::entails(hyp, guard)` holds.
//!   The kernel's `AbsintDischarge` rule re-validates exactly that side
//!   condition, so a discharge theorem is independently checkable without
//!   re-running the flow analysis.
//! * [`Verdict::ProvedFalse`] — the guard is false in every state reaching
//!   it (e.g. a definite signed overflow): the function *will* fail on any
//!   run that gets there. Reported eagerly as a lint.
//! * [`Verdict::Unknown`] — everything else. Never wrong, just imprecise.
//!
//! Loops are analysed to a fixpoint with interval widening at the head
//! (join for two rounds, then widen unstable variables to their kind's
//! range), and guard verdicts inside the body are recorded in one final
//! pass under the stabilised head environment — sound for every iteration.
//!
//! The companion [`lint`] module runs classic intraprocedural lints (dead
//! stores, unreachable code, use before initialisation) over the *typed C
//! AST*, where byte-offset spans are still available.

pub mod codec;
pub mod lint;

use ir::expr::{BinOp, Expr};
use ir::guard::GuardKind;
use ir::names::Symbol;
use ir::ty::TypeEnv;
use monadic::prog::{MonadicFn, Prog};
use solver::interval::{entails, AbsEnv, AbsVal, NumKind};

pub use lint::{lint_fn, Lint, LintKind};

/// Result of abstractly evaluating one guard occurrence.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The guard holds on every path reaching it; `hyp` is the recorded
    /// hypothesis with `solver::interval::entails(hyp, guard)`.
    ProvedTrue {
        /// Self-contained hypothesis entailing the guard.
        hyp: Expr,
    },
    /// The guard is false on every path reaching it: definite failure.
    ProvedFalse,
    /// Not decided by interval reasoning.
    Unknown,
}

/// One guard occurrence, in deterministic traversal order.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardInfo {
    /// Position in the traversal (0-based; stable across runs and worker
    /// counts — the analysis is sequential per function).
    pub index: usize,
    /// What the guard protects against.
    pub kind: GuardKind,
    /// The guard expression.
    pub guard: Expr,
    /// The analysis verdict.
    pub verdict: Verdict,
}

/// Per-function analysis result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FnAbsint {
    /// Every reachable guard with its verdict, in traversal order.
    pub guards: Vec<GuardInfo>,
    /// Lints found over the typed C AST (filled in by the caller from
    /// [`lint_fn`]; kept here so one artifact carries both consumers).
    pub lints: Vec<Lint>,
}

impl FnAbsint {
    /// Number of guards proved true.
    #[must_use]
    pub fn discharged(&self) -> usize {
        self.guards
            .iter()
            .filter(|g| matches!(g.verdict, Verdict::ProvedTrue { .. }))
            .count()
    }

    /// Number of guards proved definitely false.
    #[must_use]
    pub fn refuted(&self) -> usize {
        self.guards
            .iter()
            .filter(|g| g.verdict == Verdict::ProvedFalse)
            .count()
    }
}

/// Analyses one function's body, seeding parameters from their types.
///
/// The traversal is deterministic and purely functional over the program;
/// calling it twice (or from different worker threads) yields identical
/// results.
#[must_use]
pub fn analyze_fn(f: &MonadicFn, tenv: &TypeEnv) -> FnAbsint {
    let mut env = AbsEnv::new().with_tenv(tenv.clone());
    for (name, ty) in &f.params {
        env.bind(name.as_str(), AbsVal::of_ty(ty));
    }
    // L1-level functions keep locals in the state; those are read through
    // `Expr::Local` which the evaluator already treats as opaque.
    let mut a = Analyzer {
        recording: true,
        guards: Vec::new(),
    };
    let _ = a.transfer(&f.body, &env);
    FnAbsint {
        guards: a.guards,
        lints: Vec::new(),
    }
}

/// An abstract *value* — `AbsVal` extended with tuples, which the monadic
/// language produces for loop-iterator bundles.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    One(AbsVal),
    Tuple(Vec<Val>),
}

impl Val {
    fn top() -> Val {
        Val::One(AbsVal::Top)
    }

    fn join(&self, other: &Val) -> Val {
        match (self, other) {
            (Val::One(a), Val::One(b)) => Val::One(a.join(b)),
            (Val::Tuple(xs), Val::Tuple(ys)) if xs.len() == ys.len() => {
                Val::Tuple(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
            _ => Val::top(),
        }
    }

    fn flat(&self) -> AbsVal {
        match self {
            Val::One(a) => a.clone(),
            Val::Tuple(_) => AbsVal::Top,
        }
    }
}

/// The result of abstractly running a program fragment: the normal
/// continuation (value + environment) when the fragment can terminate
/// normally, and the exceptional continuation when it can throw.
struct Flow {
    norm: Option<(Val, AbsEnv)>,
    exc: Option<(Val, AbsEnv)>,
}

fn join_opt(a: Option<(Val, AbsEnv)>, b: Option<(Val, AbsEnv)>) -> Option<(Val, AbsEnv)> {
    match (a, b) {
        (Some((va, ea)), Some((vb, eb))) => Some((va.join(&vb), ea.join(&eb))),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

struct Analyzer {
    /// Verdicts are recorded only on the final (post-fixpoint) pass over
    /// each loop body; fixpoint iterations run with this off.
    recording: bool,
    guards: Vec<GuardInfo>,
}

impl Analyzer {
    fn transfer(&mut self, p: &Prog, env: &AbsEnv) -> Flow {
        match p {
            Prog::Return(e) | Prog::Gets(e) => Flow {
                norm: Some((eval_val(env, e), env.clone())),
                exc: None,
            },
            Prog::Modify(u) => {
                let mut e = env.clone();
                match u {
                    ir::update::Update::Local(n, rhs) => {
                        let v = e.eval(rhs);
                        e.bind(n.as_str(), v);
                    }
                    ir::update::Update::Global(..) => e.global_write(),
                    ir::update::Update::Heap(..) => e.heap_write(),
                    ir::update::Update::Byte(..) | ir::update::Update::TagRegion(..) => {
                        e.state_blast();
                    }
                }
                Flow {
                    norm: Some((Val::top(), e)),
                    exc: None,
                }
            }
            Prog::Guard(kind, g) => {
                if self.recording {
                    let verdict = if env.holds(g) {
                        let hyp = render_hyp(env, g);
                        if entails(&hyp, g) {
                            Verdict::ProvedTrue { hyp }
                        } else {
                            // The environment knew more than the rendering
                            // could express; stay sound and say nothing.
                            Verdict::Unknown
                        }
                    } else if env.refutes(g) {
                        Verdict::ProvedFalse
                    } else {
                        Verdict::Unknown
                    };
                    self.guards.push(GuardInfo {
                        index: self.guards.len(),
                        kind: kind.clone(),
                        guard: g.clone(),
                        verdict,
                    });
                }
                // Downstream of a guard the guard holds (failure is not a
                // normal continuation).
                Flow {
                    norm: Some((Val::top(), env.refined(g))),
                    exc: None,
                }
            }
            Prog::Throw(e) => Flow {
                norm: None,
                exc: Some((eval_val(env, e), env.clone())),
            },
            Prog::Fail => Flow {
                norm: None,
                exc: None,
            },
            Prog::Bind(l, v, r) => {
                let fl = self.transfer(l, env);
                let mut exc = fl.exc;
                let norm = match fl.norm {
                    Some((val, mut e)) => {
                        bind_val(&mut e, v, &val);
                        let fr = self.transfer(r, &e);
                        exc = join_opt(exc, fr.exc);
                        fr.norm
                    }
                    None => None,
                };
                Flow { norm, exc }
            }
            Prog::BindTuple(l, vs, r) => {
                let fl = self.transfer(l, env);
                let mut exc = fl.exc;
                let norm = match fl.norm {
                    Some((val, mut e)) => {
                        bind_tuple(&mut e, vs, &val);
                        let fr = self.transfer(r, &e);
                        exc = join_opt(exc, fr.exc);
                        fr.norm
                    }
                    None => None,
                };
                Flow { norm, exc }
            }
            Prog::Condition(c, t, e) => {
                if env.holds(c) {
                    self.transfer(t, &env.refined(c))
                } else if env.refutes(c) {
                    self.transfer(e, &env.refined_not(c))
                } else {
                    let ft = self.transfer(t, &env.refined(c));
                    let fe = self.transfer(e, &env.refined_not(c));
                    Flow {
                        norm: join_opt(ft.norm, fe.norm),
                        exc: join_opt(ft.exc, fe.exc),
                    }
                }
            }
            Prog::Catch(l, v, h) => {
                let fl = self.transfer(l, env);
                match fl.exc {
                    Some((ev, mut ee)) => {
                        bind_val(&mut ee, v, &ev);
                        let fh = self.transfer(h, &ee);
                        Flow {
                            norm: join_opt(fl.norm, fh.norm),
                            exc: fh.exc,
                        }
                    }
                    None => Flow {
                        norm: fl.norm,
                        exc: None,
                    },
                }
            }
            // Function boundaries catch their own exceptions (early returns
            // are resolved inside the callee at L2), so a call terminates
            // normally; globals and heap data may change, validity facts
            // survive.
            Prog::Call { .. } => {
                let mut e = env.clone();
                e.call();
                Flow {
                    norm: Some((Val::top(), e)),
                    exc: None,
                }
            }
            // Crossing the heap-representation boundary: byte-level effects
            // invalidate all state knowledge on both sides.
            Prog::ExecConcrete(q) | Prog::ExecAbstract(q) => {
                let mut e = env.clone();
                e.state_blast();
                let f = self.transfer(q, &e);
                let blast = |r: Option<(Val, AbsEnv)>| {
                    r.map(|(_, mut e)| {
                        e.state_blast();
                        (Val::top(), e)
                    })
                };
                Flow {
                    norm: blast(f.norm),
                    exc: blast(f.exc),
                }
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => self.transfer_while(vars, cond, body, init, env),
        }
    }

    fn transfer_while(
        &mut self,
        vars: &[String],
        cond: &Expr,
        body: &Prog,
        init: &[Expr],
        env: &AbsEnv,
    ) -> Flow {
        let mut head = env.clone();
        let init_vals: Vec<AbsVal> = init.iter().map(|i| env.eval(i)).collect();
        for (v, a) in vars.iter().zip(init_vals) {
            head.bind(v.as_str(), a);
        }
        // Fixpoint with widening, verdicts off: the head must cover every
        // iteration before anything inside the body is recorded.
        let was = self.recording;
        self.recording = false;
        let mut stable = false;
        for iter in 0..8 {
            if head.refutes(cond) {
                stable = true;
                break;
            }
            let fb = self.transfer(body, &head.refined(cond));
            let Some((bval, benv)) = fb.norm else {
                // The body never completes an iteration normally, so the
                // head is never re-entered: the entry environment is final.
                stable = true;
                break;
            };
            let mut next = benv;
            rebind_iters(&mut next, vars, &bval);
            let joined = head.join(&next);
            let cand = if iter < 2 { joined } else { joined.widen(&head) };
            if cand == head {
                stable = true;
                break;
            }
            head = cand;
        }
        if !stable {
            head = top_env(&head);
        }
        self.recording = was;
        // One recording pass under the stabilised head: verdicts recorded
        // here hold for every iteration. Exceptions (break / early return)
        // escape from the same pass.
        let mut exc = None;
        if !head.refutes(cond) {
            let fb = self.transfer(body, &head.refined(cond));
            exc = fb.exc;
        }
        let exit = head.refined_not(cond);
        let val = if vars.len() == 1 {
            Val::One(exit.var(&Symbol::intern(&vars[0])))
        } else {
            Val::Tuple(
                vars.iter()
                    .map(|v| Val::One(exit.var(&Symbol::intern(v))))
                    .collect(),
            )
        };
        Flow {
            norm: Some((val, exit)),
            exc,
        }
    }
}

fn eval_val(env: &AbsEnv, e: &Expr) -> Val {
    match e {
        Expr::Tuple(es) => Val::Tuple(es.iter().map(|x| eval_val(env, x)).collect()),
        _ => Val::One(env.eval(e)),
    }
}

fn bind_val(env: &mut AbsEnv, v: &str, val: &Val) {
    env.bind(v, val.flat());
}

fn bind_tuple(env: &mut AbsEnv, vs: &[String], val: &Val) {
    match val {
        Val::Tuple(xs) if xs.len() == vs.len() => {
            for (v, x) in vs.iter().zip(xs) {
                env.bind(v.as_str(), x.flat());
            }
        }
        _ if vs.len() == 1 => env.bind(vs[0].as_str(), val.flat()),
        _ => {
            for v in vs {
                env.bind(v.as_str(), AbsVal::Top);
            }
        }
    }
}

/// Rebinds the loop-iterator variables from the body's yielded value.
fn rebind_iters(env: &mut AbsEnv, vars: &[String], val: &Val) {
    if vars.len() == 1 {
        env.bind(vars[0].as_str(), val.flat());
    } else {
        bind_tuple(env, vars, val);
    }
}

/// The everything-unknown environment with the same variable footprint:
/// the sound fallback when a loop fails to stabilise.
fn top_env(e: &AbsEnv) -> AbsEnv {
    let mut out = e.clone();
    let names: Vec<Symbol> = out.vars().map(|(v, _)| *v).collect();
    for v in names {
        out.bind(v, AbsVal::Top);
    }
    out.state_blast();
    out
}

/// Renders a self-contained hypothesis for `g` from the environment: the
/// finite interval bounds of `g`'s free variables, the refined bounds of
/// opaque atoms occurring in `g`, and every assumed fact sharing structure
/// or variables with `g`. By construction the result mentions nothing the
/// independent checker cannot re-derive with [`entails`].
fn render_hyp(env: &AbsEnv, g: &Expr) -> Expr {
    let fv = g.free_vars();
    let mut conj: Vec<Expr> = Vec::new();
    for (v, val) in env.vars() {
        let name = v.to_string();
        if !fv.contains(&name) {
            continue;
        }
        if let AbsVal::Num(k, iv) = val {
            let full = k.range();
            let var = Expr::Var(*v);
            if let Some(lo) = iv.lo {
                if full.lo != Some(lo) {
                    if let Some(lit) = num_lit(*k, lo) {
                        conj.push(Expr::binop(BinOp::Le, lit, var.clone()));
                    }
                }
            }
            if let Some(hi) = iv.hi {
                if full.hi != Some(hi) {
                    if let Some(lit) = num_lit(*k, hi) {
                        conj.push(Expr::binop(BinOp::Le, var.clone(), lit));
                    }
                }
            }
        }
    }
    for (a, k, iv) in env.atom_bounds() {
        if !occurs_in(a, g) {
            continue;
        }
        let full = k.range();
        if let Some(lo) = iv.lo {
            if full.lo != Some(lo) {
                if let Some(lit) = num_lit(k, lo) {
                    conj.push(Expr::binop(BinOp::Le, lit, a.clone()));
                }
            }
        }
        if let Some(hi) = iv.hi {
            if full.hi != Some(hi) {
                if let Some(lit) = num_lit(k, hi) {
                    conj.push(Expr::binop(BinOp::Le, a.clone(), lit));
                }
            }
        }
    }
    for f in env.facts() {
        let relevant =
            f == g || occurs_in(f, g) || f.free_vars().iter().any(|v| fv.contains(v));
        if relevant {
            conj.push(f.clone());
        }
    }
    match conj.into_iter().reduce(Expr::and) {
        Some(h) => h,
        None => Expr::tt(),
    }
}

/// Renders an interval endpoint as a literal of the kind, when the kind
/// has a literal form the evaluator understands (words are skipped — word
/// guards are rare after word abstraction).
fn num_lit(k: NumKind, v: i128) -> Option<Expr> {
    match k {
        NumKind::Nat => u128::try_from(v).ok().map(Expr::nat),
        NumKind::Int => Some(Expr::int(v)),
        NumKind::Word(..) => None,
    }
}

/// Structural subterm test.
fn occurs_in(sub: &Expr, e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if x == sub {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::ty::Ty;

    fn fun(params: Vec<(&str, Ty)>, body: Prog) -> MonadicFn {
        MonadicFn {
            name: "f".into(),
            params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
            ret_ty: Ty::Nat,
            frame: None,
            body,
        }
    }

    fn nat(v: u64) -> Expr {
        Expr::nat(v)
    }

    #[test]
    fn bounded_divisor_guard_discharges() {
        // do _ ← guard (b mod 7 + 1 ≠ 0); return 0 od — with b : nat free.
        let d = Expr::binop(
            BinOp::Add,
            Expr::binop(BinOp::Mod, Expr::var("b"), nat(7)),
            nat(1),
        );
        let g = Expr::binop(BinOp::Ne, d, nat(0));
        let f = fun(
            vec![("b", Ty::Nat)],
            Prog::bind(
                Prog::guard(GuardKind::DivByZero, g),
                "_",
                Prog::ret(nat(0)),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.guards.len(), 1);
        let Verdict::ProvedTrue { hyp } = &r.guards[0].verdict else {
            panic!("expected discharge, got {:?}", r.guards[0].verdict);
        };
        // The recorded hypothesis re-validates independently.
        assert!(entails(hyp, &r.guards[0].guard));
    }

    #[test]
    fn branch_refinement_discharges_overflow_idiom() {
        // condition (x ≤ 10) (guard (x + 1 ≤ 20); ...) (return 0)
        let x = Expr::var("x");
        let c = Expr::binop(BinOp::Le, x.clone(), nat(10));
        let g = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, x.clone(), nat(1)),
            nat(20),
        );
        let f = fun(
            vec![("x", Ty::Nat)],
            Prog::cond(
                c,
                Prog::bind(
                    Prog::guard(GuardKind::UnsignedOverflow, g.clone()),
                    "_",
                    Prog::ret(nat(1)),
                ),
                Prog::ret(nat(0)),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.discharged(), 1);
        let Verdict::ProvedTrue { hyp } = &r.guards[0].verdict else {
            panic!("not discharged");
        };
        // Self-contained: x ≤ 10 must be rendered into the hypothesis.
        assert!(entails(hyp, &g));
    }

    #[test]
    fn unknown_guard_stays_unknown() {
        let g = Expr::binop(BinOp::Le, Expr::var("x"), nat(5));
        let f = fun(
            vec![("x", Ty::Nat)],
            Prog::bind(
                Prog::guard(GuardKind::WordAbs, g),
                "_",
                Prog::ret(nat(0)),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.guards[0].verdict, Verdict::Unknown);
    }

    #[test]
    fn definitely_false_guard_reported() {
        // x bound to 30 by the bind, guard (x ≤ 20) is definitely false.
        let f = fun(
            vec![],
            Prog::bind(
                Prog::ret(nat(30)),
                "x",
                Prog::bind(
                    Prog::guard(
                        GuardKind::UnsignedOverflow,
                        Expr::binop(BinOp::Le, Expr::var("x"), nat(20)),
                    ),
                    "_",
                    Prog::ret(nat(0)),
                ),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.guards[0].verdict, Verdict::ProvedFalse);
        assert_eq!(r.refuted(), 1);
    }

    #[test]
    fn loop_counter_bound_discharges_via_widening() {
        // i starts at 0; while (i < 13) { guard (i + 1 ≤ 100); i := i + 1 }
        // After widening i covers [0, ∞) but the condition refines i ≤ 12
        // inside the body, so i + 1 ≤ 100 holds for every iteration.
        let i = Expr::var("i");
        let cond = Expr::binop(BinOp::Lt, i.clone(), nat(13));
        let g = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, i.clone(), nat(1)),
            nat(100),
        );
        let body = Prog::bind(
            Prog::guard(GuardKind::UnsignedOverflow, g),
            "_",
            Prog::ret(Expr::binop(BinOp::Add, i.clone(), nat(1))),
        );
        let f = fun(
            vec![],
            Prog::While {
                vars: vec!["i".into()],
                cond,
                body: monadic::prog::IProg::new(body),
                init: vec![nat(0)],
            },
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.guards.len(), 1, "guard recorded exactly once");
        assert_eq!(r.discharged(), 1, "verdict: {:?}", r.guards[0].verdict);
    }

    #[test]
    fn guard_unsound_for_later_iterations_is_not_discharged() {
        // while (i < 13) { guard (i ≤ 0); i := i + 1 } — true on entry only.
        let i = Expr::var("i");
        let cond = Expr::binop(BinOp::Lt, i.clone(), nat(13));
        let g = Expr::binop(BinOp::Le, i.clone(), nat(0));
        let body = Prog::bind(
            Prog::guard(GuardKind::WordAbs, g),
            "_",
            Prog::ret(Expr::binop(BinOp::Add, i.clone(), nat(1))),
        );
        let f = fun(
            vec![],
            Prog::While {
                vars: vec!["i".into()],
                cond,
                body: monadic::prog::IProg::new(body),
                init: vec![nat(0)],
            },
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.discharged(), 0, "verdict: {:?}", r.guards[0].verdict);
    }

    #[test]
    fn repeated_validity_guard_discharges_after_heap_write() {
        // guard (is_valid p); heap write; guard (is_valid p) — the second
        // discharges (data writes preserve validity).
        let p = Expr::var("p");
        let ty = Ty::Word(ir::ty::Width::W32, ir::ty::Signedness::Unsigned);
        let v = Expr::is_valid(ty.clone(), p.clone());
        let f = fun(
            vec![("p", ty.clone().ptr_to())],
            Prog::bind(
                Prog::guard(GuardKind::PtrValid, v.clone()),
                "_",
                Prog::bind(
                    Prog::Modify(ir::update::Update::Heap(ty, p.clone(), nat(0))),
                    "_",
                    Prog::bind(
                        Prog::guard(GuardKind::PtrValid, v),
                        "_",
                        Prog::ret(nat(0)),
                    ),
                ),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert_eq!(r.guards.len(), 2);
        assert_eq!(r.guards[0].verdict, Verdict::Unknown);
        assert!(
            matches!(r.guards[1].verdict, Verdict::ProvedTrue { .. }),
            "second validity check should be free: {:?}",
            r.guards[1].verdict
        );
    }

    #[test]
    fn guards_after_definite_failure_are_unreachable() {
        // guard (false-ish) then another guard: the second is dead code and
        // is not recorded at all.
        let f = fun(
            vec![],
            Prog::bind(
                Prog::Fail,
                "_",
                Prog::bind(
                    Prog::guard(GuardKind::DivByZero, Expr::tt()),
                    "_",
                    Prog::ret(nat(0)),
                ),
            ),
        );
        let r = analyze_fn(&f, &TypeEnv::new());
        assert!(r.guards.is_empty());
    }
}
