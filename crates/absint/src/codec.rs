//! Binary codec impls for abstract-interpretation results (see
//! `ir::codec`), so `absint` phase artifacts can live in the disk store.

use ir::codec::{Codec, DecodeError, Decoder, Encoder};
use ir::diag::Span;
use ir::expr::Expr;
use ir::guard::GuardKind;

use crate::lint::{Lint, LintKind};
use crate::{FnAbsint, GuardInfo, Verdict};

impl Codec for Verdict {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Verdict::ProvedTrue { hyp } => {
                e.u8(0);
                hyp.encode(e);
            }
            Verdict::ProvedFalse => e.u8(1),
            Verdict::Unknown => e.u8(2),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Verdict::ProvedTrue {
                hyp: Expr::decode(d)?,
            },
            1 => Verdict::ProvedFalse,
            2 => Verdict::Unknown,
            b => return Err(DecodeError(format!("invalid Verdict tag {b}"))),
        })
    }
}

impl Codec for GuardInfo {
    fn encode(&self, e: &mut Encoder) {
        self.index.encode(e);
        self.kind.encode(e);
        self.guard.encode(e);
        self.verdict.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GuardInfo {
            index: usize::decode(d)?,
            kind: GuardKind::decode(d)?,
            guard: Expr::decode(d)?,
            verdict: Verdict::decode(d)?,
        })
    }
}

impl Codec for LintKind {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            LintKind::DeadStore => 0,
            LintKind::UnreachableCode => 1,
            LintKind::UseBeforeInit => 2,
            LintKind::DefiniteOverflow => 3,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => LintKind::DeadStore,
            1 => LintKind::UnreachableCode,
            2 => LintKind::UseBeforeInit,
            3 => LintKind::DefiniteOverflow,
            b => return Err(DecodeError(format!("invalid LintKind tag {b}"))),
        })
    }
}

impl Codec for Lint {
    fn encode(&self, e: &mut Encoder) {
        self.kind.encode(e);
        e.str(&self.message);
        self.span.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Lint {
            kind: LintKind::decode(d)?,
            message: d.str()?,
            span: Span::decode(d)?,
        })
    }
}

impl Codec for FnAbsint {
    fn encode(&self, e: &mut Encoder) {
        self.guards.encode(e);
        self.lints.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FnAbsint {
            guards: Vec::decode(d)?,
            lints: Vec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn fn_absint_round_trips() {
        let a = FnAbsint {
            guards: vec![GuardInfo {
                index: 3,
                kind: GuardKind::SignedOverflow,
                guard: Expr::binop(ir::expr::BinOp::Lt, Expr::var("x"), Expr::u32(10)),
                verdict: Verdict::ProvedTrue {
                    hyp: Expr::binop(ir::expr::BinOp::Lt, Expr::var("x"), Expr::u32(5)),
                },
            }],
            lints: vec![Lint {
                kind: LintKind::DeadStore,
                message: "store to `x` is never read".into(),
                span: Span::default(),
            }],
        };
        let bytes = encode_to_vec(&a);
        assert_eq!(decode_from_slice::<FnAbsint>(&bytes).unwrap(), a);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x22;
            let _ = decode_from_slice::<FnAbsint>(&m);
            let _ = decode_from_slice::<FnAbsint>(&bytes[..i]);
        }
    }
}
