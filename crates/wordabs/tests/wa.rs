//! Word-abstraction engine tests: the paper's worked examples (midpoint,
//! max, gcd), per-function selection, custom idiom rules, checker replay,
//! and semantic differential validation.

use std::collections::BTreeMap;

use autocorres::l1::l1_program;
use autocorres::l2::l2_program;
use heapabs::{hl_program, HlOptions};
use kernel::{check, CheckCtx};
use monadic::ProgramCtx;
use wordabs::{overflow_idiom_rule, wa_program, WaOptions};

fn to_hl(src: &str) -> (ProgramCtx, CheckCtx) {
    let typed = cparser::parse_and_check(src).unwrap();
    let sp = simpl::translate_program(&typed).unwrap();
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };
    let (l1ctx, _) = l1_program(&cx, &sp).unwrap();
    let (l2ctx, _) = l2_program(&cx, &typed, &l1ctx, 60, 7).unwrap();
    let (hlctx, _) = hl_program(&cx, &l2ctx, &HlOptions::default()).unwrap();
    (hlctx, cx)
}

fn validate_wa(
    hlctx: &ProgramCtx,
    wactx: &ProgramCtx,
    thms: &[(String, kernel::Thm)],
    kcx: &CheckCtx,
    seed: u64,
) {
    for (name, thm) in thms {
        check(thm, kcx).unwrap();
        let f = &hlctx.fns[name];
        let vars: BTreeMap<String, ir::ty::Ty> = f.params.iter().cloned().collect();
        kernel::semantics::test_wstmt(hlctx, wactx, thm.judgment(), &vars, 300, seed, |_| {
            ir::state::State::conc_empty()
        })
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn sec33_midpoint() {
    let (hlctx, cx) = to_hl("unsigned mid(unsigned l, unsigned r) { return (l + r) / 2u; }");
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let f = wactx.function("mid").unwrap();
    let s = f.body.to_string();
    // Sec 3.3's generated abstraction:
    //   do guard (l + r ≤ UINT_MAX); return ((l + r) div 2) od
    assert!(s.contains("guard (λs. l + r ≤ 4294967295)"), "{s}");
    assert!(s.contains("return ((l + r) div 2)"), "{s}");
    assert_eq!(f.ret_ty, ir::ty::Ty::Nat);
    validate_wa(&hlctx, &wactx, &thms, &kcx, 21);
}

#[test]
fn fig2_max_is_ideal() {
    let (hlctx, cx) = to_hl("int max(int a, int b) { if (a < b) return b; return a; }");
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let f = wactx.function("max").unwrap();
    // The paper: AutoCorres's output of max precisely matches the built-in
    // max on ideal numbers — no guards needed (comparison is guard-free).
    assert_eq!(f.body.to_string(), "return (if a < b then b else a)");
    assert_eq!(f.ret_ty, ir::ty::Ty::Int);
    validate_wa(&hlctx, &wactx, &thms, &kcx, 22);
}

#[test]
fn gcd_loop_abstracts_to_naturals() {
    let (hlctx, cx) = to_hl(
        "unsigned gcd(unsigned a, unsigned b) {\n\
           while (b != 0u) { unsigned t = b; b = a % b; a = t; }\n\
           return a;\n\
         }",
    );
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let f = wactx.function("gcd").unwrap();
    let s = f.body.to_string();
    assert!(s.contains("a mod b"), "{s}");
    // WMOD itself adds no precondition: the only guard is the concrete
    // division-by-zero guard inherited from the C translation.
    assert_eq!(s.matches("guard").count(), 1, "{s}");
    validate_wa(&hlctx, &wactx, &thms, &kcx, 23);

    // Semantically it IS gcd on the naturals.
    for (a, b) in [(12u64, 18u64), (17, 5), (0, 9), (100, 75)] {
        let (r, _) = monadic::exec_fn(
            &wactx,
            "gcd",
            &[ir::value::Value::nat(a), ir::value::Value::nat(b)],
            ir::state::State::conc_empty(),
            100_000,
        )
        .unwrap();
        let expect = bignum::Nat::from(a).gcd(&bignum::Nat::from(b));
        assert_eq!(r, monadic::MonadResult::Normal(ir::value::Value::Nat(expect)));
    }
}

#[test]
fn signed_arithmetic_gets_range_guards() {
    let (hlctx, cx) = to_hl("int inc(int x) { return x + 1; }");
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let s = wactx.function("inc").unwrap().body.to_string();
    assert!(s.contains("-2147483648 ≤ x + 1"), "{s}");
    assert!(s.contains("x + 1 ≤ 2147483647"), "{s}");
    validate_wa(&hlctx, &wactx, &thms, &kcx, 24);
}

#[test]
fn per_function_selection() {
    let (hlctx, cx) = to_hl(
        "unsigned f(unsigned x) { return x + 1u; }\n\
         unsigned g(unsigned x) { return f(x) * 2u; }",
    );
    let opts = WaOptions {
        abstract_fns: Some(["g".to_owned()].into()),
        ..WaOptions::default()
    };
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &opts).unwrap();
    // f is untouched (words); g is abstracted and re-concretises the call.
    assert_eq!(wactx.function("f").unwrap().ret_ty, ir::ty::Ty::U32);
    assert_eq!(wactx.function("g").unwrap().ret_ty, ir::ty::Ty::Nat);
    let s = wactx.function("g").unwrap().body.to_string();
    assert!(s.contains("of_nat32 x"), "argument re-concretised: {s}");
    assert!(s.contains("unat"), "result wrapped: {s}");
    assert_eq!(thms.len(), 1);
    validate_wa(&hlctx, &wactx, &thms, &kcx, 25);
}

#[test]
fn custom_overflow_idiom_rule() {
    // Sec 3.3: `if (x > x + y)` detects unsigned overflow; without the
    // custom rule the abstraction makes the test vacuous, with the rule it
    // becomes `UINT_MAX < x + y`.
    let src = "unsigned safe_add(unsigned x, unsigned y) {\n\
                 if (x > x + y) return 0u;\n\
                 return x + y;\n\
               }";
    let (hlctx, cx) = to_hl(src);
    let mut opts = WaOptions::default();
    opts.custom_rules.push(overflow_idiom_rule());
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &opts).unwrap();
    let s = wactx.function("safe_add").unwrap().body.to_string();
    assert!(
        s.contains("4294967295 < x + y"),
        "the idiom is captured: {s}"
    );
    validate_wa(&hlctx, &wactx, &thms, &kcx, 26);
}

#[test]
fn heap_programs_keep_state_untouched() {
    let (hlctx, cx) = to_hl(
        "struct node { struct node *next; unsigned data; };\n\
         unsigned get(struct node *p) { return p->data; }",
    );
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let s = wactx.function("get").unwrap().body.to_string();
    // The heap read stays a word read; the result is wrapped in unat.
    assert!(s.contains("unat"), "{s}");
    assert!(s.contains("s[p]·node_C→data"), "{s}");
    assert!(s.contains("is_valid_node_C"), "guards survive: {s}");
    assert_eq!(thms.len(), 1);
    // Semantic validation over heap states.
    let (name, thm) = &thms[0];
    check(thm, &kcx).unwrap();
    let heap_types = vec![ir::ty::Ty::Struct("node".into())];
    let vars: BTreeMap<String, ir::ty::Ty> =
        hlctx.fns[name].params.iter().cloned().collect();
    let tenv = hlctx.tenv.clone();
    let ht = heap_types.clone();
    kernel::semantics::test_wstmt(&hlctx, &wactx, thm.judgment(), &vars, 200, 27, move |rng| {
        let conc = autocorres::testing::gen_state(rng, &tenv, &ht, 4);
        ir::state::State::Abs(heapmodel::lift_state(&conc, &tenv, &ht))
    })
    .unwrap();
}

#[test]
fn division_by_zero_still_guarded_concretely() {
    // The concrete DivByZero guard abstracts to a nat-level guard.
    let (hlctx, cx) = to_hl("unsigned d(unsigned a, unsigned b) { return a / b; }");
    let (wactx, thms, kcx) = wa_program(&cx, &hlctx, &WaOptions::default()).unwrap();
    let s = wactx.function("d").unwrap().body.to_string();
    assert!(s.contains("b ≠ 0"), "{s}");
    validate_wa(&hlctx, &wactx, &thms, &kcx, 28);
}
