//! The word-abstraction engine (paper Sec 3).
//!
//! Rewrites machine-word programs into ideal `nat`/`int` programs by
//! syntax-directed application of the kernel's Table 3 rules, producing the
//! abstract program together with an `abs_w_stmt` theorem. Unsigned words
//! abstract through `unat` to naturals, signed words through `sint` to
//! integers (Sec 3.2); each rule's precondition (`a + b ≤ UINT_MAX`, …)
//! accumulates and is emitted as a `guard` in the abstract program, exactly
//! as in the paper's worked midpoint example (Sec 3.3).
//!
//! The rule set is extensible (Sec 3.3): [`CustomRule`]s pattern-match
//! code-specific idioms (like the `x > x + y` overflow test) and are
//! admitted through the kernel's sampled-validation rule.
//!
//! Abstraction is selectable per function ([`WaOptions::abstract_fns`]);
//! calls from abstracted to non-abstracted functions re-concretise their
//! arguments with `of_nat`/`of_int` and wrap results in `unat`/`sint`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use ir::expr::{BinOp, Expr, UnOp};
use ir::ty::{Signedness, Ty, Width};
use ir::typing::infer_ty;
use kernel::judgment::VarCtx;
use kernel::rules::word as wr;
use kernel::{AbsFun, CheckCtx, Judgment, KernelError, Rule, Thm};
use monadic::{MonadicFn, Prog, ProgramCtx};

/// The result of a custom rule application.
#[derive(Clone, Debug)]
pub struct CustomAbs {
    /// Precondition over the abstract variables.
    pub pre: Expr,
    /// The abstraction function of the result.
    pub f: AbsFun,
    /// The abstract expression.
    pub abs: Expr,
}

/// A user-supplied idiom rule: given a concrete expression and the variable
/// abstraction context, optionally produce its abstraction. Admitted by the
/// kernel only after randomized semantic sampling.
pub type CustomRule = Arc<dyn Fn(&Expr, &VarCtx) -> Option<CustomAbs> + Send + Sync>;

/// Word-abstraction options.
#[derive(Clone, Default)]
pub struct WaOptions {
    /// Functions to abstract (`None` = all).
    pub abstract_fns: Option<BTreeSet<String>>,
    /// Additional idiom rules (tried before the built-in rules).
    pub custom_rules: Vec<CustomRule>,
    /// Sampling budget for custom rules.
    pub custom_trials: u32,
}

impl fmt::Debug for WaOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaOptions")
            .field("abstract_fns", &self.abstract_fns)
            .field("custom_rules", &self.custom_rules.len())
            .field("custom_trials", &self.custom_trials)
            .finish()
    }
}

/// An engine error.
#[derive(Clone, Debug)]
pub enum WaError {
    /// A kernel rule rejected an application (engine bug).
    Kernel(KernelError),
    /// Outside the abstractable fragment.
    Unsupported(String),
}

impl fmt::Display for WaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaError::Kernel(e) => write!(f, "word abstraction: {e}"),
            WaError::Unsupported(m) => write!(f, "word abstraction: {m}"),
        }
    }
}

impl std::error::Error for WaError {}

impl From<WaError> for ir::diag::Diag {
    fn from(e: WaError) -> ir::diag::Diag {
        let kind = match &e {
            WaError::Kernel(_) => ir::diag::DiagKind::Kernel,
            WaError::Unsupported(_) => ir::diag::DiagKind::Unsupported,
        };
        ir::diag::Diag::new(ir::diag::Phase::Wa, kind, e.to_string())
    }
}

impl From<KernelError> for WaError {
    fn from(e: KernelError) -> WaError {
        WaError::Kernel(e)
    }
}

type R<T> = Result<T, WaError>;

/// Result of [`wa_program`]: the abstracted program, one theorem per
/// abstracted function, and the extended checking context.
pub type WaProgram = (ProgramCtx, Vec<(String, Thm)>, CheckCtx);

/// Abstracts a program; returns the new context, the per-function
/// `abs_w_stmt` theorems, and the populated [`CheckCtx`] (whose `fn_abs`
/// table records each abstracted function's signature).
///
/// # Errors
///
/// Fails on expressions outside the abstractable fragment.
pub fn wa_program(
    cx: &CheckCtx,
    hlctx: &ProgramCtx,
    opts: &WaOptions,
) -> R<WaProgram> {
    let cx = wa_signatures(cx, hlctx, opts);
    let mut out = ProgramCtx {
        tenv: hlctx.tenv.clone(),
        globals: hlctx.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut thms = Vec::new();
    for (name, f) in &hlctx.fns {
        if !selected(opts, name) {
            out.fns.insert(name.clone(), f.clone());
            continue;
        }
        let (fun, thm) = wa_function_in(&cx, hlctx, f, opts)?;
        out.fns.insert(name.clone(), fun);
        thms.push((name.clone(), thm));
    }
    Ok((out, thms, cx))
}

fn selected(opts: &WaOptions, name: &str) -> bool {
    opts.selects(name)
}

impl WaOptions {
    /// Is `name` selected for word abstraction under these options?
    #[must_use]
    pub fn selects(&self, name: &str) -> bool {
        self.abstract_fns
            .as_ref()
            .is_none_or(|s| s.contains(name))
    }
}

/// The signature pass of [`wa_program`]: extends the checking context's
/// `fn_abs` table with the parameter/return abstraction functions of every
/// selected function, so per-function abstraction (and cross-function call
/// rules) can run in any order afterwards.
#[must_use]
pub fn wa_signatures(cx: &CheckCtx, hlctx: &ProgramCtx, opts: &WaOptions) -> CheckCtx {
    let mut cx = cx.clone();
    for (name, f) in &hlctx.fns {
        if !opts.selects(name) {
            continue;
        }
        let param_fs = f.params.iter().map(|(_, t)| AbsFun::for_ty(t)).collect();
        let rx = AbsFun::for_ty(&f.ret_ty);
        cx.fn_abs
            .insert(name.clone(), (param_fs, rx, AbsFun::Id));
    }
    cx
}

/// Abstracts one function (no surrounding program — calls cannot be
/// type-resolved; prefer [`wa_program`]).
///
/// # Errors
///
/// As for [`wa_program`].
pub fn wa_function(cx: &CheckCtx, f: &MonadicFn, opts: &WaOptions) -> R<(MonadicFn, Thm)> {
    let empty = ProgramCtx::default();
    wa_function_in(cx, &empty, f, opts)
}

/// Abstracts one function of a program.
///
/// # Errors
///
/// As for [`wa_program`].
pub fn wa_function_in(
    cx: &CheckCtx,
    prog: &ProgramCtx,
    f: &MonadicFn,
    opts: &WaOptions,
) -> R<(MonadicFn, Thm)> {
    let mut eng = Engine {
        cx,
        prog,
        opts,
        vars: f.params.iter().cloned().collect(),
        ctx: f
            .params
            .iter()
            .map(|(n, t)| (n.clone(), AbsFun::for_ty(t)))
            .collect(),
        seed: 0xC0FFEE,
    };
    let want_rx = AbsFun::for_ty(&f.ret_ty);
    let thm = eng.stmt(&f.body, Some(&want_rx))?;
    let Judgment::WStmt { abs, .. } = thm.judgment() else {
        unreachable!("word rules conclude abs_w_stmt");
    };
    Ok((
        MonadicFn {
            name: f.name.clone(),
            params: f
                .params
                .iter()
                .map(|(n, t)| (n.clone(), t.word_abstracted()))
                .collect(),
            ret_ty: f.ret_ty.word_abstracted(),
            frame: f.frame.clone(),
            body: abs.clone(),
        },
        thm,
    ))
}

struct Engine<'a> {
    cx: &'a CheckCtx,
    prog: &'a ProgramCtx,
    opts: &'a WaOptions,
    /// Concrete types of variables in scope.
    vars: HashMap<String, Ty>,
    /// Variable abstraction context.
    ctx: VarCtx,
    seed: u64,
}

impl<'a> Engine<'a> {
    fn unsupported<T>(&self, msg: impl Into<String>) -> R<T> {
        Err(WaError::Unsupported(msg.into()))
    }

    fn ty_of(&self, e: &Expr) -> Option<Ty> {
        infer_ty(e, &self.vars, &self.cx.tenv)
    }

    fn width_of(&self, e: &Expr) -> R<(Width, Signedness)> {
        match self.ty_of(e) {
            Some(Ty::Word(w, s)) => Ok((w, s)),
            t => self.unsupported(format!("expected a word type, inferred {t:?} for `{e}`")),
        }
    }

    /// The natural abstraction of an expression by its type.
    fn natural(&self, e: &Expr) -> AbsFun {
        match self.ty_of(e) {
            Some(t) => AbsFun::for_ty(&t),
            None => AbsFun::Id,
        }
    }

    /// The f of a value theorem.
    fn f_of(t: &Thm) -> AbsFun {
        match t.judgment() {
            Judgment::WVal { f, .. } => f.clone(),
            _ => AbsFun::Id,
        }
    }

    /// Adapts a value theorem to the wanted abstraction function.
    fn adapt(&mut self, t: Thm, want: &AbsFun, conc: &Expr) -> R<Thm> {
        let have = Self::f_of(&t);
        if have == *want {
            return Ok(t);
        }
        match (&have, want) {
            (AbsFun::Unat | AbsFun::Sint, AbsFun::Id) => {
                let (w, s) = self.width_of(conc)?;
                Ok(wr::w_reconcretize(self.cx, w, s, t)?)
            }
            (AbsFun::Id, AbsFun::Unat | AbsFun::Sint) => {
                Ok(wr::w_wrap(self.cx, want.clone(), t)?)
            }
            (AbsFun::Tuple(fs), AbsFun::Id) if fs.iter().all(absfun_id_like) => {
                Ok(wr::w_tuple_id(self.cx, t)?)
            }
            (AbsFun::Id, AbsFun::Tuple(fs)) => Ok(wr::w_tuple_wrap(self.cx, fs, t)?),
            (h, w) => self.unsupported(format!("cannot adapt abstraction {h} to {w}")),
        }
    }

    /// Abstracts an expression towards the wanted abstraction function.
    fn val(&mut self, e: &Expr, want: &AbsFun) -> R<Thm> {
        // Custom idiom rules first (Sec 3.3).
        for rule in &self.opts.custom_rules {
            if let Some(c) = rule(e, &self.ctx) {
                let judgment = Judgment::WVal {
                    ctx: self.ctx.clone(),
                    pre: c.pre,
                    f: c.f.clone(),
                    abs: c.abs,
                    conc: e.clone(),
                };
                let mut var_tys = BTreeMap::new();
                for v in e.free_vars() {
                    if let Some(t) = self.vars.get(&v) {
                        var_tys.insert(v, t.clone());
                    }
                }
                self.seed = self.seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let trials = self.opts.custom_trials.max(500);
                let t = wr::w_custom_sampled(self.cx, judgment, var_tys, trials, self.seed)?;
                return self.adapt(t, want, e);
            }
        }
        let t = self.val_natural(e, want)?;
        self.adapt(t, want, e)
    }

    /// Abstracts an expression with its natural abstraction (or directly at
    /// `want` when that steers rule choice).
    fn val_natural(&mut self, e: &Expr, want: &AbsFun) -> R<Thm> {
        match e {
            Expr::Var(n) => Ok(wr::w_var(self.cx, &self.ctx, n)?),
            Expr::Lit(v) => {
                // Literal abstraction at the wanted function when possible.
                let f = match want {
                    AbsFun::Unat | AbsFun::Sint => want.clone(),
                    _ => self.natural(e),
                };
                Ok(wr::w_lit(self.cx, &self.ctx, f, v)?)
            }
            Expr::BinOp(op, a, b) => self.binop(*op, a, b, e, want),
            Expr::UnOp(UnOp::Neg, a) => {
                let (w, s) = self.width_of(e)?;
                if s == Signedness::Signed && *want == AbsFun::Sint {
                    let at = self.val(a, &AbsFun::Sint)?;
                    Ok(wr::s_neg(self.cx, w, at)?)
                } else {
                    self.id_cong(e)
                }
            }
            Expr::Ite(c, t, f2) => {
                let ct = self.val(c, &AbsFun::Id)?;
                let natural = if matches!(want, AbsFun::Unat | AbsFun::Sint) {
                    want.clone()
                } else {
                    self.natural(t)
                };
                let tt = self.val(t, &natural)?;
                let ft = self.val(f2, &natural)?;
                Ok(wr::w_ite(self.cx, ct, tt, ft)?)
            }
            Expr::Tuple(es) => {
                // Componentwise abstraction steered by the wanted function
                // (identity for exception payloads, the iterator tuple for
                // loop bodies, natural otherwise).
                let wants: Vec<AbsFun> = match want {
                    AbsFun::Tuple(fs) if fs.len() == es.len() => fs.clone(),
                    AbsFun::Id => vec![AbsFun::Id; es.len()],
                    _ => es.iter().map(|x| self.natural(x)).collect(),
                };
                let mut kids = Vec::with_capacity(es.len());
                for (x, w) in es.iter().zip(&wants) {
                    kids.push(self.val(x, w)?);
                }
                Ok(wr::w_tuple(self.cx, kids)?)
            }
            Expr::Proj(i, t) => {
                let tf = self.natural(t);
                let tt = self.val(t, &tf)?;
                if matches!(Self::f_of(&tt), AbsFun::Tuple(_)) {
                    Ok(wr::w_proj(self.cx, *i, tt)?)
                } else {
                    self.id_cong(e)
                }
            }
            // State reads, casts, fields, pointer predicates: identity
            // congruence (the state is untouched by word abstraction,
            // Sec 3.3), wrapped by `adapt` when an ideal value is wanted.
            _ => self.id_cong(e),
        }
    }

    fn binop(&mut self, op: BinOp, a: &Expr, b: &Expr, e: &Expr, want: &AbsFun) -> R<Thm> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => {
                let Some(Ty::Word(w, s)) = self.ty_of(e) else {
                    return self.id_cong(e);
                };
                let natural = AbsFun::for_ty(&Ty::Word(w, s));
                if *want != natural {
                    // Identity mode: keep the word operator.
                    return self.id_cong(e);
                }
                let rule = match (op, s) {
                    (Add, Signedness::Unsigned) => Rule::WSum,
                    (Sub, Signedness::Unsigned) => Rule::WSub,
                    (Mul, Signedness::Unsigned) => Rule::WMul,
                    (Div, Signedness::Unsigned) => Rule::WDiv,
                    (Mod, Signedness::Unsigned) => Rule::WMod,
                    (Add, Signedness::Signed) => Rule::SSum,
                    (Sub, Signedness::Signed) => Rule::SSub,
                    (Mul, Signedness::Signed) => Rule::SMul,
                    (Div, Signedness::Signed) => Rule::SDiv,
                    (Mod, Signedness::Signed) => Rule::SMod,
                    _ => unreachable!(),
                };
                let at = self.val(a, &natural)?;
                let bt = self.val(b, &natural)?;
                Ok(wr::w_arith(self.cx, rule, w, at, bt)?)
            }
            Eq | Ne | Lt | Le => {
                // Compare under the operands' natural abstraction when both
                // sides are words; otherwise identity congruence.
                let fa = self.natural(a);
                let fb = self.natural(b);
                if fa == fb && matches!(fa, AbsFun::Unat | AbsFun::Sint) {
                    let at = self.val(a, &fa)?;
                    let bt = self.val(b, &fa)?;
                    Ok(wr::w_cmp(self.cx, op, at, bt)?)
                } else {
                    self.id_cong(e)
                }
            }
            _ => self.id_cong(e),
        }
    }

    /// Identity congruence: rebuild the operator with id-abstracted
    /// children.
    fn id_cong(&mut self, e: &Expr) -> R<Thm> {
        let kids = expr_children(e);
        if kids.is_empty() {
            // Leaves in id mode.
            return match e {
                Expr::Var(n) => {
                    let t = wr::w_var(self.cx, &self.ctx, n)?;
                    self.adapt(t, &AbsFun::Id, e)
                }
                Expr::Lit(v) => Ok(wr::w_lit(self.cx, &self.ctx, AbsFun::Id, v)?),
                Expr::Global(_) | Expr::Local(_) => {
                    Ok(wr::w_id_cong(self.cx, &self.ctx, e, vec![])?)
                }
                other => self.unsupported(format!("unabstractable leaf `{other}`")),
            };
        }
        let mut thms = Vec::with_capacity(kids.len());
        for k in kids {
            thms.push(self.val(k, &AbsFun::Id)?);
        }
        Ok(wr::w_id_cong(self.cx, &self.ctx, e, thms)?)
    }

    /// Abstracts a statement. `want_rx` steers the return-value abstraction
    /// (needed to keep conditional branches consistent).
    fn stmt(&mut self, p: &Prog, want_rx: Option<&AbsFun>) -> R<Thm> {
        match p {
            Prog::Return(e) => {
                let f = want_rx.cloned().unwrap_or_else(|| self.natural(e));
                let vt = self.val(e, &f)?;
                Ok(wr::ws_value_stmt(self.cx, Rule::WsRet, AbsFun::Id, vt)?)
            }
            Prog::Gets(e) => {
                let f = want_rx.cloned().unwrap_or_else(|| self.natural(e));
                let vt = self.val(e, &f)?;
                Ok(wr::ws_value_stmt(self.cx, Rule::WsGets, AbsFun::Id, vt)?)
            }
            Prog::Throw(e) => {
                // Exceptions keep their concrete values (ex = id); the
                // normal-result abstraction is free, so it follows the
                // surrounding context's expectation.
                let vt = self.val(e, &AbsFun::Id)?;
                Ok(wr::ws_value_stmt(
                    self.cx,
                    Rule::WsThrow,
                    want_rx.cloned().unwrap_or(AbsFun::Id),
                    vt,
                )?)
            }
            Prog::Modify(u) => {
                let mut kids = Vec::new();
                for x in update_exprs(u) {
                    kids.push(self.val(x, &AbsFun::Id)?);
                }
                Ok(wr::ws_modify(self.cx, &self.ctx, AbsFun::Id, u, kids)?)
            }
            Prog::Guard(kind, g) => {
                let vt = self.val(g, &AbsFun::Id)?;
                Ok(wr::ws_guard(self.cx, kind.clone(), AbsFun::Id, vt)?)
            }
            Prog::Fail => Ok(wr::ws_fail(
                self.cx,
                &self.ctx,
                want_rx.cloned().unwrap_or(AbsFun::Id),
                AbsFun::Id,
            )?),
            Prog::Bind(l, v, r) => {
                let lt = self.stmt(l, None)?;
                let lrx = Self::rx_of(&lt);
                let lty = self.prog_value_ty(l);
                let (saved_t, saved_f) = self.push_var(v, lty, lrx);
                let rt = self.stmt(r, want_rx);
                self.pop_var(v, saved_t, saved_f);
                Ok(wr::ws_bind(self.cx, v, lt, rt?)?)
            }
            Prog::BindTuple(l, vs, r) => {
                let lt = self.stmt(l, None)?;
                let lrx = Self::rx_of(&lt);
                let fs: Vec<AbsFun> = match &lrx {
                    AbsFun::Tuple(fs) if fs.len() == vs.len() => fs.clone(),
                    f if vs.len() == 1 => vec![f.clone()],
                    _ => {
                        return self.unsupported("tuple bind over a non-tuple abstraction")
                    }
                };
                let tys = self.prog_tuple_tys(l, vs.len());
                let mut saves = Vec::new();
                for ((v, f), t) in vs.iter().zip(&fs).zip(tys) {
                    saves.push(self.push_var(v, t, f.clone()));
                }
                let rt = self.stmt(r, want_rx);
                for (v, (st, sf)) in vs.iter().zip(saves).rev() {
                    self.pop_var(v, st, sf);
                }
                Ok(wr::ws_bind_tuple(self.cx, vs, lt, rt?)?)
            }
            Prog::Catch(l, v, r) => {
                let lt = self.stmt(l, want_rx)?;
                let lrx = Self::rx_of(&lt);
                let (saved_t, saved_f) = self.push_var(v, None, AbsFun::Id);
                let rt = self.stmt(r, Some(&lrx));
                self.pop_var(v, saved_t, saved_f);
                Ok(wr::ws_catch(self.cx, v, lt, rt?)?)
            }
            Prog::Condition(c, t, e) => {
                let ct = self.val(c, &AbsFun::Id)?;
                let tt = self.stmt(t, want_rx)?;
                let trx = Self::rx_of(&tt);
                let et = self.stmt(e, Some(&trx))?;
                Ok(wr::ws_cond(self.cx, ct, tt, et)?)
            }
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => self.while_loop(vars, cond, body, init),
            Prog::Call { fname, args } => {
                let (arg_fs, rx_hint): (Vec<AbsFun>, AbsFun) =
                    match self.cx.fn_abs.get(fname) {
                        Some((fs, rx, _)) => (fs.clone(), rx.clone()),
                        None => (
                            args.iter().map(|_| AbsFun::Id).collect(),
                            want_rx.cloned().unwrap_or(AbsFun::Id),
                        ),
                    };
                let mut kids = Vec::with_capacity(args.len());
                for (a, f) in args.iter().zip(&arg_fs) {
                    kids.push(self.val(a, f)?);
                }
                Ok(wr::ws_call(self.cx, &self.ctx, fname, kids, rx_hint)?)
            }
            Prog::ExecConcrete(_) | Prog::ExecAbstract(_) => {
                // Mixed-level code stays at the concrete word level.
                Ok(wr::ws_exec_concrete(self.cx, &self.ctx, p)?)
            }
        }
    }

    fn while_loop(
        &mut self,
        vars: &[String],
        cond: &Expr,
        body: &Prog,
        init: &[Expr],
    ) -> R<Thm> {
        // Initialiser theorems fix each iterator's abstraction.
        let mut init_thms = Vec::with_capacity(init.len());
        let mut fs = Vec::with_capacity(init.len());
        let mut tys = Vec::with_capacity(init.len());
        for i in init {
            let f = self.natural(i);
            init_thms.push(self.val(i, &f)?);
            fs.push(f);
            tys.push(self.ty_of(i));
        }
        let packed = if fs.len() == 1 {
            fs[0].clone()
        } else {
            AbsFun::Tuple(fs.clone())
        };
        let mut saves = Vec::new();
        for ((v, f), t) in vars.iter().zip(&fs).zip(&tys) {
            saves.push(self.push_var(v, t.clone(), f.clone()));
        }
        // Condition and body are abstracted in the extended context; the
        // saves are restored before any error propagates.
        let ct_res = self.val(cond, &AbsFun::Id);
        let bt_res = match &ct_res {
            Ok(_) => self.stmt(body, Some(&packed)),
            Err(_) => Err(WaError::Unsupported("skipped".into())),
        };
        for (v, (st, sf)) in vars.iter().zip(saves).rev() {
            self.pop_var(v, st, sf);
        }
        let ct = ct_res?;
        if !Self::pre_of(&ct).is_true_lit() {
            // Should not happen: id-mode conditions have trivial pres.
            return self.unsupported("loop condition with non-trivial precondition");
        }
        let bt = bt_res?;
        Ok(wr::ws_while(
            self.cx, &self.ctx, vars, ct, bt, init_thms,
        )?)
    }

    fn rx_of(t: &Thm) -> AbsFun {
        match t.judgment() {
            Judgment::WStmt { rx, .. } => rx.clone(),
            _ => AbsFun::Id,
        }
    }

    fn pre_of(t: &Thm) -> Expr {
        match t.judgment() {
            Judgment::WVal { pre, .. } => pre.clone(),
            _ => Expr::tt(),
        }
    }

    fn push_var(
        &mut self,
        v: &str,
        ty: Option<Ty>,
        f: AbsFun,
    ) -> (Option<Ty>, Option<AbsFun>) {
        let old_t = match ty {
            Some(t) => self.vars.insert(v.to_owned(), t),
            None => self.vars.remove(v),
        };
        let old_f = self.ctx.insert(v.to_owned(), f);
        (old_t, old_f)
    }

    fn pop_var(&mut self, v: &str, old_t: Option<Ty>, old_f: Option<AbsFun>) {
        match old_t {
            Some(t) => {
                self.vars.insert(v.to_owned(), t);
            }
            None => {
                self.vars.remove(v);
            }
        }
        match old_f {
            Some(f) => {
                self.ctx.insert(v.to_owned(), f);
            }
            None => {
                self.ctx.remove(v);
            }
        }
    }

    /// Best-effort concrete value type of a program.
    fn prog_value_ty(&self, p: &Prog) -> Option<Ty> {
        let mut vars = self.vars.clone();
        self.prog_value_ty_in(&mut vars, p)
    }

    /// `prog_value_ty` against a local variable environment. Bindings
    /// introduced by `Bind`/`BindTuple` along the way are recorded so that
    /// a trailing `return (x, y)` of locally bound words still infers —
    /// the L2 simplifier inlines initializers, so the enclosing engine
    /// environment often has no entry for them (e.g. a do-while's
    /// run-once body feeding its `whileLoop` inits).
    fn prog_value_ty_in(&self, vars: &mut HashMap<String, Ty>, p: &Prog) -> Option<Ty> {
        match p {
            Prog::Return(e) | Prog::Gets(e) => infer_ty(e, vars, &self.cx.tenv),
            Prog::Bind(l, v, r) => {
                if let Some(t) = self.prog_value_ty_in(vars, l) {
                    vars.insert(v.clone(), t);
                }
                self.prog_value_ty_in(vars, r)
            }
            Prog::BindTuple(l, vs, r) => {
                if let Some(Ty::Tuple(ts)) = self.prog_value_ty_in(vars, l) {
                    if ts.len() == vs.len() {
                        for (v, t) in vs.iter().zip(ts) {
                            vars.insert(v.clone(), t);
                        }
                    }
                }
                self.prog_value_ty_in(vars, r)
            }
            Prog::Condition(_, t, e) => {
                let tt = self.prog_value_ty_in(vars, t);
                if tt.is_some() {
                    return tt;
                }
                self.prog_value_ty_in(vars, e)
            }
            Prog::While { init, .. } => {
                if init.len() == 1 {
                    infer_ty(&init[0], vars, &self.cx.tenv)
                } else {
                    init.iter()
                        .map(|i| infer_ty(i, vars, &self.cx.tenv))
                        .collect::<Option<Vec<_>>>()
                        .map(Ty::Tuple)
                }
            }
            Prog::Catch(l, _, _) => self.prog_value_ty_in(vars, l),
            Prog::Call { fname, .. } => {
                self.prog.function(fname).map(|f| f.ret_ty.clone())
            }
            _ => None,
        }
    }

    fn prog_tuple_tys(&self, p: &Prog, n: usize) -> Vec<Option<Ty>> {
        match self.prog_value_ty(p) {
            Some(Ty::Tuple(ts)) if ts.len() == n => ts.into_iter().map(Some).collect(),
            Some(t) if n == 1 => vec![Some(t)],
            _ => vec![None; n],
        }
    }
}

/// Is the abstraction (recursively) the identity?
fn absfun_id_like(f: &AbsFun) -> bool {
    match f {
        AbsFun::Id => true,
        AbsFun::Tuple(fs) => fs.iter().all(absfun_id_like),
        _ => false,
    }
}

fn update_exprs(u: &ir::update::Update) -> Vec<&Expr> {
    use ir::update::Update;
    match u {
        Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => vec![e],
        Update::Heap(_, p, e) | Update::Byte(p, e) => vec![p, e],
    }
}

fn expr_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => vec![],
        Expr::ReadHeap(_, a)
        | Expr::ReadByte(a)
        | Expr::IsValid(_, a)
        | Expr::PtrAligned(_, a)
        | Expr::NullFree(_, a)
        | Expr::Field(a, _)
        | Expr::UnOp(_, a)
        | Expr::Cast(_, a)
        | Expr::Proj(_, a) => vec![a],
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => vec![a, b],
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => vec![a, b, c],
        Expr::Tuple(es) => es.iter().collect(),
    }
}

/// The overflow-test idiom rule of Sec 3.3: `x +w y <w x` (i.e. "the
/// addition wrapped") abstracts to `UINT_MAX < x + y` on naturals.
#[must_use]
pub fn overflow_idiom_rule() -> CustomRule {
    Arc::new(|e: &Expr, ctx: &VarCtx| {
        let Expr::BinOp(BinOp::Lt, sum, x2) = e else {
            return None;
        };
        let Expr::BinOp(BinOp::Add, x, y) = &**sum else {
            return None;
        };
        if x != x2 {
            return None;
        }
        // Both operands must be unat-abstracted variables.
        for v in [x, y] {
            let Expr::Var(n) = &**v else { return None };
            if ctx.get(n.as_str()) != Some(&AbsFun::Unat) {
                return None;
            }
        }
        Some(CustomAbs {
            pre: Expr::tt(),
            f: AbsFun::Id,
            abs: Expr::binop(
                BinOp::Lt,
                Expr::nat(u64::from(u32::MAX)),
                Expr::binop(BinOp::Add, (**x).clone(), (**y).clone()),
            ),
        })
    })
}
