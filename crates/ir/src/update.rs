//! State updates — the deep analogue of the paper's `λs. …` state
//! transformers used by Simpl `Basic` statements and monadic `modify`.

use std::fmt;

use crate::eval::{eval, Env, EvalError};
use crate::expr::Expr;
use crate::state::State;
use crate::ty::Ty;
use crate::value::Value;

/// A single state update.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Update {
    /// Assign a state-stored local variable.
    Local(String, Expr),
    /// Assign a global variable.
    Global(String, Expr),
    /// Typed heap write `write s p v` / `s[p := v]`: encodes bytes on a
    /// concrete state, updates the typed split heap on an abstract state.
    Heap(Ty, Expr, Expr),
    /// Byte-level heap write (concrete states only).
    Byte(Expr, Expr),
    /// Retype the region starting at the pointer to hold an object of the
    /// type (ghost operation; concrete states only).
    TagRegion(Ty, Expr),
}

impl Update {
    /// Applies the update to `st`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; errors if a byte-level update is
    /// applied to an abstract state.
    pub fn apply(&self, env: &Env, st: &mut State) -> Result<(), EvalError> {
        match self {
            Update::Local(n, e) => {
                let v = eval(e, env, st)?;
                st.set_local(n, v);
                Ok(())
            }
            Update::Global(n, e) => {
                let v = eval(e, env, st)?;
                st.set_global(n, v);
                Ok(())
            }
            Update::Heap(ty, p, e) => {
                let pv = match eval(p, env, st)? {
                    Value::Ptr(p) => p,
                    v => {
                        return Err(EvalError::TypeMismatch(format!(
                            "heap write through non-pointer `{v}`"
                        )))
                    }
                };
                let v = eval(e, env, st)?;
                match st {
                    State::Conc(cs) => cs
                        .mem
                        .encode(pv.addr, &v, &env.tenv)
                        .map_err(|e| EvalError::Codec(e.to_string())),
                    State::Abs(asx) => {
                        asx.heap_mut(ty).set(pv.addr, v);
                        Ok(())
                    }
                }
            }
            Update::Byte(p, e) => {
                let pv = match eval(p, env, st)? {
                    Value::Ptr(p) => p,
                    v => {
                        return Err(EvalError::TypeMismatch(format!(
                            "byte write through non-pointer `{v}`"
                        )))
                    }
                };
                let v = eval(e, env, st)?;
                let Some(w) = v.as_word() else {
                    return Err(EvalError::TypeMismatch(format!("byte write of `{v}`")));
                };
                match st {
                    State::Conc(cs) => {
                        cs.mem.write_byte(pv.addr, (w.bits() & 0xFF) as u8);
                        Ok(())
                    }
                    State::Abs(_) => Err(EvalError::WrongStateShape(
                        "byte write on abstract state".into(),
                    )),
                }
            }
            Update::TagRegion(ty, p) => {
                let pv = match eval(p, env, st)? {
                    Value::Ptr(p) => p,
                    v => {
                        return Err(EvalError::TypeMismatch(format!(
                            "retype through non-pointer `{v}`"
                        )))
                    }
                };
                match st {
                    State::Conc(cs) => cs
                        .mem
                        .tag_region(pv.addr, ty, &env.tenv)
                        .map_err(|e| EvalError::Codec(e.to_string())),
                    State::Abs(_) => Err(EvalError::WrongStateShape(
                        "retype on abstract state".into(),
                    )),
                }
            }
        }
    }

    /// The free lambda-bound variables of the contained expressions.
    #[must_use]
    pub fn free_vars(&self) -> std::collections::BTreeSet<String> {
        match self {
            Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => e.free_vars(),
            Update::Heap(_, p, e) | Update::Byte(p, e) => {
                let mut s = p.free_vars();
                s.extend(e.free_vars());
                s
            }
        }
    }

    /// Rewrites contained expressions with `f`.
    #[must_use]
    pub fn map_exprs(&self, f: &impl Fn(&Expr) -> Expr) -> Update {
        match self {
            Update::Local(n, e) => Update::Local(n.clone(), f(e)),
            Update::Global(n, e) => Update::Global(n.clone(), f(e)),
            Update::Heap(t, p, e) => Update::Heap(t.clone(), f(p), f(e)),
            Update::Byte(p, e) => Update::Byte(f(p), f(e)),
            Update::TagRegion(t, e) => Update::TagRegion(t.clone(), f(e)),
        }
    }

    /// Total number of expression AST nodes (for the term-size metric).
    ///
    /// A local update denotes a state-record update in Simpl
    /// (`s⦇a_' := e⦈`), counted accordingly.
    #[must_use]
    pub fn term_size(&self) -> usize {
        match self {
            Update::Local(_, e) => 4 + e.term_size(),
            Update::Global(_, e) | Update::TagRegion(_, e) => 1 + e.term_size(),
            Update::Heap(_, p, e) | Update::Byte(p, e) => 1 + p.term_size() + e.term_size(),
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Local(n, e) => write!(f, "´{n} :== {e}"),
            Update::Global(n, e) => write!(f, "g·{n} :== {e}"),
            Update::Heap(ty, p, e) => write!(f, "s[{p}]·{} := {e}", ty.tag_name()),
            Update::Byte(p, e) => write!(f, "byte s[{p}] := {e}"),
            Update::TagRegion(ty, p) => write!(f, "retype {} at {p}", ty.tag_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TypeEnv;
    use crate::value::Ptr;

    #[test]
    fn local_and_global_updates() {
        let env = Env::new();
        let mut st = State::conc_empty();
        Update::Local("x".into(), Expr::u32(5))
            .apply(&env, &mut st)
            .unwrap();
        Update::Global("g".into(), Expr::u32(9))
            .apply(&env, &mut st)
            .unwrap();
        assert_eq!(st.local("x"), Some(&Value::u32(5)));
        assert_eq!(st.global("g"), Some(&Value::u32(9)));
    }

    #[test]
    fn heap_update_concrete_and_abstract() {
        let env = Env::with_tenv(TypeEnv::new());
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        let upd = Update::Heap(Ty::U32, p.clone(), Expr::u32(7));

        let mut conc = State::conc_empty();
        upd.apply(&env, &mut conc).unwrap();
        assert_eq!(
            crate::eval::eval(&Expr::read_heap(Ty::U32, p.clone()), &env, &conc).unwrap(),
            Value::u32(7)
        );

        let mut abs = State::abs_empty();
        upd.apply(&env, &mut abs).unwrap();
        assert_eq!(
            crate::eval::eval(&Expr::read_heap(Ty::U32, p), &env, &abs).unwrap(),
            Value::u32(7)
        );
    }

    #[test]
    fn byte_update_only_concrete() {
        let env = Env::new();
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x10, Ty::U8)));
        let upd = Update::Byte(p, Expr::Lit(Value::Word(crate::word::Word::u8(0xAB))));
        let mut conc = State::conc_empty();
        upd.apply(&env, &mut conc).unwrap();
        assert_eq!(conc.as_conc().unwrap().mem.read_byte(0x10), 0xAB);
        let mut abs = State::abs_empty();
        assert!(upd.apply(&env, &mut abs).is_err());
    }

    #[test]
    fn retype_changes_validity() {
        let env = Env::with_tenv(TypeEnv::new());
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        let mut st = State::conc_empty();
        let valid = Expr::is_valid(Ty::U32, p.clone());
        assert_eq!(
            crate::eval::eval(&valid, &env, &st).unwrap(),
            Value::Bool(false)
        );
        Update::TagRegion(Ty::U32, p).apply(&env, &mut st).unwrap();
        assert_eq!(
            crate::eval::eval(&valid, &env, &st).unwrap(),
            Value::Bool(true)
        );
    }
}
