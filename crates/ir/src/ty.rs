//! The semantic type language and structure layout.
//!
//! Mirrors the paper's setting: a 32-bit, two's-complement architecture
//! (Sec 2: "Integer arithmetic is architecture-defined, and in our examples
//! matches a two's-complement 32-bit system").

use std::collections::BTreeMap;
use std::fmt;

/// Bit width of a machine word type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8 bits (`char`).
    W8,
    /// 16 bits (`short`).
    W16,
    /// 32 bits (`int`, `long`, pointers).
    W32,
    /// 64 bits (`long long`).
    W64,
}

impl Width {
    /// Number of bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }

    /// Bit mask selecting exactly this width.
    #[must_use]
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }
}

/// Signedness of a machine word type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Signedness {
    /// Two's-complement signed.
    Signed,
    /// Modular unsigned.
    Unsigned,
}

/// Semantic types.
///
/// `Word` covers C's integer types, `Nat`/`Int` are the ideal types produced
/// by word abstraction, `Ptr` is a *typed* pointer (as in Tuch's model), and
/// `Tuple` is used for loop-iterator values of the `whileLoop` combinator.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// The unit (void) type.
    Unit,
    /// Booleans (conditions, guards).
    Bool,
    /// A fixed-width machine word.
    Word(Width, Signedness),
    /// Ideal natural number (HOL `nat`), the abstraction of unsigned words.
    Nat,
    /// Ideal integer (HOL `int`), the abstraction of signed words.
    Int,
    /// Typed pointer; `Ptr(Unit)` plays the role of `void *`.
    Ptr(Box<Ty>),
    /// A named structure type.
    Struct(String),
    /// Tuple of values (loop iterator state).
    Tuple(Vec<Ty>),
    /// Fixed-size array `T[N]`, modelled as a functional value (an HOL
    /// list of known length). Arrays live in locals/globals only — they
    /// never decay to pointers in the supported subset.
    Arr(Box<Ty>, u64),
}

impl Ty {
    /// `unsigned int` on the modelled architecture.
    pub const U32: Ty = Ty::Word(Width::W32, Signedness::Unsigned);
    /// `int` on the modelled architecture.
    pub const I32: Ty = Ty::Word(Width::W32, Signedness::Signed);
    /// `unsigned char`.
    pub const U8: Ty = Ty::Word(Width::W8, Signedness::Unsigned);
    /// `unsigned short`.
    pub const U16: Ty = Ty::Word(Width::W16, Signedness::Unsigned);
    /// `unsigned long long`.
    pub const U64: Ty = Ty::Word(Width::W64, Signedness::Unsigned);

    /// Builds a pointer type to `self`.
    #[must_use]
    pub fn ptr_to(self) -> Ty {
        Ty::Ptr(Box::new(self))
    }

    /// Builds a fixed-size array type of `self`.
    #[must_use]
    pub fn arr_of(self, n: u64) -> Ty {
        Ty::Arr(Box::new(self), n)
    }

    /// Is this a machine-word type?
    #[must_use]
    pub fn is_word(&self) -> bool {
        matches!(self, Ty::Word(..))
    }

    /// Is this a pointer type?
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// The pointee of a pointer type.
    #[must_use]
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// The ideal type a word type abstracts to under word abstraction:
    /// unsigned words become `Nat`, signed words become `Int`.
    /// Non-word types are unchanged.
    #[must_use]
    pub fn word_abstracted(&self) -> Ty {
        match self {
            Ty::Word(_, Signedness::Unsigned) => Ty::Nat,
            Ty::Word(_, Signedness::Signed) => Ty::Int,
            t => t.clone(),
        }
    }

    /// A short suffix naming this type in generated identifiers, e.g.
    /// `w32` in `is_valid_w32` (matching the paper's Fig 5 naming).
    #[must_use]
    pub fn tag_name(&self) -> String {
        match self {
            Ty::Unit => "unit".to_owned(),
            Ty::Bool => "bool".to_owned(),
            Ty::Word(w, Signedness::Unsigned) => format!("w{}", w.bits()),
            Ty::Word(w, Signedness::Signed) => format!("sw{}", w.bits()),
            Ty::Nat => "nat".to_owned(),
            Ty::Int => "int".to_owned(),
            Ty::Ptr(t) => format!("ptr_{}", t.tag_name()),
            Ty::Struct(n) => format!("{n}_C"),
            Ty::Tuple(ts) => {
                let inner: Vec<String> = ts.iter().map(Ty::tag_name).collect();
                format!("tup_{}", inner.join("_"))
            }
            Ty::Arr(t, n) => format!("arr{}_{}", n, t.tag_name()),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Bool => write!(f, "bool"),
            Ty::Word(w, Signedness::Unsigned) => write!(f, "word{}", w.bits()),
            Ty::Word(w, Signedness::Signed) => write!(f, "sword{}", w.bits()),
            Ty::Nat => write!(f, "nat"),
            Ty::Int => write!(f, "int"),
            Ty::Ptr(t) => write!(f, "{t} ptr"),
            Ty::Struct(n) => write!(f, "{n}_C"),
            Ty::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::Arr(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// A field of a structure, with its byte offset within the struct.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructField {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset from the start of the structure.
    pub offset: u64,
}

/// Layout of a structure type: fields with offsets, total size, alignment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructDef {
    /// Structure tag name (without the generated `_C` suffix).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<StructField>,
    /// Total size in bytes (including trailing padding).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

impl StructDef {
    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&StructField> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// The type environment: structure layouts for the current program.
///
/// Sizes and alignments follow the modelled 32-bit architecture: words are
/// their natural size and alignment, pointers are 4 bytes / 4-aligned, and
/// structs use standard C layout (each field aligned to its own alignment,
/// total size rounded up to the struct alignment).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct TypeEnv {
    structs: BTreeMap<String, StructDef>,
}

/// Error produced when a layout query refers to an unknown structure type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownStructError(pub String);

impl fmt::Display for UnknownStructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown struct type `{}`", self.0)
    }
}

impl std::error::Error for UnknownStructError {}

impl TypeEnv {
    /// Creates an empty type environment.
    #[must_use]
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Registers a structure from `(name, fields)` computing offsets, size
    /// and alignment. Field types must already be layoutable.
    ///
    /// # Errors
    ///
    /// Returns an error if a field's type refers to an unknown struct.
    pub fn define_struct(
        &mut self,
        name: &str,
        fields: Vec<(String, Ty)>,
    ) -> Result<(), UnknownStructError> {
        let mut off = 0u64;
        let mut align = 1u64;
        let mut out = Vec::with_capacity(fields.len());
        for (fname, fty) in fields {
            let fal = self.align_of(&fty)?;
            let fsz = self.size_of(&fty)?;
            off = round_up(off, fal);
            out.push(StructField {
                name: fname,
                ty: fty,
                offset: off,
            });
            off += fsz;
            align = align.max(fal);
        }
        let size = round_up(off.max(1), align);
        self.structs.insert(
            name.to_owned(),
            StructDef {
                name: name.to_owned(),
                fields: out,
                size,
                align,
            },
        );
        Ok(())
    }

    /// Looks up a structure definition.
    #[must_use]
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Inserts a fully laid-out structure definition verbatim (codec
    /// reconstruction; `define_struct` is the layout-computing entry).
    pub(crate) fn insert_struct_def(&mut self, def: StructDef) {
        self.structs.insert(def.name.clone(), def);
    }

    /// Iterates over all registered structures.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.structs.values()
    }

    /// Size in bytes of a type (`obj_size` in the paper).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown struct names.
    pub fn size_of(&self, ty: &Ty) -> Result<u64, UnknownStructError> {
        Ok(match ty {
            Ty::Unit | Ty::Bool => 1,
            Ty::Word(w, _) => w.bytes(),
            // Ideal types have no machine representation; they never appear
            // in layouts, but give them a nominal size for totality.
            Ty::Nat | Ty::Int => 4,
            Ty::Ptr(_) => 4,
            Ty::Struct(n) => {
                self.struct_def(n)
                    .ok_or_else(|| UnknownStructError(n.clone()))?
                    .size
            }
            Ty::Tuple(ts) => {
                let mut s = 0;
                for t in ts {
                    s += self.size_of(t)?;
                }
                s.max(1)
            }
            Ty::Arr(t, n) => (self.size_of(t)? * n).max(1),
        })
    }

    /// Alignment in bytes of a type.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown struct names.
    pub fn align_of(&self, ty: &Ty) -> Result<u64, UnknownStructError> {
        Ok(match ty {
            Ty::Unit | Ty::Bool => 1,
            Ty::Word(w, _) => w.bytes(),
            Ty::Nat | Ty::Int => 4,
            Ty::Ptr(_) => 4,
            Ty::Struct(n) => {
                self.struct_def(n)
                    .ok_or_else(|| UnknownStructError(n.clone()))?
                    .align
            }
            Ty::Tuple(_) => 4,
            Ty::Arr(t, _) => self.align_of(t)?,
        })
    }

    /// Byte offset of `field` within struct `name`.
    ///
    /// # Errors
    ///
    /// Returns an error if the struct or the field is unknown.
    pub fn field_offset(&self, name: &str, field: &str) -> Result<u64, UnknownStructError> {
        let def = self
            .struct_def(name)
            .ok_or_else(|| UnknownStructError(name.to_owned()))?;
        def.field(field)
            .map(|f| f.offset)
            .ok_or_else(|| UnknownStructError(format!("{name}.{field}")))
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_widths() {
        assert_eq!(Width::W8.bits(), 8);
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W16.mask(), 0xFFFF);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn scalar_layout() {
        let env = TypeEnv::new();
        assert_eq!(env.size_of(&Ty::U32).unwrap(), 4);
        assert_eq!(env.align_of(&Ty::U8).unwrap(), 1);
        assert_eq!(env.size_of(&Ty::U32.ptr_to()).unwrap(), 4);
        assert_eq!(env.size_of(&Ty::U64).unwrap(), 8);
    }

    #[test]
    fn struct_layout_with_padding() {
        let mut env = TypeEnv::new();
        // struct { char c; unsigned x; short s; } -> offsets 0, 4, 8; size 12
        env.define_struct(
            "mixed",
            vec![
                ("c".into(), Ty::U8),
                ("x".into(), Ty::U32),
                ("s".into(), Ty::U16),
            ],
        )
        .unwrap();
        let d = env.struct_def("mixed").unwrap();
        assert_eq!(d.field("c").unwrap().offset, 0);
        assert_eq!(d.field("x").unwrap().offset, 4);
        assert_eq!(d.field("s").unwrap().offset, 8);
        assert_eq!(d.size, 12);
        assert_eq!(d.align, 4);
    }

    #[test]
    fn node_struct_layout() {
        // The Schorr-Waite node: two pointers + two word flags.
        let mut env = TypeEnv::new();
        env.define_struct(
            "node",
            vec![
                ("l".into(), Ty::Struct("node".into()).ptr_to()),
                ("r".into(), Ty::Struct("node".into()).ptr_to()),
                ("m".into(), Ty::U32),
                ("c".into(), Ty::U32),
            ],
        )
        .unwrap();
        let d = env.struct_def("node").unwrap();
        assert_eq!(d.size, 16);
        assert_eq!(env.field_offset("node", "m").unwrap(), 8);
    }

    #[test]
    fn nested_struct() {
        let mut env = TypeEnv::new();
        env.define_struct("inner", vec![("a".into(), Ty::U16)]).unwrap();
        env.define_struct(
            "outer",
            vec![
                ("i".into(), Ty::Struct("inner".into())),
                ("b".into(), Ty::U32),
            ],
        )
        .unwrap();
        let d = env.struct_def("outer").unwrap();
        assert_eq!(d.field("b").unwrap().offset, 4);
        assert_eq!(d.size, 8);
    }

    #[test]
    fn unknown_struct_errors() {
        let env = TypeEnv::new();
        assert!(env.size_of(&Ty::Struct("nope".into())).is_err());
        assert!(env.field_offset("nope", "f").is_err());
    }

    #[test]
    fn abstracted_types() {
        assert_eq!(Ty::U32.word_abstracted(), Ty::Nat);
        assert_eq!(Ty::I32.word_abstracted(), Ty::Int);
        assert_eq!(Ty::Bool.word_abstracted(), Ty::Bool);
    }

    #[test]
    fn display_names() {
        assert_eq!(Ty::U32.to_string(), "word32");
        assert_eq!(Ty::I32.to_string(), "sword32");
        assert_eq!(Ty::U32.ptr_to().to_string(), "word32 ptr");
        assert_eq!(Ty::Struct("node".into()).to_string(), "node_C");
        assert_eq!(Ty::U32.tag_name(), "w32");
        assert_eq!(Ty::I32.tag_name(), "sw32");
    }
}
