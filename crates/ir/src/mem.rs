//! The byte-level memory model (Tuch et al.).
//!
//! Memory is a function `word32 ⇒ word8` (here: a sparse map over the 32-bit
//! address space) together with *type tags* (Sec 4.2): each address is either
//! the first byte of an object of some type, the footprint of an earlier
//! object, or untyped. Tags are ghost state — they do not influence what the
//! bytes are, only whether `heap_lift` considers an address to hold a valid
//! typed object.

use std::collections::BTreeMap;
use std::fmt;

use crate::ty::{Signedness, Ty, TypeEnv, Width};
use crate::value::{Ptr, Value};
use crate::word::Word;

/// Mask confining addresses to the modelled 32-bit address space.
pub const ADDR_MASK: u64 = 0xFFFF_FFFF;

/// The type tag of an address (ghost state for heap lifting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tag {
    /// First byte of an object of the given type.
    First(Ty),
    /// Footprint byte of an object starting earlier.
    Footprint,
}

/// Byte-addressed memory with type tags.
///
/// Reads of unwritten addresses return 0 (memory is total, as in the paper's
/// `word32 ⇒ word8` function model). Untagged addresses are simply absent
/// from the tag map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Memory {
    bytes: BTreeMap<u64, u8>,
    tags: BTreeMap<u64, Tag>,
}

/// Error raised when encoding/decoding typed values fails (unknown struct,
/// non-representable value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl Memory {
    /// Creates an empty (all-zero, untagged) memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads the byte at `addr` (0 if never written).
    #[must_use]
    pub fn read_byte(&self, addr: u64) -> u8 {
        *self.bytes.get(&(addr & ADDR_MASK)).unwrap_or(&0)
    }

    /// Writes the byte at `addr`.
    pub fn write_byte(&mut self, addr: u64, v: u8) {
        self.bytes.insert(addr & ADDR_MASK, v);
    }

    /// Reads `len` bytes starting at `addr` (wrapping addresses).
    #[must_use]
    pub fn read_bytes(&self, addr: u64, len: u64) -> Vec<u8> {
        (0..len).map(|i| self.read_byte(addr.wrapping_add(i))).collect()
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u64), *b);
        }
    }

    /// The tag at `addr`, if any.
    #[must_use]
    pub fn tag(&self, addr: u64) -> Option<&Tag> {
        self.tags.get(&(addr & ADDR_MASK))
    }

    /// Tags the region `[addr, addr+size)` as holding an object of type
    /// `ty` (first byte + footprint). This is the paper's *retyping*
    /// operation used around `malloc`/`free`-style code.
    ///
    /// # Errors
    ///
    /// Fails if the type's size cannot be computed.
    pub fn tag_region(&mut self, addr: u64, ty: &Ty, tenv: &TypeEnv) -> Result<(), CodecError> {
        let size = tenv
            .size_of(ty)
            .map_err(|e| CodecError(e.to_string()))?;
        self.tags.insert(addr & ADDR_MASK, Tag::First(ty.clone()));
        for i in 1..size {
            self.tags
                .insert(addr.wrapping_add(i) & ADDR_MASK, Tag::Footprint);
        }
        Ok(())
    }

    /// Removes tags from the region `[addr, addr+len)` (retype to untyped).
    pub fn untag_region(&mut self, addr: u64, len: u64) {
        for i in 0..len {
            self.tags.remove(&(addr.wrapping_add(i) & ADDR_MASK));
        }
    }

    /// Is the whole footprint of a `ty` object at `addr` correctly tagged
    /// (`type_tag_valid` in the paper's `heap_lift`)?
    #[must_use]
    pub fn type_tag_valid(&self, addr: u64, ty: &Ty, tenv: &TypeEnv) -> bool {
        let Ok(size) = tenv.size_of(ty) else {
            return false;
        };
        match self.tag(addr) {
            Some(Tag::First(t)) if t == ty => {}
            _ => return false,
        }
        (1..size).all(|i| matches!(self.tag(addr.wrapping_add(i)), Some(Tag::Footprint)))
    }

    /// Iterates over addresses tagged as first bytes, with their types.
    pub fn tagged_objects(&self) -> impl Iterator<Item = (u64, &Ty)> {
        self.tags.iter().filter_map(|(a, t)| match t {
            Tag::First(ty) => Some((*a, ty)),
            Tag::Footprint => None,
        })
    }

    /// Decodes a typed value from the bytes at `addr` (`h_val`).
    ///
    /// # Errors
    ///
    /// Fails on unknown struct types or non-representable target types
    /// (`Nat`, `Int`, tuples).
    pub fn decode(&self, addr: u64, ty: &Ty, tenv: &TypeEnv) -> Result<Value, CodecError> {
        match ty {
            Ty::Word(w, s) => {
                let bs = self.read_bytes(addr, w.bytes());
                Ok(Value::Word(Word::from_le_bytes(&bs, *w, *s)))
            }
            Ty::Ptr(p) => {
                let bs = self.read_bytes(addr, 4);
                let w = Word::from_le_bytes(&bs, Width::W32, Signedness::Unsigned);
                Ok(Value::Ptr(Ptr::new(w.bits(), (**p).clone())))
            }
            Ty::Bool => Ok(Value::Bool(self.read_byte(addr) != 0)),
            Ty::Unit => Ok(Value::Unit),
            Ty::Struct(name) => {
                let def = tenv
                    .struct_def(name)
                    .ok_or_else(|| CodecError(format!("unknown struct `{name}`")))?
                    .clone();
                let mut fields = Vec::with_capacity(def.fields.len());
                for f in &def.fields {
                    fields.push((
                        f.name.clone(),
                        self.decode(addr.wrapping_add(f.offset), &f.ty, tenv)?,
                    ));
                }
                Ok(Value::Struct(name.clone(), fields))
            }
            // Arrays are functional values living in locals/globals only;
            // they are never stored through the byte heap.
            Ty::Nat | Ty::Int | Ty::Tuple(_) | Ty::Arr(..) => Err(CodecError(format!(
                "type `{ty}` has no machine representation"
            ))),
        }
    }

    /// Encodes a typed value into the bytes at `addr` (`heap_update`).
    ///
    /// # Errors
    ///
    /// Fails on values with no machine representation.
    pub fn encode(&mut self, addr: u64, v: &Value, tenv: &TypeEnv) -> Result<(), CodecError> {
        match v {
            Value::Word(w) => {
                self.write_bytes(addr, &w.to_le_bytes());
                Ok(())
            }
            Value::Ptr(p) => {
                self.write_bytes(addr, &Word::u32(p.addr as u32).to_le_bytes());
                Ok(())
            }
            Value::Bool(b) => {
                self.write_byte(addr, u8::from(*b));
                Ok(())
            }
            Value::Unit => Ok(()),
            Value::Struct(name, fields) => {
                let def = tenv
                    .struct_def(name)
                    .ok_or_else(|| CodecError(format!("unknown struct `{name}`")))?
                    .clone();
                for f in &def.fields {
                    let fv = fields
                        .iter()
                        .find(|(n, _)| n == &f.name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| {
                            CodecError(format!("missing field `{}` in `{name}` value", f.name))
                        })?;
                    self.encode(addr.wrapping_add(f.offset), fv, tenv)?;
                }
                Ok(())
            }
            Value::Nat(_) | Value::Int(_) | Value::Tuple(_) | Value::Arr(..) => {
                Err(CodecError(format!(
                    "value `{v}` has no machine representation"
                )))
            }
        }
    }

    /// Allocates, tags and initialises an object, returning its pointer.
    /// This is a test/setup convenience, not part of the modelled semantics.
    ///
    /// # Errors
    ///
    /// Propagates codec failures.
    pub fn alloc(&mut self, addr: u64, v: &Value, tenv: &TypeEnv) -> Result<Ptr, CodecError> {
        let ty = v.ty();
        self.tag_region(addr, &ty, tenv)?;
        self.encode(addr, v, tenv)?;
        Ok(Ptr::new(addr, ty))
    }

    /// `ptr_aligned`: is `addr` aligned for objects of type `ty`?
    #[must_use]
    pub fn ptr_aligned(addr: u64, ty: &Ty, tenv: &TypeEnv) -> bool {
        tenv.align_of(ty).is_ok_and(|a| addr.is_multiple_of(a))
    }

    /// `0 ∉ {addr ..+ size ty}`: the object is non-null and does not wrap
    /// around the end of the 32-bit address space.
    #[must_use]
    pub fn null_free(addr: u64, ty: &Ty, tenv: &TypeEnv) -> bool {
        let Ok(size) = tenv.size_of(ty) else {
            return false;
        };
        // The range {addr ..+ size} contains 0 iff addr == 0, or the range
        // wraps past 2^32 back to 0.
        addr != 0 && addr + size <= (ADDR_MASK + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenv_with_node() -> TypeEnv {
        let mut tenv = TypeEnv::new();
        tenv.define_struct(
            "node",
            vec![
                ("next".into(), Ty::Struct("node".into()).ptr_to()),
                ("data".into(), Ty::U32),
            ],
        )
        .unwrap();
        tenv
    }

    #[test]
    fn bytes_default_zero() {
        let m = Memory::new();
        assert_eq!(m.read_byte(0x1234), 0);
        assert_eq!(m.read_bytes(0, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn word_round_trip() {
        let tenv = TypeEnv::new();
        let mut m = Memory::new();
        m.encode(0x100, &Value::u32(0xDEAD_BEEF), &tenv).unwrap();
        assert_eq!(
            m.decode(0x100, &Ty::U32, &tenv).unwrap(),
            Value::u32(0xDEAD_BEEF)
        );
        // little-endian layout, byte-level view
        assert_eq!(m.read_byte(0x100), 0xEF);
        assert_eq!(m.read_byte(0x103), 0xDE);
    }

    #[test]
    fn struct_round_trip() {
        let tenv = tenv_with_node();
        let mut m = Memory::new();
        let v = Value::Struct(
            "node".into(),
            vec![
                (
                    "next".into(),
                    Value::Ptr(Ptr::new(0x2000, Ty::Struct("node".into()))),
                ),
                ("data".into(), Value::u32(42)),
            ],
        );
        m.encode(0x1000, &v, &tenv).unwrap();
        assert_eq!(m.decode(0x1000, &Ty::Struct("node".into()), &tenv).unwrap(), v);
        // field `data` is at offset 4
        assert_eq!(m.decode(0x1004, &Ty::U32, &tenv).unwrap(), Value::u32(42));
    }

    #[test]
    fn tagging() {
        let tenv = TypeEnv::new();
        let mut m = Memory::new();
        m.tag_region(0x100, &Ty::U32, &tenv).unwrap();
        assert!(m.type_tag_valid(0x100, &Ty::U32, &tenv));
        assert!(!m.type_tag_valid(0x101, &Ty::U32, &tenv), "footprint byte");
        assert!(!m.type_tag_valid(0x100, &Ty::U16, &tenv), "wrong type");
        assert!(!m.type_tag_valid(0x200, &Ty::U32, &tenv), "untagged");
        m.untag_region(0x100, 4);
        assert!(!m.type_tag_valid(0x100, &Ty::U32, &tenv));
    }

    #[test]
    fn retyping_overwrites() {
        let tenv = TypeEnv::new();
        let mut m = Memory::new();
        m.tag_region(0x100, &Ty::U32, &tenv).unwrap();
        // Retype the same region as two u16s.
        m.tag_region(0x100, &Ty::U16, &tenv).unwrap();
        m.tag_region(0x102, &Ty::U16, &tenv).unwrap();
        assert!(m.type_tag_valid(0x100, &Ty::U16, &tenv));
        assert!(m.type_tag_valid(0x102, &Ty::U16, &tenv));
        assert!(!m.type_tag_valid(0x100, &Ty::U32, &tenv));
    }

    #[test]
    fn alignment_and_null_free() {
        let tenv = TypeEnv::new();
        assert!(Memory::ptr_aligned(0x100, &Ty::U32, &tenv));
        assert!(!Memory::ptr_aligned(0x101, &Ty::U32, &tenv));
        assert!(Memory::ptr_aligned(0x101, &Ty::U8, &tenv));
        assert!(Memory::null_free(0x100, &Ty::U32, &tenv));
        assert!(!Memory::null_free(0, &Ty::U32, &tenv), "NULL");
        assert!(
            !Memory::null_free(0xFFFF_FFFE, &Ty::U32, &tenv),
            "wraps past end of address space"
        );
        assert!(Memory::null_free(0xFFFF_FFFC, &Ty::U32, &tenv));
    }

    #[test]
    fn ideal_types_not_representable() {
        let tenv = TypeEnv::new();
        let mut m = Memory::new();
        assert!(m.encode(0, &Value::nat(3u64), &tenv).is_err());
        assert!(m.decode(0, &Ty::Nat, &tenv).is_err());
    }
}
