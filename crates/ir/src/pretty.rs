//! Pretty-printing of expressions in the paper's notation.
//!
//! Renders `s[p]` for typed heap reads, `is_valid_w32 s p` for validity,
//! `unat`/`sint` for abstraction casts, and infix operators. Used both for
//! the human-readable output specifications and for the *lines of spec*
//! metric of Table 5 (via [`crate::metrics`]).

use std::fmt;

use crate::expr::{BinOp, CastKind, Expr, UnOp};

/// Precedence levels for parenthesisation.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Implies => 1,
        BinOp::Or => 2,
        BinOp::And => 3,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le => 4,
        BinOp::BitOr => 5,
        BinOp::BitXor => 6,
        BinOp::BitAnd => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub | BinOp::PtrAdd => 9,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 10,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::BitAnd => "&&&",
        BinOp::BitOr => "|||",
        BinOp::BitXor => "xor",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "=",
        BinOp::Ne => "≠",
        BinOp::Lt => "<",
        BinOp::Le => "≤",
        BinOp::And => "∧",
        BinOp::Or => "∨",
        BinOp::Implies => "⟶",
        BinOp::PtrAdd => "+p",
    }
}

/// Formats `e` into `f` (entry point used by `Expr`'s `Display`).
///
/// # Errors
///
/// Propagates formatter errors.
pub fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write_expr(e, 0, f)
}

fn write_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Lit(v) => write!(f, "{v}"),
        Expr::Var(n) => write!(f, "{n}"),
        Expr::Local(n) => write!(f, "´{n}"),
        Expr::Global(n) => write!(f, "g·{n}"),
        Expr::ReadHeap(ty, p) => {
            write!(f, "s[")?;
            write_expr(p, 0, f)?;
            write!(f, "]·{}", ty.tag_name())
        }
        Expr::ReadByte(p) => {
            write!(f, "byte s[")?;
            write_expr(p, 0, f)?;
            write!(f, "]")
        }
        Expr::IsValid(ty, p) => {
            write!(f, "is_valid_{} s ", ty.tag_name())?;
            write_expr(p, 11, f)
        }
        Expr::PtrAligned(_, p) => {
            write!(f, "ptr_aligned ")?;
            write_expr(p, 11, f)
        }
        Expr::NullFree(ty, p) => {
            write!(f, "0 ∉ {{")?;
            write_expr(p, 0, f)?;
            write!(f, " ..+ size {}}}", ty.tag_name())
        }
        Expr::Field(s, n) => {
            write_expr(s, 11, f)?;
            write!(f, "→{n}")
        }
        Expr::UpdateField(s, n, v) => {
            write_expr(s, 11, f)?;
            write!(f, "⦇{n} := ")?;
            write_expr(v, 0, f)?;
            write!(f, "⦈")
        }
        Expr::UnOp(op, a) => {
            let sym = match op {
                UnOp::Not => "¬",
                UnOp::BitNot => "~",
                UnOp::Neg => "-",
            };
            write!(f, "{sym}")?;
            write_expr(a, 11, f)
        }
        Expr::BinOp(op, a, b) => {
            let p = prec(*op);
            if p <= parent_prec {
                write!(f, "(")?;
            }
            write_expr(a, p, f)?;
            write!(f, " {} ", op_str(*op))?;
            write_expr(b, p, f)?;
            if p <= parent_prec {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Cast(k, a) => {
            let name = match k {
                CastKind::WordToWord(w, s) => {
                    let base = match s {
                        crate::ty::Signedness::Unsigned => "ucast",
                        crate::ty::Signedness::Signed => "scast",
                    };
                    format!("{base}{}", w.bits())
                }
                CastKind::Unat => "unat".to_owned(),
                CastKind::Sint => "sint".to_owned(),
                CastKind::OfNat(w, _) => format!("of_nat{}", w.bits()),
                CastKind::OfInt(w, _) => format!("of_int{}", w.bits()),
                CastKind::NatToInt => "int".to_owned(),
                CastKind::IntToNat => "nat".to_owned(),
                CastKind::PtrToWord => "ptr_val".to_owned(),
                CastKind::WordToPtr(t) => format!("Ptr[{}]", t.tag_name()),
                CastKind::PtrRetype(t) => format!("ptr_coerce[{}]", t.tag_name()),
            };
            write!(f, "{name} ")?;
            write_expr(a, 11, f)
        }
        Expr::Ite(c, t, e2) => {
            if parent_prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "if ")?;
            write_expr(c, 0, f)?;
            write!(f, " then ")?;
            write_expr(t, 0, f)?;
            write!(f, " else ")?;
            write_expr(e2, 0, f)?;
            if parent_prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Tuple(es) => {
            write!(f, "(")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(e, 0, f)?;
            }
            write!(f, ")")
        }
        Expr::Proj(i, e) => {
            write!(f, "π{i} ")?;
            write_expr(e, 11, f)
        }
        Expr::Index(a, i) => {
            write_expr(a, 11, f)?;
            write!(f, " ! ")?;
            write_expr(i, 11, f)
        }
        Expr::ArrUpd(a, i, v) => {
            write_expr(a, 11, f)?;
            write!(f, "[")?;
            write_expr(i, 0, f)?;
            write!(f, " := ")?;
            write_expr(v, 0, f)?;
            write!(f, "]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Ty;
    use crate::value::Value;

    #[test]
    fn infix_with_precedence() {
        let e = Expr::binop(
            BinOp::Mul,
            Expr::binop(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = Expr::binop(
            BinOp::Add,
            Expr::var("a"),
            Expr::binop(BinOp::Mul, Expr::var("b"), Expr::var("c")),
        );
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn paper_notation() {
        let p = Expr::var("p");
        assert_eq!(
            Expr::read_heap(Ty::U32, p.clone()).to_string(),
            "s[p]·w32"
        );
        assert_eq!(
            Expr::is_valid(Ty::U32, p.clone()).to_string(),
            "is_valid_w32 s p"
        );
        assert_eq!(
            Expr::cast(CastKind::Unat, Expr::var("l")).to_string(),
            "unat l"
        );
        assert_eq!(Expr::field(p, "next").to_string(), "p→next");
    }

    #[test]
    fn conditionals_and_eq() {
        let e = Expr::ite(
            Expr::binop(BinOp::Lt, Expr::var("a"), Expr::var("b")),
            Expr::var("b"),
            Expr::var("a"),
        );
        assert_eq!(e.to_string(), "if a < b then b else a");
    }

    #[test]
    fn literals() {
        assert_eq!(Expr::u32(5).to_string(), "5");
        assert_eq!(Expr::i32(-5).to_string(), "-5");
        assert_eq!(Expr::null(Ty::U32).to_string(), "NULL");
        assert_eq!(Expr::Lit(Value::Unit).to_string(), "()");
    }
}
