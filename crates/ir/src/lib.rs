//! Shared semantic core of AutoCorres-rs.
//!
//! Every phase of the pipeline — Simpl, the monadic embeddings, heap
//! abstraction and word abstraction — manipulates the same small set of
//! semantic objects, defined here:
//!
//! * [`ty::Ty`] — the semantic type language (machine words, ideal `nat` and
//!   `int`, typed pointers, structures),
//! * [`word::Word`] — fixed-width machine words with C's wrap-around and
//!   two's-complement semantics,
//! * [`value::Value`] — runtime values,
//! * [`expr::Expr`] — the state-dependent expression language (the deep
//!   analogue of the paper's `λs. …` terms),
//! * [`state::State`] — program states: a concrete byte-level memory
//!   ([`mem::Memory`], Tuch's model) or abstract typed split heaps
//!   ([`state::AbsState`], Sec 4.4 of the paper),
//! * [`eval`] — the evaluator giving expressions their meaning,
//! * [`metrics`] — the *term size* and *lines of spec* metrics of Table 5.
//!
//! # Example
//!
//! ```
//! use ir::expr::{Expr, BinOp};
//! use ir::value::Value;
//! use ir::state::State;
//! use ir::eval::{eval, Env};
//! use bignum::Nat;
//!
//! // (2 + 3) evaluated over ideal naturals
//! let e = Expr::binop(BinOp::Add, Expr::nat(2u64), Expr::nat(3u64));
//! let v = eval(&e, &Env::new(), &State::abs_empty()).unwrap();
//! assert_eq!(v, Value::Nat(Nat::from(5u64)));
//! ```

pub mod codec;
pub mod diag;
pub mod eval;
pub mod guard;
pub mod expr;
pub mod intern;
pub mod mem;
pub mod metrics;
pub mod names;
pub mod pretty;
pub mod state;
pub mod ty;
pub mod typing;
pub mod update;
pub mod value;
pub mod word;

pub use diag::{Diag, DiagKind, Span};
pub use expr::{BinOp, CastKind, Expr, IExpr, UnOp};
pub use guard::GuardKind;
pub use intern::{Internable, InternStats, Interned, Interner};
pub use names::Symbol;
pub use state::{AbsState, ConcState, State};
pub use ty::{Signedness, StructDef, StructField, Ty, TypeEnv, Width};
pub use update::Update;
pub use value::{Ptr, Value};
pub use word::Word;

// The parallel pipeline shares programs, states, and values across scoped
// worker threads by reference. These types must stay `Send + Sync` (no
// interior mutability, no `Rc`); the assertion turns an accidental
// regression into a compile error at the source instead of a distant
// trait-bound failure in the scheduler.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Expr>();
    assert_send_sync::<Update>();
    assert_send_sync::<Value>();
    assert_send_sync::<State>();
    assert_send_sync::<Ty>();
    assert_send_sync::<TypeEnv>();
    assert_send_sync::<GuardKind>();
};
