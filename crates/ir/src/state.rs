//! Program states.
//!
//! The pipeline works over two state shapes:
//!
//! * [`ConcState`] — the state of the C parser's output and of the L1/L2
//!   monadic embeddings: a byte-level [`Memory`] plus local and global
//!   variable frames (the paper's `globals` record).
//! * [`AbsState`] — the state after heap abstraction: one `is_valid`/`heap`
//!   pair of functions per heap type (the paper's `abs_globals` record,
//!   Sec 4.4), plus the same variable frames.
//!
//! [`State`] is the sum of the two, so one evaluator and one interpreter
//! serve every pipeline level.

use std::collections::{BTreeMap, BTreeSet};

use crate::mem::Memory;
use crate::ty::Ty;
use crate::value::Value;

/// A typed split heap for one heap type: the validity set and the value map.
///
/// Splitting validity from data is the paper's Sec 4.4 design point: data at
/// an address changes frequently, validity rarely, and keeping them separate
/// makes that independence syntactically obvious.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypedHeap {
    /// Addresses holding a valid object of this type (`is_valid_τ`).
    pub valid: BTreeSet<u64>,
    /// The object values (`heap_τ`). Total in the model; absent keys read as
    /// the type's zero value.
    pub vals: BTreeMap<u64, Value>,
}

impl TypedHeap {
    /// Is `addr` valid in this heap?
    #[must_use]
    pub fn is_valid(&self, addr: u64) -> bool {
        self.valid.contains(&addr)
    }

    /// The value at `addr`, if explicitly set.
    #[must_use]
    pub fn get(&self, addr: u64) -> Option<&Value> {
        self.vals.get(&addr)
    }

    /// Functional update of the value at `addr`.
    pub fn set(&mut self, addr: u64, v: Value) {
        self.vals.insert(addr, v);
    }
}

/// Concrete program state: byte memory + variable frames.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcState {
    /// The byte-level heap with type tags.
    pub mem: Memory,
    /// State-stored local variables (present until local-variable lifting).
    pub locals: BTreeMap<String, Value>,
    /// Global variables.
    pub globals: BTreeMap<String, Value>,
}

/// Abstract program state: typed split heaps + variable frames.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbsState {
    /// One typed heap per heap type used by the program.
    pub heaps: BTreeMap<Ty, TypedHeap>,
    /// State-stored local variables (normally empty at this level).
    pub locals: BTreeMap<String, Value>,
    /// Global variables.
    pub globals: BTreeMap<String, Value>,
}

impl AbsState {
    /// The typed heap for `ty`, if present.
    #[must_use]
    pub fn heap(&self, ty: &Ty) -> Option<&TypedHeap> {
        self.heaps.get(ty)
    }

    /// The typed heap for `ty`, created on demand.
    pub fn heap_mut(&mut self, ty: &Ty) -> &mut TypedHeap {
        self.heaps.entry(ty.clone()).or_default()
    }
}

/// A program state at any pipeline level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum State {
    /// Byte-level state (parser output, L1, L2).
    Conc(ConcState),
    /// Typed-split-heap state (after heap abstraction).
    Abs(AbsState),
}

impl State {
    /// An empty concrete state.
    #[must_use]
    pub fn conc_empty() -> State {
        State::Conc(ConcState::default())
    }

    /// An empty abstract state.
    #[must_use]
    pub fn abs_empty() -> State {
        State::Abs(AbsState::default())
    }

    /// Reads a local variable.
    #[must_use]
    pub fn local(&self, name: &str) -> Option<&Value> {
        match self {
            State::Conc(s) => s.locals.get(name),
            State::Abs(s) => s.locals.get(name),
        }
    }

    /// Writes a local variable.
    pub fn set_local(&mut self, name: &str, v: Value) {
        match self {
            State::Conc(s) => {
                s.locals.insert(name.to_owned(), v);
            }
            State::Abs(s) => {
                s.locals.insert(name.to_owned(), v);
            }
        }
    }

    /// Reads a global variable.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&Value> {
        match self {
            State::Conc(s) => s.globals.get(name),
            State::Abs(s) => s.globals.get(name),
        }
    }

    /// Writes a global variable.
    pub fn set_global(&mut self, name: &str, v: Value) {
        match self {
            State::Conc(s) => {
                s.globals.insert(name.to_owned(), v);
            }
            State::Abs(s) => {
                s.globals.insert(name.to_owned(), v);
            }
        }
    }

    /// The local frame (either state shape).
    #[must_use]
    pub fn locals(&self) -> &BTreeMap<String, Value> {
        match self {
            State::Conc(s) => &s.locals,
            State::Abs(s) => &s.locals,
        }
    }

    /// Replaces the local frame, returning the old one (used for call
    /// save/restore in the Simpl and L1 interpreters).
    pub fn swap_locals(&mut self, new: BTreeMap<String, Value>) -> BTreeMap<String, Value> {
        match self {
            State::Conc(s) => std::mem::replace(&mut s.locals, new),
            State::Abs(s) => std::mem::replace(&mut s.locals, new),
        }
    }

    /// The concrete state, if this is one.
    #[must_use]
    pub fn as_conc(&self) -> Option<&ConcState> {
        match self {
            State::Conc(s) => Some(s),
            State::Abs(_) => None,
        }
    }

    /// The abstract state, if this is one.
    #[must_use]
    pub fn as_abs(&self) -> Option<&AbsState> {
        match self {
            State::Abs(s) => Some(s),
            State::Conc(_) => None,
        }
    }

    /// Mutable concrete state, if this is one.
    pub fn as_conc_mut(&mut self) -> Option<&mut ConcState> {
        match self {
            State::Conc(s) => Some(s),
            State::Abs(_) => None,
        }
    }

    /// Mutable abstract state, if this is one.
    pub fn as_abs_mut(&mut self) -> Option<&mut AbsState> {
        match self {
            State::Abs(s) => Some(s),
            State::Conc(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locals_and_globals() {
        let mut s = State::conc_empty();
        assert!(s.local("x").is_none());
        s.set_local("x", Value::u32(5));
        s.set_global("g", Value::u32(9));
        assert_eq!(s.local("x"), Some(&Value::u32(5)));
        assert_eq!(s.global("g"), Some(&Value::u32(9)));
    }

    #[test]
    fn swap_locals_for_calls() {
        let mut s = State::conc_empty();
        s.set_local("x", Value::u32(5));
        let saved = s.swap_locals(BTreeMap::new());
        assert!(s.local("x").is_none());
        s.swap_locals(saved);
        assert_eq!(s.local("x"), Some(&Value::u32(5)));
    }

    #[test]
    fn typed_heaps() {
        let mut s = AbsState::default();
        let h = s.heap_mut(&Ty::U32);
        h.valid.insert(0x100);
        h.set(0x100, Value::u32(7));
        assert!(s.heap(&Ty::U32).unwrap().is_valid(0x100));
        assert!(!s.heap(&Ty::U32).unwrap().is_valid(0x104));
        assert_eq!(s.heap(&Ty::U32).unwrap().get(0x100), Some(&Value::u32(7)));
        assert!(s.heap(&Ty::U8).is_none());
    }

    #[test]
    fn state_shape_accessors() {
        let c = State::conc_empty();
        assert!(c.as_conc().is_some());
        assert!(c.as_abs().is_none());
        let a = State::abs_empty();
        assert!(a.as_abs().is_some());
    }
}
