//! Specification complexity metrics (Table 5).
//!
//! The paper compares the C parser's output with AutoCorres's output using
//! two metrics: *lines of spec* (pretty-printed line count) and *term size*
//! (AST node count). Both tools emit Isabelle terms directly, so the paper
//! estimates lines via Isabelle's pretty printer — we do the same with our
//! own printers.

/// Complexity metrics for one specification (a function's translated body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecMetrics {
    /// Pretty-printed line count.
    pub lines: usize,
    /// AST node count.
    pub term_size: usize,
}

impl SpecMetrics {
    /// Combines metrics from several functions.
    #[must_use]
    pub fn combine(iter: impl IntoIterator<Item = SpecMetrics>) -> SpecMetrics {
        let mut out = SpecMetrics::default();
        for m in iter {
            out.lines += m.lines;
            out.term_size += m.term_size;
        }
        out
    }
}

/// Counts non-empty lines of a pretty-printed specification.
#[must_use]
pub fn spec_lines(text: &str) -> usize {
    text.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Wraps a long pretty-printed term at roughly `width` columns, breaking at
/// spaces — the deterministic stand-in for Isabelle's pretty-printer line
/// breaking, so *lines of spec* is well defined for single-line renderings.
#[must_use]
pub fn wrap_text(text: &str, width: usize) -> String {
    let mut out = String::new();
    for line in text.lines() {
        // Column positions are characters, not bytes (the rendered
        // specifications are unicode-heavy: ≡, λ, ≤, …).
        if line.chars().count() <= width {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let mut col = 0;
        for word in line.split(' ') {
            let w = word.chars().count();
            if col > 0 && col + w + 1 > width {
                out.push('\n');
                col = 0;
            } else if col > 0 {
                out.push(' ');
                col += 1;
            }
            out.push_str(word);
            col += w;
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counting_skips_blanks() {
        assert_eq!(spec_lines("a\n\nb\n  \nc"), 3);
        assert_eq!(spec_lines(""), 0);
    }

    #[test]
    fn wrapping() {
        let text = "a b c d e f";
        let wrapped = wrap_text(text, 5);
        assert!(wrapped.lines().all(|l| l.len() <= 5));
        assert_eq!(wrapped.replace('\n', " ").trim(), "a b c d e f");
    }

    #[test]
    fn combine_sums() {
        let m = SpecMetrics::combine([
            SpecMetrics { lines: 2, term_size: 10 },
            SpecMetrics { lines: 3, term_size: 20 },
        ]);
        assert_eq!(m, SpecMetrics { lines: 5, term_size: 30 });
    }
}
