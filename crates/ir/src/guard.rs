//! Guard classification.
//!
//! Guards protect potentially undefined operations. The kind records *why*
//! the guard was emitted; it is used in failure reports, by L2 guard
//! simplification, and to label the obligations word/heap abstraction add.

use std::fmt;

/// Why a guard was emitted.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// Signed arithmetic must not overflow.
    SignedOverflow,
    /// Division/modulo by zero (and `INT_MIN / -1`).
    DivByZero,
    /// Shift amount out of range / shift overflow.
    ShiftBound,
    /// Pointer access validity (`c_guard`: aligned and null-free).
    PtrValid,
    /// Execution must not reach this point (end of non-void function).
    DontReach,
    /// Unsigned arithmetic must not wrap (inserted by *word abstraction*,
    /// never by the C parser — Sec 3.2 of the paper).
    UnsignedOverflow,
    /// A guard introduced by heap abstraction (`is_valid` checks).
    HeapValid,
    /// A proof obligation introduced by word abstraction (the precondition
    /// of an `abs_w_val` rule, e.g. `a + b ≤ UINT_MAX`).
    WordAbs,
    /// Array index within bounds (`i < N`, plus `0 ≤ i` for signed
    /// indices) — emitted for every `a[i]` read or write.
    ArrayBounds,
}

impl fmt::Display for GuardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GuardKind::SignedOverflow => "SignedOverflow",
            GuardKind::DivByZero => "DivByZero",
            GuardKind::ShiftBound => "ShiftBound",
            GuardKind::PtrValid => "PtrValid",
            GuardKind::DontReach => "DontReach",
            GuardKind::UnsignedOverflow => "UnsignedOverflow",
            GuardKind::HeapValid => "HeapValid",
            GuardKind::WordAbs => "WordAbs",
            GuardKind::ArrayBounds => "ArrayBounds",
        };
        write!(f, "{s}")
    }
}
