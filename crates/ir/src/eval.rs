//! The expression evaluator.
//!
//! [`eval`] gives [`Expr`] its meaning as a function of an environment (the
//! lambda-bound variables) and a [`State`]. Evaluation is *total* on
//! well-typed, guard-protected programs: C's undefined behaviours are ruled
//! out by guard statements before the corresponding operation is evaluated,
//! and the partial operations themselves follow HOL's total-function
//! conventions (`x div 0 = 0`, reads of invalid abstract addresses return
//! the type's zero value).

use std::collections::HashMap;
use std::fmt;

use bignum::Int;
#[cfg(test)]
use bignum::Nat;

use crate::expr::{BinOp, CastKind, Expr, UnOp};
use crate::mem::Memory;
use crate::names::Symbol;
use crate::state::State;
use crate::ty::TypeEnv;
use crate::value::{Ptr, Value};
use crate::word::Word;

/// The evaluation environment: lambda-bound variables plus the type
/// environment (needed for layout-dependent operations).
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Bound variables, keyed by interned name (lookups hash a `u32` id).
    pub vars: HashMap<Symbol, Value>,
    /// Structure layouts.
    pub tenv: TypeEnv,
}

impl Env {
    /// An empty environment with no structure types.
    #[must_use]
    pub fn new() -> Env {
        Env::default()
    }

    /// An empty environment over the given type environment.
    #[must_use]
    pub fn with_tenv(tenv: TypeEnv) -> Env {
        Env {
            vars: HashMap::new(),
            tenv,
        }
    }

    /// Returns a copy with `name` bound to `v`.
    #[must_use]
    pub fn bind(&self, name: &str, v: Value) -> Env {
        let mut e = self.clone();
        e.vars.insert(Symbol::intern(name), v);
        e
    }

    /// Binds `name` to `v` in place.
    pub fn bind_mut(&mut self, name: &str, v: Value) {
        self.vars.insert(Symbol::intern(name), v);
    }
}

/// An error during evaluation. On guard-protected programs these indicate
/// ill-typed terms (a bug in a translation), not runtime faults — runtime
/// faults are modelled by failing guards, which the *interpreters* handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Reference to an unbound variable.
    Unbound(String),
    /// Operand types do not fit the operator.
    TypeMismatch(String),
    /// Byte-level operation applied to an abstract state (or vice versa).
    WrongStateShape(String),
    /// Encode/decode failure (unknown struct, unrepresentable value).
    Codec(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(n) => write!(f, "unbound variable `{n}`"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::WrongStateShape(m) => write!(f, "wrong state shape: {m}"),
            EvalError::Codec(m) => write!(f, "codec: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

type Result<T> = std::result::Result<T, EvalError>;

fn mismatch(op: impl fmt::Display, vs: &[&Value]) -> EvalError {
    let tys: Vec<String> = vs.iter().map(|v| v.ty().to_string()).collect();
    EvalError::TypeMismatch(format!("`{op}` applied to ({})", tys.join(", ")))
}

/// Evaluates `e` in environment `env` and state `st`.
///
/// # Errors
///
/// Returns an [`EvalError`] on unbound variables, ill-typed operator
/// applications, or byte-level access to abstract states.
pub fn eval(e: &Expr, env: &Env, st: &State) -> Result<Value> {
    match e {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(n) => env
            .vars
            .get(n)
            .cloned()
            .ok_or_else(|| EvalError::Unbound(n.to_string())),
        Expr::Local(n) => st
            .local(n)
            .cloned()
            .ok_or_else(|| EvalError::Unbound(format!("local `{n}`"))),
        Expr::Global(n) => st
            .global(n)
            .cloned()
            .ok_or_else(|| EvalError::Unbound(format!("global `{n}`"))),
        Expr::ReadHeap(ty, p) => {
            let pv = eval_ptr(p, env, st)?;
            match st {
                State::Conc(cs) => cs
                    .mem
                    .decode(pv.addr, ty, &env.tenv)
                    .map_err(|e| EvalError::Codec(e.to_string())),
                State::Abs(asx) => Ok(asx
                    .heap(ty)
                    .and_then(|h| h.get(pv.addr))
                    .cloned()
                    .unwrap_or_else(|| Value::zero_of(ty, &env.tenv))),
            }
        }
        Expr::ReadByte(p) => {
            let pv = eval_ptr(p, env, st)?;
            match st {
                State::Conc(cs) => Ok(Value::Word(Word::u8(cs.mem.read_byte(pv.addr)))),
                State::Abs(_) => Err(EvalError::WrongStateShape(
                    "byte read on abstract state".into(),
                )),
            }
        }
        Expr::IsValid(ty, p) => {
            let pv = eval_ptr(p, env, st)?;
            match st {
                // On the concrete state, validity is definedness of
                // heap_lift: tags + alignment + null-freedom (Sec 4.2).
                State::Conc(cs) => Ok(Value::Bool(
                    cs.mem.type_tag_valid(pv.addr, ty, &env.tenv)
                        && Memory::ptr_aligned(pv.addr, ty, &env.tenv)
                        && Memory::null_free(pv.addr, ty, &env.tenv),
                )),
                State::Abs(asx) => Ok(Value::Bool(
                    asx.heap(ty).is_some_and(|h| h.is_valid(pv.addr)),
                )),
            }
        }
        Expr::PtrAligned(ty, p) => {
            let pv = eval_ptr(p, env, st)?;
            Ok(Value::Bool(Memory::ptr_aligned(pv.addr, ty, &env.tenv)))
        }
        Expr::NullFree(ty, p) => {
            let pv = eval_ptr(p, env, st)?;
            Ok(Value::Bool(Memory::null_free(pv.addr, ty, &env.tenv)))
        }
        Expr::Field(s, f) => {
            let sv = eval(s, env, st)?;
            sv.field(f)
                .cloned()
                .ok_or_else(|| mismatch(format!("field `{f}`"), &[&sv]))
        }
        Expr::UpdateField(s, f, v) => {
            let sv = eval(s, env, st)?;
            let vv = eval(v, env, st)?;
            sv.with_field(f, vv)
                .ok_or_else(|| mismatch(format!("field update `{f}`"), &[&sv]))
        }
        Expr::UnOp(op, a) => {
            let av = eval(a, env, st)?;
            eval_unop(*op, &av)
        }
        Expr::BinOp(op, a, b) => eval_binop(*op, a, b, env, st),
        Expr::Cast(k, a) => {
            let av = eval(a, env, st)?;
            eval_cast(k, &av)
        }
        Expr::Ite(c, t, f) => {
            let cv = eval(c, env, st)?;
            match cv.as_bool() {
                Some(true) => eval(t, env, st),
                Some(false) => eval(f, env, st),
                None => Err(mismatch("if", &[&cv])),
            }
        }
        Expr::Tuple(es) => {
            let mut vs = Vec::with_capacity(es.len());
            for e in es {
                vs.push(eval(e, env, st)?);
            }
            Ok(Value::Tuple(vs))
        }
        Expr::Proj(i, e) => {
            let v = eval(e, env, st)?;
            match v {
                Value::Tuple(mut vs) if *i < vs.len() => Ok(vs.swap_remove(*i)),
                v => Err(mismatch(format!("proj {i}"), &[&v])),
            }
        }
        Expr::Index(a, i) => {
            let av = eval(a, env, st)?;
            let iv = eval(i, env, st)?;
            let idx = array_index(&iv)?;
            av.arr_index(idx, &env.tenv)
                .ok_or_else(|| mismatch("array index", &[&av, &iv]))
        }
        Expr::ArrUpd(a, i, v) => {
            let av = eval(a, env, st)?;
            let iv = eval(i, env, st)?;
            let vv = eval(v, env, st)?;
            let idx = array_index(&iv)?;
            av.arr_update(idx, vv)
                .ok_or_else(|| mismatch("array update", &[&av, &iv]))
        }
    }
}

/// An array index as a plain number. Accepts words (signed indices become
/// their value — negatives map to huge u64s, which the OOB conventions
/// absorb), naturals and integers (the shapes word abstraction produces).
fn array_index(v: &Value) -> Result<u64> {
    match v {
        Value::Word(w) => match w.sign() {
            crate::ty::Signedness::Unsigned => Ok(w.bits()),
            crate::ty::Signedness::Signed => Ok(w.signed_value() as u64),
        },
        Value::Nat(n) => Ok(n.to_u64().unwrap_or(u64::MAX)),
        Value::Int(i) => {
            let i = i.to_i64().unwrap_or(i64::MAX);
            Ok(if i < 0 { u64::MAX } else { i as u64 })
        }
        v => Err(mismatch("array index", &[v])),
    }
}

/// Evaluates an expression that must be a pointer.
fn eval_ptr(e: &Expr, env: &Env, st: &State) -> Result<Ptr> {
    let v = eval(e, env, st)?;
    match v {
        Value::Ptr(p) => Ok(p),
        v => Err(mismatch("pointer operation", &[&v])),
    }
}

/// Evaluates an expression that must be a boolean.
///
/// # Errors
///
/// Propagates evaluation errors; errors if the result is not a boolean.
pub fn eval_bool(e: &Expr, env: &Env, st: &State) -> Result<bool> {
    let v = eval(e, env, st)?;
    v.as_bool().ok_or_else(|| mismatch("condition", &[&v]))
}

fn eval_unop(op: UnOp, a: &Value) -> Result<Value> {
    match (op, a) {
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::BitNot, Value::Word(w)) => Ok(Value::Word(w.not())),
        (UnOp::Neg, Value::Word(w)) => Ok(Value::Word(w.wrapping_neg())),
        (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
        _ => Err(mismatch(format!("{op:?}"), &[a])),
    }
}

fn eval_binop(op: BinOp, a: &Expr, b: &Expr, env: &Env, st: &State) -> Result<Value> {
    // Short-circuit boolean connectives so guards like
    // `p ≠ NULL ∧ valid p` never evaluate the protected operand.
    match op {
        BinOp::And => {
            return Ok(Value::Bool(
                eval_bool(a, env, st)? && eval_bool(b, env, st)?,
            ));
        }
        BinOp::Or => {
            return Ok(Value::Bool(
                eval_bool(a, env, st)? || eval_bool(b, env, st)?,
            ));
        }
        BinOp::Implies => {
            return Ok(Value::Bool(
                !eval_bool(a, env, st)? || eval_bool(b, env, st)?,
            ));
        }
        _ => {}
    }
    let av = eval(a, env, st)?;
    let bv = eval(b, env, st)?;
    eval_binop_vals(op, &av, &bv)
}

/// Applies a (non-boolean-connective) binary operator to two values.
///
/// # Errors
///
/// Errors on operand-type mismatches.
pub fn eval_binop_vals(op: BinOp, av: &Value, bv: &Value) -> Result<Value> {
    use BinOp::*;
    Ok(match (op, av, bv) {
        (Add, Value::Word(x), Value::Word(y)) => Value::Word(x.wrapping_add(y)),
        (Sub, Value::Word(x), Value::Word(y)) => Value::Word(x.wrapping_sub(y)),
        (Mul, Value::Word(x), Value::Word(y)) => Value::Word(x.wrapping_mul(y)),
        (Div, Value::Word(x), Value::Word(y)) => Value::Word(x.c_div(y)),
        (Mod, Value::Word(x), Value::Word(y)) => Value::Word(x.c_rem(y)),
        (Add, Value::Nat(x), Value::Nat(y)) => Value::Nat(x + y),
        (Sub, Value::Nat(x), Value::Nat(y)) => Value::Nat(x - y),
        (Mul, Value::Nat(x), Value::Nat(y)) => Value::Nat(x * y),
        (Div, Value::Nat(x), Value::Nat(y)) => Value::Nat(x / y),
        (Mod, Value::Nat(x), Value::Nat(y)) => Value::Nat(x % y),
        (Add, Value::Int(x), Value::Int(y)) => Value::Int(x + y),
        (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x - y),
        (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x * y),
        // `sdiv`/`smod`: C-style truncating division on ideal integers —
        // the image of guarded signed C division under word abstraction.
        (Div, Value::Int(x), Value::Int(y)) => Value::Int(x.div_rem_trunc(y).0),
        (Mod, Value::Int(x), Value::Int(y)) => Value::Int(x.div_rem_trunc(y).1),
        (BitAnd, Value::Word(x), Value::Word(y)) => Value::Word(x.and(y)),
        (BitOr, Value::Word(x), Value::Word(y)) => Value::Word(x.or(y)),
        (BitXor, Value::Word(x), Value::Word(y)) => Value::Word(x.xor(y)),
        (Shl, Value::Word(x), y) => Value::Word(x.shl(shift_amount(y)?)),
        (Shr, Value::Word(x), y) => Value::Word(x.shr(shift_amount(y)?)),
        // Pointer equality is address equality: a cast through `void *`
        // changes the pointee type but not the pointer's identity.
        (Eq, Value::Ptr(x), Value::Ptr(y)) => Value::Bool(x.addr == y.addr),
        (Ne, Value::Ptr(x), Value::Ptr(y)) => Value::Bool(x.addr != y.addr),
        (Eq, x, y) => Value::Bool(x == y),
        (Ne, x, y) => Value::Bool(x != y),
        (Lt, Value::Word(x), Value::Word(y)) => Value::Bool(x.word_cmp(y).is_lt()),
        (Le, Value::Word(x), Value::Word(y)) => Value::Bool(x.word_cmp(y).is_le()),
        (Lt, Value::Nat(x), Value::Nat(y)) => Value::Bool(x < y),
        (Le, Value::Nat(x), Value::Nat(y)) => Value::Bool(x <= y),
        (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (Lt, Value::Ptr(x), Value::Ptr(y)) => Value::Bool(x.addr < y.addr),
        (Le, Value::Ptr(x), Value::Ptr(y)) => Value::Bool(x.addr <= y.addr),
        (PtrAdd, Value::Ptr(p), off) => Value::Ptr(p.offset(byte_offset(off)?)),
        _ => return Err(mismatch(format!("{op:?}"), &[av, bv])),
    })
}

fn shift_amount(v: &Value) -> Result<u32> {
    match v {
        Value::Word(w) => Ok((w.bits() & 0xFFFF_FFFF) as u32),
        Value::Nat(n) => Ok(n.to_u64().unwrap_or(u64::from(u32::MAX)) as u32),
        v => Err(mismatch("shift amount", &[v])),
    }
}

fn byte_offset(v: &Value) -> Result<u64> {
    match v {
        Value::Word(w) => match w.sign() {
            crate::ty::Signedness::Unsigned => Ok(w.bits()),
            crate::ty::Signedness::Signed => Ok(w.signed_value() as u64),
        },
        Value::Nat(n) => Ok(n.to_u64().unwrap_or(0) & 0xFFFF_FFFF),
        Value::Int(i) => Ok(i.to_i64().unwrap_or(0) as u64),
        v => Err(mismatch("pointer offset", &[v])),
    }
}

fn eval_cast(k: &CastKind, v: &Value) -> Result<Value> {
    Ok(match (k, v) {
        (CastKind::WordToWord(w, s), Value::Word(x)) => Value::Word(x.convert(*w, *s)),
        (CastKind::Unat, Value::Word(x)) => Value::Nat(x.unat()),
        (CastKind::Sint, Value::Word(x)) => Value::Int(x.sint()),
        (CastKind::OfNat(w, s), Value::Nat(n)) => Value::Word(Word::of_nat(n, *w, *s)),
        (CastKind::OfInt(w, s), Value::Int(i)) => Value::Word(Word::of_int(i, *w, *s)),
        (CastKind::NatToInt, Value::Nat(n)) => Value::Int(Int::from_nat(n.clone())),
        (CastKind::IntToNat, Value::Int(i)) => Value::Nat(i.to_nat()),
        (CastKind::PtrToWord, Value::Ptr(p)) => Value::u32(p.addr as u32),
        (CastKind::WordToPtr(t), Value::Word(w)) => Value::Ptr(Ptr::new(w.bits(), t.clone())),
        (CastKind::PtrRetype(t), Value::Ptr(p)) => Value::Ptr(p.retype(t.clone())),
        // Word abstraction of casts between word types introduces casts on
        // ideal values: reduce through the word shape.
        (CastKind::OfNat(w, s), Value::Int(i)) => Value::Word(Word::of_int(i, *w, *s)),
        (CastKind::OfInt(w, s), Value::Nat(n)) => Value::Word(Word::of_nat(n, *w, *s)),
        _ => return Err(mismatch(format!("{k:?}"), &[v])),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ty::Ty;
    use crate::state::State;
    use crate::ty::{Signedness, Width};

    fn ev(e: &Expr) -> Value {
        eval(e, &Env::new(), &State::conc_empty()).unwrap()
    }

    #[test]
    fn literals_and_vars() {
        assert_eq!(ev(&Expr::u32(5)), Value::u32(5));
        let env = Env::new().bind("x", Value::u32(7));
        assert_eq!(
            eval(&Expr::var("x"), &env, &State::conc_empty()).unwrap(),
            Value::u32(7)
        );
        assert_eq!(
            eval(&Expr::var("y"), &env, &State::conc_empty()),
            Err(EvalError::Unbound("y".into()))
        );
    }

    #[test]
    fn word_arith_wraps() {
        let e = Expr::binop(BinOp::Add, Expr::u32(u32::MAX), Expr::u32(1));
        assert_eq!(ev(&e), Value::u32(0));
        let e = Expr::binop(BinOp::Mul, Expr::u32(1 << 31), Expr::u32(2));
        assert_eq!(ev(&e), Value::u32(0));
    }

    #[test]
    fn nat_arith_ideal() {
        let e = Expr::binop(BinOp::Add, Expr::nat(u64::MAX), Expr::nat(1u64));
        assert_eq!(ev(&e), Value::Nat(Nat::from(u64::MAX) + Nat::one()));
    }

    #[test]
    fn signedness_in_comparisons() {
        // -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned
        let e = Expr::binop(BinOp::Lt, Expr::i32(-1), Expr::i32(1));
        assert_eq!(ev(&e), Value::Bool(true));
        let e = Expr::binop(BinOp::Lt, Expr::u32(u32::MAX), Expr::u32(1));
        assert_eq!(ev(&e), Value::Bool(false));
    }

    #[test]
    fn short_circuit_connectives() {
        // Unbound variable in the unevaluated branch must not error.
        let e = Expr::binop(BinOp::And, Expr::ff(), Expr::var("nope"));
        assert_eq!(ev(&e), Value::Bool(false));
        let e = Expr::binop(BinOp::Or, Expr::tt(), Expr::var("nope"));
        assert_eq!(ev(&e), Value::Bool(true));
        let e = Expr::binop(BinOp::Implies, Expr::ff(), Expr::var("nope"));
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn casts() {
        let e = Expr::cast(CastKind::Unat, Expr::u32(42));
        assert_eq!(ev(&e), Value::nat(42u64));
        let e = Expr::cast(CastKind::Sint, Expr::i32(-42));
        assert_eq!(ev(&e), Value::int(-42i64));
        let e = Expr::cast(
            CastKind::OfNat(Width::W32, Signedness::Unsigned),
            Expr::nat(Nat::pow2(32) + Nat::from(3u64)),
        );
        assert_eq!(ev(&e), Value::u32(3));
        let e = Expr::cast(
            CastKind::WordToWord(Width::W8, Signedness::Unsigned),
            Expr::i32(-1),
        );
        assert_eq!(ev(&e), Value::Word(Word::u8(255)));
    }

    #[test]
    fn heap_reads_concrete() {
        let tenv = TypeEnv::new();
        let mut st = State::conc_empty();
        st.as_conc_mut()
            .unwrap()
            .mem
            .alloc(0x100, &Value::u32(99), &tenv)
            .unwrap();
        let env = Env::with_tenv(tenv);
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        assert_eq!(
            eval(&Expr::read_heap(Ty::U32, p.clone()), &env, &st).unwrap(),
            Value::u32(99)
        );
        assert_eq!(
            eval(&Expr::is_valid(Ty::U32, p), &env, &st).unwrap(),
            Value::Bool(true)
        );
        // Unallocated address: decode still total (zeros) but not valid.
        let q = Expr::Lit(Value::Ptr(Ptr::new(0x200, Ty::U32)));
        assert_eq!(
            eval(&Expr::read_heap(Ty::U32, q.clone()), &env, &st).unwrap(),
            Value::u32(0)
        );
        assert_eq!(
            eval(&Expr::is_valid(Ty::U32, q), &env, &st).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn heap_reads_abstract() {
        let mut st = State::abs_empty();
        {
            let a = st.as_abs_mut().unwrap();
            let h = a.heap_mut(&Ty::U32);
            h.valid.insert(0x100);
            h.set(0x100, Value::u32(7));
        }
        let env = Env::new();
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        assert_eq!(
            eval(&Expr::read_heap(Ty::U32, p.clone()), &env, &st).unwrap(),
            Value::u32(7)
        );
        assert_eq!(
            eval(&Expr::is_valid(Ty::U32, p), &env, &st).unwrap(),
            Value::Bool(true)
        );
        // Byte reads are a concrete-level operation.
        let q = Expr::ReadByte(crate::intern::Interned::new(Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U8)))));
        assert!(matches!(
            eval(&q, &env, &st),
            Err(EvalError::WrongStateShape(_))
        ));
    }

    #[test]
    fn misaligned_pointer_invalid() {
        let tenv = TypeEnv::new();
        let mut st = State::conc_empty();
        // Tag a u32 at a misaligned address: decode works, validity fails.
        st.as_conc_mut()
            .unwrap()
            .mem
            .tag_region(0x101, &Ty::U32, &tenv)
            .unwrap();
        let env = Env::with_tenv(tenv);
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x101, Ty::U32)));
        assert_eq!(
            eval(&Expr::is_valid(Ty::U32, p.clone()), &env, &st).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&Expr::PtrAligned(Ty::U32, crate::intern::Interned::new(p)), &env, &st).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn tuples_and_fields() {
        let t = Expr::Tuple(vec![Expr::u32(1), Expr::u32(2)]);
        assert_eq!(ev(&Expr::proj(1, t)), Value::u32(2));
        let s = Expr::Lit(Value::Struct(
            "pair".into(),
            vec![("a".into(), Value::u32(3)), ("b".into(), Value::u32(4))],
        ));
        assert_eq!(ev(&Expr::field(s.clone(), "b")), Value::u32(4));
        let upd = Expr::UpdateField(crate::intern::Interned::new(s), "a".into(), crate::intern::Interned::new(Expr::u32(9)));
        assert_eq!(ev(&Expr::field(upd, "a")), Value::u32(9));
    }

    #[test]
    fn ptr_arith() {
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        let e = Expr::binop(BinOp::PtrAdd, p, Expr::u32(8));
        assert_eq!(ev(&e), Value::Ptr(Ptr::new(0x108, Ty::U32)));
        // negative offsets via signed words
        let p = Expr::Lit(Value::Ptr(Ptr::new(0x100, Ty::U32)));
        let e = Expr::binop(BinOp::PtrAdd, p, Expr::i32(-4));
        assert_eq!(ev(&e), Value::Ptr(Ptr::new(0xFC, Ty::U32)));
    }

    #[test]
    fn division_totality() {
        let e = Expr::binop(BinOp::Div, Expr::u32(5), Expr::u32(0));
        assert_eq!(ev(&e), Value::u32(0));
        let e = Expr::binop(BinOp::Div, Expr::int(-17), Expr::int(5));
        assert_eq!(ev(&e), Value::int(-3), "sdiv truncates toward zero");
    }
}
