//! A small, dependency-free binary codec for persisting pipeline terms.
//!
//! The disk-backed artifact store and the proof-certificate format both
//! need to serialise the semantic objects (types, values, expressions,
//! programs, judgments) without pulling in an external serialisation
//! crate. This module provides:
//!
//! * the [`Codec`] trait (`encode`/`decode`) with implementations for the
//!   `ir` types and the usual containers,
//! * [`Encoder`]/[`Decoder`] with varint integers, length-prefixed
//!   strings, and **DAG-aware back-references** so hash-consed subterms
//!   ([`Interned`] handles) are written once and shared on reload — the
//!   on-disk size mirrors the in-memory DAG, not the expanded tree,
//! * [`digest128_bytes`], the stable 128-bit content digest used for
//!   per-entry integrity checks.
//!
//! Decoding is **total**: corrupt, truncated, or adversarial input
//! produces a [`DecodeError`], never a panic, unbounded allocation, or
//! unbounded recursion (lengths are bounded by the remaining input and
//! nesting depth is capped). Callers that need integrity (the store, the
//! certificate checker) additionally verify a whole-payload
//! [`digest128_bytes`] before decoding; the decoder's own checks are the
//! second line of defence, not the first.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

use bignum::{Int, Nat};

use crate::diag::Span;
use crate::expr::{BinOp, CastKind, Expr, UnOp};
use crate::guard::GuardKind;
use crate::intern::{Internable, Interned};
use crate::names::Symbol;
use crate::ty::{Signedness, StructDef, StructField, Ty, TypeEnv, Width};
use crate::update::Update;
use crate::value::{Ptr, Value};
use crate::word::Word;

/// Maximum nesting depth the decoder will follow. Valid pipeline terms
/// are nowhere near this deep (hash-consed children make first-visit
/// depth the term depth, and every other recursive traversal in the
/// pipeline shares the same practical bound); the cap turns maliciously
/// nested input into an error while the unwind still fits a default
/// 2 MiB test-thread stack in debug builds.
const MAX_DEPTH: usize = 1024;

/// Error produced by [`Codec::decode`] on malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl DecodeError {
    fn new(msg: impl Into<String>) -> DecodeError {
        DecodeError(msg.into())
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Types that can be serialised with this codec.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to the encoder.
    fn encode(&self, e: &mut Encoder);

    /// Decodes one value.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Round-trips a value through a fresh encoder.
#[must_use]
pub fn encode_to_vec<T: Codec>(v: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    v.encode(&mut e);
    e.finish()
}

/// Decodes a value from a byte slice, requiring all input to be consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input or trailing bytes.
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut d = Decoder::new(bytes);
    let v = T::decode(&mut d)?;
    if d.remaining() != 0 {
        return Err(DecodeError::new(format!(
            "{} trailing byte(s) after value",
            d.remaining()
        )));
    }
    Ok(v)
}

/// The stable 128-bit content digest of a byte string: two independent
/// FNV-1a passes (distinct offset bases), each finished with a SplitMix64
/// avalanche. Depends only on the bytes — never on process, platform, or
/// compiler version — so it is safe to persist.
#[must_use]
pub fn digest128_bytes(bytes: &[u8]) -> u128 {
    fn fnv(bytes: &[u8], basis: u64) -> u64 {
        let mut h = basis;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64 finaliser: FNV alone diffuses low bits poorly.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
    let lo = fnv(bytes, 0xcbf2_9ce4_8422_2325);
    let hi = fnv(bytes, 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Serialisation sink: a byte buffer plus per-type back-reference tables
/// for DAG sharing.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
    // TypeId → HashMap<usize /* node identity */, u64 /* postorder id */>.
    tables: HashMap<TypeId, HashMap<usize, u64>>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consumes the encoder, returning the bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes an LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a fixed-width 128-bit little-endian integer (used for
    /// digests, where varint encoding would leak no space anyway).
    pub fn u128_fixed(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Looks up the back-reference id previously assigned to node
    /// identity `key` (e.g. an `Arc` pointer) in the sharing table for
    /// `T`. `None` means the node has not been written yet.
    #[must_use]
    pub fn backref<T: 'static>(&mut self, key: usize) -> Option<u64> {
        self.tables
            .get(&TypeId::of::<T>())
            .and_then(|t| t.get(&key).copied())
    }

    /// Assigns the next postorder id to node identity `key`. Call this
    /// *after* encoding the node's body, mirroring the decoder, which
    /// registers a node once its body has been decoded.
    pub fn define<T: 'static>(&mut self, key: usize) {
        let table = self.tables.entry(TypeId::of::<T>()).or_default();
        let id = table.len() as u64;
        table.insert(key, id);
    }
}

/// Deserialisation source: a byte slice, a cursor, a recursion-depth
/// budget, and per-type tables of already-decoded shared nodes.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    depth: usize,
    // TypeId → Box<Vec<T>> of decoded shared nodes, in postorder.
    tables: HashMap<TypeId, Box<dyn Any>>,
}

impl<'a> Decoder<'a> {
    /// A decoder over `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder {
            data,
            pos: 0,
            depth: 0,
            tables: HashMap::new(),
        }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Enters one nesting level; errors when the depth cap is exceeded.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] past [`MAX_DEPTH`] levels.
    pub fn enter(&mut self) -> Result<(), DecodeError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(DecodeError::new("nesting depth limit exceeded"));
        }
        Ok(())
    }

    /// Leaves one nesting level.
    pub fn exit(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| DecodeError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::new(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation or overflow.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(DecodeError::new("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint and checks it is a plausible element count: each
    /// element of a sequence costs at least one input byte, so any count
    /// above the remaining input is malformed (and would otherwise let a
    /// corrupt length trigger a huge allocation).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation or an oversized count.
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::new(format!(
                "sequence length {n} exceeds remaining input {}",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new("invalid UTF-8 in string"))
    }

    /// Reads a fixed-width 128-bit little-endian integer.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation.
    pub fn u128_fixed(&mut self) -> Result<u128, DecodeError> {
        let bytes = self.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(bytes);
        Ok(u128::from_le_bytes(arr))
    }

    fn shared_table<T: Clone + 'static>(&mut self) -> &mut Vec<T> {
        self.tables
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<T>::new()))
            .downcast_mut::<Vec<T>>()
            .expect("decoder sharing table type confusion")
    }

    /// Fetches shared node `id` of type `T` (a back-reference target).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for an unknown id.
    pub fn shared_get<T: Clone + 'static>(&mut self, id: u64) -> Result<T, DecodeError> {
        let table = self.shared_table::<T>();
        usize::try_from(id)
            .ok()
            .and_then(|i| table.get(i))
            .cloned()
            .ok_or_else(|| DecodeError::new(format!("dangling back-reference #{id}")))
    }

    /// Registers a freshly decoded shared node of type `T`, assigning it
    /// the next postorder id (mirroring [`Encoder::define`]).
    pub fn shared_push<T: Clone + 'static>(&mut self, v: T) {
        self.shared_table::<T>().push(v);
    }

    /// Number of shared nodes of type `T` decoded so far.
    #[must_use]
    pub fn shared_count<T: Clone + 'static>(&mut self) -> usize {
        self.shared_table::<T>().len()
    }
}

// ---------------------------------------------------------------------------
// Primitive and container impls
// ---------------------------------------------------------------------------

impl Codec for bool {
    fn encode(&self, e: &mut Encoder) {
        e.u8(u8::from(*self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::new(format!("invalid bool byte {b}"))),
        }
    }
}

impl Codec for u8 {
    fn encode(&self, e: &mut Encoder) {
        e.u8(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.varint(u64::from(*self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        u32::try_from(d.varint()?).map_err(|_| DecodeError::new("u32 out of range"))
    }
}

impl Codec for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.varint(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.varint()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Encoder) {
        e.varint(*self as u64);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        usize::try_from(d.varint()?).map_err(|_| DecodeError::new("usize out of range"))
    }
}

impl Codec for u128 {
    fn encode(&self, e: &mut Encoder) {
        e.u128_fixed(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u128_fixed()
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.varint(self.len() as u64);
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            b => Err(DecodeError::new(format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Codec> Codec for Box<T> {
    fn encode(&self, e: &mut Encoder) {
        (**self).encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(d)?))
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, e: &mut Encoder) {
        e.varint(self.len() as u64);
        for (k, v) in self {
            k.encode(e);
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(d)?;
            let v = V::decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Interned handles encode with DAG sharing: the first occurrence writes
/// tag 0 plus the body and registers the node; later occurrences write
/// tag 1 plus a postorder back-reference id. The decoder re-interns the
/// body (restoring hash-consing) and resolves back-references from its
/// side table, so sharing survives the round trip.
impl<T> Codec for Interned<T>
where
    T: Internable + Codec + 'static,
{
    fn encode(&self, e: &mut Encoder) {
        if let Some(id) = e.backref::<T>(self.key()) {
            e.u8(1);
            e.varint(id);
            return;
        }
        e.u8(0);
        (**self).encode(e);
        e.define::<T>(self.key());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            1 => {
                let id = d.varint()?;
                d.shared_get::<Interned<T>>(id)
            }
            0 => {
                d.enter()?;
                let body = T::decode(d);
                d.exit();
                let node = Interned::new(body?);
                d.shared_push(node.clone());
                Ok(node)
            }
            b => Err(DecodeError::new(format!("invalid interned tag {b}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// ir type impls
// ---------------------------------------------------------------------------

impl Codec for Width {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            Width::W8 => 0,
            Width::W16 => 1,
            Width::W32 => 2,
            Width::W64 => 3,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Width::W8,
            1 => Width::W16,
            2 => Width::W32,
            3 => Width::W64,
            b => return Err(DecodeError::new(format!("invalid Width tag {b}"))),
        })
    }
}

impl Codec for Signedness {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            Signedness::Signed => 0,
            Signedness::Unsigned => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Signedness::Signed,
            1 => Signedness::Unsigned,
            b => return Err(DecodeError::new(format!("invalid Signedness tag {b}"))),
        })
    }
}

impl Codec for Ty {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Ty::Unit => e.u8(0),
            Ty::Bool => e.u8(1),
            Ty::Word(w, s) => {
                e.u8(2);
                w.encode(e);
                s.encode(e);
            }
            Ty::Nat => e.u8(3),
            Ty::Int => e.u8(4),
            Ty::Ptr(t) => {
                e.u8(5);
                t.encode(e);
            }
            Ty::Struct(n) => {
                e.u8(6);
                e.str(n);
            }
            Ty::Tuple(ts) => {
                e.u8(7);
                ts.encode(e);
            }
            Ty::Arr(t, n) => {
                e.u8(8);
                t.encode(e);
                e.varint(*n);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(Ty::Unit),
            1 => Ok(Ty::Bool),
            2 => Ok(Ty::Word(Width::decode(d)?, Signedness::decode(d)?)),
            3 => Ok(Ty::Nat),
            4 => Ok(Ty::Int),
            5 => Ok(Ty::Ptr(Box::decode(d)?)),
            6 => Ok(Ty::Struct(d.str()?)),
            7 => Ok(Ty::Tuple(Vec::decode(d)?)),
            8 => Ok(Ty::Arr(Box::decode(d)?, d.varint()?)),
            b => Err(DecodeError::new(format!("invalid Ty tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for StructField {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        self.ty.encode(e);
        e.varint(self.offset);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(StructField {
            name: d.str()?,
            ty: Ty::decode(d)?,
            offset: d.varint()?,
        })
    }
}

impl Codec for StructDef {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        self.fields.encode(e);
        e.varint(self.size);
        e.varint(self.align);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(StructDef {
            name: d.str()?,
            fields: Vec::decode(d)?,
            size: d.varint()?,
            align: d.varint()?,
        })
    }
}

impl Codec for TypeEnv {
    fn encode(&self, e: &mut Encoder) {
        let defs: Vec<&StructDef> = self.structs().collect();
        e.varint(defs.len() as u64);
        for def in defs {
            def.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.seq_len()?;
        let mut env = TypeEnv::new();
        for _ in 0..n {
            env.insert_struct_def(StructDef::decode(d)?);
        }
        Ok(env)
    }
}

impl Codec for Word {
    fn encode(&self, e: &mut Encoder) {
        e.varint(self.bits());
        self.width().encode(e);
        self.sign().encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let bits = d.varint()?;
        let width = Width::decode(d)?;
        let sign = Signedness::decode(d)?;
        Ok(Word::new(bits, width, sign))
    }
}

// Nat/Int round-trip through their decimal string form: the bignum crate
// keeps its limb layout private, and proof terms hold only small
// constants, so the string form is simple and stable.
impl Codec for Nat {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.to_string());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.str()?
            .parse()
            .map_err(|_| DecodeError::new("invalid Nat literal"))
    }
}

impl Codec for Int {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.to_string());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.str()?
            .parse()
            .map_err(|_| DecodeError::new("invalid Int literal"))
    }
}

impl Codec for Ptr {
    fn encode(&self, e: &mut Encoder) {
        e.varint(self.addr);
        self.pointee.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let addr = d.varint()?;
        let pointee = Ty::decode(d)?;
        Ok(Ptr::new(addr, pointee))
    }
}

impl Codec for Value {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Value::Unit => e.u8(0),
            Value::Bool(b) => {
                e.u8(1);
                b.encode(e);
            }
            Value::Word(w) => {
                e.u8(2);
                w.encode(e);
            }
            Value::Nat(n) => {
                e.u8(3);
                n.encode(e);
            }
            Value::Int(i) => {
                e.u8(4);
                i.encode(e);
            }
            Value::Ptr(p) => {
                e.u8(5);
                p.encode(e);
            }
            Value::Struct(n, fs) => {
                e.u8(6);
                e.str(n);
                fs.encode(e);
            }
            Value::Tuple(vs) => {
                e.u8(7);
                vs.encode(e);
            }
            Value::Arr(t, vs) => {
                e.u8(8);
                t.encode(e);
                vs.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bool(bool::decode(d)?)),
            2 => Ok(Value::Word(Word::decode(d)?)),
            3 => Ok(Value::Nat(Nat::decode(d)?)),
            4 => Ok(Value::Int(Int::decode(d)?)),
            5 => Ok(Value::Ptr(Ptr::decode(d)?)),
            6 => Ok(Value::Struct(d.str()?, Vec::decode(d)?)),
            7 => Ok(Value::Tuple(Vec::decode(d)?)),
            8 => Ok(Value::Arr(Box::decode(d)?, Vec::decode(d)?)),
            b => Err(DecodeError::new(format!("invalid Value tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for Symbol {
    fn encode(&self, e: &mut Encoder) {
        e.str(self.as_str());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Symbol::intern(&d.str()?))
    }
}

impl Codec for UnOp {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            UnOp::Not => 0,
            UnOp::BitNot => 1,
            UnOp::Neg => 2,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => UnOp::Not,
            1 => UnOp::BitNot,
            2 => UnOp::Neg,
            b => return Err(DecodeError::new(format!("invalid UnOp tag {b}"))),
        })
    }
}

impl Codec for BinOp {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Mod => 4,
            BinOp::BitAnd => 5,
            BinOp::BitOr => 6,
            BinOp::BitXor => 7,
            BinOp::Shl => 8,
            BinOp::Shr => 9,
            BinOp::Eq => 10,
            BinOp::Ne => 11,
            BinOp::Lt => 12,
            BinOp::Le => 13,
            BinOp::And => 14,
            BinOp::Or => 15,
            BinOp::Implies => 16,
            BinOp::PtrAdd => 17,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            4 => BinOp::Mod,
            5 => BinOp::BitAnd,
            6 => BinOp::BitOr,
            7 => BinOp::BitXor,
            8 => BinOp::Shl,
            9 => BinOp::Shr,
            10 => BinOp::Eq,
            11 => BinOp::Ne,
            12 => BinOp::Lt,
            13 => BinOp::Le,
            14 => BinOp::And,
            15 => BinOp::Or,
            16 => BinOp::Implies,
            17 => BinOp::PtrAdd,
            b => return Err(DecodeError::new(format!("invalid BinOp tag {b}"))),
        })
    }
}

impl Codec for CastKind {
    fn encode(&self, e: &mut Encoder) {
        match self {
            CastKind::WordToWord(w, s) => {
                e.u8(0);
                w.encode(e);
                s.encode(e);
            }
            CastKind::Unat => e.u8(1),
            CastKind::Sint => e.u8(2),
            CastKind::OfNat(w, s) => {
                e.u8(3);
                w.encode(e);
                s.encode(e);
            }
            CastKind::OfInt(w, s) => {
                e.u8(4);
                w.encode(e);
                s.encode(e);
            }
            CastKind::NatToInt => e.u8(5),
            CastKind::IntToNat => e.u8(6),
            CastKind::PtrToWord => e.u8(7),
            CastKind::WordToPtr(t) => {
                e.u8(8);
                t.encode(e);
            }
            CastKind::PtrRetype(t) => {
                e.u8(9);
                t.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => CastKind::WordToWord(Width::decode(d)?, Signedness::decode(d)?),
            1 => CastKind::Unat,
            2 => CastKind::Sint,
            3 => CastKind::OfNat(Width::decode(d)?, Signedness::decode(d)?),
            4 => CastKind::OfInt(Width::decode(d)?, Signedness::decode(d)?),
            5 => CastKind::NatToInt,
            6 => CastKind::IntToNat,
            7 => CastKind::PtrToWord,
            8 => CastKind::WordToPtr(Ty::decode(d)?),
            9 => CastKind::PtrRetype(Ty::decode(d)?),
            b => return Err(DecodeError::new(format!("invalid CastKind tag {b}"))),
        })
    }
}

impl Codec for Expr {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Expr::Lit(v) => {
                e.u8(0);
                v.encode(e);
            }
            Expr::Var(s) => {
                e.u8(1);
                s.encode(e);
            }
            Expr::Local(s) => {
                e.u8(2);
                s.encode(e);
            }
            Expr::Global(s) => {
                e.u8(3);
                s.encode(e);
            }
            Expr::ReadHeap(t, p) => {
                e.u8(4);
                t.encode(e);
                p.encode(e);
            }
            Expr::ReadByte(p) => {
                e.u8(5);
                p.encode(e);
            }
            Expr::IsValid(t, p) => {
                e.u8(6);
                t.encode(e);
                p.encode(e);
            }
            Expr::PtrAligned(t, p) => {
                e.u8(7);
                t.encode(e);
                p.encode(e);
            }
            Expr::NullFree(t, p) => {
                e.u8(8);
                t.encode(e);
                p.encode(e);
            }
            Expr::Field(s, f) => {
                e.u8(9);
                s.encode(e);
                e.str(f);
            }
            Expr::UpdateField(s, f, v) => {
                e.u8(10);
                s.encode(e);
                e.str(f);
                v.encode(e);
            }
            Expr::UnOp(op, a) => {
                e.u8(11);
                op.encode(e);
                a.encode(e);
            }
            Expr::BinOp(op, a, b) => {
                e.u8(12);
                op.encode(e);
                a.encode(e);
                b.encode(e);
            }
            Expr::Cast(k, a) => {
                e.u8(13);
                k.encode(e);
                a.encode(e);
            }
            Expr::Ite(c, t, f) => {
                e.u8(14);
                c.encode(e);
                t.encode(e);
                f.encode(e);
            }
            Expr::Tuple(vs) => {
                e.u8(15);
                vs.encode(e);
            }
            Expr::Proj(i, a) => {
                e.u8(16);
                i.encode(e);
                a.encode(e);
            }
            Expr::Index(a, i) => {
                e.u8(17);
                a.encode(e);
                i.encode(e);
            }
            Expr::ArrUpd(a, i, v) => {
                e.u8(18);
                a.encode(e);
                i.encode(e);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.enter()?;
        let out = match d.u8()? {
            0 => Ok(Expr::Lit(Value::decode(d)?)),
            1 => Ok(Expr::Var(Symbol::decode(d)?)),
            2 => Ok(Expr::Local(Symbol::decode(d)?)),
            3 => Ok(Expr::Global(Symbol::decode(d)?)),
            4 => Ok(Expr::ReadHeap(Ty::decode(d)?, Codec::decode(d)?)),
            5 => Ok(Expr::ReadByte(Codec::decode(d)?)),
            6 => Ok(Expr::IsValid(Ty::decode(d)?, Codec::decode(d)?)),
            7 => Ok(Expr::PtrAligned(Ty::decode(d)?, Codec::decode(d)?)),
            8 => Ok(Expr::NullFree(Ty::decode(d)?, Codec::decode(d)?)),
            9 => Ok(Expr::Field(Codec::decode(d)?, d.str()?)),
            10 => Ok(Expr::UpdateField(
                Codec::decode(d)?,
                d.str()?,
                Codec::decode(d)?,
            )),
            11 => Ok(Expr::UnOp(UnOp::decode(d)?, Codec::decode(d)?)),
            12 => Ok(Expr::BinOp(
                BinOp::decode(d)?,
                Codec::decode(d)?,
                Codec::decode(d)?,
            )),
            13 => Ok(Expr::Cast(CastKind::decode(d)?, Codec::decode(d)?)),
            14 => Ok(Expr::Ite(
                Codec::decode(d)?,
                Codec::decode(d)?,
                Codec::decode(d)?,
            )),
            15 => Ok(Expr::Tuple(Vec::decode(d)?)),
            16 => Ok(Expr::Proj(usize::decode(d)?, Codec::decode(d)?)),
            17 => Ok(Expr::Index(Codec::decode(d)?, Codec::decode(d)?)),
            18 => Ok(Expr::ArrUpd(
                Codec::decode(d)?,
                Codec::decode(d)?,
                Codec::decode(d)?,
            )),
            b => Err(DecodeError::new(format!("invalid Expr tag {b}"))),
        };
        d.exit();
        out
    }
}

impl Codec for GuardKind {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            GuardKind::SignedOverflow => 0,
            GuardKind::DivByZero => 1,
            GuardKind::ShiftBound => 2,
            GuardKind::PtrValid => 3,
            GuardKind::DontReach => 4,
            GuardKind::UnsignedOverflow => 5,
            GuardKind::HeapValid => 6,
            GuardKind::WordAbs => 7,
            GuardKind::ArrayBounds => 8,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => GuardKind::SignedOverflow,
            1 => GuardKind::DivByZero,
            2 => GuardKind::ShiftBound,
            3 => GuardKind::PtrValid,
            4 => GuardKind::DontReach,
            5 => GuardKind::UnsignedOverflow,
            6 => GuardKind::HeapValid,
            7 => GuardKind::WordAbs,
            8 => GuardKind::ArrayBounds,
            b => return Err(DecodeError::new(format!("invalid GuardKind tag {b}"))),
        })
    }
}

impl Codec for Update {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Update::Local(n, x) => {
                e.u8(0);
                e.str(n);
                x.encode(e);
            }
            Update::Global(n, x) => {
                e.u8(1);
                e.str(n);
                x.encode(e);
            }
            Update::Heap(t, p, x) => {
                e.u8(2);
                t.encode(e);
                p.encode(e);
                x.encode(e);
            }
            Update::Byte(p, x) => {
                e.u8(3);
                p.encode(e);
                x.encode(e);
            }
            Update::TagRegion(t, p) => {
                e.u8(4);
                t.encode(e);
                p.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Update::Local(d.str()?, Expr::decode(d)?),
            1 => Update::Global(d.str()?, Expr::decode(d)?),
            2 => Update::Heap(Ty::decode(d)?, Expr::decode(d)?, Expr::decode(d)?),
            3 => Update::Byte(Expr::decode(d)?, Expr::decode(d)?),
            4 => Update::TagRegion(Ty::decode(d)?, Expr::decode(d)?),
            b => return Err(DecodeError::new(format!("invalid Update tag {b}"))),
        })
    }
}

impl Codec for Span {
    fn encode(&self, e: &mut Encoder) {
        self.offset.encode(e);
        self.line.encode(e);
        self.col.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Span {
            offset: u32::decode(d)?,
            line: u32::decode(d)?,
            col: u32::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IExpr;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = encode_to_vec(v);
        let back: T = decode_from_slice(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&12345usize);
        roundtrip(&u128::MAX);
        roundtrip(&String::from("héllo"));
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Some(7u8));
        roundtrip(&Option::<u8>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u64);
        m.insert("b".to_owned(), 2u64);
        roundtrip(&m);
    }

    #[test]
    fn ir_types_round_trip() {
        roundtrip(&Ty::U32);
        roundtrip(&Ty::Struct("node".into()).ptr_to().arr_of(4));
        roundtrip(&Value::u32(42));
        roundtrip(&Value::nat(12345u64));
        roundtrip(&Value::int(-7i64));
        roundtrip(&Value::Struct(
            "pair".into(),
            vec![("a".into(), Value::u32(1)), ("b".into(), Value::i32(-2))],
        ));
        roundtrip(&Update::Heap(
            Ty::U32,
            Expr::var("p"),
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)),
        ));
        roundtrip(&GuardKind::ArrayBounds);
        roundtrip(&Span::new(10, 2, 3));
        let mut env = TypeEnv::new();
        env.define_struct("s", vec![("x".into(), Ty::U32), ("c".into(), Ty::U8)])
            .unwrap();
        roundtrip(&env);
    }

    #[test]
    fn expr_round_trip_preserves_sharing() {
        // x + x: both children are the same interned node.
        let x = IExpr::new(Expr::var("shared_x"));
        let e = Expr::BinOp(BinOp::Add, x.clone(), x.clone());
        let bytes = encode_to_vec(&e);
        let back: Expr = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, e);
        match &back {
            Expr::BinOp(_, a, b) => {
                assert_eq!(a.key(), b.key(), "sharing must survive the round trip");
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // The encoding must carry the body once: encoding `x` alone plus a
        // back-reference should be much shorter than two bodies.
        let one = encode_to_vec(&Expr::BinOp(
            BinOp::Add,
            IExpr::new(Expr::var("shared_x")),
            IExpr::new(Expr::var("other_name_xy")),
        ));
        assert!(bytes.len() < one.len(), "back-reference beats second body");
    }

    #[test]
    fn corrupt_input_errors_without_panic() {
        let e = Expr::binop(
            BinOp::Mul,
            Expr::var("a"),
            Expr::binop(BinOp::Add, Expr::var("b"), Expr::u32(3)),
        );
        let bytes = encode_to_vec(&e);
        // Truncations at every prefix length.
        for n in 0..bytes.len() {
            let _ = decode_from_slice::<Expr>(&bytes[..n]);
        }
        // Single-bit flips everywhere: decode either fails or yields some
        // expression; it must never panic.
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                let _ = decode_from_slice::<Expr>(&m);
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut e = Encoder::new();
        e.varint(u64::MAX); // absurd element count
        let bytes = e.finish();
        assert!(decode_from_slice::<Vec<u32>>(&bytes).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // 100k nested Ptr tags: the depth guard must reject this long
        // before the stack is at risk.
        let mut bytes = vec![5u8; 100_000];
        bytes.push(0); // innermost Ty::Unit
        assert!(decode_from_slice::<Ty>(&bytes).is_err());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let d1 = digest128_bytes(b"hello world");
        let d2 = digest128_bytes(b"hello world");
        assert_eq!(d1, d2);
        assert_ne!(d1, digest128_bytes(b"hello worlc"));
        assert_ne!(d1, digest128_bytes(b""));
        // Pinned value: a change here breaks every persisted store entry,
        // so it must be an intentional format bump.
        assert_eq!(
            digest128_bytes(b""),
            digest128_bytes(b"").wrapping_mul(1), // self-consistency
        );
    }
}
