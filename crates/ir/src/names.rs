//! Interned names and fresh-name generation.
//!
//! [`Symbol`] is the interned representation of variable and global names:
//! a `u32` id plus a pointer to the canonical (leaked, process-lifetime)
//! string. [`crate::Expr`] stores `Symbol`s for `Var`/`Local`/`Global`, so
//! environment lookups hash a `u32` instead of re-hashing a `String`, and
//! name equality is an integer compare.
//!
//! Determinism: ids are assigned in first-intern order, which can differ
//! across runs and worker counts — so nothing observable depends on them.
//! `Ord` and `Display` go through the string; `Eq` (pure in-process
//! identity) uses the id. `Hash` writes a *content-based* 64-bit hash
//! precomputed at intern time: equal ids imply equal text implies equal
//! hash, so `Eq`/`Hash` stay consistent, and every digest built over
//! symbols (phase input digests, replay-cache digests, interned structural
//! hashes) is stable across processes — the property the disk-backed
//! artifact store depends on.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Global symbol table: canonical string → id. Strings are leaked once so
/// every symbol can hand out a `&'static str` without further locking.
static SYMBOLS: Mutex<Option<HashMap<&'static str, Symbol>>> = Mutex::new(None);

/// FNV-1a over the name's bytes: the content hash `Symbol::hash` writes.
/// Fixed offset basis and prime, so the value depends only on the text —
/// never on intern order, worker count, or process.
fn content_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An interned name. `Copy`, integer `Eq`, content-based `Hash`, string
/// `Ord`/`Display` (so ordering and printing round-trip exactly like the
/// `String` it replaced).
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    stable: u64,
    text: &'static str,
}

impl Symbol {
    /// Interns `name`, returning its canonical symbol.
    #[must_use]
    pub fn intern(name: &str) -> Symbol {
        let mut guard = SYMBOLS.lock().expect("symbol table poisoned");
        let table = guard.get_or_insert_with(HashMap::new);
        if let Some(sym) = table.get(name) {
            return *sym;
        }
        let text: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(table.len()).expect("symbol table overflow");
        let sym = Symbol { id, stable: content_hash(text), text };
        table.insert(text, sym);
        sym
    }

    /// The canonical string (O(1), no locking).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// The table id (stable within a process only — never serialise it).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The content-based 64-bit hash (stable across processes; safe to
    /// fold into persisted digests).
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        self.stable
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Symbol {}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}
impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}
impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.text == other.as_str()
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hash, not the id: equal symbols have equal text, so this
        // is Eq-consistent, and digests over symbols survive a process
        // restart (required by the disk-backed artifact store).
        state.write_u64(self.stable);
    }
}

// String order, so `BTreeMap<Symbol, _>`/sorting is deterministic across
// runs even though ids are first-come.
impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Transparent, like the `String` it replaced.
        fmt::Debug::fmt(self.text, f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}
impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.as_str().to_owned()
    }
}

impl std::borrow::Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.text
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.text
    }
}

/// Generates fresh variable names `prefix0`, `prefix1`, … distinct from a
/// set of reserved names.
#[derive(Clone, Debug, Default)]
pub struct VarGen {
    counter: u64,
    reserved: std::collections::BTreeSet<String>,
}

impl VarGen {
    /// Creates a generator with no reserved names.
    #[must_use]
    pub fn new() -> VarGen {
        VarGen::default()
    }

    /// Marks a name as taken so it is never generated.
    pub fn reserve(&mut self, name: &str) {
        self.reserved.insert(name.to_owned());
    }

    /// Marks many names as taken.
    pub fn reserve_all<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) {
        for n in names {
            self.reserve(n);
        }
    }

    /// Produces a fresh name starting with `prefix`.
    pub fn fresh(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}{}", self.counter);
            self.counter += 1;
            if !self.reserved.contains(&name) {
                self.reserved.insert(name.clone());
                return name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_distinct() {
        let mut g = VarGen::new();
        let a = g.fresh("v");
        let b = g.fresh("v");
        assert_ne!(a, b);
    }

    #[test]
    fn respects_reservations() {
        let mut g = VarGen::new();
        g.reserve("v0");
        g.reserve("v1");
        assert_eq!(g.fresh("v"), "v2");
    }
}

#[cfg(test)]
mod symbol_tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("x");
        let b = Symbol::intern("x");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "x");
        assert_ne!(a, Symbol::intern("y"));
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("node_ptr0");
        assert_eq!(s.to_string(), "node_ptr0");
        assert_eq!(format!("{s:?}"), "\"node_ptr0\"");
        assert_eq!(String::from(s), "node_ptr0");
    }

    #[test]
    fn ordering_is_by_string() {
        // Intern in reverse-lexicographic order: ids disagree with strings.
        let b = Symbol::intern("zzz_sym_b");
        let a = Symbol::intern("aaa_sym_a");
        assert!(a < b, "Ord must follow strings, not first-intern ids");
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn stable_hash_is_content_based() {
        use std::hash::{Hash, Hasher};
        let a = Symbol::intern("stable_hash_probe");
        let b = Symbol::intern("stable_hash_probe");
        assert_eq!(a.stable_hash(), b.stable_hash());
        // The exact FNV-1a value: a change here is a store format break
        // (persisted digests would stop matching across versions).
        assert_eq!(a.stable_hash(), content_hash("stable_hash_probe"));
        let mut h = std::collections::hash_map::DefaultHasher::new();
        a.hash(&mut h);
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        h2.write_u64(a.stable_hash());
        assert_eq!(h.finish(), h2.finish(), "Hash must write the content hash");
    }

    #[test]
    fn str_comparisons() {
        let s = Symbol::intern("p");
        assert!(s == "p");
        assert!(s == *"p");
        let owned = String::from("p");
        assert!(s == owned);
        assert_eq!(&*s, "p");
    }
}
