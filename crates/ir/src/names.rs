//! Fresh-name generation for the abstraction engines.

/// Generates fresh variable names `prefix0`, `prefix1`, … distinct from a
/// set of reserved names.
#[derive(Clone, Debug, Default)]
pub struct VarGen {
    counter: u64,
    reserved: std::collections::BTreeSet<String>,
}

impl VarGen {
    /// Creates a generator with no reserved names.
    #[must_use]
    pub fn new() -> VarGen {
        VarGen::default()
    }

    /// Marks a name as taken so it is never generated.
    pub fn reserve(&mut self, name: &str) {
        self.reserved.insert(name.to_owned());
    }

    /// Marks many names as taken.
    pub fn reserve_all<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) {
        for n in names {
            self.reserve(n);
        }
    }

    /// Produces a fresh name starting with `prefix`.
    pub fn fresh(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}{}", self.counter);
            self.counter += 1;
            if !self.reserved.contains(&name) {
                self.reserved.insert(name.clone());
                return name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_distinct() {
        let mut g = VarGen::new();
        let a = g.fresh("v");
        let b = g.fresh("v");
        assert_ne!(a, b);
    }

    #[test]
    fn respects_reservations() {
        let mut g = VarGen::new();
        g.reserve("v0");
        g.reserve("v1");
        assert_eq!(g.fresh("v"), "v2");
    }
}
