//! Fixed-width machine words with C semantics.
//!
//! A [`Word`] carries its width and signedness so the evaluator can give
//! every C arithmetic operator its architecture-defined meaning: unsigned
//! operations wrap modulo 2ⁿ, signed values are two's-complement, and the
//! *comparison*, *division* and *right-shift* operators dispatch on
//! signedness. Signed overflow is **not** detected here — exactly as in the
//! paper, the C-to-Simpl translation emits explicit guard statements for it
//! (Sec 3.1), and the bit-level operation below is what the hardware would
//! compute.

use std::cmp::Ordering;
use std::fmt;

use bignum::{Int, Nat};

use crate::ty::{Signedness, Ty, Width};

/// A machine word: `bits` is always masked to `width`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    bits: u64,
    width: Width,
    sign: Signedness,
}

impl Word {
    /// Creates a word, masking `bits` to the width.
    #[must_use]
    pub fn new(bits: u64, width: Width, sign: Signedness) -> Word {
        Word {
            bits: bits & width.mask(),
            width,
            sign,
        }
    }

    /// An unsigned 32-bit word.
    #[must_use]
    pub fn u32(v: u32) -> Word {
        Word::new(u64::from(v), Width::W32, Signedness::Unsigned)
    }

    /// A signed 32-bit word (two's complement encoding of `v`).
    #[must_use]
    pub fn i32(v: i32) -> Word {
        Word::new(v as u32 as u64, Width::W32, Signedness::Signed)
    }

    /// An unsigned 8-bit word.
    #[must_use]
    pub fn u8(v: u8) -> Word {
        Word::new(u64::from(v), Width::W8, Signedness::Unsigned)
    }

    /// The zero word of the given shape.
    #[must_use]
    pub fn zero(width: Width, sign: Signedness) -> Word {
        Word::new(0, width, sign)
    }

    /// Raw bit pattern (zero-extended to 64 bits).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Width of the word.
    #[must_use]
    pub fn width(&self) -> Width {
        self.width
    }

    /// Signedness of the word.
    #[must_use]
    pub fn sign(&self) -> Signedness {
        self.sign
    }

    /// The semantic type of this word.
    #[must_use]
    pub fn ty(&self) -> Ty {
        Ty::Word(self.width, self.sign)
    }

    /// Is the bit pattern all zeros?
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Two's-complement value as `i64`.
    #[must_use]
    pub fn signed_value(&self) -> i64 {
        let b = self.width.bits();
        if b == 64 {
            self.bits as i64
        } else if self.bits >> (b - 1) & 1 == 1 {
            (self.bits as i64) - (1i64 << b)
        } else {
            self.bits as i64
        }
    }

    /// `unat`: the unsigned value as an ideal natural.
    #[must_use]
    pub fn unat(&self) -> Nat {
        Nat::from(self.bits)
    }

    /// `sint`: the two's-complement value as an ideal integer.
    #[must_use]
    pub fn sint(&self) -> Int {
        Int::from(self.signed_value())
    }

    /// The value as an ideal integer using this word's own signedness.
    #[must_use]
    pub fn to_int(&self) -> Int {
        match self.sign {
            Signedness::Signed => self.sint(),
            Signedness::Unsigned => Int::from(self.bits),
        }
    }

    /// `of_nat`: builds a word from a natural, reducing modulo 2ⁿ.
    #[must_use]
    pub fn of_nat(n: &Nat, width: Width, sign: Signedness) -> Word {
        let m = &(n.clone()) % &Nat::pow2(width.bits());
        Word::new(m.to_u64().expect("reduced below 2^64"), width, sign)
    }

    /// `of_int`: builds a word from an integer, reducing modulo 2ⁿ.
    #[must_use]
    pub fn of_int(i: &Int, width: Width, sign: Signedness) -> Word {
        let modulus = Int::from_nat(Nat::pow2(width.bits()));
        let (_, m) = i.div_rem_floor(&modulus);
        Word::of_nat(&m.to_nat(), width, sign)
    }

    /// Maximum representable value (`UINT_MAX` / `INT_MAX` style) as `Int`.
    #[must_use]
    pub fn max_value(width: Width, sign: Signedness) -> Int {
        match sign {
            Signedness::Unsigned => Int::from_nat(Nat::pow2(width.bits())) - Int::one(),
            Signedness::Signed => Int::from_nat(Nat::pow2(width.bits() - 1)) - Int::one(),
        }
    }

    /// Minimum representable value as `Int` (0 for unsigned).
    #[must_use]
    pub fn min_value(width: Width, sign: Signedness) -> Int {
        match sign {
            Signedness::Unsigned => Int::zero(),
            Signedness::Signed => -Int::from_nat(Nat::pow2(width.bits() - 1)),
        }
    }

    /// Wrapping addition (same bit-level result for both signednesses).
    #[must_use]
    pub fn wrapping_add(&self, rhs: &Word) -> Word {
        Word::new(self.bits.wrapping_add(rhs.bits), self.width, self.sign)
    }

    /// Wrapping subtraction.
    #[must_use]
    pub fn wrapping_sub(&self, rhs: &Word) -> Word {
        Word::new(self.bits.wrapping_sub(rhs.bits), self.width, self.sign)
    }

    /// Wrapping multiplication.
    #[must_use]
    pub fn wrapping_mul(&self, rhs: &Word) -> Word {
        Word::new(self.bits.wrapping_mul(rhs.bits), self.width, self.sign)
    }

    /// Wrapping negation.
    #[must_use]
    pub fn wrapping_neg(&self) -> Word {
        Word::new(self.bits.wrapping_neg(), self.width, self.sign)
    }

    /// C division. Unsigned: truncating; signed: truncating toward zero on
    /// the two's-complement values. Division by zero returns 0 — the
    /// translation guards it, so this case is semantically unreachable.
    #[must_use]
    pub fn c_div(&self, rhs: &Word) -> Word {
        if rhs.is_zero() {
            return Word::zero(self.width, self.sign);
        }
        match self.sign {
            Signedness::Unsigned => Word::new(self.bits / rhs.bits, self.width, self.sign),
            Signedness::Signed => {
                let q = self.signed_value().wrapping_div(rhs.signed_value());
                Word::new(q as u64, self.width, self.sign)
            }
        }
    }

    /// C remainder, paired with [`Word::c_div`]. Remainder by zero returns
    /// the dividend (total-function convention; guarded in translations).
    #[must_use]
    pub fn c_rem(&self, rhs: &Word) -> Word {
        if rhs.is_zero() {
            return *self;
        }
        match self.sign {
            Signedness::Unsigned => Word::new(self.bits % rhs.bits, self.width, self.sign),
            Signedness::Signed => {
                let r = self.signed_value().wrapping_rem(rhs.signed_value());
                Word::new(r as u64, self.width, self.sign)
            }
        }
    }

    /// Bitwise not.
    #[must_use]
    pub fn not(&self) -> Word {
        Word::new(!self.bits, self.width, self.sign)
    }

    /// Bitwise and.
    #[must_use]
    pub fn and(&self, rhs: &Word) -> Word {
        Word::new(self.bits & rhs.bits, self.width, self.sign)
    }

    /// Bitwise or.
    #[must_use]
    pub fn or(&self, rhs: &Word) -> Word {
        Word::new(self.bits | rhs.bits, self.width, self.sign)
    }

    /// Bitwise xor.
    #[must_use]
    pub fn xor(&self, rhs: &Word) -> Word {
        Word::new(self.bits ^ rhs.bits, self.width, self.sign)
    }

    /// Left shift; shifts ≥ width yield 0 (the translation guards the UB case).
    #[must_use]
    pub fn shl(&self, amount: u32) -> Word {
        if amount >= self.width.bits() {
            Word::zero(self.width, self.sign)
        } else {
            Word::new(self.bits << amount, self.width, self.sign)
        }
    }

    /// Right shift: logical for unsigned, arithmetic for signed.
    #[must_use]
    pub fn shr(&self, amount: u32) -> Word {
        if amount >= self.width.bits() {
            return match self.sign {
                Signedness::Unsigned => Word::zero(self.width, self.sign),
                Signedness::Signed => {
                    if self.signed_value() < 0 {
                        Word::new(u64::MAX, self.width, self.sign)
                    } else {
                        Word::zero(self.width, self.sign)
                    }
                }
            };
        }
        match self.sign {
            Signedness::Unsigned => Word::new(self.bits >> amount, self.width, self.sign),
            Signedness::Signed => {
                Word::new((self.signed_value() >> amount) as u64, self.width, self.sign)
            }
        }
    }

    /// Signedness-aware comparison (`<w` / `<s` in the paper).
    #[must_use]
    pub fn word_cmp(&self, rhs: &Word) -> Ordering {
        match self.sign {
            Signedness::Unsigned => self.bits.cmp(&rhs.bits),
            Signedness::Signed => self.signed_value().cmp(&rhs.signed_value()),
        }
    }

    /// C integer conversion to another width/signedness: truncate, or extend
    /// according to the *source* signedness.
    #[must_use]
    pub fn convert(&self, width: Width, sign: Signedness) -> Word {
        let extended = match self.sign {
            Signedness::Unsigned => self.bits,
            Signedness::Signed => self.signed_value() as u64,
        };
        Word::new(extended, width, sign)
    }

    /// Would `self + rhs` overflow the signed range? (Used by tests; the
    /// translation expresses this via ideal-integer guards instead.)
    #[must_use]
    pub fn signed_add_overflows(&self, rhs: &Word) -> bool {
        let sum = self.sint() + rhs.sint();
        sum > Word::max_value(self.width, Signedness::Signed)
            || sum < Word::min_value(self.width, Signedness::Signed)
    }

    /// The little-endian byte encoding of this word.
    #[must_use]
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.bits.to_le_bytes()[..self.width.bytes() as usize].to_vec()
    }

    /// Decodes a word from little-endian bytes (length must equal the width).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` does not match `width.bytes()`.
    #[must_use]
    pub fn from_le_bytes(bytes: &[u8], width: Width, sign: Signedness) -> Word {
        assert_eq!(bytes.len() as u64, width.bytes(), "byte length mismatch");
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        Word::new(u64::from_le_bytes(buf), width, sign)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Signedness::Unsigned => write!(f, "{}", self.bits),
            Signedness::Signed => write!(f, "{}", self.signed_value()),
        }
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({}: {})", self, self.ty())
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_wraps() {
        // Table 2: u + 1 > u fails at u = 2^32 - 1.
        let u = Word::u32(u32::MAX);
        assert_eq!(u.wrapping_add(&Word::u32(1)), Word::u32(0));
        // Table 2: 2^31 * 2 = 0.
        let h = Word::u32(1 << 31);
        assert_eq!(h.wrapping_mul(&Word::u32(2)), Word::u32(0));
        // Table 2: -u = u at u = 2^31.
        assert_eq!(h.wrapping_neg(), h);
    }

    #[test]
    fn signed_two_complement() {
        let m1 = Word::i32(-1);
        assert_eq!(m1.bits(), 0xFFFF_FFFF);
        assert_eq!(m1.signed_value(), -1);
        assert_eq!(m1.sint(), Int::from(-1i64));
        let min = Word::i32(i32::MIN);
        assert_eq!(min.signed_value(), i64::from(i32::MIN));
        // -(-2^31) wraps back to itself on hardware.
        assert_eq!(min.wrapping_neg(), min);
    }

    #[test]
    fn division_semantics() {
        assert_eq!(Word::i32(-7).c_div(&Word::i32(2)), Word::i32(-3));
        assert_eq!(Word::i32(-7).c_rem(&Word::i32(2)), Word::i32(-1));
        assert_eq!(Word::u32(7).c_div(&Word::u32(2)), Word::u32(3));
        assert_eq!(Word::u32(7).c_div(&Word::u32(0)), Word::u32(0));
    }

    #[test]
    fn comparisons_dispatch_on_sign() {
        // As unsigned, 0xFFFFFFFF is the max; as signed it is -1.
        let a = Word::u32(u32::MAX);
        let b = Word::u32(1);
        assert_eq!(a.word_cmp(&b), Ordering::Greater);
        let a = Word::i32(-1);
        let b = Word::i32(1);
        assert_eq!(a.word_cmp(&b), Ordering::Less);
    }

    #[test]
    fn shifts() {
        assert_eq!(Word::u32(0x8000_0000).shr(31), Word::u32(1));
        assert_eq!(Word::i32(i32::MIN).shr(31), Word::i32(-1));
        assert_eq!(Word::u32(1).shl(31), Word::u32(0x8000_0000));
        assert_eq!(Word::u32(1).shl(32), Word::u32(0));
    }

    #[test]
    fn conversions() {
        // (unsigned char)(-1) == 255
        let c = Word::i32(-1).convert(Width::W8, Signedness::Unsigned);
        assert_eq!(c.bits(), 255);
        // sign extension: (int)(signed char)0xFF == -1
        let sc = Word::new(0xFF, Width::W8, Signedness::Signed);
        assert_eq!(sc.convert(Width::W32, Signedness::Signed), Word::i32(-1));
        // zero extension from unsigned
        let uc = Word::u8(0xFF);
        assert_eq!(uc.convert(Width::W32, Signedness::Unsigned), Word::u32(255));
    }

    #[test]
    fn nat_int_round_trips() {
        let w = Word::u32(12345);
        assert_eq!(Word::of_nat(&w.unat(), Width::W32, Signedness::Unsigned), w);
        let s = Word::i32(-12345);
        assert_eq!(Word::of_int(&s.sint(), Width::W32, Signedness::Signed), s);
        // of_nat reduces mod 2^32
        let big = Nat::pow2(32) + Nat::from(7u64);
        assert_eq!(
            Word::of_nat(&big, Width::W32, Signedness::Unsigned),
            Word::u32(7)
        );
        // of_int of a negative reduces into range
        assert_eq!(
            Word::of_int(&Int::from(-1i64), Width::W32, Signedness::Unsigned),
            Word::u32(u32::MAX)
        );
    }

    #[test]
    fn bounds() {
        assert_eq!(
            Word::max_value(Width::W32, Signedness::Signed),
            Int::from(i32::MAX)
        );
        assert_eq!(
            Word::min_value(Width::W32, Signedness::Signed),
            Int::from(i32::MIN)
        );
        assert_eq!(
            Word::max_value(Width::W32, Signedness::Unsigned),
            Int::from(u32::MAX)
        );
    }

    #[test]
    fn byte_round_trip() {
        let w = Word::u32(0xDEAD_BEEF);
        let bs = w.to_le_bytes();
        assert_eq!(bs, vec![0xEF, 0xBE, 0xAD, 0xDE]);
        assert_eq!(Word::from_le_bytes(&bs, Width::W32, Signedness::Unsigned), w);
    }

    #[test]
    fn overflow_detection() {
        let a = Word::i32(i32::MAX);
        assert!(a.signed_add_overflows(&Word::i32(1)));
        assert!(!a.signed_add_overflows(&Word::i32(0)));
        assert!(Word::i32(i32::MIN).signed_add_overflows(&Word::i32(-1)));
    }
}
