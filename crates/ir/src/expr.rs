//! The state-dependent expression language.
//!
//! An [`Expr`] denotes a function of an environment (the lambda-bound
//! variables of the monadic embedding) and a program state — the deep
//! analogue of the paper's `λs. …` terms. The same expression language is
//! used at every level of the pipeline; which constructors may appear is
//! constrained by the phase (e.g. `ReadHeap` over the byte heap before heap
//! abstraction, over the typed split heaps afterwards; `Nat`/`Int` literals
//! and `unat`/`sint` casts only during/after word abstraction).
//!
//! Children are hash-consed [`IExpr`] handles (see [`crate::intern`]):
//! structurally equal subterms share one allocation, `clone()` is a
//! refcount bump, equality is pointer-first, and the term-size metric reads
//! cached sizes. Names are interned [`Symbol`]s, so environment lookups
//! hash a `u32` id instead of a `String`.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use bignum::{Int, Nat};

use crate::intern::{Internable, Interned, Interner};
use crate::names::Symbol;
use crate::ty::{Signedness, Ty, Width};
use crate::value::{Ptr, Value};
use crate::word::Word;

/// An interned (hash-consed) expression handle — the replacement for
/// `Box<Expr>` in the term representation.
pub type IExpr = Interned<Expr>;

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Bitwise complement on words.
    BitNot,
    /// Arithmetic negation (words wrap; `Int` is exact; `Nat` is invalid).
    Neg,
}

/// Binary operators. Arithmetic and comparisons are polymorphic over
/// `Word`/`Nat`/`Int` (dispatching on the operand values); the word versions
/// carry C semantics (wrapping, signedness-aware comparison and division).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction (truncated on `Nat`, wrapping on words).
    Sub,
    /// Multiplication.
    Mul,
    /// Division (C semantics on words, flooring on `Nat`/`Int` — matching
    /// HOL's `div`, which the guards make coincide with C on defined cases).
    Div,
    /// Remainder, paired with `Div`.
    Mod,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift (shift amount is a word or nat).
    Shl,
    /// Right shift (logical/arithmetic per signedness).
    Shr,
    /// Equality (any type).
    Eq,
    /// Disequality.
    Ne,
    /// Less-than (signedness-aware on words).
    Lt,
    /// Less-or-equal.
    Le,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean implication.
    Implies,
    /// Pointer plus byte offset (offset operand is a word/nat; scaling by
    /// element size is applied by the C translation).
    PtrAdd,
}

/// Conversions between semantic types.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// C integer conversion between word shapes.
    WordToWord(Width, Signedness),
    /// `unat`: unsigned word → ideal natural.
    Unat,
    /// `sint`: signed word → ideal integer.
    Sint,
    /// `of_nat`: natural → word (mod 2ⁿ).
    OfNat(Width, Signedness),
    /// `of_int`: integer → word (mod 2ⁿ).
    OfInt(Width, Signedness),
    /// `int`: natural → integer (exact).
    NatToInt,
    /// `nat`: integer → natural (negative ↦ 0, HOL convention).
    IntToNat,
    /// Pointer → unsigned 32-bit word (address).
    PtrToWord,
    /// Word → pointer of the given pointee type.
    WordToPtr(Ty),
    /// Pointer retyping (C pointer cast).
    PtrRetype(Ty),
}

/// A state-dependent expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A lambda-bound variable (resolved in the environment).
    Var(Symbol),
    /// A state-stored local variable (L1 level, before local-variable
    /// lifting; resolved in the state's local frame).
    Local(Symbol),
    /// A global variable (resolved in the state).
    Global(Symbol),
    /// Typed heap read `read (heap s) p` / `s[p]`: on a concrete state this
    /// decodes bytes at the pointer; on an abstract state it consults the
    /// typed heap for the pointee type.
    ReadHeap(Ty, IExpr),
    /// Byte-level heap read (concrete states only).
    ReadByte(IExpr),
    /// `is_valid_τ s p` — on an abstract state the validity function; on a
    /// concrete state, definedness of `heap_lift` at `p` (correct type
    /// tagging + alignment + non-null, Sec 4.2).
    IsValid(Ty, IExpr),
    /// `ptr_aligned p` for the given pointee type.
    PtrAligned(Ty, IExpr),
    /// `0 ∉ {p ..+ size τ}`: the object neither contains NULL nor wraps
    /// around the end of the address space.
    NullFree(Ty, IExpr),
    /// Struct field selection on a struct *value*.
    Field(IExpr, String),
    /// Functional struct update: `UpdateField(s, f, v)` is `s⦇f := v⦈`.
    UpdateField(IExpr, String, IExpr),
    /// Unary operation.
    UnOp(UnOp, IExpr),
    /// Binary operation.
    BinOp(BinOp, IExpr, IExpr),
    /// Conversion.
    Cast(CastKind, IExpr),
    /// Conditional expression.
    Ite(IExpr, IExpr, IExpr),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection (0-based).
    Proj(usize, IExpr),
    /// Array element read `a ! i` (HOL list indexing). Out of bounds it
    /// denotes the element type's zero value; bounds guards rule that out.
    Index(IExpr, IExpr),
    /// Functional array update `a[i := v]` (HOL `list_update`; the
    /// identity out of bounds).
    ArrUpd(IExpr, IExpr, IExpr),
}

impl Internable for Expr {
    fn shallow_size(&self) -> usize {
        self.term_size()
    }

    fn interner() -> &'static Interner<Expr> {
        static INTERNER: std::sync::OnceLock<Interner<Expr>> = std::sync::OnceLock::new();
        INTERNER.get_or_init(Interner::new)
    }

    fn with_local<R>(f: impl FnOnce(&mut crate::intern::LocalCache<Expr>) -> R) -> R {
        thread_local! {
            static CACHE: std::cell::RefCell<crate::intern::LocalCache<Expr>> =
                std::cell::RefCell::new(crate::intern::LocalCache::new());
        }
        CACHE.with(|c| f(&mut c.borrow_mut()))
    }
}

impl Expr {
    /// Boolean literal `true`.
    #[must_use]
    pub fn tt() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// Boolean literal `false`.
    #[must_use]
    pub fn ff() -> Expr {
        Expr::Lit(Value::Bool(false))
    }

    /// Unit literal.
    #[must_use]
    pub fn unit() -> Expr {
        Expr::Lit(Value::Unit)
    }

    /// Unsigned 32-bit word literal.
    #[must_use]
    pub fn u32(v: u32) -> Expr {
        Expr::Lit(Value::u32(v))
    }

    /// Signed 32-bit word literal.
    #[must_use]
    pub fn i32(v: i32) -> Expr {
        Expr::Lit(Value::i32(v))
    }

    /// Natural-number literal.
    #[must_use]
    pub fn nat(v: impl Into<Nat>) -> Expr {
        Expr::Lit(Value::Nat(v.into()))
    }

    /// Integer literal.
    #[must_use]
    pub fn int(v: impl Into<Int>) -> Expr {
        Expr::Lit(Value::Int(v.into()))
    }

    /// Word literal of arbitrary shape.
    #[must_use]
    pub fn word(w: Word) -> Expr {
        Expr::Lit(Value::Word(w))
    }

    /// NULL pointer literal.
    #[must_use]
    pub fn null(pointee: Ty) -> Expr {
        Expr::Lit(Value::Ptr(Ptr::null(pointee)))
    }

    /// Variable reference.
    #[must_use]
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// State-stored local reference.
    #[must_use]
    pub fn local(name: impl Into<Symbol>) -> Expr {
        Expr::Local(name.into())
    }

    /// Global variable reference.
    #[must_use]
    pub fn global(name: impl Into<Symbol>) -> Expr {
        Expr::Global(name.into())
    }

    /// Binary operation.
    #[must_use]
    pub fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::BinOp(op, IExpr::new(l), IExpr::new(r))
    }

    /// Unary operation.
    #[must_use]
    pub fn unop(op: UnOp, e: Expr) -> Expr {
        Expr::UnOp(op, IExpr::new(e))
    }

    /// Cast.
    #[must_use]
    pub fn cast(kind: CastKind, e: Expr) -> Expr {
        Expr::Cast(kind, IExpr::new(e))
    }

    /// Conditional expression.
    #[must_use]
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Ite(IExpr::new(c), IExpr::new(t), IExpr::new(e))
    }

    /// Conjunction, simplifying the `true` unit.
    #[must_use]
    pub fn and(l: Expr, r: Expr) -> Expr {
        if l == Expr::tt() {
            r
        } else if r == Expr::tt() {
            l
        } else {
            Expr::binop(BinOp::And, l, r)
        }
    }

    /// Implication.
    #[must_use]
    pub fn implies(l: Expr, r: Expr) -> Expr {
        Expr::binop(BinOp::Implies, l, r)
    }

    /// Equality.
    #[must_use]
    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::binop(BinOp::Eq, l, r)
    }

    /// Boolean negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // constructor, not `!` on a receiver
    pub fn not(e: Expr) -> Expr {
        Expr::unop(UnOp::Not, e)
    }

    /// Typed heap read.
    #[must_use]
    pub fn read_heap(ty: Ty, p: Expr) -> Expr {
        Expr::ReadHeap(ty, IExpr::new(p))
    }

    /// Validity of a pointer for a type.
    #[must_use]
    pub fn is_valid(ty: Ty, p: Expr) -> Expr {
        Expr::IsValid(ty, IExpr::new(p))
    }

    /// Struct field selection.
    #[must_use]
    pub fn field(e: Expr, f: impl Into<String>) -> Expr {
        Expr::Field(IExpr::new(e), f.into())
    }

    /// Tuple projection.
    #[must_use]
    pub fn proj(i: usize, e: Expr) -> Expr {
        Expr::Proj(i, IExpr::new(e))
    }

    /// Array element read.
    #[must_use]
    pub fn index(a: Expr, i: Expr) -> Expr {
        Expr::Index(IExpr::new(a), IExpr::new(i))
    }

    /// Functional array update.
    #[must_use]
    pub fn arr_upd(a: Expr, i: Expr, v: Expr) -> Expr {
        Expr::ArrUpd(IExpr::new(a), IExpr::new(i), IExpr::new(v))
    }

    /// The "concrete-level pointer guard" of the paper's Fig 3:
    /// `ptr_aligned p ∧ 0 ∉ {p ..+ obj_size τ}`.
    #[must_use]
    pub fn c_guard(ty: Ty, p: Expr) -> Expr {
        let p = IExpr::new(p);
        Expr::and(
            Expr::PtrAligned(ty.clone(), p.clone()),
            Expr::NullFree(ty, p),
        )
    }

    /// Is this the literal `true`?
    #[must_use]
    pub fn is_true_lit(&self) -> bool {
        *self == Expr::tt()
    }

    /// The free [`Expr::Var`] names of this expression.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Var(n) = e {
                out.insert(n.to_string());
            }
        });
        out
    }

    /// The [`Expr::Local`] names read by this expression.
    #[must_use]
    pub fn locals_read(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Local(n) = e {
                out.insert(n.to_string());
            }
        });
        out
    }

    /// Does this expression read the state (heap, locals, globals)?
    #[must_use]
    pub fn reads_state(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Local(_)
                    | Expr::Global(_)
                    | Expr::ReadHeap(..)
                    | Expr::ReadByte(_)
                    | Expr::IsValid(..)
            ) {
                found = true;
            }
        });
        found
    }

    /// Does this expression read the heap (typed or byte-level)?
    #[must_use]
    pub fn reads_heap(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::ReadHeap(..) | Expr::ReadByte(_) | Expr::IsValid(..)) {
                found = true;
            }
        });
        found
    }

    /// Applies `f` to every subexpression (preorder). Shared subterms are
    /// visited once per occurrence (tree semantics, as before interning).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => {}
            Expr::ReadHeap(_, e)
            | Expr::ReadByte(e)
            | Expr::IsValid(_, e)
            | Expr::PtrAligned(_, e)
            | Expr::NullFree(_, e)
            | Expr::Field(e, _)
            | Expr::UnOp(_, e)
            | Expr::Cast(_, e)
            | Expr::Proj(_, e) => e.visit(f),
            Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => {
                a.visit(f);
                b.visit(f);
                c.visit(f);
            }
            Expr::Tuple(es) => {
                for e in es {
                    e.visit(f);
                }
            }
        }
    }

    /// Rebuilds the expression, transforming each node bottom-up with `f`.
    ///
    /// The rewrite is sharing-aware: hash-consed children are memoised on
    /// node identity, so a subterm occurring many times is transformed once
    /// (sound because `f` is a pure function of the subterm), and children
    /// `f` leaves unchanged keep their existing allocation.
    #[must_use]
    pub fn map(&self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let mut memo: HashMap<usize, IExpr> = HashMap::new();
        self.map_memo(f, &mut memo)
    }

    fn map_memo(&self, f: &impl Fn(Expr) -> Expr, memo: &mut HashMap<usize, IExpr>) -> Expr {
        let rebuilt = match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => self.clone(),
            Expr::ReadHeap(t, e) => Expr::ReadHeap(t.clone(), Self::map_child(e, f, memo)),
            Expr::ReadByte(e) => Expr::ReadByte(Self::map_child(e, f, memo)),
            Expr::IsValid(t, e) => Expr::IsValid(t.clone(), Self::map_child(e, f, memo)),
            Expr::PtrAligned(t, e) => Expr::PtrAligned(t.clone(), Self::map_child(e, f, memo)),
            Expr::NullFree(t, e) => Expr::NullFree(t.clone(), Self::map_child(e, f, memo)),
            Expr::Field(e, n) => Expr::Field(Self::map_child(e, f, memo), n.clone()),
            Expr::UpdateField(a, n, b) => Expr::UpdateField(
                Self::map_child(a, f, memo),
                n.clone(),
                Self::map_child(b, f, memo),
            ),
            Expr::UnOp(op, e) => Expr::UnOp(*op, Self::map_child(e, f, memo)),
            Expr::BinOp(op, a, b) => Expr::BinOp(
                *op,
                Self::map_child(a, f, memo),
                Self::map_child(b, f, memo),
            ),
            Expr::Cast(k, e) => Expr::Cast(k.clone(), Self::map_child(e, f, memo)),
            Expr::Ite(a, b, c) => Expr::Ite(
                Self::map_child(a, f, memo),
                Self::map_child(b, f, memo),
                Self::map_child(c, f, memo),
            ),
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|e| e.map_memo(f, memo)).collect()),
            Expr::Proj(i, e) => Expr::Proj(*i, Self::map_child(e, f, memo)),
            Expr::Index(a, i) => Expr::Index(
                Self::map_child(a, f, memo),
                Self::map_child(i, f, memo),
            ),
            Expr::ArrUpd(a, i, v) => Expr::ArrUpd(
                Self::map_child(a, f, memo),
                Self::map_child(i, f, memo),
                Self::map_child(v, f, memo),
            ),
        };
        f(rebuilt)
    }

    /// Rewrites one interned child, memoised on node identity and reusing
    /// the existing handle when the rewrite is the identity on it.
    fn map_child(
        h: &IExpr,
        f: &impl Fn(Expr) -> Expr,
        memo: &mut HashMap<usize, IExpr>,
    ) -> IExpr {
        if let Some(done) = memo.get(&h.key()) {
            return done.clone();
        }
        let out = h.as_ref().map_memo(f, memo);
        let out_h = if out == **h { h.clone() } else { IExpr::new(out) };
        memo.insert(h.key(), out_h.clone());
        out_h
    }

    /// Capture-free substitution of variable `name` by `repl`.
    ///
    /// The expression language has no binders, so substitution is plain
    /// replacement.
    #[must_use]
    pub fn subst_var(&self, name: &str, repl: &Expr) -> Expr {
        self.map(&|e| match &e {
            Expr::Var(n) if n == name => repl.clone(),
            _ => e,
        })
    }

    /// Simultaneous substitution of several variables.
    #[must_use]
    pub fn subst_vars(&self, map: &std::collections::HashMap<String, Expr>) -> Expr {
        self.map(&|e| match &e {
            Expr::Var(n) => map.get(n.as_str()).cloned().unwrap_or(e),
            _ => e,
        })
    }

    /// Substitution of a state-stored local by an expression (used by
    /// local-variable lifting).
    #[must_use]
    pub fn subst_local(&self, name: &str, repl: &Expr) -> Expr {
        self.map(&|e| match &e {
            Expr::Local(n) if n == name => repl.clone(),
            _ => e,
        })
    }

    /// Number of AST nodes (the paper's *term size* metric, Table 5).
    ///
    /// State-stored local reads count as the record-selector application
    /// they denote in Simpl (`a_' s` — selector, state, application), so
    /// the metric is comparable across levels: after local-variable
    /// lifting the same access is a single bound variable.
    ///
    /// O(immediate children): interned children carry their size, so the
    /// tree is never walked.
    #[must_use]
    pub fn term_size(&self) -> usize {
        match self {
            Expr::Local(_) => 3,
            Expr::Lit(_) | Expr::Var(_) | Expr::Global(_) => 1,
            Expr::ReadHeap(_, e)
            | Expr::ReadByte(e)
            | Expr::IsValid(_, e)
            | Expr::PtrAligned(_, e)
            | Expr::NullFree(_, e)
            | Expr::Field(e, _)
            | Expr::UnOp(_, e)
            | Expr::Cast(_, e)
            | Expr::Proj(_, e) => 1 + e.size(),
            Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Tuple(es) => 1 + es.iter().map(Expr::term_size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Expr {
    /// Rendering lives in [`crate::pretty`], which mirrors the paper's
    /// notation (`s[p]`, `unat`, `+w`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_helpers() {
        let e = Expr::binop(BinOp::Add, Expr::var("a"), Expr::u32(1));
        assert_eq!(e.term_size(), 3);
        assert!(e.free_vars().contains("a"));
        assert!(!e.reads_state());
    }

    #[test]
    fn and_simplifies_true() {
        assert_eq!(Expr::and(Expr::tt(), Expr::var("p")), Expr::var("p"));
        assert_eq!(Expr::and(Expr::var("p"), Expr::tt()), Expr::var("p"));
    }

    #[test]
    fn substitution() {
        let e = Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y"));
        let e2 = e.subst_var("x", &Expr::u32(5));
        assert_eq!(
            e2,
            Expr::binop(BinOp::Add, Expr::u32(5), Expr::var("y"))
        );
        // original untouched
        assert!(e.free_vars().contains("x"));
    }

    #[test]
    fn local_substitution() {
        let e = Expr::binop(BinOp::Add, Expr::local("t"), Expr::var("y"));
        let e2 = e.subst_local("t", &Expr::var("t_lifted"));
        assert!(e2.free_vars().contains("t_lifted"));
        assert!(e2.locals_read().is_empty());
    }

    #[test]
    fn state_dependence() {
        assert!(Expr::read_heap(Ty::U32, Expr::var("p")).reads_state());
        assert!(Expr::global("g").reads_state());
        assert!(!Expr::var("x").reads_state());
        assert!(Expr::is_valid(Ty::U32, Expr::var("p")).reads_heap());
        assert!(!Expr::local("l").reads_heap());
    }

    #[test]
    fn term_size_counts_nodes() {
        // (x + 1) == y  → Eq(Add(x,1),y): 5 nodes
        let e = Expr::eq(
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)),
            Expr::var("y"),
        );
        assert_eq!(e.term_size(), 5);
    }

    #[test]
    fn shared_children_are_one_allocation() {
        let shared = Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1));
        let e = Expr::eq(shared.clone(), shared);
        let Expr::BinOp(_, a, b) = &e else {
            panic!("not a binop")
        };
        assert!(IExpr::ptr_eq(a, b), "hash-consing must share equal children");
    }

    #[test]
    fn map_preserves_untouched_sharing() {
        let e = Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y"));
        let mapped = e.map(&|x| x);
        let (Expr::BinOp(_, a0, _), Expr::BinOp(_, a1, _)) = (&e, &mapped) else {
            panic!("not binops")
        };
        assert!(IExpr::ptr_eq(a0, a1), "identity map must reuse handles");
        assert_eq!(e, mapped);
    }
}
