//! Runtime values.

use std::fmt;

use bignum::{Int, Nat};

use crate::ty::{Signedness, Ty, Width};
use crate::word::Word;

/// A typed pointer value (Tuch-style `'a ptr`): a 32-bit address plus the
/// pointee type. The null pointer is address 0 of any pointee type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ptr {
    /// The address (masked to 32 bits).
    pub addr: u64,
    /// The pointee type.
    pub pointee: Ty,
}

impl Ptr {
    /// Creates a pointer, masking the address to the 32-bit space.
    #[must_use]
    pub fn new(addr: u64, pointee: Ty) -> Ptr {
        Ptr {
            addr: addr & 0xFFFF_FFFF,
            pointee,
        }
    }

    /// The NULL pointer of a given pointee type.
    #[must_use]
    pub fn null(pointee: Ty) -> Ptr {
        Ptr::new(0, pointee)
    }

    /// Is this NULL?
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.addr == 0
    }

    /// Pointer plus a byte offset (wrapping in the 32-bit space).
    #[must_use]
    pub fn offset(&self, bytes: u64) -> Ptr {
        Ptr::new(self.addr.wrapping_add(bytes), self.pointee.clone())
    }

    /// Reinterprets the pointer at a different type (C pointer cast).
    #[must_use]
    pub fn retype(&self, pointee: Ty) -> Ptr {
        Ptr::new(self.addr, pointee)
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "NULL")
        } else {
            write!(f, "Ptr {:#x}", self.addr)
        }
    }
}

/// A runtime value of the semantic language.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A machine word.
    Word(Word),
    /// An ideal natural (word-abstracted unsigned value).
    Nat(Nat),
    /// An ideal integer (word-abstracted signed value).
    Int(Int),
    /// A typed pointer.
    Ptr(Ptr),
    /// A structure value: the struct name plus field values in layout order.
    Struct(String, Vec<(String, Value)>),
    /// A tuple (loop-iterator state).
    Tuple(Vec<Value>),
    /// A fixed-size array value: element type plus the elements. The
    /// element type is carried so `ty()` stays well-defined and index
    /// reads out of bounds have a zero value to fall back on (HOL
    /// totality convention; bounds guards rule such reads out).
    Arr(Box<Ty>, Vec<Value>),
}

impl Value {
    /// Unsigned 32-bit word value.
    #[must_use]
    pub fn u32(v: u32) -> Value {
        Value::Word(Word::u32(v))
    }

    /// Signed 32-bit word value.
    #[must_use]
    pub fn i32(v: i32) -> Value {
        Value::Word(Word::i32(v))
    }

    /// Natural-number value.
    #[must_use]
    pub fn nat(v: impl Into<Nat>) -> Value {
        Value::Nat(v.into())
    }

    /// Integer value.
    #[must_use]
    pub fn int(v: impl Into<Int>) -> Value {
        Value::Int(v.into())
    }

    /// The semantic type of this value. Struct/tuple types are reconstructed
    /// from the value shape.
    #[must_use]
    pub fn ty(&self) -> Ty {
        match self {
            Value::Unit => Ty::Unit,
            Value::Bool(_) => Ty::Bool,
            Value::Word(w) => w.ty(),
            Value::Nat(_) => Ty::Nat,
            Value::Int(_) => Ty::Int,
            Value::Ptr(p) => Ty::Ptr(Box::new(p.pointee.clone())),
            Value::Struct(n, _) => Ty::Struct(n.clone()),
            Value::Tuple(vs) => Ty::Tuple(vs.iter().map(Value::ty).collect()),
            Value::Arr(t, vs) => Ty::Arr(t.clone(), vs.len() as u64),
        }
    }

    /// Extracts a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a machine word.
    #[must_use]
    pub fn as_word(&self) -> Option<&Word> {
        match self {
            Value::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Extracts a pointer.
    #[must_use]
    pub fn as_ptr(&self) -> Option<&Ptr> {
        match self {
            Value::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Extracts a natural.
    #[must_use]
    pub fn as_nat(&self) -> Option<&Nat> {
        match self {
            Value::Nat(n) => Some(n),
            _ => None,
        }
    }

    /// Extracts an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<&Int> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Looks up a struct field value.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(_, fs) => fs.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns a copy with struct field `name` replaced by `v`.
    #[must_use]
    pub fn with_field(&self, name: &str, v: Value) -> Option<Value> {
        match self {
            Value::Struct(sn, fs) => {
                let mut out = fs.clone();
                let slot = out.iter_mut().find(|(n, _)| n == name)?;
                slot.1 = v;
                Some(Value::Struct(sn.clone(), out))
            }
            _ => None,
        }
    }

    /// Reads array element `i`. Out-of-bounds reads return the element
    /// type's zero value (HOL totality; ruled out by bounds guards).
    #[must_use]
    pub fn arr_index(&self, i: u64, tenv: &crate::ty::TypeEnv) -> Option<Value> {
        match self {
            Value::Arr(t, vs) => Some(
                usize::try_from(i)
                    .ok()
                    .and_then(|i| vs.get(i))
                    .cloned()
                    .unwrap_or_else(|| Value::zero_of(t, tenv)),
            ),
            _ => None,
        }
    }

    /// Returns a copy with array element `i` replaced by `v` (Isabelle's
    /// `list_update`: out-of-bounds updates leave the array unchanged).
    #[must_use]
    pub fn arr_update(&self, i: u64, v: Value) -> Option<Value> {
        match self {
            Value::Arr(t, vs) => {
                let mut out = vs.clone();
                if let Some(slot) = usize::try_from(i).ok().and_then(|i| out.get_mut(i)) {
                    *slot = v;
                }
                Some(Value::Arr(t.clone(), out))
            }
            _ => None,
        }
    }

    /// The default (zero) value of a type — used to initialise fresh locals.
    #[must_use]
    pub fn zero_of(ty: &Ty, tenv: &crate::ty::TypeEnv) -> Value {
        match ty {
            Ty::Unit => Value::Unit,
            Ty::Bool => Value::Bool(false),
            Ty::Word(w, s) => Value::Word(Word::zero(*w, *s)),
            Ty::Nat => Value::Nat(Nat::zero()),
            Ty::Int => Value::Int(Int::zero()),
            Ty::Ptr(p) => Value::Ptr(Ptr::null((**p).clone())),
            Ty::Struct(n) => {
                let fields = tenv
                    .struct_def(n)
                    .map(|d| {
                        d.fields
                            .iter()
                            .map(|f| (f.name.clone(), Value::zero_of(&f.ty, tenv)))
                            .collect()
                    })
                    .unwrap_or_default();
                Value::Struct(n.clone(), fields)
            }
            Ty::Tuple(ts) => Value::Tuple(ts.iter().map(|t| Value::zero_of(t, tenv)).collect()),
            Ty::Arr(t, n) => {
                let n = usize::try_from(*n).unwrap_or(0);
                Value::Arr(t.clone(), vec![Value::zero_of(t, tenv); n])
            }
        }
    }

    /// C truthiness: is this value "non-zero"? Used when a C expression is
    /// used as a condition.
    #[must_use]
    pub fn truthy(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Word(w) => Some(!w.is_zero()),
            Value::Ptr(p) => Some(!p.is_null()),
            Value::Nat(n) => Some(!n.is_zero()),
            Value::Int(i) => Some(!i.is_zero()),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Word(w) => write!(f, "{w}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Ptr(p) => write!(f, "{p}"),
            Value::Struct(n, fs) => {
                write!(f, "{n}_C ⦇")?;
                for (i, (fname, v)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{fname} = {v}")?;
                }
                write!(f, "⦈")
            }
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Arr(_, vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<Word> for Value {
    fn from(w: Word) -> Value {
        Value::Word(w)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<Nat> for Value {
    fn from(n: Nat) -> Value {
        Value::Nat(n)
    }
}
impl From<Int> for Value {
    fn from(i: Int) -> Value {
        Value::Int(i)
    }
}
impl From<Ptr> for Value {
    fn from(p: Ptr) -> Value {
        Value::Ptr(p)
    }
}

/// Convenience constructors for common word shapes.
impl Value {
    /// A word of arbitrary shape.
    #[must_use]
    pub fn word(bits: u64, width: Width, sign: Signedness) -> Value {
        Value::Word(Word::new(bits, width, sign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TypeEnv;

    #[test]
    fn pointer_basics() {
        let p = Ptr::new(0x1000, Ty::U32);
        assert!(!p.is_null());
        assert_eq!(p.offset(4).addr, 0x1004);
        assert!(Ptr::null(Ty::U32).is_null());
        // wrap in the 32-bit space
        assert_eq!(Ptr::new(0xFFFF_FFFF, Ty::U8).offset(1).addr, 0);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::u32(5).ty(), Ty::U32);
        assert_eq!(Value::i32(-5).ty(), Ty::I32);
        assert_eq!(Value::nat(3u64).ty(), Ty::Nat);
        assert_eq!(
            Value::Ptr(Ptr::null(Ty::U32)).ty(),
            Ty::U32.ptr_to()
        );
    }

    #[test]
    fn struct_fields() {
        let s = Value::Struct(
            "node".into(),
            vec![
                ("next".into(), Value::Ptr(Ptr::null(Ty::Struct("node".into())))),
                ("data".into(), Value::u32(7)),
            ],
        );
        assert_eq!(s.field("data"), Some(&Value::u32(7)));
        let s2 = s.with_field("data", Value::u32(9)).unwrap();
        assert_eq!(s2.field("data"), Some(&Value::u32(9)));
        assert_eq!(s.field("data"), Some(&Value::u32(7)), "original unchanged");
        assert!(s.field("nope").is_none());
    }

    #[test]
    fn zero_values() {
        let mut tenv = TypeEnv::new();
        tenv.define_struct("pair", vec![("a".into(), Ty::U32), ("b".into(), Ty::U32)])
            .unwrap();
        let z = Value::zero_of(&Ty::Struct("pair".into()), &tenv);
        assert_eq!(z.field("a"), Some(&Value::u32(0)));
        assert_eq!(Value::zero_of(&Ty::I32, &tenv), Value::i32(0));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::u32(0).truthy(), Some(false));
        assert_eq!(Value::u32(3).truthy(), Some(true));
        assert_eq!(Value::Ptr(Ptr::null(Ty::U8)).truthy(), Some(false));
        assert_eq!(Value::Unit.truthy(), None);
    }
}
