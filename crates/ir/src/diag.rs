//! Typed pipeline diagnostics.
//!
//! Every phase of the pipeline used to report failures as `Result<_,
//! String>`, which meant the CLI (and tests) could only grep messages.
//! [`Diag`] is the shared structured replacement: it records *which phase*
//! failed, *which function* was being translated (when known), a coarse
//! [`DiagKind`], the human-readable message, and — for frontend errors —
//! a source [`Span`].
//!
//! The `Display` form is kept compatible with the old stringly errors
//! (`"frontend: …"`, `"L2: …"`, …) so driver output and error-matching
//! tests are unchanged.

use std::fmt;

/// The pipeline phase a diagnostic originated from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// C parsing and type checking (`cparser`).
    Frontend,
    /// The trusted C → Simpl translation (`simpl::translate`).
    Simpl,
    /// Simpl → L1 monadic shallow embedding.
    L1,
    /// L1 → L2: lambda-bound locals, exception elimination.
    L2,
    /// Heap abstraction (byte memory → typed split heaps).
    Hl,
    /// Word abstraction (machine words → `nat`/`int`).
    Wa,
    /// The proof kernel itself (replay / rule application / testing).
    Kernel,
    /// The verification-condition / decision-procedure layer (`vcg` +
    /// `solver`): a spec was checked and a VC was refuted or undecided.
    Solver,
    /// The abstract-interpretation phase (`absint`): guard discharge and
    /// IR lints.
    Absint,
}

impl Phase {
    /// The short prefix used in rendered diagnostics. Matches the old
    /// `PipelineError` display prefixes verbatim.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            Phase::Frontend => "frontend",
            Phase::Simpl => "simpl",
            Phase::L1 => "L1",
            Phase::L2 => "L2",
            Phase::Hl => "HL",
            Phase::Wa => "WA",
            Phase::Kernel => "kernel",
            Phase::Solver => "solver",
            Phase::Absint => "absint",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A position in the original C source, tracked from the lexer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset from the start of the translation unit.
    pub offset: u32,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes) within the line.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given byte offset / line / column.
    #[must_use]
    pub fn new(offset: u32, line: u32, col: u32) -> Self {
        Span { offset, line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Coarse classification of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// Lexical error in the C source.
    Lex,
    /// Syntax error in the C source.
    Parse,
    /// Type error (or unsupported construct found during type checking).
    Type,
    /// A construct the pipeline does not support at this phase.
    Unsupported,
    /// A kernel rule application failed during proof construction.
    Kernel,
    /// Differential testing found a divergence (an `ExecTested` oracle
    /// refused to certify a refinement).
    Testing,
    /// An internal invariant was violated; always a bug.
    Internal,
    /// A verification condition was refuted: the diagnostic carries a
    /// [`Counterexample`] when one could be extracted.
    Refuted,
    /// A static-analysis lint: the code is accepted but suspicious (dead
    /// store, unreachable code, use before initialisation, or a guard the
    /// abstract interpreter proved *false* on every run).
    Lint,
}

/// One typed heap cell of a counterexample's input state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CexHeapCell {
    /// The heap type the cell lives in.
    pub ty: crate::ty::Ty,
    /// The cell's address.
    pub addr: u64,
    /// The object stored at the address.
    pub value: crate::value::Value,
}

impl fmt::Display for CexHeapCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:#x} = {}", self.ty, self.addr, self.value)
    }
}

/// A concrete falsifying assignment for a refuted verification condition,
/// extracted from the solver layers and validated (when possible) by
/// concrete interpretation.
///
/// Lives in `ir` so a [`Diag`] can carry it without the diagnostics layer
/// depending on the solver stack; the extraction machinery that builds it
/// lives in the `counterexample` crate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counterexample {
    /// The function whose spec was refuted.
    pub function: String,
    /// Which VC ("main", "loop 0 exit", "loop 0 body", "spec", …).
    pub vc: String,
    /// Statement-level source span of the refuted obligation (the loop or
    /// return statement, not the function header).
    pub span: Option<Span>,
    /// The falsifying assignment, sorted by variable name.
    pub model: Vec<(String, crate::value::Value)>,
    /// Typed heap cells of the falsifying input state.
    pub heap: Vec<CexHeapCell>,
    /// `true` when the assignment was re-validated by running the function
    /// on the concrete input and observing the spec violation.
    pub validated: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: VC `{}` refuted", self.function, self.vc)?;
        if let Some(s) = self.span {
            write!(f, " at {s}")?;
        }
        for (n, v) in &self.model {
            write!(f, "; {n} = {v}")?;
        }
        for c in &self.heap {
            write!(f, "; {c}")?;
        }
        Ok(())
    }
}

/// A structured pipeline diagnostic.
///
/// `message` carries the legacy error text verbatim; the remaining fields
/// are structured metadata layered on top, so converting a phase from
/// `Result<_, String>` to `Result<_, Diag>` never rewords anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// The phase that produced the diagnostic.
    pub phase: Phase,
    /// The function being translated, when known.
    pub function: Option<String>,
    /// Coarse classification.
    pub kind: DiagKind,
    /// Human-readable message (legacy text, unchanged).
    pub message: String,
    /// Source position, for frontend diagnostics.
    pub span: Option<Span>,
    /// A concrete falsifying input, for refuted verification conditions.
    pub counterexample: Option<Box<Counterexample>>,
}

impl Diag {
    /// Creates a diagnostic with no function or span attached.
    #[must_use]
    pub fn new(phase: Phase, kind: DiagKind, message: impl Into<String>) -> Self {
        Diag {
            phase,
            function: None,
            kind,
            message: message.into(),
            span: None,
            counterexample: None,
        }
    }

    /// Attaches the function name, keeping an already-recorded one (inner
    /// frames know the function better than outer ones).
    #[must_use]
    pub fn with_function(mut self, name: impl Into<String>) -> Self {
        if self.function.is_none() {
            self.function = Some(name.into());
        }
        self
    }

    /// Attaches a source span, keeping an already-recorded one (spans
    /// recorded closer to the lexer are more precise).
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        if self.span.is_none() {
            self.span = Some(span);
        }
        self
    }

    /// Attaches a concrete counterexample, adopting its span and function
    /// when the diagnostic has none (the counterexample's span is the
    /// refuted statement — more precise than a function-header span).
    #[must_use]
    pub fn with_counterexample(mut self, cex: Counterexample) -> Self {
        if self.span.is_none() {
            self.span = cex.span;
        }
        if self.function.is_none() {
            self.function = Some(cex.function.clone());
        }
        self.counterexample = Some(Box::new(cex));
        self
    }

    /// Re-labels the diagnostic as coming from `phase`. Used when a lower
    /// layer's diagnostic (e.g. a kernel testing failure) is surfaced as a
    /// pipeline phase failure.
    #[must_use]
    pub fn in_phase(mut self, phase: Phase) -> Self {
        self.phase = phase;
        self
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.phase.prefix(), self.message)
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_prefixes() {
        let d = Diag::new(Phase::L2, DiagKind::Testing, "gcd: trial 3: values differ");
        assert_eq!(d.to_string(), "L2: gcd: trial 3: values differ");
        let d = Diag::new(Phase::Frontend, DiagKind::Parse, "parse error at 1:2: x");
        assert_eq!(d.to_string(), "frontend: parse error at 1:2: x");
        assert_eq!(Phase::Hl.prefix(), "HL");
        assert_eq!(Phase::Wa.prefix(), "WA");
        assert_eq!(Phase::Simpl.prefix(), "simpl");
    }

    #[test]
    fn with_span_and_function_keep_inner_values() {
        let inner = Span::new(10, 2, 3);
        let d = Diag::new(Phase::Frontend, DiagKind::Type, "boom")
            .with_span(inner)
            .with_span(Span::new(99, 9, 9))
            .with_function("f")
            .with_function("g");
        assert_eq!(d.span, Some(inner));
        assert_eq!(d.function.as_deref(), Some("f"));
        assert_eq!(format!("{}", inner), "2:3");
    }
}
