//! Best-effort static type inference for expressions.
//!
//! The abstraction engines need to know the static type of subexpressions —
//! e.g. which struct a pointer points to (heap abstraction's field-offset
//! resolution, Sec 4.5) or whether a word is signed (word abstraction's
//! choice of `unat` vs `sint`). Inference runs over a variable-type
//! environment and the structure layouts.

use std::collections::HashMap;

use crate::expr::{BinOp, CastKind, Expr, UnOp};
use crate::ty::{Signedness, Ty, TypeEnv, Width};

/// Infers the type of `e` given variable types. Returns `None` for
/// ill-typed or underdetermined expressions.
#[must_use]
pub fn infer_ty(e: &Expr, vars: &HashMap<String, Ty>, tenv: &TypeEnv) -> Option<Ty> {
    match e {
        Expr::Lit(v) => Some(v.ty()),
        Expr::Var(n) | Expr::Local(n) | Expr::Global(n) => vars.get(n.as_str()).cloned(),
        Expr::ReadHeap(t, _) => Some(t.clone()),
        Expr::ReadByte(_) => Some(Ty::U8),
        Expr::IsValid(..) | Expr::PtrAligned(..) | Expr::NullFree(..) => Some(Ty::Bool),
        Expr::Field(s, f) => {
            let Ty::Struct(name) = infer_ty(s, vars, tenv)? else {
                return None;
            };
            tenv.struct_def(&name)?.field(f).map(|fd| fd.ty.clone())
        }
        Expr::UpdateField(s, _, _) => infer_ty(s, vars, tenv),
        Expr::UnOp(UnOp::Not, _) => Some(Ty::Bool),
        Expr::UnOp(_, a) => infer_ty(a, vars, tenv),
        Expr::BinOp(op, a, b) => match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::And | BinOp::Or
            | BinOp::Implies => Some(Ty::Bool),
            BinOp::PtrAdd => infer_ty(a, vars, tenv),
            _ => infer_ty(a, vars, tenv).or_else(|| infer_ty(b, vars, tenv)),
        },
        Expr::Cast(k, _a) => Some(match k {
            CastKind::WordToWord(w, s) | CastKind::OfNat(w, s) | CastKind::OfInt(w, s) => {
                Ty::Word(*w, *s)
            }
            CastKind::Unat => Ty::Nat,
            CastKind::Sint => Ty::Int,
            CastKind::NatToInt => Ty::Int,
            CastKind::IntToNat => Ty::Nat,
            CastKind::PtrToWord => Ty::Word(Width::W32, Signedness::Unsigned),
            CastKind::WordToPtr(t) | CastKind::PtrRetype(t) => Ty::Ptr(Box::new(t.clone())),
        }),
        Expr::Ite(_, t, f) => {
            infer_ty(t, vars, tenv).or_else(|| infer_ty(f, vars, tenv))
        }
        Expr::Tuple(es) => {
            let mut out = Vec::with_capacity(es.len());
            for x in es {
                out.push(infer_ty(x, vars, tenv)?);
            }
            Some(Ty::Tuple(out))
        }
        Expr::Proj(i, t) => match infer_ty(t, vars, tenv)? {
            Ty::Tuple(ts) => ts.get(*i).cloned(),
            _ => None,
        },
        Expr::Index(a, _) => match infer_ty(a, vars, tenv)? {
            Ty::Arr(t, _) => Some(*t),
            _ => None,
        },
        Expr::ArrUpd(a, _, _) => infer_ty(a, vars, tenv),
    }
}

/// The pointee type of a pointer-typed expression.
#[must_use]
pub fn ptr_pointee(e: &Expr, vars: &HashMap<String, Ty>, tenv: &TypeEnv) -> Option<Ty> {
    match infer_ty(e, vars, tenv)? {
        Ty::Ptr(p) => Some(*p),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, Ty)]) -> HashMap<String, Ty> {
        pairs
            .iter()
            .map(|(n, t)| ((*n).to_owned(), t.clone()))
            .collect()
    }

    #[test]
    fn infers_through_structures() {
        let mut tenv = TypeEnv::new();
        tenv.define_struct(
            "node",
            vec![
                ("next".into(), Ty::Struct("node".into()).ptr_to()),
                ("data".into(), Ty::U32),
            ],
        )
        .unwrap();
        let vars = env(&[("p", Ty::Struct("node".into()).ptr_to())]);
        let read = Expr::read_heap(Ty::Struct("node".into()), Expr::var("p"));
        assert_eq!(
            infer_ty(&Expr::field(read.clone(), "data"), &vars, &tenv),
            Some(Ty::U32)
        );
        assert_eq!(
            infer_ty(&Expr::field(read, "next"), &vars, &tenv),
            Some(Ty::Struct("node".into()).ptr_to())
        );
        assert_eq!(
            ptr_pointee(&Expr::var("p"), &vars, &tenv),
            Some(Ty::Struct("node".into()))
        );
    }

    #[test]
    fn operators_and_casts() {
        let tenv = TypeEnv::new();
        let vars = env(&[("x", Ty::U32), ("i", Ty::Nat)]);
        assert_eq!(
            infer_ty(
                &Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)),
                &vars,
                &tenv
            ),
            Some(Ty::U32)
        );
        assert_eq!(
            infer_ty(
                &Expr::binop(BinOp::Lt, Expr::var("i"), Expr::nat(4u64)),
                &vars,
                &tenv
            ),
            Some(Ty::Bool)
        );
        assert_eq!(
            infer_ty(&Expr::cast(CastKind::Unat, Expr::var("x")), &vars, &tenv),
            Some(Ty::Nat)
        );
        assert_eq!(infer_ty(&Expr::var("missing"), &vars, &tenv), None);
    }

    #[test]
    fn ptr_add_keeps_pointee() {
        let tenv = TypeEnv::new();
        let vars = env(&[("p", Ty::U32.ptr_to())]);
        let e = Expr::binop(BinOp::PtrAdd, Expr::var("p"), Expr::u32(8));
        assert_eq!(ptr_pointee(&e, &vars, &tenv), Some(Ty::U32));
    }
}
