//! Hash-consed term representation.
//!
//! Isabelle's kernel survives AutoCorres-scale workloads (hundreds of
//! thousands of proof nodes, Table 5) only because it shares terms
//! aggressively: structurally equal subterms are stored once, so equality
//! is (mostly) pointer comparison and sizes need no traversal. This module
//! is the deep-embedding analogue: a concurrent hash-consing table that
//! stores each distinct node once behind an [`std::sync::Arc`], with its
//! structural hash and subterm size precomputed at construction. While a
//! multi-worker pool is running (a [`ParallelScope`] is alive), a
//! per-thread read-through [`LocalCache`] sits in front of the sharded
//! global table so repeat interns of hot terms (the common case inside
//! one phase job) never touch a lock; sequential runs skip the cache,
//! whose bookkeeping would only cost them.
//!
//! [`Interned<T>`] replaces `Box<T>` for the children of [`crate::Expr`]
//! (and `monadic::Prog`, which implements [`Internable`] in its own crate):
//!
//! * `clone()` is a reference-count bump,
//! * `PartialEq` takes a pointer-equality fast path — two handles produced
//!   by the same interner are equal iff they are the same allocation — and
//!   falls back to hash-then-structure comparison only for values that
//!   bypassed the table (e.g. nodes deserialised or built across interner
//!   generations in tests),
//! * the *term size* metric of Table 5 reads the cached size instead of
//!   walking the tree.
//!
//! # Determinism
//!
//! The interner never affects observable output: handles carry no identity
//! visible to `Display`/`Debug`/`Ord`, the table is never iterated, and the
//! structural hash is computed with a fixed-key hasher
//! ([`std::collections::hash_map::DefaultHasher`]), so equality decisions
//! are identical at any worker count. Interning a node that already exists
//! returns the existing allocation regardless of which thread got there
//! first — the *content* of a handle is a pure function of the term.
//!
//! # Soundness
//!
//! Interning is constructor-level sharing only: it changes how terms are
//! represented, not which terms exist. The LCF kernel's soundness argument
//! is untouched — `kernel::Thm` remains private and every rule still
//! validates its side conditions on the (shared) terms it is given.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked table shards. A power of two large
/// enough that a full worker pool hammering the table (every phase job
/// interns on every node it builds) rarely collides on one lock; the
/// empty table is still negligible (64 mutexes + empty maps).
const SHARDS: usize = 64;

/// Entries a thread-local read-through cache may hold before it is
/// cleared. Bounds per-thread memory; clearing is safe because the cache
/// is a pure accelerator over the global table.
const LOCAL_CAP: usize = 8192;

/// Live [`ParallelScope`] count. While zero (the common sequential case)
/// intern calls go straight to the global table: an uncontended shard
/// lock is cheaper than double bookkeeping, and measuring showed the
/// always-on local cache taxing cold sequential translation by ~65%.
static PARALLEL_SCOPES: AtomicUsize = AtomicUsize::new(0);

fn parallel_mode() -> bool {
    PARALLEL_SCOPES.load(Ordering::Relaxed) > 0
}

/// RAII marker that a multi-worker pool is running. While at least one
/// scope is alive (on *any* thread — the counter is global), intern calls
/// route through the per-thread [`LocalCache`]s so repeat interns of hot
/// terms skip the shard locks that pool workers would otherwise contend
/// on. The scheduler enters a scope when it actually spawns workers;
/// sequential runs never pay the cache's bookkeeping.
pub struct ParallelScope(());

impl ParallelScope {
    /// Enters a scope; interning is cache-routed until the value drops.
    #[must_use]
    pub fn enter() -> ParallelScope {
        PARALLEL_SCOPES.fetch_add(1, Ordering::Relaxed);
        ParallelScope(())
    }
}

impl Drop for ParallelScope {
    fn drop(&mut self) {
        PARALLEL_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A type whose values can be hash-consed.
///
/// `shallow_size` must return the term-size contribution of one node given
/// that its children are already-interned handles (whose cached sizes it
/// reads in O(children)); the interner stores the result so `size()` on a
/// handle never walks the tree.
pub trait Internable: Hash + Eq + Clone + Send + Sync + 'static {
    /// Term-size of this node including (cached) child sizes.
    fn shallow_size(&self) -> usize;

    /// The global interner for this type.
    fn interner() -> &'static Interner<Self>;

    /// Runs `f` on this thread's [`LocalCache`] for the type. Implement
    /// with a `thread_local!` `RefCell` — see `ir::Expr` for the idiom.
    fn with_local<R>(f: impl FnOnce(&mut LocalCache<Self>) -> R) -> R;
}

/// A per-thread *read-through* cache in front of the global table: hash →
/// handles this thread already interned. A hit skips the shard lock
/// entirely; a miss falls through to the global table and the canonical
/// handle is remembered locally.
///
/// Deliberately read-through rather than write-buffered: every allocation
/// still goes through the global table, so two threads interning the same
/// term always end up with the *same* allocation and the
/// [`Interned::ptr_eq`] / [`Interned::key`] canonicalization guarantee
/// (one allocation per distinct term, relied on by sharing-aware
/// memoisation) survives. Only the lock traffic is thread-local.
pub struct LocalCache<T: Internable> {
    map: HashMap<u64, Vec<Interned<T>>>,
    len: usize,
}

impl<T: Internable> Default for LocalCache<T> {
    fn default() -> Self {
        LocalCache {
            map: HashMap::new(),
            len: 0,
        }
    }
}

impl<T: Internable> LocalCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> LocalCache<T> {
        LocalCache::default()
    }

    fn get(&self, hash: u64, val: &T) -> Option<Interned<T>> {
        self.map
            .get(&hash)?
            .iter()
            .find(|h| ***h == *val)
            .cloned()
    }

    fn put(&mut self, hash: u64, handle: Interned<T>) {
        if self.len >= LOCAL_CAP {
            self.map.clear();
            self.len = 0;
        }
        self.map.entry(hash).or_default().push(handle);
        self.len += 1;
    }
}

/// An interned node: the value plus its precomputed structural hash and
/// subterm size.
#[derive(Debug)]
pub struct Node<T> {
    hash: u64,
    size: usize,
    val: T,
}

/// Running counters of one interner (monotonic; never reset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Intern calls that found an existing node (sharing wins).
    pub hits: u64,
    /// Intern calls that allocated a new node (distinct nodes created).
    pub misses: u64,
}

impl InternStats {
    /// Total intern calls.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Nodes requested per node allocated (`1.0` = no sharing). The
    /// Table 5 bench reports this as `term_dedup_ratio`.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.misses == 0 {
            1.0
        } else {
            self.total() as f64 / self.misses as f64
        }
    }

    /// Counter-wise difference (for before/after snapshots around a
    /// pipeline run).
    #[must_use]
    pub fn since(&self, earlier: &InternStats) -> InternStats {
        InternStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// One lock-protected slice of the table: structural hash → bucket of
/// nodes with that hash, scanned structurally on insert (64-bit collisions
/// are rare enough that buckets are almost always singletons).
type Shard<T> = Mutex<HashMap<u64, Vec<Arc<Node<T>>>>>;

/// A concurrent hash-consing table for values of one type.
///
/// Sharded `Mutex<HashMap<hash, bucket>>` — no external dependencies.
pub struct Interner<T> {
    shards: [Shard<T>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T> Interner<T> {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Interner<T> {
        Interner {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<T: Internable> Interner<T> {
    /// Interns against the global table only (the caller has already
    /// missed the thread-local cache and computed the hash).
    fn intern_hashed(&self, hash: u64, val: T) -> Interned<T> {
        let shard = &self.shards[(hash as usize) % SHARDS];
        let mut table = shard.lock().expect("interner shard poisoned");
        let bucket = table.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|n| n.val == val) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Interned(Arc::clone(existing));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let node = Arc::new(Node {
            hash,
            size: val.shallow_size(),
            val,
        });
        bucket.push(Arc::clone(&node));
        Interned(node)
    }
}

/// Structural hash with a fixed-key hasher, so hashes (and therefore the
/// equality fast path) do not vary run to run. Children that are already
/// handles contribute their cached hash — hashing any one node is O(its
/// immediate structure), not O(subtree).
fn structural_hash<T: Hash>(val: &T) -> u64 {
    let mut h = DefaultHasher::new();
    val.hash(&mut h);
    h.finish()
}

/// A handle to a hash-consed value — the replacement for `Box<T>` in term
/// representations. Dereferences to `T`; `clone` is a refcount bump;
/// equality is pointer-first.
pub struct Interned<T: Internable>(Arc<Node<T>>);

impl<T: Internable> Interned<T> {
    /// Interns `val`, returning the canonical shared handle. Inside a
    /// [`ParallelScope`] the thread-local read-through cache is checked
    /// first (no lock), then the sharded global table; either way the
    /// handle returned is the one canonical allocation for this term.
    #[must_use]
    pub fn new(val: T) -> Interned<T> {
        let hash = structural_hash(&val);
        if parallel_mode() {
            if let Some(hit) = T::with_local(|c| c.get(hash, &val)) {
                // Still a sharing win; keep the global counters
                // authoritative.
                T::interner().hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            let handle = T::interner().intern_hashed(hash, val);
            T::with_local(|c| c.put(hash, handle.clone()));
            return handle;
        }
        T::interner().intern_hashed(hash, val)
    }

    /// The cached term size (number of AST nodes, Table 5 metric).
    #[must_use]
    pub fn size(&self) -> usize {
        self.0.size
    }

    /// The cached structural hash.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// Do two handles point at the same allocation? (Complete for handles
    /// from the same interner: the table guarantees structurally equal
    /// values share one node.)
    #[must_use]
    pub fn ptr_eq(a: &Interned<T>, b: &Interned<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// A stable per-allocation key, usable for memoisation tables keyed on
    /// node identity (e.g. sharing-aware tree rewrites). Valid only while
    /// the handle (or any clone) is alive; never serialise it.
    #[must_use]
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as *const () as usize
    }
}

impl<T: Internable> Deref for Interned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.val
    }
}

impl<T: Internable> AsRef<T> for Interned<T> {
    fn as_ref(&self) -> &T {
        &self.0.val
    }
}

impl<T: Internable> std::borrow::Borrow<T> for Interned<T> {
    fn borrow(&self) -> &T {
        &self.0.val
    }
}

impl<T: Internable> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned(Arc::clone(&self.0))
    }
}

impl<T: Internable> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        // Fast path: one allocation per distinct term.
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        // Distinct allocations can only be equal across interner
        // generations (not produced in normal operation): reject on hash,
        // confirm structurally.
        self.0.hash == other.0.hash && self.0.val == other.0.val
    }
}

impl<T: Internable> Eq for Interned<T> {}

impl<T: Internable> Hash for Interned<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Cached structural hash: hashing a parent node never re-walks
        // children.
        state.write_u64(self.0.hash);
    }
}

impl<T: Internable + fmt::Debug> fmt::Debug for Interned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Transparent, like `Box`: the handle is a representation detail.
        self.0.val.fmt(f)
    }
}

impl<T: Internable + fmt::Display> fmt::Display for Interned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.val.fmt(f)
    }
}

impl<T: Internable> From<T> for Interned<T> {
    fn from(val: T) -> Self {
        Interned::new(val)
    }
}

/// Counters of the [`crate::Expr`] interner (the `Prog` interner lives in
/// the `monadic` crate and is reported by `monadic::prog::intern_stats`).
#[must_use]
pub fn expr_stats() -> InternStats {
    <crate::Expr as Internable>::interner().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};

    #[test]
    fn interning_shares_allocations() {
        let a = Interned::new(Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)));
        let b = Interned::new(Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)));
        assert!(Interned::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let c = Interned::new(Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(2)));
        assert!(!Interned::ptr_eq(&a, &c));
        assert_ne!(a, c);
    }

    #[test]
    fn cached_size_matches_walk() {
        let e = Expr::eq(
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::u32(1)),
            Expr::var("y"),
        );
        let walked = {
            let mut n = 0;
            e.visit(&mut |sub| {
                n += match sub {
                    Expr::Local(_) => 3,
                    _ => 1,
                }
            });
            n
        };
        assert_eq!(Interned::new(e.clone()).size(), walked);
        assert_eq!(e.term_size(), walked);
    }

    #[test]
    fn hash_is_structural_and_cached() {
        let a = Interned::new(Expr::var("p"));
        let b = Interned::new(Expr::var("p"));
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(structural_hash(&*a), a.structural_hash());
    }

    #[test]
    fn local_cache_is_read_through_and_canonical() {
        // Two threads interning the same fresh term must end up with the
        // same allocation: the local caches accelerate lookups but never
        // allocate privately, so `ptr_eq`/`key` stay canonical.
        let build = || {
            Expr::binop(
                BinOp::Mul,
                Expr::var("local_cache_canonical_probe"),
                Expr::u32(0x5EED),
            )
        };
        let _scope = ParallelScope::enter();
        assert!(parallel_mode());
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(|| Interned::new(build()));
            let hb = s.spawn(|| Interned::new(build()));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(Interned::ptr_eq(&a, &b), "cross-thread canonicalization");
        assert_eq!(a.key(), b.key());
        // And a same-thread repeat is served (locally or globally) as the
        // very same allocation again.
        let c = Interned::new(build());
        assert!(Interned::ptr_eq(&a, &c));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = expr_stats();
        // A fresh shape (unlikely to be interned by other tests).
        let fresh = Expr::binop(
            BinOp::BitXor,
            Expr::var("intern_stats_probe"),
            Expr::u32(0xDEAD_BEEF),
        );
        let _a = Interned::new(fresh.clone());
        let _b = Interned::new(fresh);
        let after = expr_stats().since(&before);
        assert!(after.hits >= 1, "second intern must hit: {after:?}");
        assert!(after.misses >= 1, "first intern must miss: {after:?}");
        assert!(after.dedup_ratio() > 1.0);
    }
}
