//! Property tests for the semantic core: machine words against the bignum
//! model, memory codec round trips, and simplifier-relevant evaluator laws.

use ir::mem::Memory;
use ir::ty::{Signedness, Ty, TypeEnv, Width};
use ir::value::{Ptr, Value};
use ir::word::Word;
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

proptest! {
    /// Word arithmetic is the bignum model reduced mod 2ⁿ.
    #[test]
    fn add_matches_bignum_model(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let x = Word::new(a, w, Signedness::Unsigned);
        let y = Word::new(b, w, Signedness::Unsigned);
        let sum = x.wrapping_add(&y);
        let model = (x.unat() + y.unat()) % bignum::Nat::pow2(w.bits());
        prop_assert_eq!(sum.unat(), model);
    }

    #[test]
    fn mul_matches_bignum_model(a in any::<u64>(), b in any::<u64>(), w in arb_width()) {
        let x = Word::new(a, w, Signedness::Unsigned);
        let y = Word::new(b, w, Signedness::Unsigned);
        let prod = x.wrapping_mul(&y);
        let model = (x.unat() * y.unat()) % bignum::Nat::pow2(w.bits());
        prop_assert_eq!(prod.unat(), model);
    }

    /// `sint` is the two's-complement interpretation: sint x ≡ unat x − 2ⁿ·msb.
    #[test]
    fn sint_unat_relation(a in any::<u64>(), w in arb_width()) {
        let x = Word::new(a, w, Signedness::Signed);
        let unat = bignum::Int::from_nat(x.unat());
        let modulus = bignum::Int::from_nat(bignum::Nat::pow2(w.bits()));
        let expect = if x.sint() < bignum::Int::zero() {
            &unat - &modulus
        } else {
            unat
        };
        prop_assert_eq!(x.sint(), expect);
    }

    /// `of_nat (unat x) = x` and `of_int (sint x) = x`.
    #[test]
    fn abstraction_round_trips(a in any::<u64>(), w in arb_width()) {
        let u = Word::new(a, w, Signedness::Unsigned);
        prop_assert_eq!(Word::of_nat(&u.unat(), w, Signedness::Unsigned), u);
        let s = Word::new(a, w, Signedness::Signed);
        prop_assert_eq!(Word::of_int(&s.sint(), w, Signedness::Signed), s);
    }

    /// Signed comparison agrees with comparison of `sint` images —
    /// the soundness of the WCmp kernel rule.
    #[test]
    fn signed_cmp_matches_int_cmp(a in any::<u32>(), b in any::<u32>()) {
        let x = Word::new(u64::from(a), Width::W32, Signedness::Signed);
        let y = Word::new(u64::from(b), Width::W32, Signedness::Signed);
        prop_assert_eq!(x.word_cmp(&y), x.sint().cmp(&y.sint()));
    }

    /// Unsigned division agrees with nat division unconditionally (WDIV has
    /// no precondition).
    #[test]
    fn udiv_matches_nat_div(a in any::<u32>(), b in any::<u32>()) {
        let x = Word::u32(a);
        let y = Word::u32(b);
        prop_assert_eq!(x.c_div(&y).unat(), x.unat() / y.unat());
        prop_assert_eq!(x.c_rem(&y).unat(), x.unat() % y.unat());
    }

    /// Word encode/decode round trips through memory at any aligned address.
    #[test]
    fn word_codec_round_trip(a in any::<u64>(), w in arb_width(), slot in 0u64..64) {
        let tenv = TypeEnv::new();
        let mut mem = Memory::new();
        let addr = 0x100 + slot * 8;
        let v = Value::Word(Word::new(a, w, Signedness::Unsigned));
        mem.encode(addr, &v, &tenv).unwrap();
        prop_assert_eq!(
            mem.decode(addr, &Ty::Word(w, Signedness::Unsigned), &tenv).unwrap(),
            v
        );
    }

    /// Struct encode/decode round trips (field order and offsets).
    #[test]
    fn struct_codec_round_trip(next in any::<u32>(), data in any::<u32>()) {
        let mut tenv = TypeEnv::new();
        tenv.define_struct(
            "node",
            vec![
                ("next".into(), Ty::Struct("node".into()).ptr_to()),
                ("data".into(), Ty::U32),
            ],
        )
        .unwrap();
        let v = Value::Struct(
            "node".into(),
            vec![
                ("next".into(), Value::Ptr(Ptr::new(u64::from(next), Ty::Struct("node".into())))),
                ("data".into(), Value::u32(data)),
            ],
        );
        let mut mem = Memory::new();
        mem.encode(0x1000, &v, &tenv).unwrap();
        prop_assert_eq!(mem.decode(0x1000, &Ty::Struct("node".into()), &tenv).unwrap(), v);
    }

    /// Disjoint writes do not disturb each other (the byte-level framing
    /// fact that split heaps make syntactic).
    #[test]
    fn disjoint_writes_commute(a in any::<u32>(), b in any::<u32>()) {
        let tenv = TypeEnv::new();
        let mut m1 = Memory::new();
        m1.encode(0x100, &Value::u32(a), &tenv).unwrap();
        m1.encode(0x200, &Value::u32(b), &tenv).unwrap();
        let mut m2 = Memory::new();
        m2.encode(0x200, &Value::u32(b), &tenv).unwrap();
        m2.encode(0x100, &Value::u32(a), &tenv).unwrap();
        prop_assert_eq!(
            m1.decode(0x100, &Ty::U32, &tenv).unwrap(),
            m2.decode(0x100, &Ty::U32, &tenv).unwrap()
        );
        prop_assert_eq!(
            m1.decode(0x200, &Ty::U32, &tenv).unwrap(),
            m2.decode(0x200, &Ty::U32, &tenv).unwrap()
        );
    }

    /// heap_lift after a typed write at a lifted address is the functional
    /// update (the Sec 4.2 law, randomised).
    #[test]
    fn lift_write_law(a in any::<u32>(), v in any::<u32>()) {
        let tenv = TypeEnv::new();
        let mut conc = ir::state::ConcState::default();
        conc.mem.alloc(0x100, &Value::u32(a), &tenv).unwrap();
        conc.mem.alloc(0x104, &Value::u32(a ^ 1), &tenv).unwrap();
        let before = heapmodel::lift_state(&conc, &tenv, &[Ty::U32]);
        conc.mem.encode(0x100, &Value::u32(v), &tenv).unwrap();
        let after = heapmodel::lift_state(&conc, &tenv, &[Ty::U32]);
        // after = before[0x100 := v]
        let hb = &before.heaps[&Ty::U32];
        let ha = &after.heaps[&Ty::U32];
        prop_assert_eq!(ha.get(0x100), Some(&Value::u32(v)));
        prop_assert_eq!(ha.get(0x104), hb.get(0x104));
        prop_assert_eq!(&ha.valid, &hb.valid);
    }
}
