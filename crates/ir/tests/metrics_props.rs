//! Property tests for the Table 5 size metrics (line wrapping and line
//! counting must be stable, conservative, and content-preserving).

use ir::metrics::{spec_lines, wrap_text};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,12}",
        Just("≡".to_owned()),
        Just("(λs.".to_owned()),
        Just("od);".to_owned()),
        "[0-9]{1,10}",
    ]
}

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::collection::vec(arb_token(), 0..30),
        0..12,
    )
    .prop_map(|lines| {
        lines
            .into_iter()
            .map(|ws| ws.join(" "))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

proptest! {
    /// No output line exceeds the width unless it is a single unbreakable
    /// token longer than the width.
    #[test]
    fn wrapped_lines_fit(text in arb_text(), width in 8usize..120) {
        for line in wrap_text(&text, width).lines() {
            let n = line.chars().count();
            if n > width {
                prop_assert!(
                    !line.trim().contains(' '),
                    "over-long line is breakable: {line:?}"
                );
            }
        }
    }

    /// Wrapping preserves the token stream (joining on whitespace).
    #[test]
    fn wrapping_preserves_tokens(text in arb_text(), width in 8usize..120) {
        let before: Vec<&str> = text.split_whitespace().collect();
        let wrapped = wrap_text(&text, width);
        let after: Vec<&str> = wrapped.split_whitespace().collect();
        prop_assert_eq!(before, after);
    }

    /// Wrapping at a width no line exceeds is the identity (modulo the
    /// normalised trailing newline).
    #[test]
    fn wide_enough_is_identity(text in arb_text()) {
        let max = text.lines().map(|l| l.chars().count()).max().unwrap_or(0);
        let wrapped = wrap_text(&text, max.max(1));
        prop_assert_eq!(wrapped.trim_end_matches('\n'), text.trim_end_matches('\n'));
    }

    /// Line counts are monotone: narrower widths never produce fewer lines.
    #[test]
    fn narrower_never_fewer_lines(text in arb_text(), w1 in 8usize..60, extra in 1usize..60) {
        let w2 = w1 + extra;
        let narrow = spec_lines(&wrap_text(&text, w1));
        let wide = spec_lines(&wrap_text(&text, w2));
        prop_assert!(narrow >= wide, "narrow {w1}→{narrow} < wide {w2}→{wide}");
    }

    /// spec_lines counts non-empty lines.
    #[test]
    fn spec_lines_counts_nonempty(lines in proptest::collection::vec(arb_token(), 0..20)) {
        let with_blanks: String = lines
            .iter()
            .flat_map(|l| [l.as_str(), ""])
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert_eq!(spec_lines(&with_blanks), lines.len());
    }

    /// Idempotence: wrapping an already-wrapped text changes nothing.
    #[test]
    fn wrapping_is_idempotent(text in arb_text(), width in 8usize..120) {
        let once = wrap_text(&text, width);
        prop_assert_eq!(wrap_text(&once, width), once.clone());
    }
}
