//! Exhaustive 8-bit oracle: every `Word` operation checked against Rust's
//! native `u8`/`i8` arithmetic on *all* operand pairs. Word widths share
//! one code path, so this validates the masking/sign-extension logic that
//! the other widths rely on.

use ir::ty::{Signedness, Ty, Width};
use ir::word::Word;

fn w(v: u8) -> Word {
    Word::new(u64::from(v), Width::W8, Signedness::Unsigned)
}

fn s(v: i8) -> Word {
    Word::new(v as u8 as u64, Width::W8, Signedness::Signed)
}

#[test]
fn unsigned_ring_ops_all_pairs() {
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!(w(a).wrapping_add(&w(b)).bits(), u64::from(a.wrapping_add(b)));
            assert_eq!(w(a).wrapping_sub(&w(b)).bits(), u64::from(a.wrapping_sub(b)));
            assert_eq!(w(a).wrapping_mul(&w(b)).bits(), u64::from(a.wrapping_mul(b)));
            assert_eq!(w(a).and(&w(b)).bits(), u64::from(a & b));
            assert_eq!(w(a).or(&w(b)).bits(), u64::from(a | b));
            assert_eq!(w(a).xor(&w(b)).bits(), u64::from(a ^ b));
        }
    }
}

#[test]
fn unsigned_div_rem_all_pairs() {
    for a in 0..=255u8 {
        for b in 1..=255u8 {
            assert_eq!(w(a).c_div(&w(b)).bits(), u64::from(a / b), "{a}/{b}");
            assert_eq!(w(a).c_rem(&w(b)).bits(), u64::from(a % b), "{a}%{b}");
        }
    }
}

#[test]
fn signed_ring_ops_all_pairs() {
    for a in i8::MIN..=i8::MAX {
        for b in i8::MIN..=i8::MAX {
            assert_eq!(
                s(a).wrapping_add(&s(b)).signed_value(),
                i64::from(a.wrapping_add(b)),
                "{a}+{b}"
            );
            assert_eq!(
                s(a).wrapping_sub(&s(b)).signed_value(),
                i64::from(a.wrapping_sub(b)),
                "{a}-{b}"
            );
            assert_eq!(
                s(a).wrapping_mul(&s(b)).signed_value(),
                i64::from(a.wrapping_mul(b)),
                "{a}*{b}"
            );
        }
    }
}

#[test]
fn signed_div_rem_truncates_toward_zero() {
    for a in i8::MIN..=i8::MAX {
        for b in i8::MIN..=i8::MAX {
            if b == 0 {
                continue;
            }
            // C division truncates toward zero; i8::MIN / -1 wraps in the
            // two's-complement machine result (the C program would have
            // failed a guard first).
            let expect_div = i64::from(a).wrapping_div(i64::from(b)) as i8;
            let expect_rem = i64::from(a).wrapping_rem(i64::from(b)) as i8;
            assert_eq!(s(a).c_div(&s(b)).signed_value(), i64::from(expect_div), "{a}/{b}");
            assert_eq!(s(a).c_rem(&s(b)).signed_value(), i64::from(expect_rem), "{a}%{b}");
        }
    }
}

#[test]
fn comparisons_match_native() {
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            assert_eq!(Word::word_cmp(&w(a), &w(b)), u8::cmp(&a, &b), "u {a} vs {b}");
        }
    }
    for a in i8::MIN..=i8::MAX {
        for b in i8::MIN..=i8::MAX {
            assert_eq!(Word::word_cmp(&s(a), &s(b)), i8::cmp(&a, &b), "s {a} vs {b}");
        }
    }
}

#[test]
fn shifts_match_native() {
    for a in 0..=255u8 {
        for amt in 0..8u32 {
            assert_eq!(w(a).shl(amt).bits(), u64::from(a << amt), "{a}<<{amt}");
            assert_eq!(w(a).shr(amt).bits(), u64::from(a >> amt), "{a}>>{amt}");
        }
    }
    for a in i8::MIN..=i8::MAX {
        for amt in 0..8u32 {
            // Arithmetic right shift on signed operands.
            assert_eq!(
                s(a).shr(amt).signed_value(),
                i64::from(a >> amt),
                "{a}>>{amt}"
            );
        }
    }
}

#[test]
fn negation_and_not_all_values() {
    for a in 0..=255u8 {
        assert_eq!(w(a).wrapping_neg().bits(), u64::from(a.wrapping_neg()));
        assert_eq!(w(a).not().bits(), u64::from(!a));
    }
    for a in i8::MIN..=i8::MAX {
        assert_eq!(s(a).wrapping_neg().signed_value(), i64::from(a.wrapping_neg()));
    }
}

#[test]
fn unat_sint_of_nat_of_int_roundtrip() {
    for a in 0..=255u8 {
        let back = Word::of_nat(&w(a).unat(), Width::W8, Signedness::Unsigned);
        assert_eq!(back, w(a), "unat roundtrip {a}");
    }
    for a in i8::MIN..=i8::MAX {
        let back = Word::of_int(&s(a).sint(), Width::W8, Signedness::Signed);
        assert_eq!(back, s(a), "sint roundtrip {a}");
    }
}

#[test]
fn conversions_to_wider_and_back() {
    for a in 0..=255u8 {
        let wide = w(a).convert(Width::W32, Signedness::Unsigned);
        assert_eq!(wide.bits(), u64::from(a), "zero-extend {a}");
        assert_eq!(wide.convert(Width::W8, Signedness::Unsigned), w(a));
    }
    for a in i8::MIN..=i8::MAX {
        let wide = s(a).convert(Width::W32, Signedness::Signed);
        assert_eq!(wide.signed_value(), i64::from(a), "sign-extend {a}");
        assert_eq!(wide.convert(Width::W8, Signedness::Signed), s(a));
    }
}

#[test]
fn word_types_report_w8() {
    assert_eq!(w(0).ty(), Ty::U8);
    assert_eq!(w(255).width(), Width::W8);
    assert_eq!(s(-1).sign(), Signedness::Signed);
}
