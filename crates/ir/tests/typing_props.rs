//! Type-inference soundness: whenever a random expression both infers a
//! type and evaluates to a value, the value has exactly the inferred type.

use std::collections::HashMap;

use ir::eval::{eval, Env};
use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::state::State;
use ir::ty::{Signedness, Ty, TypeEnv, Width};
use ir::typing::infer_ty;
use ir::value::Value;
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(Expr::u32),
        any::<i32>().prop_map(Expr::i32),
        (0u64..1000).prop_map(Expr::nat),
        (-500i64..500).prop_map(Expr::int),
        Just(Expr::var("w")),
        Just(Expr::var("n")),
        Just(Expr::var("b")),
        Just(Expr::tt()),
        Just(Expr::ff()),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), proptest::sample::select(vec![
                BinOp::Add, BinOp::Sub, BinOp::Mul,
            ]))
            .prop_map(|(a, b, op)| Expr::binop(op, a, b)),
            (inner.clone(), inner.clone(), proptest::sample::select(vec![
                BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le,
            ]))
            .prop_map(|(a, b, op)| Expr::binop(op, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            inner.clone().prop_map(|a| Expr::unop(UnOp::Not, a)),
            inner.clone().prop_map(|a| Expr::cast(CastKind::Unat, a)),
            inner
                .clone()
                .prop_map(|a| Expr::cast(CastKind::OfNat(Width::W32, Signedness::Unsigned), a)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Expr::ite(c, t, e)),
        ]
    })
}

#[test]
fn inferred_types_match_evaluated_values() {
    let vars: HashMap<String, Ty> = [
        ("w".to_owned(), Ty::U32),
        ("n".to_owned(), Ty::Nat),
        ("b".to_owned(), Ty::Bool),
    ]
    .into();
    let tenv = TypeEnv::new();
    let mut env = Env::with_tenv(tenv.clone());
    env.vars.insert("w".into(), Value::u32(7));
    env.vars.insert("n".into(), Value::nat(9u64));
    env.vars.insert("b".into(), Value::Bool(true));
    let st = State::conc_empty();

    // `infer_ty` is a lightweight helper: on an `Ite` it trusts the then
    // branch, so the soundness statement only applies to expressions whose
    // conditionals are branch-consistent.
    let ite_consistent = |e: &Expr| {
        let mut ok = true;
        e.visit(&mut |sub| {
            if let Expr::Ite(_, t, els) = sub {
                let tt = infer_ty(t, &vars, &tenv);
                let te = infer_ty(els, &vars, &tenv);
                if tt.is_none() || tt != te {
                    ok = false;
                }
            }
        });
        ok
    };
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strat = arb_expr();
    let mut agreements = 0u32;
    for _ in 0..4_000 {
        let e = strat.new_tree(&mut runner).unwrap().current();
        if !ite_consistent(&e) {
            continue;
        }
        let inferred = infer_ty(&e, &vars, &tenv);
        let evaluated = eval(&e, &env, &st);
        if let (Some(t), Ok(v)) = (inferred, evaluated) {
            assert_eq!(v.ty(), t, "expr {e}");
            agreements += 1;
        }
    }
    // The generator must produce plenty of well-typed expressions.
    assert!(agreements > 200, "only {agreements} typed+evaluated samples");
}
