//! A rewriting simplifier for expressions.
//!
//! Performs constant folding (using the same evaluation semantics as the
//! interpreters, so folding is sound by construction), boolean
//! simplification, and common arithmetic identities. Used to discharge
//! trivially-true guards during L2 and to normalise verification conditions
//! before the decision procedures run.

use ir::eval::eval_binop_vals;
use ir::expr::{BinOp, Expr, UnOp};
use ir::value::Value;

/// Simplifies an expression bottom-up to a fixed point (bounded passes).
#[must_use]
pub fn simplify(e: &Expr) -> Expr {
    let mut cur = e.clone();
    for _ in 0..8 {
        let next = cur.map(&simp_node);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

fn lit_of(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Lit(v) => Some(v),
        _ => None,
    }
}

fn is_zero(e: &Expr) -> bool {
    match e {
        Expr::Lit(Value::Word(w)) => w.is_zero(),
        Expr::Lit(Value::Nat(n)) => n.is_zero(),
        Expr::Lit(Value::Int(i)) => i.is_zero(),
        _ => false,
    }
}

fn is_one(e: &Expr) -> bool {
    match e {
        Expr::Lit(Value::Word(w)) => w.bits() == 1,
        Expr::Lit(Value::Nat(n)) => n.to_u64() == Some(1),
        Expr::Lit(Value::Int(i)) => i.to_i64() == Some(1),
        _ => false,
    }
}

/// One bottom-up rewriting step applied to an already-rebuilt node.
fn simp_node(e: Expr) -> Expr {
    match e {
        Expr::UnOp(UnOp::Not, ref a) => match &**a {
            Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
            Expr::UnOp(UnOp::Not, inner) => (**inner).clone(),
            // ¬(a = b) → a ≠ b and friends keep atoms tidy for linarith.
            Expr::BinOp(BinOp::Eq, l, r) => Expr::BinOp(BinOp::Ne, l.clone(), r.clone()),
            Expr::BinOp(BinOp::Ne, l, r) => Expr::BinOp(BinOp::Eq, l.clone(), r.clone()),
            _ => e,
        },
        Expr::BinOp(op, ref a, ref b) => simp_binop(op, a, b).unwrap_or(e),
        Expr::Ite(ref c, ref t, ref f) => match lit_of(c) {
            Some(Value::Bool(true)) => (**t).clone(),
            Some(Value::Bool(false)) => (**f).clone(),
            _ => {
                if t == f {
                    (**t).clone()
                } else {
                    e
                }
            }
        },
        Expr::Cast(ref k, ref a) => {
            // Fold casts of literals through the evaluator.
            if let Some(v) = lit_of(a) {
                let env = ir::eval::Env::new();
                let st = ir::state::State::conc_empty();
                if let Ok(out) = ir::eval::eval(
                    &Expr::Cast(k.clone(), ir::expr::IExpr::new(Expr::Lit(v.clone()))),
                    &env,
                    &st,
                ) {
                    return Expr::Lit(out);
                }
            }
            // unat (of_nat x) does NOT fold (wrap-around), but
            // of_nat (unat x) = x does.
            if let (ir::expr::CastKind::OfNat(w, s), Expr::Cast(ir::expr::CastKind::Unat, inner)) =
                (k, &**a)
            {
                if let Expr::Var(_) = &**inner {
                    // only sound when the inner word has the same shape;
                    // conservatively require exact literal width match via
                    // type-free structure: skip unless shapes align.
                    let _ = (w, s);
                }
            }
            e
        }
        Expr::Proj(i, ref t) => {
            if let Expr::Tuple(es) = &**t {
                es.get(i).cloned().unwrap_or(e)
            } else {
                e
            }
        }
        Expr::Field(ref s, ref f) => {
            if let Expr::Lit(v) = &**s {
                if let Some(fv) = v.field(f) {
                    return Expr::Lit(fv.clone());
                }
            }
            if let Expr::UpdateField(base, g, v) = &**s {
                if g == f {
                    return (**v).clone();
                }
                return simp_node(Expr::Field(base.clone(), f.clone()));
            }
            // Push field selection into conditionals so read-over-write
            // `if`-chains expose their fields to further rewriting.
            if let Expr::Ite(c, a, b) = &**s {
                return Expr::ite(
                    (**c).clone(),
                    simp_node(Expr::Field(a.clone(), f.clone())),
                    simp_node(Expr::Field(b.clone(), f.clone())),
                );
            }
            e
        }
        _ => e,
    }
}

fn simp_binop(op: BinOp, a: &Expr, b: &Expr) -> Option<Expr> {
    use BinOp::*;
    // Constant folding through the real evaluator.
    if let (Some(va), Some(vb)) = (lit_of(a), lit_of(b)) {
        if !matches!(op, And | Or | Implies) {
            if let Ok(v) = eval_binop_vals(op, va, vb) {
                return Some(Expr::Lit(v));
            }
        }
    }
    match op {
        And => match (a, b) {
            (t, x) | (x, t) if *t == Expr::tt() => Some(x.clone()),
            (f, _) | (_, f) if *f == Expr::ff() => Some(Expr::ff()),
            _ if a == b => Some(a.clone()),
            _ => None,
        },
        Or => match (a, b) {
            (f, x) | (x, f) if *f == Expr::ff() => Some(x.clone()),
            (t, _) | (_, t) if *t == Expr::tt() => Some(Expr::tt()),
            _ if a == b => Some(a.clone()),
            _ => None,
        },
        Implies => {
            if *a == Expr::tt() {
                Some(b.clone())
            } else if *a == Expr::ff() || *b == Expr::tt() {
                Some(Expr::tt())
            } else if *b == Expr::ff() {
                Some(Expr::not(a.clone()))
            } else if a == b {
                Some(Expr::tt())
            } else {
                None
            }
        }
        Add => {
            if is_zero(a) {
                Some(b.clone())
            } else if is_zero(b) {
                Some(a.clone())
            } else {
                None
            }
        }
        Sub | Shl | Shr => {
            if is_zero(b) {
                Some(a.clone())
            } else {
                None
            }
        }
        Mul => {
            if is_one(a) {
                Some(b.clone())
            } else if is_one(b) {
                Some(a.clone())
            } else if is_zero(a) || is_zero(b) {
                // Either zero annihilates; both operands share a type, so
                // returning whichever is the literal zero is well-typed.
                Some(if is_zero(a) { a.clone() } else { b.clone() })
            } else {
                None
            }
        }
        Div => {
            if is_one(b) {
                Some(a.clone())
            } else {
                None
            }
        }
        Eq => {
            if a == b && !a.reads_state() {
                Some(Expr::tt())
            } else {
                None
            }
        }
        Le => {
            if a == b && !a.reads_state() {
                Some(Expr::tt())
            } else {
                None
            }
        }
        Lt | Ne => {
            if a == b && !a.reads_state() {
                Some(Expr::ff())
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let e = Expr::binop(BinOp::Add, Expr::nat(2u64), Expr::nat(3u64));
        assert_eq!(simplify(&e), Expr::nat(5u64));
        // Word folding wraps.
        let e = Expr::binop(BinOp::Add, Expr::u32(u32::MAX), Expr::u32(1));
        assert_eq!(simplify(&e), Expr::u32(0));
    }

    #[test]
    fn boolean_units() {
        let p = Expr::var("p");
        assert_eq!(simplify(&Expr::binop(BinOp::And, Expr::tt(), p.clone())), p);
        assert_eq!(
            simplify(&Expr::binop(BinOp::Or, p.clone(), Expr::tt())),
            Expr::tt()
        );
        assert_eq!(
            simplify(&Expr::implies(Expr::ff(), p.clone())),
            Expr::tt()
        );
        assert_eq!(simplify(&Expr::not(Expr::not(p.clone()))), p);
    }

    #[test]
    fn arithmetic_identities() {
        let x = Expr::var("x");
        assert_eq!(
            simplify(&Expr::binop(BinOp::Add, x.clone(), Expr::nat(0u64))),
            x
        );
        assert_eq!(
            simplify(&Expr::binop(BinOp::Mul, Expr::nat(1u64), x.clone())),
            x
        );
        assert_eq!(
            simplify(&Expr::binop(BinOp::Mul, Expr::nat(0u64), x.clone())),
            Expr::nat(0u64)
        );
    }

    #[test]
    fn reflexive_comparisons() {
        let x = Expr::var("x");
        assert_eq!(
            simplify(&Expr::binop(BinOp::Le, x.clone(), x.clone())),
            Expr::tt()
        );
        assert_eq!(
            simplify(&Expr::binop(BinOp::Lt, x.clone(), x.clone())),
            Expr::ff()
        );
        // … but not for state-reading expressions (two reads may differ
        // only syntactically — they are equal here, but keep it cautious
        // for heap ops under updates).
        let h = Expr::read_heap(ir::ty::Ty::U32, Expr::var("p"));
        let e = Expr::binop(BinOp::Eq, h.clone(), h);
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn ite_folding() {
        let e = Expr::ite(Expr::tt(), Expr::var("a"), Expr::var("b"));
        assert_eq!(simplify(&e), Expr::var("a"));
        let e = Expr::ite(Expr::var("c"), Expr::var("a"), Expr::var("a"));
        assert_eq!(simplify(&e), Expr::var("a"));
    }

    #[test]
    fn nested_simplification_to_true() {
        // (true → (0 + x = x)) simplifies fully.
        let x = Expr::var("x");
        let e = Expr::implies(
            Expr::tt(),
            Expr::eq(Expr::binop(BinOp::Add, Expr::nat(0u64), x.clone()), x),
        );
        assert_eq!(simplify(&e), Expr::tt());
    }

    #[test]
    fn field_of_update() {
        let s = Expr::var("s");
        let upd = Expr::UpdateField(ir::expr::IExpr::new(s.clone()), "f".into(), ir::expr::IExpr::new(Expr::u32(5)));
        assert_eq!(
            simplify(&Expr::field(upd.clone(), "f")),
            Expr::u32(5)
        );
        assert_eq!(
            simplify(&Expr::field(upd, "g")),
            Expr::field(s, "g")
        );
    }

    #[test]
    fn cast_folding() {
        let e = Expr::cast(ir::expr::CastKind::Unat, Expr::u32(42));
        assert_eq!(simplify(&e), Expr::nat(42u64));
    }
}
