//! Bit-vector decision by bit-blasting to CNF.
//!
//! Word-level verification conditions are translated, bit by bit, into
//! propositional logic and decided by the `sat` CDCL solver. This is the
//! (deliberately expensive) path that un-abstracted word reasoning forces —
//! the counterpart of the paper's observation that 25% of the seL4 proof
//! libraries were word-arithmetic lemmas. Counterexamples are extracted
//! from SAT models, which is how the Table 2 counterexamples are found
//! mechanically.

use std::collections::HashMap;

use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::ty::{Signedness, Ty, Width};
use ir::value::Value;
use ir::word::Word;
use sat::{Lit, Solver, Stats};

use crate::Verdict;

/// A bit vector, little-endian.
type Bv = Vec<Lit>;

struct Unsupported(#[allow(dead_code)] String);

struct Bb<'a> {
    solver: Solver,
    vars: &'a HashMap<String, Ty>,
    word_vars: HashMap<String, (Bv, Width, Signedness)>,
    bool_vars: HashMap<String, Lit>,
    tru: Lit,
}

type R<T> = Result<T, Unsupported>;

impl<'a> Bb<'a> {
    fn new(vars: &'a HashMap<String, Ty>) -> Bb<'a> {
        let mut solver = Solver::new();
        let t = solver.new_var();
        let tru = Lit::pos(t);
        solver.add_clause([tru]);
        Bb {
            solver,
            vars,
            word_vars: HashMap::new(),
            bool_vars: HashMap::new(),
            tru,
        }
    }

    fn fals(&self) -> Lit {
        self.tru.negate()
    }

    fn lit_of_bool(&mut self, b: bool) -> Lit {
        if b {
            self.tru
        } else {
            self.fals()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    // --- gates (Tseitin) ---------------------------------------------------

    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b;
        }
        if b == self.tru {
            return a;
        }
        if a == self.fals() || b == self.fals() {
            return self.fals();
        }
        let o = self.fresh();
        self.solver.add_clause([o.negate(), a]);
        self.solver.add_clause([o.negate(), b]);
        self.solver.add_clause([a.negate(), b.negate(), o]);
        o
    }

    fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        self.and2(a.negate(), b.negate()).negate()
    }

    fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b.negate();
        }
        if a == self.fals() {
            return b;
        }
        if b == self.tru {
            return a.negate();
        }
        if b == self.fals() {
            return a;
        }
        let o = self.fresh();
        self.solver.add_clause([o.negate(), a, b]);
        self.solver.add_clause([o.negate(), a.negate(), b.negate()]);
        self.solver.add_clause([o, a, b.negate()]);
        self.solver.add_clause([o, a.negate(), b]);
        o
    }

    fn iff2(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor2(a, b).negate()
    }

    fn mux(&mut self, c: Lit, t: Lit, f: Lit) -> Lit {
        let ct = self.and2(c, t);
        let cf = self.and2(c.negate(), f);
        self.or2(ct, cf)
    }

    // --- word encodings ----------------------------------------------------

    fn const_bv(&mut self, w: &Word) -> Bv {
        (0..w.width().bits())
            .map(|i| self.lit_of_bool(w.bits() >> i & 1 == 1))
            .collect()
    }

    fn var_bv(&mut self, name: &str, width: Width, sign: Signedness) -> Bv {
        if let Some((bv, _, _)) = self.word_vars.get(name) {
            return bv.clone();
        }
        // Each bit is a named SAT variable (`x[i]`, little-endian), so the
        // satisfying assignment can be read back through the solver's
        // stable-name registry as well as through `word_vars`.
        let bv: Bv = (0..width.bits())
            .map(|i| Lit::pos(self.solver.new_named_var(format!("{name}[{i}]"))))
            .collect();
        self.word_vars
            .insert(name.to_owned(), (bv.clone(), width, sign));
        bv
    }

    fn adder(&mut self, a: &Bv, b: &Bv, carry_in: Lit) -> Bv {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = carry_in;
        for i in 0..a.len() {
            let s1 = self.xor2(a[i], b[i]);
            out.push(self.xor2(s1, carry));
            let c1 = self.and2(a[i], b[i]);
            let c2 = self.and2(s1, carry);
            carry = self.or2(c1, c2);
        }
        out
    }

    fn neg_bv(&mut self, a: &Bv) -> Bv {
        let inv: Bv = a.iter().map(|l| l.negate()).collect();
        let zero: Bv = vec![self.fals(); a.len()];
        self.adder(&inv, &zero, self.tru)
    }

    fn mul_bv(&mut self, a: &Bv, b: &Bv) -> Bv {
        let n = a.len();
        let mut acc: Bv = vec![self.fals(); n];
        for (i, &bi) in b.iter().enumerate() {
            // partial = (a << i) AND bi
            let mut partial: Bv = vec![self.fals(); n];
            for j in 0..(n - i) {
                partial[i + j] = self.and2(a[j], bi);
            }
            acc = self.adder(&acc, &partial, self.fals());
        }
        acc
    }

    /// Unsigned less-than: the borrow out of `a - b`.
    fn ult(&mut self, a: &Bv, b: &Bv) -> Lit {
        let inv_b: Bv = b.iter().map(|l| l.negate()).collect();
        // a + ¬b + 1: carry-out == (a ≥ b)
        let mut carry = self.tru;
        for i in 0..a.len() {
            let s1 = self.xor2(a[i], inv_b[i]);
            let c1 = self.and2(a[i], inv_b[i]);
            let c2 = self.and2(s1, carry);
            carry = self.or2(c1, c2);
        }
        carry.negate()
    }

    fn slt(&mut self, a: &Bv, b: &Bv) -> Lit {
        // Flip the sign bits and compare unsigned.
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let msb = a.len() - 1;
        a2[msb] = a2[msb].negate();
        b2[msb] = b2[msb].negate();
        self.ult(&a2, &b2)
    }

    fn eq_bv(&mut self, a: &Bv, b: &Bv) -> Lit {
        let mut acc = self.tru;
        for i in 0..a.len() {
            let e = self.iff2(a[i], b[i]);
            acc = self.and2(acc, e);
        }
        acc
    }

    fn mux_bv(&mut self, c: Lit, t: &Bv, f: &Bv) -> Bv {
        t.iter()
            .zip(f)
            .map(|(&ti, &fi)| self.mux(c, ti, fi))
            .collect()
    }

    // --- expression translation ---------------------------------------------

    /// Translates a word-valued expression to a bit vector plus its shape.
    fn word(&mut self, e: &Expr) -> R<(Bv, Width, Signedness)> {
        match e {
            Expr::Lit(Value::Word(w)) => Ok((self.const_bv(w), w.width(), w.sign())),
            Expr::Var(n) => match self.vars.get(n.as_str()) {
                Some(Ty::Word(w, s)) => Ok((self.var_bv(n, *w, *s), *w, *s)),
                t => Err(Unsupported(format!("variable `{n}` of type {t:?}"))),
            },
            Expr::UnOp(UnOp::Neg, a) => {
                let (bv, w, s) = self.word(a)?;
                Ok((self.neg_bv(&bv), w, s))
            }
            Expr::UnOp(UnOp::BitNot, a) => {
                let (bv, w, s) = self.word(a)?;
                Ok((bv.iter().map(|l| l.negate()).collect(), w, s))
            }
            Expr::BinOp(op, a, b) => {
                let (ba, w, s) = self.word(a)?;
                match op {
                    BinOp::Shl | BinOp::Shr => {
                        let Expr::Lit(Value::Word(k)) = &**b else {
                            return Err(Unsupported("variable shift amount".into()));
                        };
                        let k = k.bits() as usize;
                        let n = ba.len();
                        if k >= n {
                            return Err(Unsupported("shift ≥ width".into()));
                        }
                        let out = match op {
                            BinOp::Shl => {
                                let mut v = vec![self.fals(); k];
                                v.extend_from_slice(&ba[..n - k]);
                                v
                            }
                            _ => {
                                let fill = if s == Signedness::Signed {
                                    ba[n - 1]
                                } else {
                                    self.fals()
                                };
                                let mut v = ba[k..].to_vec();
                                v.extend(std::iter::repeat_n(fill, k));
                                v
                            }
                        };
                        return Ok((out, w, s));
                    }
                    _ => {}
                }
                let (bb, _, _) = self.word(b)?;
                if ba.len() != bb.len() {
                    return Err(Unsupported("width mismatch".into()));
                }
                let out = match op {
                    BinOp::Add => self.adder(&ba, &bb, self.fals()),
                    BinOp::Sub => {
                        let inv: Bv = bb.iter().map(|l| l.negate()).collect();
                        self.adder(&ba, &inv, self.tru)
                    }
                    BinOp::Mul => self.mul_bv(&ba, &bb),
                    BinOp::BitAnd => ba
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.and2(x, y))
                        .collect(),
                    BinOp::BitOr => ba
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.or2(x, y))
                        .collect(),
                    BinOp::BitXor => ba
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.xor2(x, y))
                        .collect(),
                    BinOp::Div | BinOp::Mod => {
                        // Only division by constant powers of two (the cases
                        // the benchmarks need: `(l + r) / 2`).
                        let Expr::Lit(Value::Word(k)) = &**b else {
                            return Err(Unsupported("non-constant division".into()));
                        };
                        if s == Signedness::Signed || !k.bits().is_power_of_two() {
                            return Err(Unsupported("division not a power of two".into()));
                        }
                        let sh = k.bits().trailing_zeros() as usize;
                        match op {
                            BinOp::Div => {
                                let mut v = ba[sh..].to_vec();
                                v.extend(std::iter::repeat_n(self.fals(), sh));
                                v
                            }
                            _ => {
                                let mut v = ba[..sh].to_vec();
                                v.extend(std::iter::repeat_n(self.fals(), ba.len() - sh));
                                v
                            }
                        }
                    }
                    other => return Err(Unsupported(format!("word op {other:?}"))),
                };
                Ok((out, w, s))
            }
            Expr::Cast(CastKind::WordToWord(w, s), a) => {
                let (ba, _, src_sign) = self.word(a)?;
                let n = w.bits() as usize;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    if i < ba.len() {
                        out.push(ba[i]);
                    } else if src_sign == Signedness::Signed {
                        out.push(ba[ba.len() - 1]);
                    } else {
                        out.push(self.fals());
                    }
                }
                Ok((out, *w, *s))
            }
            Expr::Ite(c, t, f) => {
                let lc = self.boolean(c)?;
                let (bt, w, s) = self.word(t)?;
                let (bf, _, _) = self.word(f)?;
                Ok((self.mux_bv(lc, &bt, &bf), w, s))
            }
            other => Err(Unsupported(format!("word term {other:?}"))),
        }
    }

    /// Translates a boolean-valued expression to a literal.
    fn boolean(&mut self, e: &Expr) -> R<Lit> {
        match e {
            Expr::Lit(Value::Bool(b)) => Ok(self.lit_of_bool(*b)),
            Expr::Var(n) if self.vars.get(n.as_str()) == Some(&Ty::Bool) => {
                if let Some(&l) = self.bool_vars.get(n.as_str()) {
                    return Ok(l);
                }
                let l = Lit::pos(self.solver.new_named_var(n.as_str()));
                self.bool_vars.insert(n.to_string(), l);
                Ok(l)
            }
            Expr::UnOp(UnOp::Not, a) => Ok(self.boolean(a)?.negate()),
            Expr::BinOp(BinOp::And, a, b) => {
                let (la, lb) = (self.boolean(a)?, self.boolean(b)?);
                Ok(self.and2(la, lb))
            }
            Expr::BinOp(BinOp::Or, a, b) => {
                let (la, lb) = (self.boolean(a)?, self.boolean(b)?);
                Ok(self.or2(la, lb))
            }
            Expr::BinOp(BinOp::Implies, a, b) => {
                let (la, lb) = (self.boolean(a)?, self.boolean(b)?);
                Ok(self.or2(la.negate(), lb))
            }
            Expr::BinOp(op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le), a, b) => {
                // Boolean equality?
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    if let (Ok(la), Ok(lb)) = (self.boolean(a), self.boolean(b)) {
                        let eq = self.iff2(la, lb);
                        return Ok(if *op == BinOp::Ne { eq.negate() } else { eq });
                    }
                }
                let (ba, _, s) = self.word(a)?;
                let (bb, _, _) = self.word(b)?;
                match op {
                    BinOp::Eq => Ok(self.eq_bv(&ba, &bb)),
                    BinOp::Ne => Ok(self.eq_bv(&ba, &bb).negate()),
                    BinOp::Lt => Ok(if s == Signedness::Signed {
                        self.slt(&ba, &bb)
                    } else {
                        self.ult(&ba, &bb)
                    }),
                    BinOp::Le => {
                        let gt = if s == Signedness::Signed {
                            self.slt(&bb, &ba)
                        } else {
                            self.ult(&bb, &ba)
                        };
                        Ok(gt.negate())
                    }
                    _ => unreachable!(),
                }
            }
            Expr::Ite(c, t, f) => {
                let lc = self.boolean(c)?;
                let lt = self.boolean(t)?;
                let lf = self.boolean(f)?;
                Ok(self.mux(lc, lt, lf))
            }
            other => Err(Unsupported(format!("boolean term {other:?}"))),
        }
    }
}

/// Decides validity of a word-level goal via SAT on its negation.
#[must_use]
pub fn decide_word(goal: &Expr, vars: &HashMap<String, Ty>) -> Verdict {
    decide_word_with_stats(goal, vars).0
}

/// [`decide_word`] returning the SAT statistics of the run.
#[must_use]
pub fn decide_word_with_stats(goal: &Expr, vars: &HashMap<String, Ty>) -> (Verdict, Stats) {
    let mut bb = Bb::new(vars);
    let lit = match bb.boolean(goal) {
        Ok(l) => l,
        Err(_) => return (Verdict::Unknown, Stats::default()),
    };
    bb.solver.add_clause([lit.negate()]);
    match bb.solver.solve_model_limited(2_000_000) {
        Ok(None) => (Verdict::Valid, bb.solver.stats),
        Ok(Some(model)) => {
            // Un-bitblast: reassemble each word variable from its named
            // bit assignments (little-endian), and read booleans directly.
            let mut out = HashMap::new();
            for (name, (bv, w, s)) in &bb.word_vars {
                let mut bits: u64 = 0;
                for (i, l) in bv.iter().enumerate() {
                    if model.lit(*l) {
                        bits |= 1 << i;
                    }
                }
                out.insert(name.clone(), Value::Word(Word::new(bits, *w, *s)));
            }
            for (name, l) in &bb.bool_vars {
                out.insert(name.clone(), Value::Bool(model.lit(*l)));
            }
            (Verdict::Counterexample(out), bb.solver.stats)
        }
        Err(()) => (Verdict::Unknown, bb.solver.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::eval::{eval_bool, Env};
    use ir::state::State;

    fn u32_vars(names: &[&str]) -> HashMap<String, Ty> {
        names.iter().map(|n| ((*n).to_owned(), Ty::U32)).collect()
    }

    fn i32_vars(names: &[&str]) -> HashMap<String, Ty> {
        names.iter().map(|n| ((*n).to_owned(), Ty::I32)).collect()
    }

    /// Any counterexample the blaster returns must actually falsify the goal
    /// under the real word semantics.
    fn check_cx(goal: &Expr, model: &HashMap<String, Value>) {
        let mut env = Env::new();
        for (n, v) in model {
            env.bind_mut(n, v.clone());
        }
        assert_eq!(
            eval_bool(goal, &env, &State::conc_empty()),
            Ok(false),
            "counterexample must falsify the goal"
        );
    }

    #[test]
    fn table2_u_plus_one() {
        // u + 1 > u: invalid; counterexample u = 2^32 - 1.
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::var("u"),
            Expr::binop(BinOp::Add, Expr::var("u"), Expr::u32(1)),
        );
        let Verdict::Counterexample(m) = decide_word(&goal, &u32_vars(&["u"])) else {
            panic!("expected counterexample")
        };
        assert_eq!(m["u"], Value::u32(u32::MAX));
        check_cx(&goal, &m);
    }

    #[test]
    fn table2_neg_u() {
        // -u = u → u = 0: invalid; u = 2^31.
        let goal = Expr::implies(
            Expr::eq(Expr::unop(UnOp::Neg, Expr::var("u")), Expr::var("u")),
            Expr::eq(Expr::var("u"), Expr::u32(0)),
        );
        let Verdict::Counterexample(m) = decide_word(&goal, &u32_vars(&["u"])) else {
            panic!()
        };
        assert_eq!(m["u"], Value::u32(1 << 31));
        check_cx(&goal, &m);
    }

    #[test]
    fn table2_mul() {
        // u * 2 = 4 → u = 2: invalid; u = 2^31 + 2.
        let goal = Expr::implies(
            Expr::eq(
                Expr::binop(BinOp::Mul, Expr::var("u"), Expr::u32(2)),
                Expr::u32(4),
            ),
            Expr::eq(Expr::var("u"), Expr::u32(2)),
        );
        let Verdict::Counterexample(m) = decide_word(&goal, &u32_vars(&["u"])) else {
            panic!()
        };
        check_cx(&goal, &m);
    }

    #[test]
    fn valid_word_identities() {
        // x & y ≤ x is valid on unsigned words… via bit reasoning.
        let goal = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::BitAnd, Expr::var("x"), Expr::var("y")),
            Expr::var("x"),
        );
        assert_eq!(decide_word(&goal, &u32_vars(&["x", "y"])), Verdict::Valid);
        // x ^ x = 0
        let goal = Expr::eq(
            Expr::binop(BinOp::BitXor, Expr::var("x"), Expr::var("x")),
            Expr::u32(0),
        );
        assert_eq!(decide_word(&goal, &u32_vars(&["x"])), Verdict::Valid);
    }

    #[test]
    fn signed_comparison_semantics() {
        // s < s + 1 is invalid for signed words (s = INT_MAX).
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::var("s"),
            Expr::binop(BinOp::Add, Expr::var("s"), Expr::i32(1)),
        );
        let Verdict::Counterexample(m) = decide_word(&goal, &i32_vars(&["s"])) else {
            panic!()
        };
        assert_eq!(m["s"], Value::i32(i32::MAX));
        check_cx(&goal, &m);
    }

    #[test]
    fn guarded_midpoint_is_valid_at_word_level() {
        // With the no-overflow guard, the word-level midpoint VC holds:
        // l + r ≤ UINT_MAX is inexpressible directly at word level; the
        // equivalent guard is l ≤ l + r (no wrap).  Guarded VC:
        // (l ≤w l +w r) → l <w r → l ≤w (l+r)/2 ∧ (l+r)/2 <w r
        let l = || Expr::var("l");
        let r = || Expr::var("r");
        let sum = Expr::binop(BinOp::Add, l(), r());
        let mid = Expr::binop(BinOp::Div, sum.clone(), Expr::u32(2));
        let goal = Expr::implies(
            Expr::binop(BinOp::Le, l(), sum),
            Expr::implies(
                Expr::binop(BinOp::Lt, l(), r()),
                Expr::and(
                    Expr::binop(BinOp::Le, l(), mid.clone()),
                    Expr::binop(BinOp::Lt, mid, r()),
                ),
            ),
        );
        let (v, stats) = decide_word_with_stats(&goal, &u32_vars(&["l", "r"]));
        assert_eq!(v, Verdict::Valid);
        assert!(stats.conflicts > 0, "non-trivial SAT work: {stats:?}");
    }

    #[test]
    fn unguarded_midpoint_fails_at_word_level() {
        // Without the overflow guard the word-level VC is falsifiable.
        let l = || Expr::var("l");
        let r = || Expr::var("r");
        let mid = Expr::binop(
            BinOp::Div,
            Expr::binop(BinOp::Add, l(), r()),
            Expr::u32(2),
        );
        let goal = Expr::implies(
            Expr::binop(BinOp::Lt, l(), r()),
            Expr::and(
                Expr::binop(BinOp::Le, l(), mid.clone()),
                Expr::binop(BinOp::Lt, mid, r()),
            ),
        );
        let Verdict::Counterexample(m) = decide_word(&goal, &u32_vars(&["l", "r"])) else {
            panic!()
        };
        check_cx(&goal, &m);
    }

    #[test]
    fn casts() {
        // zero-extension: (u64)(u32 x) < 2^32
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::cast(
                CastKind::WordToWord(Width::W64, Signedness::Unsigned),
                Expr::var("x"),
            ),
            Expr::Lit(Value::Word(Word::new(1 << 32, Width::W64, Signedness::Unsigned))),
        );
        assert_eq!(decide_word(&goal, &u32_vars(&["x"])), Verdict::Valid);
    }

    #[test]
    fn random_agreement_with_eval() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let vars = u32_vars(&["a", "b"]);
        for _ in 0..30 {
            // Random small formulas: compare sat verdict against brute
            // sampling of the evaluator.
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::BitAnd, BinOp::BitXor];
            let op = ops[rng.gen_range(0..ops.len())];
            let cmp = [BinOp::Eq, BinOp::Le, BinOp::Lt][rng.gen_range(0..3)];
            let lhs = Expr::binop(op, Expr::var("a"), Expr::var("b"));
            let rhs = Expr::u32(rng.gen_range(0..10));
            let goal = Expr::binop(cmp, lhs, rhs);
            match decide_word(&goal, &vars) {
                Verdict::Valid => {
                    // spot check on random assignments
                    for _ in 0..50 {
                        let mut env = Env::new();
                        env.bind_mut("a", Value::u32(rng.gen()));
                        env.bind_mut("b", Value::u32(rng.gen()));
                        assert_eq!(eval_bool(&goal, &env, &State::conc_empty()), Ok(true));
                    }
                }
                Verdict::Counterexample(m) => check_cx(&goal, &m),
                Verdict::Unknown => {}
            }
        }
    }
}
