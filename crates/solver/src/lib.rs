//! The automated-reasoning stack: simplifier, linear integer arithmetic,
//! and word-level bit-blasting.
//!
//! This crate plays the role Isabelle/HOL's `simp` and `auto` (plus the
//! word libraries) play in the paper:
//!
//! * [`simplify::simplify`] — a rewriting simplifier used to normalise
//!   guards and verification conditions (L2's guard discharge),
//! * [`linarith`] — a decision procedure for quantifier-free linear
//!   arithmetic over ideal `nat`/`int`, which is what discharges the
//!   *word-abstracted* VCs automatically (the paper's Sec 3.2 claim: the
//!   midpoint VC on `nat` is solved by `auto`),
//! * [`bitblast`] — bit-vector decision by translation to CNF and the
//!   `sat` CDCL solver, which is what *word-level* VCs require — orders of
//!   magnitude more work, reproducing why unabstracted word reasoning is
//!   painful (Table 2, Sec 3.1–3.2).
//!
//! [`decide`] routes a formula to the appropriate procedure.
//!
//! # Example
//!
//! ```
//! use solver::{decide, Verdict};
//! use ir::{Expr, BinOp, Ty};
//! use std::collections::HashMap;
//!
//! // u + 1 > u is NOT valid on 32-bit words (Table 2) …
//! let u = || Expr::var("u");
//! let word_claim = Expr::binop(BinOp::Lt, u(), Expr::binop(BinOp::Add, u(), Expr::u32(1)));
//! let mut vars = HashMap::new();
//! vars.insert("u".to_string(), Ty::U32);
//! let v = decide(&word_claim, &vars);
//! assert!(matches!(v, Verdict::Counterexample(_)));
//!
//! // … but it is valid on ideal naturals.
//! let nat_claim = Expr::binop(
//!     BinOp::Lt,
//!     u(),
//!     Expr::binop(BinOp::Add, u(), Expr::nat(1u64)),
//! );
//! vars.insert("u".to_string(), Ty::Nat);
//! assert_eq!(decide(&nat_claim, &vars), Verdict::Valid);
//! ```

pub mod bitblast;
pub mod interval;
pub mod linarith;
pub mod simplify;

use std::collections::HashMap;

use ir::expr::Expr;
use ir::ty::Ty;
use ir::value::Value;

/// The outcome of a validity check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Verdict {
    /// The formula holds for all assignments of its free variables.
    Valid,
    /// A falsifying assignment.
    Counterexample(HashMap<String, Value>),
    /// The procedure could not decide the formula.
    #[default]
    Unknown,
}

/// Effort accounting for benchmark comparisons (Sec 3.2, Table 6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecideInfo {
    /// The verdict.
    pub verdict: Verdict,
    /// SAT statistics when bit-blasting was used.
    pub sat_stats: Option<sat::Stats>,
    /// Number of arithmetic case splits explored by linear arithmetic.
    pub splits: usize,
    /// Which procedure ran ("simp", "linarith", "bitblast").
    pub procedure: &'static str,
}

/// Decides validity of `goal`, whose free variables have the given types.
///
/// Routes word/boolean goals to the bit-blaster and ideal-arithmetic goals
/// to linear arithmetic; goals mixing both levels go to linear arithmetic
/// with sound word-term atomisation.
#[must_use]
pub fn decide(goal: &Expr, vars: &HashMap<String, Ty>) -> Verdict {
    decide_with_info(goal, vars).verdict
}

/// [`decide`] with effort accounting.
#[must_use]
pub fn decide_with_info(goal: &Expr, vars: &HashMap<String, Ty>) -> DecideInfo {
    let simplified = simplify::simplify(goal);
    if simplified == Expr::tt() {
        return DecideInfo {
            verdict: Verdict::Valid,
            procedure: "simp",
            ..DecideInfo::default()
        };
    }
    if simplified == Expr::ff() {
        return DecideInfo {
            verdict: Verdict::Counterexample(HashMap::new()),
            procedure: "simp",
            ..DecideInfo::default()
        };
    }
    if is_word_level(&simplified, vars) {
        let (verdict, stats) = bitblast::decide_word_with_stats(&simplified, vars);
        if verdict != Verdict::Unknown {
            return DecideInfo {
                verdict,
                sat_stats: Some(stats),
                splits: 0,
                procedure: "bitblast",
            };
        }
        // Outside the bit-blastable fragment (heap atoms, …): fall through
        // to linear arithmetic with atomisation.
        let (verdict, splits) = linarith::decide_linear_with_info(&simplified, vars);
        DecideInfo {
            verdict,
            sat_stats: Some(stats),
            splits,
            procedure: "bitblast+linarith",
        }
    } else {
        let (verdict, splits) = linarith::decide_linear_with_info(&simplified, vars);
        DecideInfo {
            verdict,
            sat_stats: None,
            splits,
            procedure: "linarith",
        }
    }
}

/// Completes a partial countermodel: every variable in `vars` missing from
/// `model` (because the decision procedure found it unconstrained) is bound
/// to a type-appropriate default, so downstream playback can bind every
/// function parameter. Word variables default to zero, `nat`/`int` to 0,
/// booleans to `false`, pointers to NULL.
pub fn complete_model(model: &mut HashMap<String, Value>, vars: &HashMap<String, Ty>) {
    for (name, ty) in vars {
        if model.contains_key(name) {
            continue;
        }
        let v = match ty {
            Ty::Word(w, s) => Value::Word(ir::word::Word::new(0, *w, *s)),
            Ty::Nat => Value::nat(0u64),
            Ty::Int => Value::int(0i64),
            Ty::Bool => Value::Bool(false),
            Ty::Ptr(p) => Value::Ptr(ir::value::Ptr::null((**p).clone())),
            Ty::Unit => Value::Unit,
            // Struct/tuple/array-typed VC variables do not occur in
            // generated VCs; skip rather than guess a layout.
            Ty::Struct(_) | Ty::Tuple(_) | Ty::Arr(..) => continue,
        };
        model.insert(name.clone(), v);
    }
}

/// Does the goal live purely at the machine-word/boolean level?
fn is_word_level(e: &Expr, vars: &HashMap<String, Ty>) -> bool {
    let mut word_only = true;
    e.visit(&mut |sub| match sub {
        Expr::Lit(Value::Nat(_) | Value::Int(_)) => word_only = false,
        Expr::Cast(ir::expr::CastKind::Unat | ir::expr::CastKind::Sint, _) => word_only = false,
        Expr::Var(n) => {
            if matches!(vars.get(n.as_str()), Some(Ty::Nat | Ty::Int)) {
                word_only = false;
            }
        }
        _ => {}
    });
    word_only
}
